"""Regression tests for the benchmark harness (benchmarks/common.py).

Most importantly: the process-wide figure-sweep memo must be keyed on the
sweep parameters — the old fixed ``"figures"`` key returned a stale sweep
after ``SWEEP_PARAMS`` changed.
"""

import benchmarks.common as common
from repro.sim.simulator import SimulationParams


def test_figure_sweep_memo_keyed_on_params(monkeypatch):
    calls = []
    monkeypatch.setattr(common, "_SWEEP_CACHE", {})
    monkeypatch.setattr(
        common,
        "run_grid",
        lambda workloads, systems=None, params=None: (
            calls.append(params) or [f"sweep-{len(calls)}"]
        ),
    )
    first = common.figure_sweep()
    assert common.figure_sweep() is first   # memo hit, no second run
    assert len(calls) == 1

    # Changing the run scale must produce a fresh sweep, not the memo.
    monkeypatch.setattr(
        common, "SWEEP_PARAMS", SimulationParams(target_requests=123)
    )
    second = common.figure_sweep()
    assert len(calls) == 2
    assert second is not first
    assert calls[1].target_requests == 123

    # And going back to the original params restores the original sweep
    # without re-running it.
    monkeypatch.setattr(
        common, "SWEEP_PARAMS", SimulationParams(target_requests=4_000)
    )
    assert common.figure_sweep() is first
    assert len(calls) == 2


def test_memo_key_distinguishes_params():
    a = common._sweep_memo_key(["w"], SimulationParams(target_requests=100))
    b = common._sweep_memo_key(["w"], SimulationParams(target_requests=200))
    c = common._sweep_memo_key(["w2"], SimulationParams(target_requests=100))
    assert len({a, b, c}) == 3
    assert a == common._sweep_memo_key(["w"], SimulationParams(target_requests=100))


def test_sweep_jobs_count_env(monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_JOBS", "3")
    assert common.sweep_jobs_count() == 3
    monkeypatch.setenv("REPRO_SWEEP_JOBS", "0")
    assert common.sweep_jobs_count() == 1
    monkeypatch.delenv("REPRO_SWEEP_JOBS")
    assert common.sweep_jobs_count() >= 1


def test_sweep_cache_env_switches(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_SWEEP_NO_CACHE", "1")
    assert common.sweep_cache() is None
    monkeypatch.delenv("REPRO_SWEEP_NO_CACHE")
    monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", str(tmp_path))
    cache = common.sweep_cache()
    assert cache is not None
    assert str(cache.directory) == str(tmp_path)
