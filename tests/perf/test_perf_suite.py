"""Determinism and schema tests for the perf microbenchmark suite.

The contract: everything except the measured timing values is a pure
function of ``(seed, smoke)``.  Two same-seed invocations must agree on
the JSON schema, the benchmark names and configs, and the metric *keys*
— only the timing values may differ between runs.
"""

import json

from repro import cli
from repro.ecc import batch
from repro.perf import (
    PR6_BASELINE,
    PRE_PR_BASELINE,
    SCHEMA_VERSION,
    check_payload,
    run_suite,
)

#: Top-level keys of the BENCH_perf.json payload, in any order.
TOP_LEVEL_KEYS = {
    "schema", "suite", "seed", "smoke", "code_version",
    "baseline", "baseline_pr6", "benchmarks", "speedups",
    "metrics_fingerprint",
}

BENCHMARK_NAMES = [
    "codec", "batch_codec", "frontend_access", "storage", "engine",
    "trace_gen", "end_to_end", "timeseries",
]


def _run_cli_json(capsys, seed: int) -> dict:
    rc = cli.main(["perf", "--json", "--smoke", "--seed", str(seed)])
    assert rc == 0
    return json.loads(capsys.readouterr().out)


def _shape(payload: dict) -> dict:
    """Everything that must be identical across same-seed runs."""
    return {
        "schema": payload["schema"],
        "suite": payload["suite"],
        "seed": payload["seed"],
        "smoke": payload["smoke"],
        "baseline": payload["baseline"],
        "benchmarks": [
            {
                "name": bench["name"],
                "config": bench["config"],
                "metric_keys": sorted(bench["metrics"]),
            }
            for bench in payload["benchmarks"]
        ],
        "speedup_keys": sorted(payload["speedups"]),
        # The fingerprint carries no timings — it must be value-identical
        # across same-seed runs, not just shape-identical.
        "metrics_fingerprint": payload["metrics_fingerprint"],
    }


def test_perf_cli_json_is_deterministic_modulo_timings(capsys):
    first = _run_cli_json(capsys, seed=3)
    second = _run_cli_json(capsys, seed=3)
    assert _shape(first) == _shape(second)


def test_perf_payload_schema(capsys):
    payload = _run_cli_json(capsys, seed=3)
    assert set(payload) == TOP_LEVEL_KEYS
    assert payload["schema"] == SCHEMA_VERSION
    assert payload["suite"] == "perf"
    assert payload["seed"] == 3
    assert payload["smoke"] is True
    assert isinstance(payload["code_version"], str) and payload["code_version"]
    assert payload["baseline"] == PRE_PR_BASELINE
    assert payload["baseline_pr6"] == PR6_BASELINE
    assert [b["name"] for b in payload["benchmarks"]] == BENCHMARK_NAMES
    by_name = {b["name"]: b for b in payload["benchmarks"]}
    for bench in payload["benchmarks"]:
        assert set(bench) == {"name", "config", "metrics"}
        assert bench["config"], bench["name"]
        for metric, value in bench["metrics"].items():
            assert isinstance(value, (int, float)), (bench["name"], metric)
    end_to_end = by_name["end_to_end"]["config"]
    assert end_to_end["system"] == "rwow-rde"
    assert end_to_end["workload"] == "canneal"
    assert end_to_end["seed"] == 3
    # The batch report declares which path it measured; on numpy builds
    # it must carry the gated vectorization ratios.
    batch_codec = by_name["batch_codec"]
    assert batch_codec["config"]["numpy"] is batch.HAS_NUMPY
    if batch.HAS_NUMPY:
        assert batch_codec["metrics"]["encode_vs_scalar"] > 0
        assert "batch_codec.encode_vs_scalar" in payload["speedups"]
    else:
        assert "encode_vs_scalar" not in batch_codec["metrics"]
        assert "batch_codec.encode_vs_scalar" not in payload["speedups"]
    # Same contract for the array-tier report: the gated ratio exists
    # exactly on numpy builds.
    frontend_access = by_name["frontend_access"]
    assert frontend_access["config"]["numpy"] is batch.HAS_NUMPY
    if batch.HAS_NUMPY:
        assert frontend_access["metrics"]["batch_vs_object"] > 0
        assert "frontend_access.batch_vs_object" in payload["speedups"]
    else:
        assert "batch_vs_object" not in frontend_access["metrics"]
        assert "frontend_access.batch_vs_object" not in payload["speedups"]
    # Smoke budgets never mix with the full-budget pre-PR/PR6 ratios.
    assert all("vs_pre_pr" not in key for key in payload["speedups"])
    assert all("vs_pr6" not in key for key in payload["speedups"])
    # Smoke suites pin only the smoke-budget legs (the full ones need
    # full-budget runs); the reference configs match the suite seed.
    fingerprint = payload["metrics_fingerprint"]
    assert set(fingerprint) == {"smoke", "frontend_smoke"}
    assert fingerprint["smoke"]["config"]["seed"] == 3
    assert fingerprint["smoke"]["config"]["front_end"] == "none"
    assert fingerprint["smoke"]["metrics"]["engine.sim_ticks"] > 0
    frontend_leg = fingerprint["frontend_smoke"]
    assert frontend_leg["config"]["front_end"] == "dram"
    assert frontend_leg["config"]["seed"] == 3
    assert frontend_leg["metrics"]["frontend.reads"] > 0
    assert frontend_leg["metrics"]["frontend.fills"] > 0


def test_run_suite_passes_its_own_regression_gate():
    payload = run_suite(seed=3, smoke=True)
    assert check_payload(payload) == []


def test_check_payload_flags_gross_regressions():
    bad = {
        "speedups": {
            "codec.encode_vs_reference": 0.5,
            "codec.decode_vs_reference": 9.0,
        },
        "benchmarks": [
            {"name": "codec", "metrics": {"encode_us": 0.0}},
        ],
    }
    failures = check_payload(bad)
    assert any("codec.encode_vs_reference" in f for f in failures)
    assert any("non-positive" in f for f in failures)


def test_check_payload_reports_missing_metrics():
    failures = check_payload({"speedups": {}, "benchmarks": []})
    assert len(failures) == 2
    assert all("missing" in f for f in failures)


def test_check_payload_gates_batch_codec_on_numpy_builds():
    base = {
        "speedups": {
            "codec.encode_vs_reference": 2.0,
            "codec.decode_vs_reference": 5.0,
        },
    }
    slow = dict(base, benchmarks=[{
        "name": "batch_codec",
        "config": {"numpy": True},
        "metrics": {"encode_vs_scalar": 1.5, "decode_vs_scalar": 30.0},
    }])
    failures = check_payload(slow)
    assert any("5x vectorization floor" in f for f in failures)
    missing = dict(base, benchmarks=[{
        "name": "batch_codec",
        "config": {"numpy": True},
        "metrics": {"scalar_encode_us": 1.0},
    }])
    failures = check_payload(missing)
    assert any("missing metric" in f for f in failures)
    # Scalar-only builds carry no ratios and are never gated.
    scalar = dict(base, benchmarks=[{
        "name": "batch_codec",
        "config": {"numpy": False},
        "metrics": {"scalar_encode_us": 1.0, "scalar_decode_us": 3.0},
    }])
    assert check_payload(scalar) == []


def test_check_payload_gates_frontend_access_on_numpy_builds():
    base = {
        "speedups": {
            "codec.encode_vs_reference": 2.0,
            "codec.decode_vs_reference": 5.0,
        },
    }
    slow = dict(base, benchmarks=[{
        "name": "frontend_access",
        "config": {"numpy": True},
        "metrics": {"batch_vs_object": 2.0},
    }])
    assert any(
        "5x array-tier floor" in f for f in check_payload(slow)
    )
    missing = dict(base, benchmarks=[{
        "name": "frontend_access",
        "config": {"numpy": True},
        "metrics": {"object_access_us": 1.0},
    }])
    assert any("batch_vs_object" in f for f in check_payload(missing))
    # Scalar-only builds carry no ratio and are never gated.
    scalar = dict(base, benchmarks=[{
        "name": "frontend_access",
        "config": {"numpy": False},
        "metrics": {"object_access_us": 1.0},
    }])
    assert check_payload(scalar) == []


def test_check_payload_gates_sampling_overhead_at_full_budget():
    payload = {
        "smoke": False,
        "speedups": {
            "codec.encode_vs_reference": 2.0,
            "codec.decode_vs_reference": 5.0,
        },
        "benchmarks": [
            {"name": "timeseries", "metrics": {"overhead_ratio": 1.5}},
        ],
    }
    failures = check_payload(payload)
    assert any("overhead_ratio" in f for f in failures)
    # Smoke runs are too short for a stable ratio — never gated.
    payload["smoke"] = True
    assert check_payload(payload) == []
