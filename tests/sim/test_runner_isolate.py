"""Isolated-job execution and the runner's guarded timeout/retry path."""

from __future__ import annotations

import os
import time

import pytest

from repro.sim.results_io import results_digest
from repro.sim.runner import (
    JobCrashedError,
    JobExecutionError,
    JobTimeoutError,
    SweepRunner,
    run_job_isolated,
    run_jobs,
)
from repro.sim.runner.jobs import SweepJob
from repro.sim.simulator import SimulationParams, simulate

TINY = SimulationParams(target_requests=120, n_cores=2, seed=7)


def tiny_job(system="baseline"):
    return SweepJob.build("MP3", system, TINY)


def _hang(job):  # pragma: no cover - killed by the timeout
    time.sleep(60)


def _die(job):  # pragma: no cover - child exits before reporting
    os._exit(3)


def _raise(job):
    raise ValueError("deliberately broken job")


def test_isolated_result_is_bit_identical_to_inline():
    job = tiny_job()
    inline = simulate(job.system, job.workload, job.params)
    isolated = run_job_isolated(job, timeout=300.0)
    assert results_digest([isolated]) == results_digest([inline])


def test_hung_job_times_out_quickly():
    started = time.monotonic()
    with pytest.raises(JobTimeoutError):
        run_job_isolated(tiny_job(), timeout=0.3, execute=_hang)
    assert time.monotonic() - started < 30.0


def test_dead_child_raises_crashed():
    with pytest.raises(JobCrashedError):
        run_job_isolated(tiny_job(), timeout=30.0, execute=_die)


def test_child_exception_carries_its_traceback():
    with pytest.raises(JobExecutionError) as excinfo:
        run_job_isolated(tiny_job(), timeout=30.0, execute=_raise)
    assert not isinstance(excinfo.value, (JobTimeoutError, JobCrashedError))
    assert "deliberately broken job" in str(excinfo.value)
    assert "ValueError" in str(excinfo.value)


def test_guarded_sweep_is_bit_identical_to_plain():
    jobs = [tiny_job("baseline"), tiny_job("rwow-rde")]
    plain = run_jobs(jobs, jobs=1)
    guarded_serial = run_jobs(jobs, jobs=1, timeout=300.0)
    guarded_parallel = run_jobs(jobs, jobs=2, timeout=300.0)
    reference = results_digest(plain)
    assert results_digest(guarded_serial) == reference
    assert results_digest(guarded_parallel) == reference


def test_retries_recover_from_transient_failures(monkeypatch):
    from repro.sim.runner import executor

    real = executor.run_job_isolated
    calls = []

    def flaky(job, timeout=None, execute=None):
        calls.append(job)
        if len(calls) <= 2:
            raise JobExecutionError("transient infrastructure failure")
        return real(job, timeout)

    monkeypatch.setattr(executor, "run_job_isolated", flaky)
    runner = SweepRunner(jobs=1, timeout=300.0, retries=2, retry_backoff=0.01)
    job = tiny_job()
    results = runner.run([job])
    assert len(results) == 1 and len(calls) == 3
    assert runner.retried_jobs == 2
    assert results_digest(results) == results_digest(
        [simulate(job.system, job.workload, job.params)]
    )


def test_exhausted_retries_raise(monkeypatch):
    from repro.sim.runner import executor

    def always_broken(job, timeout=None, execute=None):
        raise JobExecutionError("permanently broken")

    monkeypatch.setattr(executor, "run_job_isolated", always_broken)
    runner = SweepRunner(jobs=1, timeout=1.0, retries=1, retry_backoff=0.01)
    with pytest.raises(JobExecutionError, match="permanently broken"):
        runner.run([tiny_job()])
    assert runner.retried_jobs == 1


def test_guard_knob_validation():
    with pytest.raises(ValueError):
        SweepRunner(timeout=0.0)
    with pytest.raises(ValueError):
        SweepRunner(timeout=-1.0)
    with pytest.raises(ValueError):
        SweepRunner(retries=-1)
