"""Unit tests for the experiment helpers."""

import pytest

from repro.core.systems import make_system
from repro.sim.experiment import (
    SystemComparison,
    compare_systems,
    geometric_mean,
    run_workload,
    sweep_workloads,
)
from repro.sim.metrics import MemoryStats, SimulationResult
from repro.sim.simulator import SimulationParams

FAST = SimulationParams(instructions_per_core=4_000, n_cores=2)


def _result(system, ipc_cycles, latency=100, throughput_busy=10_000, writes=10):
    stats = MemoryStats()
    stats.reads_completed = 1
    stats.read_latency_ticks = latency
    for _ in range(writes):
        stats.record_write(2)
    return SimulationResult(
        system_name=system,
        workload_name="w",
        sim_ticks=1000,
        instructions=10_000,
        cpu_cycles=ipc_cycles,
        memory=stats,
        irlp_average=2.0,
        irlp_max=4.0,
        write_service_busy_ticks=throughput_busy,
    )


def test_comparison_ipc_improvement():
    comparison = SystemComparison("w")
    comparison.results["baseline"] = _result("baseline", 10_000)  # ipc 1.0
    comparison.results["rwow-rde"] = _result("rwow-rde", 8_000)   # ipc 1.25
    assert comparison.ipc_improvement("rwow-rde") == pytest.approx(0.25)


def test_comparison_latency_and_throughput_ratios():
    comparison = SystemComparison("w")
    comparison.results["baseline"] = _result("baseline", 10_000, latency=200)
    comparison.results["x"] = _result("x", 10_000, latency=100)
    assert comparison.read_latency_ratio("x") == pytest.approx(0.5)
    comparison.results["y"] = _result("y", 10_000, throughput_busy=5_000)
    assert comparison.write_throughput_ratio("y") == pytest.approx(2.0)


def test_comparison_requires_baseline():
    comparison = SystemComparison("w")
    comparison.results["x"] = _result("x", 10_000)
    with pytest.raises(ValueError):
        _ = comparison.baseline


def test_run_workload_accepts_name_and_config():
    by_name = run_workload("MP3", "baseline", FAST)
    by_config = run_workload("MP3", make_system("baseline"), FAST)
    assert by_name.ipc == by_config.ipc


def test_run_workload_overrides_only_with_names():
    with pytest.raises(ValueError):
        run_workload("MP3", make_system("baseline"), FAST, wow_max_group=2)


def test_compare_systems_subset():
    comparison = compare_systems("MP3", ["baseline", "wow-nr"], FAST)
    assert set(comparison.results) == {"baseline", "wow-nr"}
    assert comparison.workload_name == "MP3"


def test_sweep_workloads_shapes():
    sweeps = sweep_workloads(["MP2", "MP3"], ["baseline"], FAST)
    assert [s.workload_name for s in sweeps] == ["MP2", "MP3"]


def test_sweep_workloads_through_runner_cache(tmp_path):
    from repro.sim.runner import ResultCache

    cache = ResultCache(tmp_path)
    first = sweep_workloads(["MP3"], ["baseline"], FAST, jobs=2, cache=cache)
    assert cache.stats.writes == 1
    second = sweep_workloads(["MP3"], ["baseline"], FAST, cache=cache)
    assert cache.stats.hits == 1
    assert (
        first[0].results["baseline"].ipc == second[0].results["baseline"].ipc
    )


def test_sweep_rejects_overrides_with_config_systems():
    with pytest.raises(ValueError):
        sweep_workloads(
            ["MP3"], [make_system("baseline")], FAST, wow_max_group=2
        )


def test_geometric_mean():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    assert geometric_mean([]) == 0.0
    assert geometric_mean([0.0, 2.0]) == pytest.approx(2.0)  # zeros skipped
