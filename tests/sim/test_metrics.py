"""Unit tests for IRLP windows and statistics containers."""

import pytest

from repro.sim.metrics import (
    IrlpRecorder,
    MAX_IRLP,
    MemoryStats,
    SimulationResult,
    WriteWindow,
    merge_intervals,
)


# ----------------------------------------------------------------------
# merge_intervals
# ----------------------------------------------------------------------
def test_merge_empty():
    assert merge_intervals([]) == []


def test_merge_disjoint_sorted():
    assert merge_intervals([(0, 5), (10, 15)]) == [(0, 5), (10, 15)]


def test_merge_overlapping():
    assert merge_intervals([(0, 10), (5, 20)]) == [(0, 20)]


def test_merge_touching_intervals_join():
    assert merge_intervals([(0, 10), (10, 20)]) == [(0, 20)]


def test_merge_unsorted_input():
    assert merge_intervals([(10, 12), (0, 3), (2, 5)]) == [(0, 5), (10, 12)]


def test_merge_nested():
    assert merge_intervals([(0, 100), (10, 20), (30, 40)]) == [(0, 100)]


# ----------------------------------------------------------------------
# WriteWindow
# ----------------------------------------------------------------------
def test_single_chip_full_window_irlp_is_one():
    window = WriteWindow(0, 100)
    window.add_activity(3, 0, 100)
    assert window.irlp() == pytest.approx(1.0)


def test_irlp_counts_parallel_chips():
    window = WriteWindow(0, 100)
    for chip in range(4):
        window.add_activity(chip, 0, 100)
    assert window.irlp() == pytest.approx(4.0)


def test_irlp_partial_occupancy():
    window = WriteWindow(0, 100)
    window.add_activity(0, 0, 100)
    window.add_activity(1, 0, 50)
    assert window.irlp() == pytest.approx(1.5)


def test_irlp_clips_activity_to_window():
    window = WriteWindow(50, 150)
    window.add_activity(0, 0, 200)  # extends both sides
    assert window.irlp() == pytest.approx(1.0)


def test_irlp_same_chip_overlaps_not_double_counted():
    window = WriteWindow(0, 100)
    window.add_activity(0, 0, 80)
    window.add_activity(0, 40, 100)
    assert window.irlp() == pytest.approx(1.0)


def test_irlp_instantaneous_count_capped():
    window = WriteWindow(0, 100)
    for chip in range(MAX_IRLP + 3):
        window.add_activity(chip, 0, 100)
    assert window.irlp() == pytest.approx(float(MAX_IRLP))


def test_empty_window_irlp_zero():
    assert WriteWindow(10, 10).irlp() == 0.0


def test_zero_length_activity_ignored():
    window = WriteWindow(0, 100)
    window.add_activity(0, 50, 50)
    assert window.irlp() == 0.0


def test_absorb_initialises_placeholder():
    window = WriteWindow(-1, -1)
    window.absorb(100, 200)
    assert (window.start, window.end) == (100, 200)
    window.absorb(50, 150)
    assert (window.start, window.end) == (50, 200)


def test_extend_grows_end_only():
    window = WriteWindow(10, 20)
    window.extend(15)
    assert window.end == 20
    window.extend(40)
    assert window.end == 40


def test_service_end_tracks_maximum():
    window = WriteWindow(0, 100)
    window.note_service_end(120)
    window.note_service_end(110)
    assert window.service_end == 120
    assert window.busy_end == 120


def test_busy_end_defaults_to_window_end():
    assert WriteWindow(0, 100).busy_end == 100


# ----------------------------------------------------------------------
# IrlpRecorder
# ----------------------------------------------------------------------
def test_recorder_average_over_windows():
    recorder = IrlpRecorder()
    w1 = recorder.open_window(0, 100)
    w1.add_activity(0, 0, 100)
    w2 = recorder.open_window(200, 300)
    w2.add_activity(0, 200, 300)
    w2.add_activity(1, 200, 300)
    w2.add_activity(2, 200, 300)
    assert recorder.average() == pytest.approx(2.0)
    assert recorder.maximum() == pytest.approx(3.0)


def test_recorder_empty_average_is_zero():
    recorder = IrlpRecorder()
    assert recorder.average() == 0.0
    assert recorder.maximum() == 0.0


def test_drain_busy_ticks_unions_service_spans():
    recorder = IrlpRecorder()
    w1 = recorder.open_window(0, 100)
    w1.note_service_end(150)
    recorder.open_window(120, 200)  # overlaps w1's tail
    assert recorder.drain_busy_ticks() == 200


# ----------------------------------------------------------------------
# MemoryStats
# ----------------------------------------------------------------------
def test_record_read_accumulates_latency():
    stats = MemoryStats()
    stats.record_read(100, delayed=False)
    stats.record_read(300, delayed=True)
    assert stats.reads_completed == 2
    assert stats.mean_read_latency_ticks == pytest.approx(200.0)
    assert stats.read_latency_max == 300
    assert stats.delayed_read_fraction == pytest.approx(0.5)


def test_record_write_histogram_and_silents():
    stats = MemoryStats()
    stats.record_write(0)
    stats.record_write(3)
    stats.record_write(3)
    assert stats.writes_completed == 3
    assert stats.silent_writes == 1
    assert stats.dirty_word_histogram[3] == 2
    assert stats.mean_dirty_words == pytest.approx(2.0)


def test_merge_combines_counters():
    a = MemoryStats()
    b = MemoryStats()
    a.record_read(100, True)
    b.record_read(200, False)
    b.record_write(4)
    b.row_reads = 7
    a.merge(b)
    assert a.reads_completed == 2
    assert a.writes_completed == 1
    assert a.row_reads == 7
    assert a.reads_delayed_by_write == 1
    assert a.dirty_word_histogram[4] == 1


def test_empty_stats_ratios_are_zero():
    stats = MemoryStats()
    assert stats.mean_read_latency_ticks == 0.0
    assert stats.delayed_read_fraction == 0.0
    assert stats.mean_dirty_words == 0.0


# ----------------------------------------------------------------------
# SimulationResult
# ----------------------------------------------------------------------
def _result(**overrides):
    base = dict(
        system_name="baseline",
        workload_name="test",
        sim_ticks=1000,
        instructions=10_000,
        cpu_cycles=5_000,
        memory=MemoryStats(),
        irlp_average=2.4,
        irlp_max=7.0,
        write_service_busy_ticks=10_000,
    )
    base.update(overrides)
    return SimulationResult(**base)


def test_ipc_is_instructions_over_cycles():
    assert _result().ipc == pytest.approx(2.0)


def test_ipc_zero_cycles():
    assert _result(cpu_cycles=0).ipc == 0.0


def test_write_throughput_per_microsecond():
    stats = MemoryStats()
    for _ in range(10):
        stats.record_write(2)
    # 10 writes over 10_000 ticks = 1000 ns = 1 us
    result = _result(memory=stats, write_service_busy_ticks=10_000)
    assert result.write_throughput == pytest.approx(10.0)


def test_write_throughput_zero_busy_time():
    assert _result(write_service_busy_ticks=0).write_throughput == 0.0
