"""Unit tests for the full-system driver."""

import pytest

from repro.core.systems import make_system
from repro.sim.simulator import SimulationParams, SystemSimulator, simulate
from repro.trace.workloads import get_workload

FAST = SimulationParams(instructions_per_core=4_000, n_cores=2)


def test_simulate_by_workload_name():
    result = simulate(make_system("baseline"), "canneal", FAST)
    assert result.workload_name == "canneal"
    assert result.system_name == "baseline"
    assert result.instructions == 2 * 4_000


def test_simulate_by_profile_object():
    profile = get_workload("MP2")
    result = simulate(make_system("baseline"), profile, FAST)
    assert result.workload_name == "MP2"


def test_rollback_rate_wired_from_workload():
    sim = SystemSimulator(make_system("row-nr"), "canneal", FAST)
    assert sim.system.row_rollback_rate == pytest.approx(0.058)


def test_explicit_rollback_rate_not_overridden():
    system = make_system("row-nr", row_rollback_rate=0.5)
    sim = SystemSimulator(system, "canneal", FAST)
    assert sim.system.row_rollback_rate == 0.5


def test_baseline_does_not_need_rollback_rate():
    sim = SystemSimulator(make_system("baseline"), "canneal", FAST)
    assert sim.system.row_rollback_rate == 0.0


def test_resolve_instructions_fixed():
    params = SimulationParams(instructions_per_core=123)
    assert params.resolve_instructions(get_workload("canneal")) == 123


def test_resolve_instructions_by_target_requests():
    params = SimulationParams(target_requests=8_000, n_cores=8)
    canneal = params.resolve_instructions(get_workload("canneal"))
    gromacs = params.resolve_instructions(get_workload("gromacs"))
    # Lighter workloads get proportionally more instructions.
    assert gromacs > canneal
    mpki = get_workload("canneal").mpki
    assert canneal == pytest.approx(8_000 * 1000 / (mpki * 8), rel=0.01)


def test_resolve_instructions_floor():
    params = SimulationParams(target_requests=1)
    assert params.resolve_instructions(get_workload("canneal")) == 5_000


def test_run_twice_is_an_error_free_fresh_build():
    # Each SystemSimulator is single-use; building two is independent.
    a = SystemSimulator(make_system("baseline"), "MP3", FAST).run()
    b = SystemSimulator(make_system("baseline"), "MP3", FAST).run()
    assert a.ipc == b.ipc


def test_result_contains_memory_stats():
    result = simulate(make_system("rwow-rde"), "canneal", FAST)
    assert result.memory.reads_completed > 0
    assert result.cpu_cycles > 0
    assert result.sim_ticks > 0


def test_metrics_and_timeseries_absent_by_default():
    result = simulate(make_system("baseline"), "canneal", FAST)
    assert result.metrics is None
    assert result.timeseries is None


def test_sampling_does_not_perturb_the_simulation():
    """Enabling the sampler must not change any behavioural outcome —
    only the wall clock.  This is the enabled-path half of the
    golden-trace guarantee (the disabled path runs the verbatim loop)."""
    plain = simulate(make_system("rwow-rde"), "canneal", FAST)
    sampled_params = SimulationParams(
        instructions_per_core=4_000, n_cores=2,
        sample_every_ticks=500, collect_metrics=True,
    )
    sampled = simulate(make_system("rwow-rde"), "canneal", sampled_params)
    assert sampled.sim_ticks == plain.sim_ticks
    assert sampled.profile.events_dispatched == plain.profile.events_dispatched
    assert sampled.ipc == plain.ipc
    assert sampled.memory.reads_completed == plain.memory.reads_completed


def test_sampled_run_embeds_metrics_and_timeseries():
    params = SimulationParams(
        instructions_per_core=4_000, n_cores=2,
        sample_every_ticks=500, collect_metrics=True,
    )
    result = simulate(make_system("rwow-rde"), "canneal", params)
    assert result.metrics is not None
    assert result.metrics["reads.completed"]["value"] == (
        result.memory.reads_completed
    )
    # _collect() dumps after _profile(), so the engine fingerprint gauges
    # are part of the embedded metrics.
    assert result.metrics["engine.sim_ticks"]["value"] == result.sim_ticks
    assert result.metrics["engine.events_dispatched"]["value"] == (
        result.profile.events_dispatched
    )
    series = result.timeseries
    assert series is not None
    assert series["cadence_ticks"] == 500
    assert len(series["ticks"]) > 10
    assert series["ticks"] == sorted(series["ticks"])
    names = set(series["columns"])
    assert {"reads.outstanding", "write_engine.inflight",
            "write.windows_open", "rollbacks.cumulative",
            "irlp.recent"} <= names
    assert "ch0.queue.read.depth" in names and "ch3.queue.write.depth" in names
    # Something actually moved during the run.
    assert any(v > 0 for v in series["columns"]["reads.outstanding"])


def test_sampled_run_is_deterministic():
    params = SimulationParams(
        instructions_per_core=4_000, n_cores=2,
        sample_every_ticks=500, collect_metrics=True,
    )
    import json

    a = simulate(make_system("rwow-rde"), "canneal", params)
    b = simulate(make_system("rwow-rde"), "canneal", params)
    assert json.dumps(a.metrics, sort_keys=True) == json.dumps(
        b.metrics, sort_keys=True
    )
    assert json.dumps(a.timeseries, sort_keys=True) == json.dumps(
        b.timeseries, sort_keys=True
    )
