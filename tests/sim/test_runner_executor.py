"""Executor tests: parallel/serial determinism and cache behaviour.

The test tagged ``sweep_cache`` doubles as CI's cache-correctness guard:
CI points ``REPRO_SWEEP_CACHE_DIR`` at a shared directory, runs the suite
once cold, then reruns the tagged test with ``REPRO_EXPECT_CACHE_HIT=1``
and the test asserts every job was served from disk.
"""

import json
import os

import pytest

from repro.sim.results_io import result_to_dict
from repro.sim.runner import (
    ResultCache,
    SweepJob,
    SweepRunner,
    merged_metrics,
    merged_timeseries,
    run_jobs,
    run_pairs,
)
from repro.sim.simulator import SimulationParams

FAST = SimulationParams(instructions_per_core=2_000, n_cores=2)

#: Same sweep with observability on: embedded metrics + sampling.
OBSERVED = SimulationParams(
    instructions_per_core=2_000, n_cores=2,
    collect_metrics=True, sample_every_ticks=500,
)


def _jobs(params=FAST):
    return [
        SweepJob.build(workload, system, params)
        for workload in ("MP2", "MP3")
        for system in ("baseline", "rwow-rde")
    ]


def _payloads(results):
    return [result_to_dict(result) for result in results]


def test_parallel_results_bit_identical_to_serial():
    serial = run_jobs(_jobs(), jobs=1)
    parallel = run_jobs(_jobs(), jobs=4)
    assert _payloads(serial) == _payloads(parallel)
    # Sanity: the runs are real simulations, not empty shells.
    assert all(r.memory.reads_completed > 0 for r in serial)
    # And every job got its own decorrelated seed.
    assert len({r.seed for r in serial}) == len(serial)


def test_parallel_merged_metrics_byte_identical_to_serial():
    """The cross-worker merge is deterministic: a parallel sweep's merged
    registry dump and keyed time-series bundle serialise byte-for-byte
    the same as the serial run's."""
    serial = run_jobs(_jobs(OBSERVED), jobs=1)
    parallel = run_jobs(_jobs(OBSERVED), jobs=4)

    serial_metrics = merged_metrics(serial)
    parallel_metrics = merged_metrics(parallel)
    assert serial_metrics is not None
    assert json.dumps(serial_metrics, sort_keys=True) == json.dumps(
        parallel_metrics, sort_keys=True
    )
    # Merged counters really aggregate across runs.
    assert serial_metrics["reads.completed"]["value"] == sum(
        r.memory.reads_completed for r in serial
    )

    serial_series = merged_timeseries(serial)
    parallel_series = merged_timeseries(parallel)
    assert list(serial_series) == sorted(serial_series)
    assert len(serial_series) == 4
    assert json.dumps(serial_series, sort_keys=True) == json.dumps(
        parallel_series, sort_keys=True
    )
    # Full persisted payloads (now carrying metrics/timeseries sections)
    # stay bit-identical too.
    assert _payloads(serial) == _payloads(parallel)


def test_merged_metrics_none_without_collection():
    results = run_jobs(_jobs(), jobs=1)
    assert merged_metrics(results) is None
    assert merged_timeseries(results) == {}


def test_merged_timeseries_disambiguates_repeated_pairs():
    results = run_pairs(
        [("MP2", "baseline"), ("MP2", "baseline")], OBSERVED
    )
    labels = list(merged_timeseries(results))
    assert labels == ["MP2/baseline", "MP2/baseline#2"]


def test_observed_results_round_trip_through_cache(tmp_path):
    cache = ResultCache(tmp_path)
    cold = run_jobs(_jobs(OBSERVED), jobs=1, cache=cache)
    warm_runner = SweepRunner(jobs=1, cache=cache)
    warm = warm_runner.run(_jobs(OBSERVED))
    assert warm_runner.cached_jobs == 4
    assert all(r.metrics is not None for r in warm)
    assert all(r.timeseries is not None for r in warm)
    assert _payloads(cold) == _payloads(warm)
    # Observability params are part of the cache key: the plain sweep
    # must not be served from the observed sweep's entries.
    plain_runner = SweepRunner(jobs=1, cache=cache)
    plain_runner.run(_jobs())
    assert plain_runner.cached_jobs == 0


def test_results_come_back_in_job_order():
    results = run_jobs(_jobs(), jobs=4)
    expected = [
        (workload, system)
        for workload in ("MP2", "MP3")
        for system in ("baseline", "rwow-rde")
    ]
    assert [(r.workload_name, r.system_name) for r in results] == expected


def test_warm_cache_serves_identical_results(tmp_path):
    cache = ResultCache(tmp_path)
    cold = run_jobs(_jobs(), jobs=1, cache=cache)
    assert cache.stats.writes == 4

    warm_runner = SweepRunner(jobs=1, cache=cache)
    warm = warm_runner.run(_jobs())
    assert warm_runner.cached_jobs == 4
    assert warm_runner.executed_jobs == 0
    assert _payloads(cold) == _payloads(warm)
    # Cached results still carry engine cost for telemetry summaries.
    assert warm_runner.profile.events_dispatched > 0


def test_corrupted_cache_entry_is_recomputed(tmp_path):
    cache = ResultCache(tmp_path)
    cold = run_jobs(_jobs(), jobs=1, cache=cache)

    # Truncate one entry and tamper with another.
    jobs = _jobs()
    truncated = cache.path_for(jobs[0].cache_key())
    truncated.write_text(truncated.read_text()[:25])
    tampered = cache.path_for(jobs[1].cache_key())
    entry = json.loads(tampered.read_text())
    entry["result"]["instructions"] += 1
    tampered.write_text(json.dumps(entry))

    runner = SweepRunner(jobs=1, cache=cache)
    recovered = runner.run(_jobs())
    assert cache.stats.corrupt == 2
    assert runner.executed_jobs == 2 and runner.cached_jobs == 2
    assert _payloads(recovered) == _payloads(cold)


def test_run_pairs_accepts_names_and_preserves_order(tmp_path):
    results = run_pairs(
        [("MP2", "baseline"), ("MP2", "rwow-rde")],
        FAST,
        cache=ResultCache(tmp_path),
    )
    assert [r.system_name for r in results] == ["baseline", "rwow-rde"]


def test_progress_callback_sees_every_job(tmp_path):
    seen = []
    cache = ResultCache(tmp_path)
    run_jobs(_jobs(), jobs=1, cache=cache, progress=seen.append)
    assert len(seen) == 4
    assert all(p.source == "run" for p in seen)
    assert [p.completed for p in seen] == [1, 2, 3, 4]
    seen.clear()
    run_jobs(_jobs(), jobs=1, cache=cache, progress=seen.append)
    assert [p.source for p in seen] == ["cache"] * 4
    assert "cache" in seen[0].describe()


def test_rejects_bad_jobs_count():
    with pytest.raises(ValueError):
        SweepRunner(jobs=0)


@pytest.mark.sweep_cache
def test_tagged_sweep_served_from_cache(tmp_path):
    """CI cache guard: second pytest invocation must be all cache hits."""
    cache_dir = os.environ.get("REPRO_SWEEP_CACHE_DIR") or str(
        tmp_path / "sweep-cache"
    )
    cache = ResultCache(cache_dir)
    runner = SweepRunner(jobs=1, cache=cache)
    results = runner.run(_jobs())
    assert len(results) == 4
    assert all(r.memory.reads_completed > 0 for r in results)
    if os.environ.get("REPRO_EXPECT_CACHE_HIT"):
        assert runner.cached_jobs == 4, (
            "expected warm cache, but jobs were re-simulated: "
            f"{cache.stats}"
        )
        assert runner.executed_jobs == 0
