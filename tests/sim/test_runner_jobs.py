"""Unit tests for the sweep runner's job model and content hashing."""

import enum
from dataclasses import replace

import pytest

from repro.core.systems import make_system
from repro.memory.timing import DEFAULT_TIMING
from repro.sim.runner import SweepJob, canonical, content_hash, derive_seed
from repro.sim.simulator import SimulationParams

FAST = SimulationParams(instructions_per_core=2_000, n_cores=2)


class _Colour(enum.Enum):
    RED = "red"


def test_canonical_handles_dataclasses_enums_tuples():
    data = canonical(
        {"system": make_system("rwow-rde"), "colour": _Colour.RED, "t": (1, 2)}
    )
    assert data["colour"] == "red"
    assert data["t"] == [1, 2]
    assert data["system"]["name"] == "rwow-rde"
    assert data["system"]["timing"]["write_mode"] == "fixed"


def test_canonical_rejects_unhashable_objects():
    with pytest.raises(TypeError):
        canonical(object())


def test_content_hash_is_order_independent_for_dicts():
    assert content_hash({"a": 1, "b": 2}) == content_hash({"b": 2, "a": 1})


def test_derive_seed_is_stable_and_decorrelated():
    seed = derive_seed(1, "canneal", "baseline")
    assert seed == derive_seed(1, "canneal", "baseline")
    assert seed > 0
    assert seed != derive_seed(1, "canneal", "rwow-rde")
    assert seed != derive_seed(1, "MP1", "baseline")
    assert seed != derive_seed(2, "canneal", "baseline")


def test_build_resolves_names_and_derives_seed():
    job = SweepJob.build("canneal", "baseline", FAST)
    assert job.workload.name == "canneal"
    assert job.system.name == "baseline"
    assert job.params.seed == derive_seed(FAST.seed, "canneal", "baseline")
    # Everything else about the params is preserved.
    assert job.params.instructions_per_core == FAST.instructions_per_core


def test_build_rejects_overrides_with_config():
    with pytest.raises(ValueError):
        SweepJob.build("canneal", make_system("baseline"), FAST, wow_max_group=2)


def test_cache_key_is_stable():
    a = SweepJob.build("canneal", "rwow-rde", FAST)
    b = SweepJob.build("canneal", "rwow-rde", FAST)
    assert a.cache_key() == b.cache_key()


def test_cache_key_varies_with_every_input():
    base = SweepJob.build("canneal", "rwow-rde", FAST)
    keys = {base.cache_key()}
    # Different workload, system, params scale, base seed, system knob.
    variants = [
        SweepJob.build("MP1", "rwow-rde", FAST),
        SweepJob.build("canneal", "baseline", FAST),
        SweepJob.build("canneal", "rwow-rde", replace(FAST, target_requests=9)),
        SweepJob.build("canneal", "rwow-rde", replace(FAST, seed=7)),
        SweepJob.build("canneal", "rwow-rde", FAST, wow_max_group=2),
        SweepJob.build(
            "canneal", "rwow-rde", FAST, timing=DEFAULT_TIMING.symmetric()
        ),
    ]
    for job in variants:
        keys.add(job.cache_key())
    assert len(keys) == len(variants) + 1
