"""Unit tests for result persistence."""

import pytest

from repro.sim.metrics import MemoryStats, SimulationResult
from repro.sim.results_io import (
    load_results,
    result_from_dict,
    result_to_dict,
    save_results,
)


def _result():
    stats = MemoryStats()
    stats.record_read(100, delayed=True)
    stats.record_write(3)
    stats.record_chip_write(2)
    stats.record_chip_write(9)
    return SimulationResult(
        system_name="rwow-rde",
        workload_name="canneal",
        sim_ticks=12345,
        instructions=1000,
        cpu_cycles=800,
        memory=stats,
        irlp_average=3.14,
        irlp_max=7.0,
        write_service_busy_ticks=999,
    )


def test_dict_roundtrip():
    original = _result()
    restored = result_from_dict(result_to_dict(original))
    assert restored.system_name == original.system_name
    assert restored.ipc == original.ipc
    assert restored.memory.chip_word_writes == {2: 1, 9: 1}
    assert restored.memory.dirty_word_histogram == (
        original.memory.dirty_word_histogram
    )


def test_file_roundtrip(tmp_path):
    path = tmp_path / "results.json"
    results = [_result(), _result()]
    assert save_results(path, results) == 2
    loaded = load_results(path)
    assert len(loaded) == 2
    assert loaded[0].irlp_average == pytest.approx(3.14)


def test_schema_version_checked():
    data = result_to_dict(_result())
    data["schema"] = 99
    with pytest.raises(ValueError):
        result_from_dict(data)


def test_load_rejects_non_list(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{}")
    with pytest.raises(ValueError):
        load_results(path)


def test_save_results_is_atomic_and_leaves_no_temp_files(tmp_path):
    path = tmp_path / "results.json"
    save_results(path, [_result()])
    save_results(path, [_result(), _result()])  # overwrite in place
    assert [p.name for p in tmp_path.iterdir()] == ["results.json"]
    assert len(load_results(path)) == 2


def test_atomic_write_text_creates_parents(tmp_path):
    from repro.sim.results_io import atomic_write_text

    path = tmp_path / "deep" / "nested" / "out.txt"
    atomic_write_text(path, "hello")
    assert path.read_text() == "hello"
    assert [p.name for p in path.parent.iterdir()] == ["out.txt"]


def test_convenience_fields_present():
    data = result_to_dict(_result())
    assert "ipc" in data and "write_throughput" in data


def test_attribution_header_stamped():
    data = result_to_dict(_result())
    # Seed defaults to -1 for hand-built results, but the key is present.
    assert data["seed"] == -1
    assert isinstance(data["code_version"], str) and data["code_version"]
    restored = result_from_dict(data)
    assert restored.seed == -1


def test_seed_round_trips():
    result = _result()
    result.seed = 42
    assert result_from_dict(result_to_dict(result)).seed == 42


def test_code_version_memoised():
    from repro.sim.results_io import code_version

    assert code_version() == code_version()


def test_seed_absent_in_old_files_defaults():
    data = result_to_dict(_result())
    del data["seed"]
    assert result_from_dict(data).seed == -1
