"""Simulator integration of the DRAM-cache front end.

The timed tier must (a) stay completely out of the default path — the
golden-trace and perf-fingerprint pins elsewhere enforce bit-identity, and
the tests here check nothing is even constructed — and (b) behave as a
deterministic, policy-sensitive filter when switched on.
"""

import pytest

from repro.cache.frontend import FrontEndConfig
from repro.core.systems import (
    front_end_for_system,
    make_front_end,
    make_system,
)
from repro.sim.results_io import result_from_dict, result_to_dict
from repro.sim.runner import SweepJob
from repro.sim.simulator import SimulationParams, SystemSimulator, simulate

#: Small tier so the seed-7 workload actually exercises evictions.
_TINY_DRAM = dict(size_bytes=16 * 1024)


def _params(policy="lru", **kwargs):
    front_end = make_front_end("dram", policy, **_TINY_DRAM)
    kwargs.setdefault("target_requests", 2_000)
    kwargs.setdefault("seed", 7)
    return SimulationParams(front_end=front_end, **kwargs)


# ---------------------------------------------------------------------------
# Default path: nothing built, nothing reported
# ---------------------------------------------------------------------------
def test_default_params_have_front_end_disabled():
    params = SimulationParams()
    assert params.front_end.kind == "none"
    assert not params.front_end.enabled


def test_none_front_end_builds_no_tier():
    sim = SystemSimulator(make_system("baseline"), "canneal",
                          SimulationParams(target_requests=1_000, seed=7))
    assert sim.frontend is None
    assert sim.multicore.port is sim.memory
    result = sim.run()
    assert result.frontend is None


# ---------------------------------------------------------------------------
# Enabled path
# ---------------------------------------------------------------------------
def test_dram_front_end_interposes_and_reports():
    sim = SystemSimulator(make_system("rwow-rde"), "canneal", _params())
    assert sim.frontend is not None
    assert sim.multicore.port is sim.frontend
    result = sim.run()
    assert result.frontend is not None
    assert result.frontend["kind"] == "dram"
    assert result.frontend["replacement"] == "lru"
    summary = result.frontend
    assert summary["read_hits"] + summary["read_misses"] == summary["reads"]
    assert summary["fills"] > 0
    # The tier filters PCM reads: fills (+ write-backs) are the only PCM
    # traffic.  A few fills may still be in flight when the last core
    # retires, so completed PCM reads are bounded by the fills issued.
    assert result.memory.reads_completed <= summary["fills"]
    assert summary["fills"] - result.memory.reads_completed < 50


def test_policies_produce_differing_deterministic_hit_rates():
    """Acceptance criterion: LRU vs CLOCK vs MAC differ on the same
    seed-7 workload, and each is exactly reproducible."""
    def run(policy):
        result = simulate(make_system("rwow-rde"), "canneal", _params(policy))
        return (
            result.sim_ticks,
            result.frontend["hit_rate"],
            result.frontend["write_backs"],
        )

    first = {p: run(p) for p in ("lru", "clock", "mac")}
    second = {p: run(p) for p in ("lru", "clock", "mac")}
    assert first == second, "front-end runs must be deterministic"
    hit_rates = {first[p][1] for p in first}
    assert len(hit_rates) >= 2, f"policies did not diverge: {first}"


def test_front_end_timeseries_probes_present_only_when_enabled():
    direct = SystemSimulator(
        make_system("baseline"), "canneal",
        SimulationParams(target_requests=500, seed=7,
                         sample_every_ticks=10_000),
    )
    direct.run()
    assert not any(
        name.startswith("frontend.") for name in direct.sampler.series.names
    )

    tiered = SystemSimulator(
        make_system("baseline"), "canneal",
        _params(target_requests=500, sample_every_ticks=10_000),
    )
    tiered.run()
    columns = tiered.sampler.series.names
    for probe in ("frontend.mshr.depth", "frontend.writeback.depth",
                  "frontend.hit_rate"):
        assert probe in columns


# ---------------------------------------------------------------------------
# Persistence and sweep-cache coverage
# ---------------------------------------------------------------------------
def test_result_round_trips_frontend_section():
    result = simulate(make_system("rwow-rde"), "canneal", _params("mac"))
    restored = result_from_dict(result_to_dict(result))
    assert restored.frontend == result.frontend
    assert restored.frontend["replacement"] == "mac"


def test_directpath_result_serialises_without_frontend_key():
    result = simulate(make_system("baseline"), "canneal",
                      SimulationParams(target_requests=500, seed=7))
    payload = result_to_dict(result)
    assert "frontend" not in payload
    assert result_from_dict(payload).frontend is None


def test_sweep_cache_key_covers_front_end_config():
    base = SimulationParams(target_requests=1_000, seed=7)
    keys = {
        SweepJob.build("canneal", "baseline", params).cache_key
        for params in (
            base,
            _params("lru", target_requests=1_000),
            _params("clock", target_requests=1_000),
            _params("mac", target_requests=1_000),
        )
    }
    assert len(keys) == 4, "front-end config must be part of the cache key"


# ---------------------------------------------------------------------------
# systems.py registry
# ---------------------------------------------------------------------------
def test_front_end_for_system_validates_names():
    config = front_end_for_system("rwow-rde")
    assert isinstance(config, FrontEndConfig)
    assert config.kind == "dram"
    with pytest.raises(ValueError, match="unknown system"):
        front_end_for_system("turbo-pcm")


def test_make_front_end_validates_kind():
    with pytest.raises(ValueError, match="unknown front end"):
        make_front_end("sram")
    assert make_front_end("none").enabled is False
    assert make_front_end("dram", "clock", access_cycles=42).dram.access_cycles == 42
