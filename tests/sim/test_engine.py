"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, ns_to_ticks, ticks_to_ns


def test_ns_tick_conversion_roundtrip():
    assert ns_to_ticks(2.5) == 25
    assert ticks_to_ns(25) == 2.5


def test_ns_to_ticks_rounds():
    assert ns_to_ticks(0.84) == 8
    assert ns_to_ticks(0.86) == 9


def test_events_fire_in_time_order():
    engine = Engine()
    fired = []
    engine.schedule_at(30, lambda: fired.append("c"))
    engine.schedule_at(10, lambda: fired.append("a"))
    engine.schedule_at(20, lambda: fired.append("b"))
    engine.run()
    assert fired == ["a", "b", "c"]


def test_same_tick_events_fire_in_schedule_order():
    engine = Engine()
    fired = []
    for label in "abcde":
        engine.schedule_at(5, lambda label=label: fired.append(label))
    engine.run()
    assert fired == list("abcde")


def test_clock_advances_to_event_time():
    engine = Engine()
    seen = []
    engine.schedule_at(42, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [42]
    assert engine.now == 42


def test_schedule_after_is_relative():
    engine = Engine()
    times = []
    engine.schedule_at(10, lambda: engine.schedule_after(5, lambda: times.append(engine.now)))
    engine.run()
    assert times == [15]


def test_cannot_schedule_in_the_past():
    engine = Engine()
    engine.schedule_at(10, lambda: None)
    engine.run()
    with pytest.raises(ValueError):
        engine.schedule_at(5, lambda: None)


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(ValueError):
        engine.schedule_after(-1, lambda: None)


def test_cancelled_event_does_not_fire():
    engine = Engine()
    fired = []
    handle = engine.schedule_at(10, lambda: fired.append("x"))
    handle.cancel()
    engine.run()
    assert fired == []


def test_cancelled_event_skipped_by_peek():
    engine = Engine()
    handle = engine.schedule_at(10, lambda: None)
    engine.schedule_at(20, lambda: None)
    handle.cancel()
    assert engine.peek_time() == 20


def test_run_until_stops_before_later_events():
    engine = Engine()
    fired = []
    engine.schedule_at(10, lambda: fired.append(10))
    engine.schedule_at(100, lambda: fired.append(100))
    engine.run(until=50)
    assert fired == [10]
    assert engine.now == 50
    engine.run()
    assert fired == [10, 100]


def test_run_until_advances_clock_when_queue_drains():
    engine = Engine()
    engine.run(until=77)
    assert engine.now == 77


def test_run_max_events_budget():
    engine = Engine()
    fired = []
    for i in range(10):
        engine.schedule_at(i + 1, lambda i=i: fired.append(i))
    count = engine.run(max_events=3)
    assert count == 3
    assert fired == [0, 1, 2]


def test_step_returns_false_when_idle():
    engine = Engine()
    assert engine.step() is False


def test_pending_counts_live_events_only():
    engine = Engine()
    handle = engine.schedule_at(10, lambda: None)
    engine.schedule_at(20, lambda: None)
    assert engine.pending() == 2
    handle.cancel()
    assert engine.pending() == 1


def test_events_scheduled_during_run_are_processed():
    engine = Engine()
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 5:
            engine.schedule_after(10, lambda: chain(depth + 1))

    engine.schedule_at(0, lambda: chain(0))
    engine.run()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert engine.now == 50


def test_run_returns_event_count():
    engine = Engine()
    for i in range(7):
        engine.schedule_at(i, lambda: None)
    assert engine.run() == 7


def test_call_at_passes_args_without_handle():
    engine = Engine()
    seen = []
    engine.call_at(10, seen.append, "a")
    engine.call_at(5, seen.append, "b")
    engine.run()
    assert seen == ["b", "a"]


def test_call_after_is_relative():
    engine = Engine()
    times = []
    engine.call_at(10, lambda: engine.call_after(5, times.append, engine.now))
    engine.run()
    # The arg is evaluated at scheduling time (tick 10), not dispatch.
    assert times == [10]
    assert engine.now == 15


def test_call_at_rejects_past_times():
    engine = Engine()
    engine.call_at(10, lambda: None)
    engine.run()
    with pytest.raises(ValueError):
        engine.call_at(5, lambda: None)


def test_call_at_and_schedule_at_share_seq_ordering():
    engine = Engine()
    fired = []
    engine.call_at(5, fired.append, "a")
    engine.schedule_at(5, lambda: fired.append("b"))
    engine.call_at(5, fired.append, "c")
    engine.run()
    assert fired == ["a", "b", "c"]


def test_pending_accounting_through_cancel_then_pop():
    # pending() is a live counter, so the cancel must decrement it exactly
    # once: at cancel() time, not again when the dead heap entry pops.
    engine = Engine()
    handle = engine.schedule_at(10, lambda: None)
    engine.call_at(20, lambda: None)
    assert engine.pending() == 2
    handle.cancel()
    assert engine.pending() == 1
    handle.cancel()  # double-cancel must not decrement again
    assert engine.pending() == 1
    engine.run()  # pops the cancelled entry plus the live one
    assert engine.pending() == 0
    assert engine.events_dispatched == 1


def test_pending_drops_as_events_dispatch():
    engine = Engine()
    for tick in (10, 20, 30):
        engine.call_at(tick, lambda: None)
    assert engine.pending() == 3
    engine.step()
    assert engine.pending() == 2
    engine.run()
    assert engine.pending() == 0
