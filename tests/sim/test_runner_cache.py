"""Unit tests for the on-disk sweep result cache."""

import json

from repro.sim.metrics import MemoryStats, SimulationResult
from repro.sim.results_io import result_to_dict
from repro.sim.runner import ResultCache
from repro.telemetry import RunProfile

KEY = "a" * 64


def _result(profile: bool = True) -> SimulationResult:
    stats = MemoryStats()
    stats.record_read(120, delayed=False)
    stats.record_write(2)
    stats.record_chip_write(3)
    return SimulationResult(
        system_name="rwow-rde",
        workload_name="canneal",
        sim_ticks=4242,
        instructions=1000,
        cpu_cycles=900,
        memory=stats,
        irlp_average=2.5,
        irlp_max=6.0,
        write_service_busy_ticks=777,
        seed=123,
        profile=RunProfile(events_dispatched=50, wall_seconds=0.25)
        if profile
        else None,
    )


def test_roundtrip_preserves_payload_and_profile(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get(KEY) is None
    cache.put(KEY, _result())
    loaded = cache.get(KEY)
    assert loaded is not None
    assert result_to_dict(loaded) == result_to_dict(_result())
    # The original run's engine cost rides along for telemetry summaries.
    assert loaded.profile.events_dispatched == 50
    assert loaded.profile.wall_seconds == 0.25
    assert cache.stats.hits == 1 and cache.stats.misses == 1
    assert cache.entry_count() == 1


def test_missing_profile_is_tolerated(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(KEY, _result(profile=False))
    loaded = cache.get(KEY)
    assert loaded is not None and loaded.profile is None


def test_truncated_entry_is_discarded(tmp_path):
    cache = ResultCache(tmp_path)
    path = cache.put(KEY, _result())
    path.write_text(path.read_text()[:40])  # simulate a crash mid-write
    assert cache.get(KEY) is None
    assert cache.stats.corrupt == 1
    assert not path.exists()  # bad entry removed so it cannot recur


def test_tampered_payload_fails_digest_check(tmp_path):
    cache = ResultCache(tmp_path)
    path = cache.put(KEY, _result())
    entry = json.loads(path.read_text())
    entry["result"]["ipc"] = 99.0
    path.write_text(json.dumps(entry))
    assert cache.get(KEY) is None
    assert cache.stats.corrupt == 1


def test_entry_under_wrong_key_is_rejected(tmp_path):
    cache = ResultCache(tmp_path)
    path = cache.put(KEY, _result())
    other = "b" * 64
    path.rename(cache.path_for(other))
    assert cache.get(other) is None
    assert cache.stats.corrupt == 1


def test_unsupported_envelope_schema_is_rejected(tmp_path):
    cache = ResultCache(tmp_path)
    path = cache.put(KEY, _result())
    entry = json.loads(path.read_text())
    entry["schema"] = 999
    path.write_text(json.dumps(entry))
    assert cache.get(KEY) is None


def test_atomic_put_leaves_no_temp_files(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(KEY, _result())
    names = [p.name for p in tmp_path.iterdir()]
    assert names == [f"{KEY}.json"]


def test_clear_removes_entries(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(KEY, _result())
    cache.put("b" * 64, _result())
    assert cache.clear() == 2
    assert cache.entry_count() == 0


def test_permission_denied_entry_recomputes_and_is_counted(
    tmp_path, monkeypatch, capsys
):
    """An unreadable entry degrades to a miss (the sweep recomputes) but is
    counted in ``stats.errors`` and warned about exactly once."""
    import builtins

    cache = ResultCache(tmp_path)
    path = cache.put(KEY, _result())
    real_open = builtins.open

    def deny_open(file, *args, **kwargs):
        if str(file) == str(path):
            raise PermissionError(13, "Permission denied", str(file))
        return real_open(file, *args, **kwargs)

    def deny_unlink(self, missing_ok=False):
        raise PermissionError(13, "Permission denied", str(self))

    monkeypatch.setattr(builtins, "open", deny_open)
    monkeypatch.setattr(type(path), "unlink", deny_unlink)

    assert cache.get(KEY) is None  # degraded to a miss: caller recomputes
    assert cache.stats.misses == 1
    assert cache.stats.errors == 2  # unreadable + undeletable
    assert cache.stats.corrupt == 0  # an I/O error is not corruption
    first = capsys.readouterr().err
    assert "sweep cache" in first and str(path) in first
    assert "errors" in cache.stats.summary()

    assert cache.get(KEY) is None  # still failing: counted again ...
    assert cache.stats.errors == 4
    assert capsys.readouterr().err == ""  # ... but warned only once


def test_clear_counts_undeletable_entries(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path)
    path = cache.put(KEY, _result())
    cache.put("b" * 64, _result())

    def deny_unlink(self, missing_ok=False):
        raise PermissionError(13, "Permission denied", str(self))

    monkeypatch.setattr(type(path), "unlink", deny_unlink)
    assert cache.clear() == 0
    assert cache.stats.errors == 2
    assert cache.entry_count() == 2
