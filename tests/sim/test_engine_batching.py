"""Engine heap compaction and the batched ``run_until_stop`` drain."""

import pytest

from repro.sim.engine import Engine


# ----------------------------------------------------------------------
# Heap compaction
# ----------------------------------------------------------------------
def test_compaction_fires_when_cancelled_majority_on_big_heap():
    engine = Engine()
    handles = [engine.schedule_at(t, lambda: None) for t in range(100)]
    assert len(engine._queue) == 100
    for handle in handles[:51]:
        handle.cancel()
    # 51 cancelled * 2 > 100: the heap was rebuilt without dead entries.
    assert len(engine._queue) == 49
    assert engine._cancelled == 0
    assert engine.pending() == 49


def test_small_heaps_are_never_compacted():
    engine = Engine()
    handles = [engine.schedule_at(t, lambda: None) for t in range(10)]
    for handle in handles[:9]:
        handle.cancel()
    # Below COMPACT_MIN_QUEUE the dead entries linger until popped.
    assert len(engine._queue) == 10
    assert engine.pending() == 1


def test_compaction_preserves_pop_order_and_counts():
    fired = []
    engine = Engine()
    handles = {}
    # Interleave cancellable and fast-path entries over shuffled ticks.
    ticks = [(t * 37) % 128 for t in range(128)]
    for t in ticks:
        handles[t] = engine.schedule_at(t, lambda t=t: fired.append(t))
        if t % 4 == 0:
            engine.call_at(t, fired.append, t + 1000)
    for t in ticks:
        if t % 3:
            handles[t].cancel()   # 85 of 160 entries: compaction triggers
    # Compaction fired mid-loop: dead entries were physically dropped
    # (only post-compaction cancels may linger, always a sub-majority).
    assert len(engine._queue) < 160
    assert engine._cancelled * 2 <= len(engine._queue)
    expected = []
    for t in sorted(ticks):
        if t % 3 == 0:
            expected.append(t)     # handle scheduled before call_at
        if t % 4 == 0:
            expected.append(t + 1000)
    assert engine.run() == len(expected)
    assert fired == expected
    assert engine.pending() == 0


def test_compaction_during_run_keeps_drain_loop_valid():
    """Cancelling from inside a callback can compact the heap mid-run;
    the in-place rebuild must keep the drain loop's alias valid."""
    fired = []
    engine = Engine()
    victims = [
        engine.schedule_at(100 + t, lambda t=t: fired.append(t))
        for t in range(100)
    ]

    def cull():
        for handle in victims[:80]:
            handle.cancel()

    engine.schedule_at(1, cull)
    engine.run()
    assert fired == list(range(80, 100))


# ----------------------------------------------------------------------
# run_until_stop
# ----------------------------------------------------------------------
def test_run_until_stop_drains_in_time_seq_order():
    fired = []
    engine = Engine()
    engine.call_at(5, fired.append, "a")
    engine.schedule_at(3, lambda: fired.append("b"))
    engine.call_at(3, fired.append, "c")
    engine.call_at(5, fired.append, "d")
    assert engine.run_until_stop() == 4
    assert fired == ["b", "c", "a", "d"]
    assert engine.now == 5


def test_stop_latch_halts_after_current_callback():
    fired = []
    engine = Engine()

    def stopper():
        fired.append("stop")
        engine.request_stop()

    engine.call_at(1, fired.append, "before")
    engine.call_at(2, stopper)
    engine.call_at(3, fired.append, "after")
    assert engine.run_until_stop() == 2
    assert fired == ["before", "stop"]
    # The latch was consumed on exit: the next drain runs normally.
    assert engine.run_until_stop() == 1
    assert fired == ["before", "stop", "after"]


def test_stop_latch_halts_same_tick_batch():
    """The inner same-tick loop must honour the latch too — a stop from
    the last core's finish hook lands mid-batch in real runs."""
    fired = []
    engine = Engine()
    engine.call_at(7, fired.append, 1)
    engine.call_at(7, lambda: (fired.append(2), engine.request_stop()))
    engine.call_at(7, fired.append, 3)
    assert engine.run_until_stop() == 2
    assert fired == [1, 2]
    assert engine.pending() == 1


def test_pre_latched_stop_returns_without_dispatch():
    engine = Engine()
    engine.call_at(1, lambda: None)
    engine.request_stop()
    assert engine.run_until_stop() == 0
    assert engine.pending() == 1
    assert engine.run_until_stop() == 1  # latch did not stick


def test_zero_delay_events_join_the_current_tick_batch():
    fired = []
    engine = Engine()

    def chain(n):
        fired.append(n)
        if n < 4:
            engine.call_after(0, chain, n + 1)

    engine.call_at(10, chain, 0)
    engine.call_at(11, fired.append, "next-tick")
    engine.run_until_stop()
    assert fired == [0, 1, 2, 3, 4, "next-tick"]


def test_cancelled_entries_skipped_in_both_loops():
    fired = []
    engine = Engine()
    dead_outer = engine.schedule_at(1, lambda: fired.append("dead1"))
    engine.call_at(2, fired.append, "live")
    dead_inner = engine.schedule_at(2, lambda: fired.append("dead2"))
    engine.call_at(2, fired.append, "live2")
    dead_outer.cancel()
    dead_inner.cancel()
    assert engine.run_until_stop() == 2
    assert fired == ["live", "live2"]
    assert engine.pending() == 0


def test_max_ticks_fires_offender_then_raises():
    fired = []
    engine = Engine()
    engine.call_at(5, fired.append, "in-budget")
    engine.call_at(50, fired.append, "offender")
    with pytest.raises(RuntimeError, match="exceeded 10 ticks"):
        engine.run_until_stop(max_ticks=10)
    # The event that crossed the budget still fired (matching the
    # simulator's historical stepped loop), then the drain raised.
    assert fired == ["in-budget", "offender"]
    assert engine._stop is False  # finally-block left the latch clean


def test_run_until_stop_matches_stepped_loop_event_count():
    def build(engine, log):
        for t in (3, 3, 7, 7, 7, 9):
            engine.call_at(t, log.append, t)

    stepped_log, batched_log = [], []
    stepped, batched = Engine(), Engine()
    build(stepped, stepped_log)
    build(batched, batched_log)
    while stepped.step():
        pass
    batched.run_until_stop()
    assert batched_log == stepped_log
    assert batched.events_dispatched == stepped.events_dispatched
    assert batched.now == stepped.now
