"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_workloads(capsys):
    assert main(["list-workloads"]) == 0
    out = capsys.readouterr().out
    assert "canneal" in out and "MP1" in out and "stream-triad" in out


def test_list_systems(capsys):
    assert main(["list-systems"]) == 0
    out = capsys.readouterr().out
    assert "rwow-rde" in out and "write-pausing" in out
    assert "palp-lite" in out
    assert "partition-parallel writes (prior art)" in out


def test_run_command(capsys):
    assert main([
        "run", "--workload", "MP3", "--system", "baseline",
        "--requests", "300", "--cores", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "IPC" in out and "baseline" in out


def test_compare_command(capsys):
    assert main([
        "compare", "--workload", "MP3",
        "--systems", "baseline,rwow-rde",
        "--requests", "300", "--cores", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "rwow-rde" in out
    assert "IPC improvement" in out


def test_sweep_command_without_cache(capsys):
    assert main([
        "sweep", "--workloads", "MP2,MP3",
        "--systems", "baseline,rwow-rde",
        "--requests", "300", "--cores", "2",
        "--jobs", "2", "--no-cache", "--quiet",
    ]) == 0
    out = capsys.readouterr().out
    assert "workload MP2" in out and "workload MP3" in out
    assert "cache:" not in out


def test_sweep_command_reports_cache_hits(tmp_path, capsys):
    argv = [
        "sweep", "--workloads", "MP3", "--systems", "baseline",
        "--requests", "300", "--cores", "2",
        "--jobs", "1", "--cache-dir", str(tmp_path),
    ]
    assert main(argv) == 0
    cold = capsys.readouterr()
    assert "1 misses" in cold.out and "1 writes" in cold.out
    assert "MP3 x baseline: run" in cold.err  # progress on stderr

    assert main(argv) == 0
    warm = capsys.readouterr()
    assert "1 hits" in warm.out
    assert "MP3 x baseline: cache" in warm.err
    # Cached and fresh runs print the same result table.
    assert cold.out.splitlines()[:5] == warm.out.splitlines()[:5]


def test_trace_command_writes_chrome_trace(tmp_path, capsys):
    import json

    out_file = tmp_path / "run.trace.json"
    jsonl_file = tmp_path / "run.jsonl"
    assert main([
        "trace", "--workload", "canneal", "--system", "rwow-rde",
        "--requests", "200", "--cores", "2",
        "--out", str(out_file), "--jsonl", str(jsonl_file),
    ]) == 0
    out = capsys.readouterr().out
    assert "recorded" in out and "Chrome trace" in out

    with open(out_file) as handle:
        document = json.load(handle)
    assert document["traceEvents"]
    stamps = [
        e["ts"] for e in document["traceEvents"] if e.get("ph") in ("X", "i")
    ]
    assert stamps == sorted(stamps)

    from repro.telemetry import read_jsonl

    assert len(read_jsonl(jsonl_file)) > 0


def test_stats_command_json(capsys):
    import json

    assert main([
        "stats", "--workload", "canneal", "--system", "rwow-rde",
        "--requests", "200", "--cores", "2", "--json",
    ]) == 0
    dump = json.loads(capsys.readouterr().out)
    assert dump["reads.completed"]["value"] > 0
    assert "row.attempts" in dump


def test_stats_command_table(capsys):
    assert main([
        "stats", "--workload", "MP3", "--system", "baseline",
        "--requests", "200", "--cores", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "metrics registry" in out
    assert "engine:" in out  # profile summary line


def test_gen_trace_roundtrip(tmp_path, capsys):
    out_file = tmp_path / "t.trace"
    assert main([
        "gen-trace", "--workload", "canneal",
        "--count", "50", "--out", str(out_file),
    ]) == 0
    from repro.trace.trace_io import load_trace

    assert len(load_trace(out_file)) == 50


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
