"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_workloads(capsys):
    assert main(["list-workloads"]) == 0
    out = capsys.readouterr().out
    assert "canneal" in out and "MP1" in out and "stream-triad" in out


def test_list_systems(capsys):
    assert main(["list-systems"]) == 0
    out = capsys.readouterr().out
    assert "rwow-rde" in out and "write-pausing" in out
    assert "palp-lite" in out
    assert "partition-parallel writes (prior art)" in out


def test_run_command(capsys):
    assert main([
        "run", "--workload", "MP3", "--system", "baseline",
        "--requests", "300", "--cores", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "IPC" in out and "baseline" in out


def test_run_command_with_front_end(capsys):
    assert main([
        "run", "--workload", "MP3", "--system", "baseline",
        "--requests", "300", "--cores", "2", "--seed", "7",
        "--front-end", "dram", "--replacement", "mac",
    ]) == 0
    out = capsys.readouterr().out
    assert "front end: dram/mac" in out
    assert "hit rate" in out


def test_run_command_rejects_unknown_replacement():
    with pytest.raises(SystemExit):
        main([
            "run", "--workload", "MP3",
            "--front-end", "dram", "--replacement", "mru",
        ])


def test_sweep_command_with_front_end(capsys):
    assert main([
        "sweep", "--workloads", "MP3", "--systems", "baseline",
        "--requests", "300", "--cores", "2", "--jobs", "1",
        "--no-cache", "--quiet", "--front-end", "dram",
    ]) == 0
    out = capsys.readouterr().out
    assert "workload MP3" in out


def test_compare_command(capsys):
    assert main([
        "compare", "--workload", "MP3",
        "--systems", "baseline,rwow-rde",
        "--requests", "300", "--cores", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "rwow-rde" in out
    assert "IPC improvement" in out


def test_sweep_command_without_cache(capsys):
    assert main([
        "sweep", "--workloads", "MP2,MP3",
        "--systems", "baseline,rwow-rde",
        "--requests", "300", "--cores", "2",
        "--jobs", "2", "--no-cache", "--quiet",
    ]) == 0
    out = capsys.readouterr().out
    assert "workload MP2" in out and "workload MP3" in out
    assert "cache:" not in out


def test_sweep_command_reports_cache_hits(tmp_path, capsys):
    argv = [
        "sweep", "--workloads", "MP3", "--systems", "baseline",
        "--requests", "300", "--cores", "2",
        "--jobs", "1", "--cache-dir", str(tmp_path),
    ]
    assert main(argv) == 0
    cold = capsys.readouterr()
    assert "1 misses" in cold.out and "1 writes" in cold.out
    assert "MP3 x baseline: run" in cold.err  # progress on stderr

    assert main(argv) == 0
    warm = capsys.readouterr()
    assert "1 hits" in warm.out
    assert "MP3 x baseline: cache" in warm.err
    # Cached and fresh runs print the same result table.
    assert cold.out.splitlines()[:5] == warm.out.splitlines()[:5]


def test_trace_command_writes_chrome_trace(tmp_path, capsys):
    import json

    out_file = tmp_path / "run.trace.json"
    jsonl_file = tmp_path / "run.jsonl"
    assert main([
        "trace", "--workload", "canneal", "--system", "rwow-rde",
        "--requests", "200", "--cores", "2",
        "--out", str(out_file), "--jsonl", str(jsonl_file),
    ]) == 0
    out = capsys.readouterr().out
    assert "recorded" in out and "Chrome trace" in out

    with open(out_file) as handle:
        document = json.load(handle)
    assert document["traceEvents"]
    stamps = [
        e["ts"] for e in document["traceEvents"] if e.get("ph") in ("X", "i")
    ]
    assert stamps == sorted(stamps)

    from repro.telemetry import read_jsonl

    assert len(read_jsonl(jsonl_file)) > 0


def test_stats_command_json(capsys):
    import json

    assert main([
        "stats", "--workload", "canneal", "--system", "rwow-rde",
        "--requests", "200", "--cores", "2", "--json",
    ]) == 0
    dump = json.loads(capsys.readouterr().out)
    assert dump["reads.completed"]["value"] > 0
    assert "row.attempts" in dump


def test_stats_command_table(capsys):
    assert main([
        "stats", "--workload", "MP3", "--system", "baseline",
        "--requests", "200", "--cores", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "metrics registry" in out
    assert "engine:" in out  # profile summary line


def test_stats_command_openmetrics(capsys):
    from repro.telemetry import lint_openmetrics

    assert main([
        "stats", "--workload", "MP3", "--system", "rwow-rde",
        "--requests", "200", "--cores", "2", "--format", "openmetrics",
    ]) == 0
    out = capsys.readouterr().out
    assert out.endswith("# EOF\n")
    assert "# TYPE repro_reads_completed counter" in out
    assert "repro_reads_completed_total" in out
    assert lint_openmetrics(out) == []


def test_stats_table_shows_percentiles(capsys):
    assert main([
        "stats", "--workload", "MP3", "--system", "baseline",
        "--requests", "200", "--cores", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "p50=" in out and "p95=" in out and "p99=" in out


def test_metrics_command_writes_files(tmp_path, capsys):
    import json

    om_file = tmp_path / "metrics.txt"
    ts_file = tmp_path / "timeseries.jsonl"
    assert main([
        "metrics", "--workload", "canneal", "--system", "rwow-rde",
        "--requests", "300", "--cores", "2", "--cadence", "200",
        "--out", str(om_file), "--timeseries", str(ts_file),
    ]) == 0
    out = capsys.readouterr().out
    assert "metric families" in out and "time-series samples" in out

    from repro.telemetry import lint_openmetrics

    text = om_file.read_text()
    assert lint_openmetrics(text) == []
    rows = [json.loads(line) for line in ts_file.read_text().splitlines()]
    assert rows
    assert all("tick" in row for row in rows)


def test_metrics_command_stdout_is_openmetrics(capsys):
    assert main([
        "metrics", "--workload", "MP3",
        "--requests", "200", "--cores", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert out.startswith("# TYPE")
    assert out.endswith("# EOF\n")


def test_report_command_renders_html(tmp_path, capsys):
    out_file = tmp_path / "report.html"
    assert main([
        "report", "--out", str(out_file),
        "--workload", "canneal", "--systems", "baseline,rwow-rde",
        "--requests", "300", "--cores", "2", "--jobs", "2",
    ]) == 0
    assert "wrote" in capsys.readouterr().out
    text = out_file.read_text()
    assert text.startswith("<!DOCTYPE html>")
    assert "baseline" in text and "rwow-rde" in text and "p95" in text


def test_regress_command_passes_then_breaches(tmp_path, capsys):
    import json

    from repro.analysis.regress import collect_fingerprint

    fingerprint = collect_fingerprint(smoke=True)
    path = tmp_path / "BENCH_perf.json"
    path.write_text(json.dumps({"metrics_fingerprint": {"smoke": fingerprint}}))
    assert main(["regress", "--smoke", "--baseline", str(path)]) == 0
    assert "no breaches" in capsys.readouterr().out

    planted = json.loads(json.dumps(fingerprint))
    planted["metrics"]["reads.completed"] += 1
    path.write_text(json.dumps({"metrics_fingerprint": {"smoke": planted}}))
    assert main(["regress", "--smoke", "--check", "--baseline", str(path)]) == 1
    captured = capsys.readouterr()
    assert "REGRESS BREACH" in captured.err
    assert "reads.completed" in captured.err


def test_regress_selftest(capsys):
    assert main(["regress", "--selftest"]) == 0
    assert "selftest passed" in capsys.readouterr().out


def test_regress_update_pins_baseline(tmp_path, capsys, monkeypatch):
    import json

    from repro.analysis import regress

    monkeypatch.setattr(
        regress, "collect_fingerprints",
        lambda seed=7: {"smoke": {"config": {"seed": seed}, "metrics": {}}},
    )
    path = tmp_path / "BENCH_perf.json"
    assert main(["regress", "--update", "--baseline", str(path)]) == 0
    assert "pinned" in capsys.readouterr().out
    assert "metrics_fingerprint" in json.loads(path.read_text())


def test_regress_explains_missing_baseline_section(tmp_path, capsys):
    path = tmp_path / "BENCH_perf.json"
    path.write_text("{}")
    assert main(["regress", "--baseline", str(path)]) == 1
    assert "metrics_fingerprint" in capsys.readouterr().err


def test_gen_trace_roundtrip(tmp_path, capsys):
    out_file = tmp_path / "t.trace"
    assert main([
        "gen-trace", "--workload", "canneal",
        "--count", "50", "--out", str(out_file),
    ]) == 0
    from repro.trace.trace_io import load_trace

    assert len(load_trace(out_file)) == 50


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


# ----------------------------------------------------------------------
# Durable campaign commands (submit / worker / serve / status / resume)
# ----------------------------------------------------------------------

CAMPAIGN_SCALE = ["--requests", "120", "--cores", "2", "--seed", "7"]
CAMPAIGN_GRID = ["--workloads", "MP3", "--systems", "baseline,rwow-rde"]


@pytest.mark.campaign
def test_campaign_cli_round_trip(tmp_path, capsys):
    """submit -> worker -> status -> resume reproduces the serial digest."""
    store = str(tmp_path / "campaign.sqlite")
    cache = str(tmp_path / "cache")

    # Serial one-shot reference of the same grid.
    assert main([
        "sweep", *CAMPAIGN_GRID, "--jobs", "1", "--no-cache",
        "--digest", "--quiet", *CAMPAIGN_SCALE,
    ]) == 0
    digest_lines = [
        line for line in capsys.readouterr().out.splitlines()
        if line.startswith("results digest: ")
    ]
    assert len(digest_lines) == 1
    reference = digest_lines[0]

    assert main([
        "submit", *CAMPAIGN_GRID, "--campaign", "cli",
        "--store", store, *CAMPAIGN_SCALE,
    ]) == 0
    out = capsys.readouterr().out
    assert "campaign cli: 2 jobs (2 queued, 0 done)" in out
    assert "repro sweep --resume cli" in out

    # Resubmitting the identical grid is an idempotent no-op.
    assert main([
        "submit", *CAMPAIGN_GRID, "--campaign", "cli",
        "--store", store, *CAMPAIGN_SCALE,
    ]) == 0
    capsys.readouterr()

    assert main([
        "worker", "--store", store, "--cache-dir", cache,
        "--campaign", "cli", "--once",
    ]) == 0
    assert "worker done: 2 job(s) completed" in capsys.readouterr().err

    assert main([
        "status", "--store", store, "--cache-dir", cache, "--digest",
    ]) == 0
    out = capsys.readouterr().out
    assert "cli" in out and "100.0%" in out
    assert reference.split(": ", 1)[1] in out

    # Resume of the finished campaign is a pure cache replay with the
    # byte-identical digest.
    assert main([
        "sweep", "--resume", "cli", "--store", store,
        "--cache-dir", cache, "--digest",
    ]) == 0
    out = capsys.readouterr().out
    assert reference in out
    assert "0 misses" in out and "0 writes" in out  # nothing re-simulated


@pytest.mark.campaign
def test_campaign_status_json(tmp_path, capsys):
    store = str(tmp_path / "campaign.sqlite")
    assert main([
        "submit", *CAMPAIGN_GRID, "--campaign", "doc",
        "--store", store, *CAMPAIGN_SCALE,
    ]) == 0
    capsys.readouterr()
    assert main(["status", "--store", store, "--json"]) == 0
    import json as _json

    documents = _json.loads(capsys.readouterr().out)
    assert documents[0]["campaign"] == "doc"
    assert documents[0]["counts"]["queued"] == 2
    assert documents[0]["total"] == 2
    assert main(["status", "--store", store, "--campaign", "ghost"]) == 2
    assert "unknown campaign" in capsys.readouterr().err


@pytest.mark.campaign
def test_submit_refuses_changed_grid(tmp_path, capsys):
    store = str(tmp_path / "campaign.sqlite")
    assert main([
        "submit", "--workloads", "MP3", "--systems", "baseline",
        "--campaign", "c", "--store", store, *CAMPAIGN_SCALE,
    ]) == 0
    capsys.readouterr()
    assert main([
        "submit", "--workloads", "MP3", "--systems", "rwow-rde",
        "--campaign", "c", "--store", store, *CAMPAIGN_SCALE,
    ]) == 2
    assert "different jobs" in capsys.readouterr().err


@pytest.mark.campaign
def test_sweep_resume_error_paths(tmp_path, capsys):
    store = str(tmp_path / "campaign.sqlite")
    assert main(["sweep", "--resume", "ghost", "--store", store]) == 2
    assert "unknown campaign" in capsys.readouterr().err
    assert main(["sweep"]) == 2
    assert "--workloads is required" in capsys.readouterr().err


@pytest.mark.campaign
def test_serve_until_done(tmp_path, capsys):
    store = str(tmp_path / "campaign.sqlite")
    cache = str(tmp_path / "cache")
    assert main([
        "submit", "--workloads", "MP3", "--systems", "baseline",
        "--campaign", "srv", "--store", store, *CAMPAIGN_SCALE,
    ]) == 0
    capsys.readouterr()
    assert main([
        "serve", "--store", store, "--cache-dir", cache,
        "--workers", "1", "--until-done", "srv",
    ]) == 0
    err = capsys.readouterr().err
    assert "campaign service on http://" in err
    assert "campaign srv: 1/1 done, 0 dead-lettered" in err
