"""Unit tests for the rollback cost model."""

from repro.cpu.rollback import RollbackModel


def test_penalty_is_flush_plus_refetch():
    model = RollbackModel(flush_cycles=40, refetch_cycles=60)
    assert model.penalty_cycles == 100


def test_on_rollback_accumulates():
    model = RollbackModel(flush_cycles=10, refetch_cycles=5)
    assert model.on_rollback() == 15
    assert model.on_rollback() == 15
    assert model.rollbacks == 2
    assert model.penalty_cycles_total == 30


def test_fresh_model_has_no_cost():
    model = RollbackModel()
    assert model.rollbacks == 0
    assert model.penalty_cycles_total == 0
