"""Rollback cost model and its coupling into the trace core.

Three layers:

* the :class:`RollbackModel` arithmetic itself (depth accounting),
* how :class:`TraceCore` converts a failed deferred verification into
  delay on the *next* trace record (re-execution ordering), and
* the ordering contract with the deferred-verify completion path: the
  read completes (unstalling the MLP window) strictly before its verify
  callback fires, and a clean verify charges nothing.
"""

from repro.cpu.core import CoreParams, TraceCore
from repro.cpu.rollback import RollbackModel
from repro.memory.request import MemoryRequest, RequestKind
from repro.sim.engine import Engine
from repro.trace.record import AccessKind, TraceRecord


def test_penalty_is_flush_plus_refetch():
    model = RollbackModel(flush_cycles=40, refetch_cycles=60)
    assert model.penalty_cycles == 100


def test_on_rollback_accumulates():
    model = RollbackModel(flush_cycles=10, refetch_cycles=5)
    assert model.on_rollback() == 15
    assert model.on_rollback() == 15
    assert model.rollbacks == 2
    assert model.penalty_cycles_total == 30


def test_fresh_model_has_no_cost():
    model = RollbackModel()
    assert model.rollbacks == 0
    assert model.penalty_cycles_total == 0


def test_depth_accounting_is_linear():
    model = RollbackModel(flush_cycles=7, refetch_cycles=11)
    for depth in range(1, 6):
        model.on_rollback()
        assert model.rollbacks == depth
        assert model.penalty_cycles_total == depth * 18


# ---------------------------------------------------------------------------
# TraceCore coupling: stub memory with deterministic complete/verify timing.
# ---------------------------------------------------------------------------

class StubMemory:
    """Completes every read after a fixed latency, then verifies it.

    ``rollback_reads`` lists read indices (in submission order) whose
    deferred verification fails.  The complete -> verify ordering mirrors
    the real RoW controller: data is returned (and consumed) first, the
    SECDED verdict lands ``verify_gap`` ticks later.
    """

    def __init__(self, engine, read_latency=1000, verify_gap=400,
                 rollback_reads=()):
        self.engine = engine
        self.read_latency = read_latency
        self.verify_gap = verify_gap
        self.rollback_reads = frozenset(rollback_reads)
        self.reads_seen = 0
        self.submit_ticks = []
        self.events = []  #: ("complete" | "verify", read index, tick)

    def can_accept(self, kind, address):
        return True

    def wait_for_space(self, kind, address, callback):
        raise AssertionError("StubMemory never exerts back-pressure")

    def submit(self, request: MemoryRequest) -> None:
        self.submit_ticks.append(self.engine.now)
        if request.kind is not RequestKind.READ:
            return
        index = self.reads_seen
        self.reads_seen += 1
        self.engine.call_after(self.read_latency, self._complete, request, index)

    def _complete(self, request, index):
        request.completion = self.engine.now
        self.events.append(("complete", index, self.engine.now))
        if request.on_complete is not None:
            request.on_complete(request)
        self.engine.call_after(self.verify_gap, self._verify, request, index)

    def _verify(self, request, index):
        rollback = index in self.rollback_reads
        request.verify_completion = self.engine.now
        request.rolled_back = rollback
        self.events.append(("verify", index, self.engine.now))
        if request.on_verify is not None:
            request.on_verify(request, rollback)


def read_trace(n, gap=10):
    return iter(
        TraceRecord(gap_instructions=gap, kind=AccessKind.READ, address=64 * i)
        for i in range(n)
    )


def run_core(rollback_reads=(), n_reads=3, gap=10, limit=10_000):
    engine = Engine()
    params = CoreParams()
    memory = StubMemory(engine, rollback_reads=rollback_reads)
    core = TraceCore(engine, 0, read_trace(n_reads, gap), memory, params, limit)
    core.start()
    while engine.step():
        pass
    assert core.done
    return core, memory, params


def test_clean_verify_charges_nothing():
    core, memory, _ = run_core(rollback_reads=())
    assert memory.reads_seen == 3
    assert core.rollback_model.rollbacks == 0
    assert core.rollback_model.penalty_cycles_total == 0
    assert core._penalty_ticks_owed == 0


def test_rollback_counted_once_per_failed_verify():
    core, _, params = run_core(rollback_reads=(0, 2))
    assert core.rollback_model.rollbacks == 2
    assert (
        core.rollback_model.penalty_cycles_total
        == 2 * core.rollback_model.penalty_cycles
    )
    assert core.rollback_model.penalty_cycles == (
        params.rollback_flush_cycles + params.rollback_refetch_cycles
    )


def test_penalty_delays_the_next_record_exactly():
    # Same trace with and without a rollback on the first read: the only
    # timing difference allowed is the flush+refetch penalty applied to
    # the first record whose gap delay is computed *after* the verdict.
    # With gap=500 (2000 cycles = 8000 ticks between records) read 0's
    # verify (submit + 1000 + 400 ticks) lands while record 1 is already
    # scheduled, so record 2 is the one that absorbs the penalty.
    clean_core, clean_mem, params = run_core(
        rollback_reads=(), n_reads=4, gap=500
    )
    hit_core, hit_mem, _ = run_core(rollback_reads=(0,), n_reads=4, gap=500)
    penalty_ticks = (
        hit_core.rollback_model.penalty_cycles * params.cycle_ticks
    )
    verify_tick = next(t for what, i, t in hit_mem.events
                       if what == "verify" and i == 0)
    assert hit_mem.submit_ticks[1] > verify_tick  # verdict landed mid-trace
    assert hit_mem.submit_ticks[0] == clean_mem.submit_ticks[0]
    assert hit_mem.submit_ticks[1] == clean_mem.submit_ticks[1]
    for i in (2, 3):
        assert hit_mem.submit_ticks[i] == (
            clean_mem.submit_ticks[i] + penalty_ticks
        )
    # The owed penalty was consumed once, not double-charged.
    assert hit_core._penalty_ticks_owed == 0
    assert hit_core.finish_tick == clean_core.finish_tick + penalty_ticks


def test_multiple_rollbacks_before_next_record_accumulate():
    # Both in-flight reads fail verification while the core is between
    # records: the owed penalty must stack, then drain in one go.
    core, _, params = run_core(rollback_reads=(0, 1), n_reads=2, gap=1)
    assert core.rollback_model.rollbacks == 2
    assert core._penalty_ticks_owed in (
        0,  # consumed by a later record / end-of-trace advance
        2 * core.rollback_model.penalty_cycles * params.cycle_ticks,
    )
    assert (
        core.rollback_model.penalty_cycles_total
        == 2 * core.rollback_model.penalty_cycles
    )


def test_verify_fires_after_completion_for_every_read():
    _, memory, _ = run_core(rollback_reads=(1,), n_reads=5)
    complete_at = {i: t for what, i, t in memory.events if what == "complete"}
    verify_at = {i: t for what, i, t in memory.events if what == "verify"}
    assert set(complete_at) == set(verify_at) == set(range(5))
    for i in range(5):
        assert verify_at[i] > complete_at[i]


def test_completion_unstalls_before_verify_verdict():
    # With an MLP window of 4 and 6 back-to-back reads, read 4 can only
    # issue once a completion returns — and it must not wait for the
    # (later) verify verdict of that read.
    engine = Engine()
    memory = StubMemory(engine, rollback_reads=(0,))
    core = TraceCore(engine, 0, read_trace(6, gap=0), memory, CoreParams(),
                     10_000)
    core.start()
    while engine.step():
        pass
    first_complete = next(t for what, i, t in memory.events
                          if what == "complete" and i == 0)
    first_verify = next(t for what, i, t in memory.events
                        if what == "verify" and i == 0)
    fifth_submit = memory.submit_ticks[4]
    assert first_complete <= fifth_submit < first_verify
    assert core.stall_ticks_mlp > 0
    # The rollback on read 0 was still charged through the same path.
    assert core.rollback_model.rollbacks == 1
