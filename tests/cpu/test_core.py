"""Unit tests for the trace-driven core model."""

import pytest

from repro.core.systems import make_system
from repro.cpu.core import CoreParams, TraceCore
from repro.memory.memsys import MainMemory
from repro.sim.engine import Engine
from repro.trace.record import AccessKind, TraceRecord


def _system(engine, name="baseline", **overrides):
    return MainMemory(engine, make_system(name, **overrides))


def _run_core(records, params=None, system="baseline", limit=10_000):
    engine = Engine()
    memory = _system(engine, system)
    core = TraceCore(
        engine, 0, iter(records), memory, params or CoreParams(), limit
    )
    core.start()
    engine.run(max_events=10_000_000)
    return core, memory, engine


def test_compute_only_trace_runs_at_base_cpi():
    params = CoreParams(base_cpi=2.0)
    core, _memory, _engine = _run_core([], params=params, limit=1000)
    assert core.done
    assert core.instructions_retired == 1000
    assert core.ipc == pytest.approx(1.0 / params.base_cpi, rel=0.01)


def test_reads_issue_and_complete():
    records = [TraceRecord(100, AccessKind.READ, i * 64) for i in range(10)]
    core, memory, _ = _run_core(records, limit=2000)
    assert core.done
    assert core.reads_issued == 10
    assert memory.aggregate_stats().reads_completed == 10


def test_writes_issue_without_stalling_ipc_much():
    records = [TraceRecord(500, AccessKind.WRITE_BACK, i * 64, dirty_mask=1) for i in range(5)]
    params = CoreParams(base_cpi=1.0)
    core, memory, _ = _run_core(records, params=params, limit=3000)
    assert core.done
    assert core.writes_issued == 5
    # Sparse writes never back-pressure: IPC stays near base.
    assert core.ipc == pytest.approx(1.0, rel=0.05)


def test_mlp_limit_stalls_core():
    # 64 dependent-ish reads with no instruction gap: the core can only
    # keep `max_outstanding_reads` in flight.
    records = [TraceRecord(0, AccessKind.READ, i * 64 * 4096) for i in range(64)]
    params = CoreParams(max_outstanding_reads=2)
    core, _memory, _ = _run_core(records, params=params, limit=100)
    assert core.done
    assert core.stall_ticks_mlp > 0


def test_full_write_queue_backpressures():
    records = [
        TraceRecord(0, AccessKind.WRITE_BACK, i * 64 * 4, dirty_mask=0xFF)
        for i in range(64)
    ]
    core, _memory, _ = _run_core(records, limit=100)
    assert core.done
    assert core.stall_ticks_queue > 0


def test_instruction_limit_respected():
    records = [TraceRecord(10_000, AccessKind.READ, 0)]
    core, _memory, _ = _run_core(records, limit=500)
    assert core.instructions_retired == 500


def test_finite_trace_retires_remaining_budget():
    records = [TraceRecord(10, AccessKind.READ, 0)]
    core, _memory, _ = _run_core(records, limit=1000)
    assert core.done
    assert core.instructions_retired == 1000


def test_cpu_cycles_requires_finish():
    engine = Engine()
    memory = _system(engine)
    core = TraceCore(engine, 0, iter([]), memory, CoreParams(), 100)
    with pytest.raises(ValueError):
        _ = core.cpu_cycles


def test_rollback_penalty_slows_core():
    # RoW system with guaranteed rollbacks: interleave enough writes to
    # trigger drains plus reads that get RoW-served.
    def records():
        for i in range(40):
            yield TraceRecord(5, AccessKind.WRITE_BACK, i * 64 * 4, dirty_mask=1)
        for i in range(30):
            yield TraceRecord(20, AccessKind.READ, (1000 + i) * 64 * 4)

    engine = Engine()
    memory = MainMemory(engine, make_system("row-nr", row_rollback_rate=1.0))
    core = TraceCore(engine, 0, records(), memory, CoreParams(), 5000)
    core.start()
    engine.run(max_events=10_000_000)
    assert core.done
    if memory.aggregate_stats().row_reads:
        assert core.rollback_model.rollbacks > 0
        assert core.rollback_model.penalty_cycles_total > 0


def test_core_params_cycle_ticks():
    assert CoreParams(cpu_ghz=2.5).cycle_ticks == 4
