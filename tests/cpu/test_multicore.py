"""Unit tests for the multicore wrapper."""


from repro.core.systems import make_system
from repro.cpu.multicore import Multicore
from repro.memory.memsys import MainMemory
from repro.sim.engine import Engine
from repro.trace.workloads import get_workload


def _multicore(n_cores=2, instructions=2_000, workload="MP3"):
    engine = Engine()
    memory = MainMemory(engine, make_system("baseline"))
    multicore = Multicore(
        engine,
        memory,
        get_workload(workload),
        n_cores=n_cores,
        instructions_per_core=instructions,
    )
    return engine, multicore


def test_builds_requested_core_count():
    _engine, multicore = _multicore(n_cores=4)
    assert len(multicore.cores) == 4


def test_run_to_completion_and_aggregates():
    engine, multicore = _multicore()
    multicore.start()
    while not multicore.all_done:
        if not engine.step():
            raise AssertionError("deadlock")
    assert multicore.instructions_retired == 2 * 2_000
    assert multicore.total_cpu_cycles() > 0
    assert multicore.aggregate_ipc() > 0
    assert multicore.total_rollbacks() == 0


def test_cores_get_distinct_streams():
    _engine, multicore = _multicore(n_cores=2, workload="MP1")
    records_a = [next(multicore.cores[0].records) for _ in range(50)]
    records_b = [next(multicore.cores[1].records) for _ in range(50)]
    assert records_a != records_b
