"""Crash-recovery fault harness: real subprocess workers, real SIGKILL.

The headline scenario of the campaign service: a ``repro worker``
subprocess is killed -9 mid-job (held open by the
``REPRO_CAMPAIGN_INJECT=sleep:...`` hook), its lease expires, the job is
re-leased and recomputed, and the finished campaign's results digest is
byte-identical to a serial ``run_pairs`` of the same pairs.  The other
tests corrupt the SQLite store and a cache entry and check the failure
modes the design promises: loud ``StoreCorruptError`` for the store,
silent requeue-and-recompute for the cache.
"""

from __future__ import annotations

import subprocess
import time

import pytest

from repro.sim.campaign import (
    CampaignStore,
    LeasePolicy,
    StoreCorruptError,
    Worker,
    resume_campaign,
    run_pairs_durable,
    submit_pairs,
    verify_campaign_results,
)
from repro.sim.results_io import results_digest
from repro.sim.runner import run_pairs
from repro.sim.runner.cache import ResultCache

from tests.campaign.conftest import (
    TINY,
    TINY_PAIRS,
    job_pool,
    worker_argv,
    worker_env,
)

pytestmark = [pytest.mark.campaign, pytest.mark.faults]


@pytest.fixture(scope="module")
def serial_reference():
    return results_digest(run_pairs(TINY_PAIRS, TINY, jobs=1))


def wait_for(predicate, timeout=60.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def test_sigkilled_worker_is_relieved_and_results_match(
    tmp_path, serial_reference
):
    store = CampaignStore(
        tmp_path / "kill.sqlite",
        policy=LeasePolicy(
            lease_seconds=1.0, max_attempts=5,
            backoff_base=0.0, backoff_cap=0.0,
        ),
    )
    cache = ResultCache(tmp_path / "cache")
    campaign = submit_pairs(store, TINY_PAIRS, TINY, campaign="kill")

    # A worker subprocess leases the first job and stalls inside it
    # (inject hook), heartbeating all the while.
    proc = subprocess.Popen(
        worker_argv(
            store.path, cache.directory,
            "--campaign", campaign, "--lease", "1",
        ),
        env=worker_env(inject="sleep:60"),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        assert wait_for(
            lambda: store.counts(campaign)["leased"] >= 1
        ), "worker subprocess never leased a job"
        victim = [
            row for row in store.jobs_in_order(campaign)
            if row["state"] == "leased"
        ][0]
        proc.kill()  # SIGKILL: no cleanup, no heartbeats, mid-job
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on failure
            proc.kill()
            proc.wait()

    # Nothing notices the death except the clock: once the lease
    # deadline passes, expiry reclaims the orphaned job.
    assert wait_for(
        lambda: store.expire_leases() >= 1, timeout=10.0
    ), "orphaned lease never expired"
    row = store.job(campaign, int(victim["job_index"]))
    assert row["state"] == "queued"
    assert "expired" in row["error"]
    assert row["attempts"] == 1  # the killed attempt was spent

    # Resume in-process (no inject here): recomputes the hole, and the
    # merge is byte-identical to the serial reference.
    results = resume_campaign(store, cache, campaign, worker_id="rescuer")
    assert results_digest(results) == serial_reference
    assert store.job(campaign, int(victim["job_index"]))["attempts"] == 2
    store.close()


def test_poison_campaign_dead_letters_then_reset_recovers(
    tmp_path, serial_reference
):
    store = CampaignStore(
        tmp_path / "poison.sqlite",
        policy=LeasePolicy(
            lease_seconds=30.0, max_attempts=2,
            backoff_base=0.0, backoff_cap=0.0,
        ),
    )
    cache = ResultCache(tmp_path / "cache")
    campaign = submit_pairs(store, TINY_PAIRS, TINY, campaign="poison")

    # Every execution in this subprocess raises: both jobs must burn
    # their attempt budget and dead-letter; the worker then drains out.
    proc = subprocess.Popen(
        worker_argv(
            store.path, cache.directory,
            "--campaign", campaign, "--once", "--max-attempts", "2",
        ),
        env=worker_env(inject="fail:99"),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    proc.wait(timeout=120)
    assert proc.returncode == 0

    counts = store.counts(campaign)
    assert counts["failed"] == len(TINY_PAIRS)
    letters = store.dead_letters(campaign)
    assert all("injected failure" in row["error"] for row in letters)
    assert all(row["attempts"] == 2 for row in letters)

    # Without a reset, resume refuses to pretend the campaign is fine.
    with pytest.raises(RuntimeError, match="dead-letter"):
        resume_campaign(store, cache, campaign)

    # A reset grants fresh attempts; this process has no inject hook, so
    # the recomputation succeeds and matches the serial reference.
    results = resume_campaign(
        store, cache, campaign, reset_dead_letters=True
    )
    assert results_digest(results) == serial_reference
    store.close()


def test_truncated_store_fails_loudly_and_cache_survives(
    tmp_path, serial_reference
):
    store_path = tmp_path / "trunc.sqlite"
    store = CampaignStore(store_path, policy=LeasePolicy(max_attempts=2))
    cache = ResultCache(tmp_path / "cache")
    results = run_pairs_durable(
        TINY_PAIRS, TINY, store=store, cache=cache, campaign="trunc"
    )
    assert results_digest(results) == serial_reference
    store.close()

    # Tear the file in half: the header survives, the pages do not.
    data = store_path.read_bytes()
    store_path.write_bytes(data[: len(data) // 2])

    def open_and_audit():
        damaged = CampaignStore(store_path)
        damaged.integrity_check()
        damaged.jobs_in_order("trunc")

    with pytest.raises(StoreCorruptError):
        open_and_audit()

    # Recovery: a fresh store, same pairs — every result is already in
    # the content-addressed cache, so nothing re-simulates.
    hits_before = cache.stats.hits
    fresh = CampaignStore(tmp_path / "fresh.sqlite")
    recovered = run_pairs_durable(
        TINY_PAIRS, TINY, store=fresh, cache=cache, campaign="trunc"
    )
    assert results_digest(recovered) == serial_reference
    assert cache.stats.hits >= hits_before + len(TINY_PAIRS)
    fresh.close()


def test_corrupt_cache_entry_is_requeued_and_recomputed(
    tmp_path, serial_reference
):
    store = CampaignStore(tmp_path / "cachefault.sqlite")
    cache = ResultCache(tmp_path / "cache")
    campaign = "cachefault"
    results = run_pairs_durable(
        TINY_PAIRS, TINY, store=store, cache=cache, campaign=campaign
    )
    assert results_digest(results) == serial_reference

    # Garble one completed job's cached payload.  The cache self-verifies
    # (key + digest), so the entry reads as a miss — the store's "done"
    # claim is now a lie that verify must surface.
    victim_key = str(store.jobs_in_order(campaign)[0]["key"])
    cache.path_for(victim_key).write_text('{"scrambled": true}')

    requeued = verify_campaign_results(store, cache, campaign)
    assert requeued == 1
    assert store.job(campaign, 0)["state"] == "queued"

    worker = Worker(store, cache, worker_id="recompute")
    worker.run(campaign=campaign, once=True)
    assert worker.executed == 1  # only the damaged cell re-simulated
    recovered = resume_campaign(store, cache, campaign)
    assert results_digest(recovered) == serial_reference
    assert cache.stats.corrupt >= 1
    store.close()


def test_artificial_expiry_mass_reclaims(tmp_path):
    """Expiring every lease at a fake future instant reclaims them all."""
    store = CampaignStore(
        tmp_path / "mass.sqlite",
        policy=LeasePolicy(
            lease_seconds=30.0, max_attempts=3,
            backoff_base=0.0, backoff_cap=0.0,
        ),
    )
    store.submit("mass", job_pool(5))
    leases = [store.lease(f"w{i}", "mass", now=100.0) for i in range(5)]
    assert all(lease is not None for lease in leases)
    assert store.counts("mass")["leased"] == 5
    reclaimed = store.expire_leases(now=200.0)
    assert reclaimed == 5
    counts = store.counts("mass")
    assert counts["queued"] == 5 and counts["leased"] == 0
    # Every reclaim spent an attempt; re-leasing costs a second.
    again = store.lease("w9", "mass", now=200.0)
    assert again.attempts == 2
    store.close()
