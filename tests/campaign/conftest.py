"""Shared fixtures for the campaign suite.

Two kinds of jobs appear in these tests:

* *Real* jobs (``tiny_pairs`` scale) actually simulate — the fault and
  determinism tests need genuine results so the byte-identity oracle
  (:func:`repro.sim.results_io.results_digest`) means something.
* *Fabricated* results (:func:`fake_result`) skip simulation entirely —
  the store, worker and HTTP tests only exercise the queue protocol, so
  each "execution" just mints a deterministic result from the job seed.

The ``fast_policy`` fixture removes every real-time wait (zero backoff,
short leases) so protocol tests run in milliseconds; tests that *are*
about backoff or expiry construct their own policies with explicit
``now=`` clocks instead of sleeping.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import pytest

from repro.sim.campaign import CampaignStore, LeasePolicy
from repro.sim.metrics import MemoryStats, SimulationResult
from repro.sim.runner.cache import ResultCache
from repro.sim.runner.jobs import SweepJob
from repro.sim.simulator import SimulationParams

#: Small enough that a real simulation finishes in well under a second.
TINY = SimulationParams(target_requests=120, n_cores=2, seed=7)

#: The default two-job campaign used by the end-to-end tests.
TINY_PAIRS: List[Tuple[str, str]] = [("MP3", "baseline"), ("MP3", "rwow-rde")]

#: No waiting in protocol tests: leases are short, retries immediate.
FAST_POLICY = LeasePolicy(
    lease_seconds=5.0,
    heartbeat_seconds=0.1,
    max_attempts=3,
    backoff_base=0.0,
    backoff_cap=0.0,
)


def tiny_jobs(
    pairs: Sequence[Tuple[str, str]] = tuple(TINY_PAIRS),
    params: SimulationParams = TINY,
) -> List[SweepJob]:
    return [SweepJob.build(w, s, params) for w, s in pairs]


def job_pool(n: int) -> List[SweepJob]:
    """``n`` distinct jobs (distinct cache keys) without simulating any."""
    pairs = [
        (w, s)
        for w in ("MP1", "MP2", "MP3")
        for s in ("baseline", "rwow-rde")
    ]
    jobs: List[SweepJob] = []
    seed = 1
    while len(jobs) < n:
        for workload, system in pairs:
            if len(jobs) >= n:
                break
            jobs.append(
                SweepJob.build(
                    workload,
                    system,
                    SimulationParams(target_requests=60, seed=seed),
                )
            )
        seed += 1
    return jobs


def fake_result(job: SweepJob) -> SimulationResult:
    """Deterministic fabricated result — a pure function of the job seed.

    Survives the cache's ``result_to_dict`` round trip, so worker tests
    can treat it exactly like a real simulation payload.
    """
    seed = job.params.seed
    memory = MemoryStats(
        reads_completed=seed % 97 + 1,
        writes_completed=seed % 89 + 1,
        read_latency_ticks=(seed % 97 + 1) * 40,
    )
    return SimulationResult(
        system_name=job.system.name,
        workload_name=job.workload.name,
        sim_ticks=100_000 + seed,
        instructions=50_000 + seed,
        cpu_cycles=20_000 + seed,
        memory=memory,
        irlp_average=float(seed % 8),
        irlp_max=8.0,
        write_service_busy_ticks=10_000 + seed,
        seed=seed,
    )


def worker_env(inject: Optional[str] = None) -> dict:
    """Environment for ``repro worker`` subprocesses.

    Makes the in-repo ``src`` importable regardless of how pytest itself
    was launched, and binds the fault-injection hook when asked.
    """
    import repro

    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    if inject is not None:
        env["REPRO_CAMPAIGN_INJECT"] = inject
    else:
        env.pop("REPRO_CAMPAIGN_INJECT", None)
    return env


def worker_argv(
    store_path, cache_dir, *extra: str
) -> List[str]:
    return [
        sys.executable, "-m", "repro", "worker",
        "--store", str(store_path), "--cache-dir", str(cache_dir),
        *extra,
    ]


@pytest.fixture
def store(tmp_path) -> CampaignStore:
    s = CampaignStore(tmp_path / "campaign.sqlite", policy=FAST_POLICY)
    yield s
    s.close()


@pytest.fixture
def cache(tmp_path) -> ResultCache:
    return ResultCache(tmp_path / "cache")
