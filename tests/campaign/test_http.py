"""Status endpoint tests: real HTTP over an ephemeral port.

The requests go through ``http.client`` against a live
:class:`StatusServer`, and every response body is linted against
``STATUS_SCHEMA`` — the same contract dict docs/CAMPAIGNS.md documents
(see ``test_schema_is_documented``), so handler, tests and docs cannot
drift apart.
"""

from __future__ import annotations

import http.client
import json
from pathlib import Path

import pytest

from repro.sim.campaign import STATUS_SCHEMA, StatusServer, Worker

from tests.campaign.conftest import fake_result, job_pool

pytestmark = pytest.mark.campaign


@pytest.fixture
def server(store, cache):
    srv = StatusServer(store, cache).start()
    yield srv
    srv.stop()


def get(server, path, method="GET"):
    conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
    try:
        conn.request(method, path)
        response = conn.getresponse()
        body = json.loads(response.read().decode("utf-8"))
        return response.status, response.getheader("Content-Type"), body
    finally:
        conn.close()


def populate(store, cache, n=2, complete=1):
    jobs = job_pool(n)
    store.submit("web", jobs)
    worker = Worker(store, cache, worker_id="w1", execute=fake_result)
    for _ in range(complete):
        leased = store.lease("w1", "web")
        worker.run_one(leased)
    return jobs


def test_healthz(server):
    status, ctype, body = get(server, "/healthz")
    assert status == 200 and ctype == "application/json"
    assert body == {"ok": True}
    assert sorted(body) == sorted(STATUS_SCHEMA["/healthz"])


def test_status_document_matches_schema(server, store, cache):
    populate(store, cache)
    status, _, body = get(server, "/v1/status")
    assert status == 200
    assert sorted(body) == sorted(STATUS_SCHEMA["/v1/status"])
    assert sorted(body["service"]) == sorted(STATUS_SCHEMA["/v1/status#service"])
    assert body["service"]["store"] == str(store.path)
    assert body["service"]["uptime_seconds"] >= 0
    assert [c["campaign"] for c in body["campaigns"]] == ["web"]


def test_campaign_listing_and_progress(server, store, cache):
    populate(store, cache, n=2, complete=1)
    status, _, body = get(server, "/v1/campaigns")
    assert status == 200 and body == {"campaigns": ["web"]}
    assert sorted(body) == sorted(STATUS_SCHEMA["/v1/campaigns"])

    status, _, body = get(server, "/v1/campaigns/web")
    assert status == 200
    assert sorted(body) == sorted(STATUS_SCHEMA["/v1/campaigns/<name>"])
    assert body["total"] == 2
    assert body["counts"]["done"] == 1 and body["counts"]["queued"] == 1
    assert body["progress"] == 0.5
    assert body["dead_letters"] == []


def test_merged_partial_view_streams(server, store, cache):
    populate(store, cache, n=2, complete=1)
    status, _, body = get(server, "/v1/campaigns/web/merged")
    assert status == 200
    assert sorted(body) == sorted(
        STATUS_SCHEMA["/v1/campaigns/<name>/merged"]
    )
    assert body["total"] == 2 and body["merged_over"] == 1

    # Completing the rest grows the merge monotonically to the full set.
    Worker(store, cache, worker_id="w2", execute=fake_result).run(
        campaign="web", once=True
    )
    _, _, body = get(server, "/v1/campaigns/web/merged")
    assert body["merged_over"] == 2


def test_unknown_paths_and_campaigns_404(server, store, cache):
    populate(store, cache)
    for path in (
        "/nope",
        "/v1/nope",
        "/v1/campaigns/missing",
        "/v1/campaigns/web/unknown-view",
    ):
        status, _, body = get(server, path)
        assert status == 404, path
        assert sorted(body) == sorted(STATUS_SCHEMA["error"]), path


def test_post_is_refused(server):
    status, _, body = get(server, "/v1/status", method="POST")
    assert status == 405
    assert sorted(body) == sorted(STATUS_SCHEMA["error"])


def test_query_strings_and_trailing_slashes_are_tolerated(server):
    status, _, body = get(server, "/healthz/?verbose=1")
    assert status == 200 and body == {"ok": True}


def test_schema_is_documented():
    """Every key in the JSON contract appears in docs/CAMPAIGNS.md."""
    doc = Path(__file__).resolve().parents[2] / "docs" / "CAMPAIGNS.md"
    text = doc.read_text(encoding="utf-8")
    for route, keys in STATUS_SCHEMA.items():
        route_label = route.split("#", 1)[0]
        assert route_label in text, f"route {route_label!r} undocumented"
        for key in keys:
            assert f"`{key}`" in text, (
                f"schema key {key!r} of {route!r} missing from CAMPAIGNS.md"
            )
