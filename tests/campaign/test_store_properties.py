"""Property tests: the store never loses, duplicates or forgets a job.

A Hypothesis state machine drives arbitrary interleavings of the lease
protocol — submit, lease, heartbeat, complete, fail, clock advance,
expiry sweep — against a real on-disk store with a fake clock, and
checks the invariants the module docstring promises after every step:

* partition:  queued + leased + done + failed == submitted, per campaign;
* exactly-once: ``complete`` succeeds at most once per job, ever;
* no resurrection: a done job never leaves ``done`` (absent ``requeue``),
  a dead-lettered job never becomes leasable again.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import pytest

pytest.importorskip("hypothesis")

from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.sim.campaign import JOB_STATES, CampaignStore, LeasePolicy

from tests.campaign.conftest import job_pool

pytestmark = pytest.mark.campaign

#: Built once: SweepJob.build resolves workloads/systems, which is not
#: free, and the machine only needs stable distinct payloads.
JOBS = job_pool(6)

POLICY = LeasePolicy(
    lease_seconds=10.0,
    heartbeat_seconds=1.0,
    max_attempts=3,
    backoff_base=1.0,
    backoff_cap=8.0,
)

WORKERS = ("w0", "w1", "w2")


class StoreMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.store = None
        self.clock = 1_000.0
        self.submitted = {}        # campaign -> job count
        self.live_leases = []      # (campaign, job_index, worker) we took
        self.completed = set()     # (campaign, job_index) completed once

    @initialize()
    def init_store(self):
        self._dir = tempfile.mkdtemp(prefix="campaign-prop-")
        self.store = CampaignStore(
            Path(self._dir) / "store.sqlite", policy=POLICY
        )

    def teardown(self):
        if self.store is not None:
            self.store.close()
        shutil.rmtree(self._dir, ignore_errors=True)

    # -- rules ---------------------------------------------------------
    @rule(count=st.integers(min_value=1, max_value=3))
    def submit(self, count):
        name = f"c{len(self.submitted)}"
        self.store.submit(name, JOBS[:count])
        self.submitted[name] = count

    @rule(worker=st.sampled_from(WORKERS))
    def lease(self, worker):
        leased = self.store.lease(worker, now=self.clock)
        if leased is not None:
            assert 1 <= leased.attempts <= POLICY.max_attempts
            assert (leased.campaign, leased.job_index) not in self.completed
            self.live_leases.append(
                (leased.campaign, leased.job_index, worker)
            )

    @rule(data=st.data())
    def heartbeat(self, data):
        if not self.live_leases:
            return
        campaign, index, worker = data.draw(
            st.sampled_from(self.live_leases)
        )
        # May legitimately return False if the lease expired meanwhile;
        # it must never raise or change any other row.
        self.store.heartbeat(campaign, index, worker, now=self.clock)

    @rule(data=st.data())
    def complete(self, data):
        if not self.live_leases:
            return
        lease = data.draw(st.sampled_from(self.live_leases))
        campaign, index, worker = lease
        ok = self.store.complete(campaign, index, worker)
        if ok:
            key = (campaign, index)
            assert key not in self.completed, "double-complete"
            self.completed.add(key)
        self.live_leases.remove(lease)

    @rule(data=st.data())
    def fail(self, data):
        if not self.live_leases:
            return
        lease = data.draw(st.sampled_from(self.live_leases))
        campaign, index, worker = lease
        outcome = self.store.fail(
            campaign, index, worker, "injected", now=self.clock
        )
        assert outcome in ("queued", "failed", None)
        self.live_leases.remove(lease)

    @rule(step=st.floats(min_value=0.5, max_value=30.0))
    def advance_clock(self, step):
        self.clock += step

    @rule()
    def expire(self):
        self.store.expire_leases(now=self.clock)
        # Leases we still believe in may have been reclaimed; completing
        # them later must then return False — which complete() tolerates.

    # -- invariants ----------------------------------------------------
    @invariant()
    def partition_holds(self):
        if self.store is None:
            return
        for campaign, total in self.submitted.items():
            counts = self.store.counts(campaign)
            assert counts["total"] == total, "job rows lost or invented"
            assert sum(counts[s] for s in JOB_STATES) == total

    @invariant()
    def done_jobs_stay_done(self):
        if self.store is None:
            return
        for campaign, index in self.completed:
            assert self.store.job(campaign, index)["state"] == "done"

    @invariant()
    def dead_letters_are_terminal(self):
        if self.store is None:
            return
        for campaign in self.submitted:
            for row in self.store.dead_letters(campaign):
                assert row["attempts"] >= 1
                assert row["error"], "dead letter without a post-mortem"


StoreMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None
)
TestStoreMachine = StoreMachine.TestCase
