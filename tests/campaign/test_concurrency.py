"""Concurrency stress: many threads hammer one store, exactly-once wins.

``BEGIN IMMEDIATE`` is the whole argument for the lease protocol's
safety across connections; this test makes N threads race lease/
complete (and lease/fail) over a shared file and then audits that every
job was claimed by exactly one winner per attempt and completed exactly
once.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.sim.campaign import CampaignStore, LeasePolicy

from tests.campaign.conftest import job_pool

pytestmark = pytest.mark.campaign

N_THREADS = 8
N_JOBS = 24


def test_threads_lease_each_job_exactly_once(tmp_path):
    store = CampaignStore(
        tmp_path / "stress.sqlite",
        policy=LeasePolicy(lease_seconds=60.0, max_attempts=1),
    )
    store.submit("stress", job_pool(N_JOBS))

    claims = {}          # job_index -> [worker, ...]
    completions = {}     # job_index -> successful complete() count
    lock = threading.Lock()
    start = threading.Barrier(N_THREADS)

    def worker(worker_id: str):
        start.wait()
        while True:
            leased = store.lease(worker_id, "stress")
            if leased is None:
                return
            with lock:
                claims.setdefault(leased.job_index, []).append(worker_id)
            ok = store.complete("stress", leased.job_index, worker_id)
            with lock:
                completions[leased.job_index] = (
                    completions.get(leased.job_index, 0) + int(ok)
                )

    threads = [
        threading.Thread(target=worker, args=(f"t{i}",))
        for i in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
        assert not thread.is_alive(), "stress worker wedged"

    # Every job claimed exactly once, completed exactly once.
    assert sorted(claims) == list(range(N_JOBS))
    assert all(len(owners) == 1 for owners in claims.values())
    assert completions == {index: 1 for index in range(N_JOBS)}
    counts = store.counts("stress")
    assert counts["done"] == N_JOBS and counts["total"] == N_JOBS
    store.close()


def test_threads_racing_fail_and_complete(tmp_path):
    """Chaotic fail/requeue/complete interleavings stay exactly-once.

    Each thread flips a (seeded) coin per claim: fail the job back into
    the queue or complete it.  However the interleaving lands, every job
    must end ``done`` with exactly one successful ``complete`` — a fail
    race can cost retries, never results.
    """
    store = CampaignStore(
        tmp_path / "race.sqlite",
        policy=LeasePolicy(
            lease_seconds=60.0, max_attempts=1000, backoff_base=0.0
        ),
    )
    store.submit("race", job_pool(6))

    wins = []
    lock = threading.Lock()
    start = threading.Barrier(N_THREADS)

    def worker(worker_id: str, seed: int):
        rng = random.Random(seed)
        start.wait()
        while store.pending("race"):
            leased = store.lease(worker_id, "race")
            if leased is None:
                time.sleep(0.001)
                continue
            if rng.random() < 0.5:
                store.fail("race", leased.job_index, worker_id, "chaos")
            elif store.complete("race", leased.job_index, worker_id):
                with lock:
                    wins.append(leased.job_index)

    threads = [
        threading.Thread(target=worker, args=(f"t{i}", 1000 + i))
        for i in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
        assert not thread.is_alive(), "race worker wedged"

    assert sorted(wins) == list(range(6)), "a job completed twice or never"
    counts = store.counts("race")
    assert counts["done"] == 6 and counts["failed"] == 0
    store.close()
