"""The determinism contract: every execution topology, one byte stream.

``results_digest`` (SHA-256 over the canonical serialised result list)
is the oracle: the serial one-shot runner, a durable single worker, two
concurrent workers and an interrupted-then-resumed campaign must all
produce the identical digest, because each job's seed is a pure function
of its content — never of who ran it, where, or on which attempt.

These tests run real (tiny) simulations; they are the in-process half of
the story whose cross-process half lives in test_faults.py.
"""

from __future__ import annotations

import threading

import pytest

from repro.sim.campaign import (
    CampaignStore,
    Worker,
    collect_results,
    merged_partial,
    resume_campaign,
    run_pairs_durable,
    submit_pairs,
)
from repro.sim.results_io import results_digest
from repro.sim.runner import run_pairs
from repro.sim.runner.cache import ResultCache
from repro.sim.runner.executor import merged_metrics

from tests.campaign.conftest import FAST_POLICY, TINY

pytestmark = pytest.mark.campaign

PAIRS = [
    ("MP3", "baseline"),
    ("MP3", "rwow-rde"),
    ("MP2", "baseline"),
    ("MP2", "rwow-rde"),
]


@pytest.fixture(scope="module")
def serial_reference():
    """The one-shot serial sweep every durable topology must match."""
    results = run_pairs(PAIRS, TINY, jobs=1)
    return results, results_digest(results)


def fresh(tmp_path, name):
    store = CampaignStore(tmp_path / f"{name}.sqlite", policy=FAST_POLICY)
    cache = ResultCache(tmp_path / f"{name}-cache")
    return store, cache


def test_durable_single_worker_matches_serial(tmp_path, serial_reference):
    _, reference = serial_reference
    store, cache = fresh(tmp_path, "single")
    results = run_pairs_durable(PAIRS, TINY, store=store, cache=cache)
    assert results_digest(results) == reference
    store.close()


def test_two_concurrent_workers_match_serial(tmp_path, serial_reference):
    _, reference = serial_reference
    store, cache = fresh(tmp_path, "pair")
    campaign = submit_pairs(store, PAIRS, TINY, campaign="pair")

    workers = [
        Worker(store, cache, worker_id=f"w{i}") for i in range(2)
    ]
    threads = [
        threading.Thread(
            target=w.run, kwargs={"campaign": campaign, "once": True}
        )
        for w in workers
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
        assert not thread.is_alive()

    assert store.all_done(campaign)
    # Both workers actually shared the load or one drained everything —
    # either way the merge below is order- and ownership-insensitive.
    assert sum(w.completed for w in workers) == len(PAIRS)
    slots, stale = collect_results(store, cache, campaign)
    assert not stale and all(r is not None for r in slots)
    assert results_digest(slots) == reference
    store.close()


def test_interrupted_campaign_resumes_byte_identical(
    tmp_path, serial_reference
):
    serial_results, reference = serial_reference
    store, cache = fresh(tmp_path, "resume")
    campaign = submit_pairs(store, PAIRS, TINY, campaign="resume")

    # First worker completes one job and "dies" (we just stop driving it).
    first = Worker(store, cache, worker_id="casualty")
    leased = store.lease("casualty", campaign)
    assert first.run_one(leased) is True
    abandoned = store.lease("casualty", campaign)  # leased, never finished
    assert abandoned is not None
    store.expire_leases(now=abandoned.lease_expires + 1.0)

    # A different process-equivalent resumes: only the holes compute.
    results = resume_campaign(store, cache, campaign, worker_id="rescuer")
    assert results_digest(results) == reference
    # The one completed job came from cache, not recomputation.
    rescuer_counts = store.counts(campaign)
    assert rescuer_counts["done"] == len(PAIRS)

    # And the streaming merge over the finished campaign equals the
    # serial merge of the reference results.
    merged = merged_partial(store, cache, campaign)
    assert merged["merged_over"] == len(PAIRS)
    assert merged["merged_metrics"] == merged_metrics(serial_results)
    store.close()


def test_rerunning_a_finished_campaign_is_pure_cache(
    tmp_path, serial_reference
):
    _, reference = serial_reference
    store, cache = fresh(tmp_path, "rerun")
    first = run_pairs_durable(
        PAIRS, TINY, store=store, cache=cache, campaign="rerun"
    )
    assert results_digest(first) == reference
    hits_before = cache.stats.hits
    again = run_pairs_durable(
        PAIRS, TINY, store=store, cache=cache, campaign="rerun"
    )
    assert results_digest(again) == reference
    # Nothing re-simulated: the second pass only read the cache.
    assert cache.stats.hits > hits_before
    store.close()
