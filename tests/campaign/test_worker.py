"""In-process Worker tests: execute, cache, retry, dead-letter, timeout.

Everything here uses fabricated results (no real simulation) so the
tests exercise the lease/execute/complete choreography, not the
simulator.  The execution callables that cross into a child process are
module-level so they survive any multiprocessing start method.
"""

from __future__ import annotations

import time

import pytest

from repro.sim.campaign import CampaignStore, LeasePolicy, Worker, parse_inject

from tests.campaign.conftest import fake_result, job_pool

pytestmark = pytest.mark.campaign


def _fake_execute(job):
    return fake_result(job)


def _sleepy_execute(job):  # pragma: no cover - killed by the timeout
    time.sleep(30)
    return fake_result(job)


def test_worker_drains_campaign_and_caches_results(store, cache):
    jobs = job_pool(3)
    store.submit("c1", jobs)
    worker = Worker(store, cache, worker_id="w1", execute=_fake_execute)
    completed = worker.run(campaign="c1", once=True)
    assert completed == 3
    assert worker.executed == 3 and worker.failed == 0
    assert store.all_done("c1")
    for job in jobs:
        got = cache.get(job.cache_key())
        assert got is not None
        assert got.seed == job.params.seed


def test_worker_serves_cache_hits_without_executing(store, cache):
    jobs = job_pool(2)
    for job in jobs:
        cache.put(job.cache_key(), fake_result(job))
    store.submit("c1", jobs)
    worker = Worker(store, cache, worker_id="w1", execute=_fake_execute)
    assert worker.run(campaign="c1", once=True) == 2
    assert worker.executed == 0 and worker.cached == 2
    assert store.all_done("c1")


def test_poison_job_dead_letters_with_traceback(store, cache):
    store.submit("c1", job_pool(1))

    def explode(job):
        raise RuntimeError("poison payload: cannot simulate this")

    worker = Worker(store, cache, worker_id="w1", execute=explode)
    worker.run(campaign="c1", once=True)
    # FAST_POLICY.max_attempts == 3: every attempt failed, then terminal.
    assert worker.failed == 3 and worker.completed == 0
    letters = store.dead_letters("c1")
    assert len(letters) == 1
    assert "poison payload: cannot simulate this" in letters[0]["error"]
    assert "Traceback" in letters[0]["error"]
    assert letters[0]["attempts"] == 3


def test_worker_retries_through_backoff_gate(tmp_path, cache):
    """``once=True`` waits out a retry gate instead of quitting early."""
    store = CampaignStore(
        tmp_path / "s.sqlite",
        policy=LeasePolicy(
            lease_seconds=5.0, max_attempts=3, backoff_base=0.2,
            backoff_cap=0.2,
        ),
    )
    store.submit("c1", job_pool(1))
    calls = []

    def flaky(job):
        calls.append(job)
        if len(calls) == 1:
            raise RuntimeError("transient")
        return fake_result(job)

    worker = Worker(store, cache, worker_id="w1", execute=flaky)
    completed = worker.run(campaign="c1", once=True, poll_seconds=0.05)
    assert completed == 1
    assert len(calls) == 2
    assert store.all_done("c1")
    assert store.job("c1", 0)["attempts"] == 2
    store.close()


def test_injected_failures_then_success(store, cache):
    """The ``fail:n`` hook fails the first n executions, then behaves."""
    store.submit("c1", job_pool(1))
    worker = Worker(
        store,
        cache,
        worker_id="w1",
        execute=_fake_execute,
        inject=parse_inject("fail:2"),
    )
    assert worker.run(campaign="c1", once=True) == 1
    assert worker.failed == 2 and worker.completed == 1


def test_lost_lease_refuses_completion(store, cache):
    store.submit("c1", job_pool(1))
    worker = Worker(store, cache, worker_id="w1", execute=_fake_execute)
    leased = store.lease("w1", "c1")
    # The lease dies while the job "runs"; the worker's completion must
    # be refused, but the cached result survives for whoever re-runs it.
    store.expire_leases(now=leased.lease_expires + 1.0)
    assert worker.run_one(leased) is False
    assert cache.get(leased.key) is not None
    assert store.job("c1", 0)["state"] == "queued"


def test_heartbeat_keeps_slow_job_leased(tmp_path, cache):
    store = CampaignStore(
        tmp_path / "s.sqlite",
        policy=LeasePolicy(
            lease_seconds=0.4, heartbeat_seconds=0.1, max_attempts=2
        ),
    )
    store.submit("c1", job_pool(1))

    def slow(job):
        time.sleep(1.2)  # three lease lifetimes
        return fake_result(job)

    worker = Worker(store, cache, worker_id="w1", execute=slow)
    leased = store.lease("w1", "c1")
    assert worker.run_one(leased) is True
    assert store.all_done("c1")
    store.close()


def test_job_timeout_kills_and_dead_letters(tmp_path, cache):
    store = CampaignStore(
        tmp_path / "s.sqlite",
        policy=LeasePolicy(
            lease_seconds=30.0, max_attempts=2, backoff_base=0.0,
            job_timeout=0.3,
        ),
    )
    store.submit("c1", job_pool(1))
    worker = Worker(store, cache, worker_id="w1", execute=_sleepy_execute)
    started = time.monotonic()
    worker.run(campaign="c1", once=True)
    elapsed = time.monotonic() - started
    assert elapsed < 15.0, "timeout did not kill the hung job"
    letters = store.dead_letters("c1")
    assert len(letters) == 1
    assert "JobTimeoutError" in letters[0]["error"]
    store.close()


def test_parse_inject_specs():
    assert parse_inject(None) is None
    assert parse_inject("") is None
    hook = parse_inject("fail:1")
    with pytest.raises(RuntimeError, match="injected failure"):
        hook(0)
    hook(1)  # past the limit: a no-op
    sleeper = parse_inject("sleep:0.01")
    started = time.monotonic()
    sleeper(0)
    assert time.monotonic() - started >= 0.01
    with pytest.raises(ValueError, match="unknown"):
        parse_inject("explode:5")
    with pytest.raises(ValueError):
        parse_inject("sleep:not-a-number")
