"""CampaignStore state-machine unit tests: every documented transition.

All clocks here are explicit (``now=``), so nothing sleeps: backoff
gates, lease expiry and heartbeat renewal are tested against a fake
timeline, not the wall clock.
"""

from __future__ import annotations

import pickle

import pytest

from repro.sim.campaign import (
    JOB_STATES,
    CampaignStore,
    LeasePolicy,
    StoreCorruptError,
)

from tests.campaign.conftest import FAST_POLICY, job_pool, tiny_jobs

pytestmark = pytest.mark.campaign


def state_partition(store, campaign):
    counts = store.counts(campaign)
    assert sum(counts[s] for s in JOB_STATES) == counts["total"]
    return counts


def test_submit_and_counts(store):
    jobs = job_pool(3)
    counts = store.submit("c1", jobs)
    assert counts == {"queued": 3, "leased": 0, "done": 0, "failed": 0, "total": 3}
    assert store.campaigns() == ["c1"]
    assert store.total("c1") == 3
    rows = store.jobs_in_order("c1")
    assert [r["job_index"] for r in rows] == [0, 1, 2]
    assert [r["key"] for r in rows] == [j.cache_key() for j in jobs]


def test_submit_is_idempotent_but_refuses_different_jobs(store):
    jobs = job_pool(2)
    store.submit("c1", jobs)
    # Same list again: a no-op returning live counts.
    counts = store.submit("c1", list(jobs))
    assert counts["total"] == 2 and counts["queued"] == 2
    # Different list under the same name: refused loudly.
    with pytest.raises(ValueError, match="different jobs"):
        store.submit("c1", job_pool(3))
    with pytest.raises(ValueError):
        store.submit("", jobs)
    with pytest.raises(ValueError):
        store.submit("empty", [])


def test_lease_claims_in_submission_order(store):
    store.submit("c1", job_pool(3))
    first = store.lease("w1", "c1", now=100.0)
    second = store.lease("w2", "c1", now=100.0)
    assert first.job_index == 0 and second.job_index == 1
    assert first.attempts == 1
    assert first.lease_expires == 100.0 + FAST_POLICY.lease_seconds
    assert state_partition(store, "c1")["leased"] == 2
    # The leased rows are not leasable again.
    third = store.lease("w3", "c1", now=100.0)
    assert third.job_index == 2
    assert store.lease("w4", "c1", now=100.0) is None


def test_leased_job_round_trips_its_payload(store):
    jobs = job_pool(1)
    store.submit("c1", jobs)
    leased = store.lease("w1", "c1")
    assert leased.key == jobs[0].cache_key()
    loaded = leased.load()
    assert loaded == jobs[0]


def test_complete_only_for_current_owner_and_only_once(store):
    store.submit("c1", job_pool(1))
    leased = store.lease("w1", "c1")
    assert store.complete("c1", leased.job_index, "impostor") is False
    assert store.complete("c1", leased.job_index, "w1") is True
    # Double-complete refused; the row stays done.
    assert store.complete("c1", leased.job_index, "w1") is False
    counts = state_partition(store, "c1")
    assert counts["done"] == 1 and counts["leased"] == 0
    assert store.all_done("c1")


def test_fail_requeues_with_backoff_then_dead_letters(tmp_path):
    policy = LeasePolicy(
        lease_seconds=10.0, max_attempts=2, backoff_base=4.0, backoff_cap=6.0
    )
    store = CampaignStore(tmp_path / "s.sqlite", policy=policy)
    store.submit("c1", job_pool(1))

    leased = store.lease("w1", "c1", now=100.0)
    assert store.fail("c1", 0, "w1", "boom #1", now=100.0) == "queued"
    row = store.job("c1", 0)
    assert row["state"] == "queued"
    assert row["error"] == "boom #1"           # latest traceback kept on requeue
    assert row["not_before"] == 100.0 + 4.0    # backoff(1) == base

    # The backoff gate holds until not_before passes.
    assert store.lease("w2", "c1", now=101.0) is None
    leased = store.lease("w2", "c1", now=105.0)
    assert leased.attempts == 2

    # Second failure exhausts max_attempts == 2: dead letter.
    assert store.fail("c1", 0, "w2", "boom #2", now=105.0) == "failed"
    row = store.job("c1", 0)
    assert row["state"] == "failed" and row["error"] == "boom #2"
    assert store.dead_letters("c1")[0]["job_index"] == 0
    # Dead letters are terminal: not leasable no matter how late.
    assert store.lease("w3", "c1", now=10_000.0) is None
    # A non-owner fail is a no-op.
    assert store.fail("c1", 0, "w1", "stale", now=105.0) is None
    store.close()


def test_backoff_is_capped_exponential():
    policy = LeasePolicy(backoff_base=0.5, backoff_cap=3.0)
    assert policy.backoff(0) == 0.0
    assert policy.backoff(1) == 0.5
    assert policy.backoff(2) == 1.0
    assert policy.backoff(3) == 2.0
    assert policy.backoff(4) == 3.0   # capped
    assert policy.backoff(50) == 3.0


def test_heartbeat_renews_and_expiry_reclaims(store):
    store.submit("c1", job_pool(2))
    leased = store.lease("w1", "c1", now=100.0)
    assert leased.lease_expires == 105.0
    # Renewal pushes the deadline from `now`, owner-checked.
    assert store.heartbeat("c1", 0, "w1", now=104.0) is True
    assert store.heartbeat("c1", 0, "impostor", now=104.0) is False
    assert store.expire_leases(now=108.0) == 0     # renewed to 109
    # Stop heartbeating: the lease expires and the job requeues.
    assert store.expire_leases(now=110.0) == 1
    row = store.job("c1", 0)
    assert row["state"] == "queued"
    assert "expired" in row["error"]
    # The dead worker's completion is now refused.
    assert store.complete("c1", 0, "w1") is False
    # Re-lease costs a second attempt.
    again = store.lease("w2", "c1", now=110.0)
    assert again.job_index == 0 and again.attempts == 2


def test_expiry_of_exhausted_job_dead_letters(tmp_path):
    policy = LeasePolicy(lease_seconds=5.0, max_attempts=1)
    store = CampaignStore(tmp_path / "s.sqlite", policy=policy)
    store.submit("c1", job_pool(1))
    store.lease("w1", "c1", now=100.0)
    assert store.expire_leases(now=200.0) == 1
    row = store.job("c1", 0)
    assert row["state"] == "failed"
    assert "expired" in row["error"] and "1/1" in row["error"]
    store.close()


def test_requeue_resets_done_and_failed_jobs(store):
    store.submit("c1", job_pool(2))
    leased = store.lease("w1", "c1")
    store.complete("c1", leased.job_index, "w1")
    leased = store.lease("w1", "c1")
    for _ in range(FAST_POLICY.max_attempts):
        store.fail("c1", leased.job_index, "w1", "poison")
        leased = store.lease("w1", "c1") or leased
    assert store.job("c1", 1)["state"] == "failed"

    assert store.requeue("c1", 0) is True      # done -> queued
    assert store.requeue("c1", 1) is True      # failed -> queued
    for index in (0, 1):
        row = store.job("c1", index)
        assert row["state"] == "queued"
        assert row["attempts"] == 0 and row["error"] is None
    # queued rows cannot be requeued again.
    assert store.requeue("c1", 0) is False


def test_pending_counts_gated_and_leased_jobs(store):
    store.submit("c1", job_pool(2))
    assert store.pending("c1") == 2
    leased = store.lease("w1", "c1")
    assert store.pending("c1") == 2            # leased still pending
    store.complete("c1", leased.job_index, "w1")
    assert store.pending("c1") == 1
    assert store.pending() == 1                # across all campaigns
    assert store.pending("other") == 0


def test_campaign_scoping_and_cross_campaign_lease(store):
    store.submit("a", job_pool(1))
    store.submit("b", job_pool(2))
    # Unscoped lease claims in (campaign, job_index) order.
    leased = store.lease("w1")
    assert leased.campaign == "a"
    # Scoped lease ignores other campaigns.
    leased = store.lease("w2", "b")
    assert leased.campaign == "b" and leased.job_index == 0
    with pytest.raises(KeyError):
        store.total("missing")
    with pytest.raises(KeyError):
        store.job("a", 99)


def test_poison_payload_raises_on_load(store):
    store.submit("c1", job_pool(1))
    con = store._connect()
    con.execute(
        "UPDATE jobs SET payload = ? WHERE campaign = 'c1'",
        (pickle.dumps({"not": "a job"}),),
    )
    leased = store.lease("w1", "c1")
    with pytest.raises(TypeError, match="not a SweepJob"):
        leased.load()


def test_zero_byte_file_is_a_fresh_store(tmp_path):
    path = tmp_path / "fresh.sqlite"
    path.touch()
    store = CampaignStore(path, policy=FAST_POLICY)
    store.submit("c1", job_pool(1))
    assert store.total("c1") == 1
    store.close()


def test_corrupt_store_raises_loudly(tmp_path):
    path = tmp_path / "c.sqlite"
    store = CampaignStore(path, policy=FAST_POLICY)
    store.submit("c1", job_pool(2))
    store.close()
    # Clobber the SQLite header: opening must not silently recreate the
    # schema over a damaged campaign.
    data = path.read_bytes()
    path.write_bytes(b"garbage!" + data[8:])
    with pytest.raises(StoreCorruptError):
        CampaignStore(path, policy=FAST_POLICY)


def test_mid_file_corruption_fails_integrity_check(tmp_path):
    path = tmp_path / "c.sqlite"
    store = CampaignStore(path, policy=FAST_POLICY)
    store.submit("c1", job_pool(6))
    store.close()
    data = bytearray(path.read_bytes())
    # Clobber an entire interior page (the header page stays intact, so
    # the file still *opens* — the damage is structural, not cosmetic).
    assert len(data) > 8192, "store too small to corrupt mid-file"
    data[4096:8192] = b"\xff" * 4096
    path.write_bytes(bytes(data))
    store = CampaignStore(path, policy=FAST_POLICY)
    with pytest.raises(StoreCorruptError):
        store.integrity_check()
    store.close()


def test_real_jobs_submit_and_lease(store):
    """The real SweepJob payloads (not just the pool) round-trip too."""
    jobs = tiny_jobs()
    store.submit("real", jobs)
    leased = store.lease("w1", "real")
    job = leased.load()
    assert job.workload.name == "MP3"
    assert job.system.name == "baseline"
