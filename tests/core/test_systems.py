"""Unit tests for the six evaluated system variants (paper §V)."""

import pytest

from repro.core.systems import (
    COMPARATOR_SYSTEM_NAMES,
    PCMAP_SYSTEM_NAMES,
    SYSTEM_NAMES,
    all_systems,
    make_system,
)
from repro.memory.memsys import make_controller
from repro.sim.engine import Engine


def test_six_systems_defined():
    assert SYSTEM_NAMES == [
        "baseline", "row-nr", "wow-nr", "rwow-nr", "rwow-rd", "rwow-rde",
    ]
    assert PCMAP_SYSTEM_NAMES == SYSTEM_NAMES[1:]


def test_baseline_features():
    config = make_system("baseline")
    assert not config.fine_grained_writes
    assert not config.enable_row and not config.enable_wow
    assert not config.geometry.has_pcc_chip


@pytest.mark.parametrize("name", PCMAP_SYSTEM_NAMES)
def test_pcmap_variants_have_pcc_and_fine_writes(name):
    config = make_system(name)
    assert config.fine_grained_writes
    assert config.geometry.has_pcc_chip
    assert config.name == name


def test_feature_matrix():
    expectations = {
        "row-nr": (True, False, False, False),
        "wow-nr": (False, True, False, False),
        "rwow-nr": (True, True, False, False),
        "rwow-rd": (True, True, True, False),
        "rwow-rde": (True, True, True, True),
    }
    for name, (row, wow, rot_data, rot_ecc) in expectations.items():
        config = make_system(name)
        assert config.enable_row is row, name
        assert config.enable_wow is wow, name
        assert config.rotate_data is rot_data, name
        assert config.rotate_ecc is rot_ecc, name


def test_unknown_system_rejected():
    with pytest.raises(ValueError):
        make_system("turbo")


def test_overrides_forwarded():
    config = make_system("rwow-rde", wow_max_group=4)
    assert config.wow_max_group == 4


def test_all_systems_shares_overrides():
    systems = all_systems(read_queue_capacity=16)
    assert len(systems) == 6
    assert all(s.read_queue_capacity == 16 for s in systems)


def test_name_override_via_factory():
    from repro.core.systems import make_rwow_rde

    config = make_rwow_rde(name="pcmap-full")
    assert config.name == "pcmap-full"


def test_comparator_systems_defined():
    assert COMPARATOR_SYSTEM_NAMES == ["write-pausing", "palp-lite"]


EXPECTED_CHAINS = {
    "baseline": "coarse-drain",
    "row-nr": "silent-write -> row-window -> fine-write",
    "wow-nr": "silent-write -> wow-group",
    "rwow-nr": "silent-write -> row-window -> wow-group",
    "rwow-rd": "silent-write -> row-window -> wow-group",
    "rwow-rde": "silent-write -> row-window -> wow-group",
    "write-pausing": "write-pausing",
    "palp-lite": "silent-write -> palp-partition-write",
}


@pytest.mark.parametrize("name", sorted(EXPECTED_CHAINS))
def test_every_system_instantiates_through_the_policy_chain(name):
    controller = make_controller(Engine(), make_system(name))
    assert controller.policies.describe() == EXPECTED_CHAINS[name]
