"""Unit tests for the DIMM status register."""

from repro.core.status import DimmStatusRegister
from repro.memory.rank import RankState
from repro.memory.timing import DEFAULT_TIMING


def _register():
    rank = RankState(DEFAULT_TIMING, n_chips=10, n_banks=8)
    return rank, DimmStatusRegister(rank, DEFAULT_TIMING)


def test_poll_idle_rank():
    _rank, register = _register()
    snapshot = register.poll(now=0)
    assert snapshot.busy_chips == ()
    assert snapshot.busy_mask() == 0
    assert register.polls == 1


def test_poll_reflects_busy_chips():
    rank, register = _register()
    rank.reserve_chip_write(2, 0, 1000, None)
    rank.reserve_chip_write(9, 3, 500, None)
    snapshot = register.poll(now=100)
    assert snapshot.busy_chips == (2, 9)
    assert snapshot.is_busy(2) and snapshot.is_busy(9)
    assert not snapshot.is_busy(0)
    assert snapshot.busy_mask() == (1 << 2) | (1 << 9)


def test_poll_response_latency_matches_paper():
    _rank, register = _register()
    snapshot = register.poll(now=100)
    # 2 memory cycles = 0.8 ns = 8 ticks (§IV-D1).
    assert snapshot.ready_time == 100 + 8


def test_busy_clears_after_completion():
    rank, register = _register()
    rank.reserve_chip_write(5, 0, 300, None)
    assert register.poll(now=299).busy_chips == (5,)
    assert register.poll(now=300).busy_chips == ()


def test_idle_chips_complement():
    rank, register = _register()
    rank.reserve_chip_write(0, 0, 100, None)
    rank.reserve_chip_write(1, 0, 100, None)
    assert register.idle_chips(now=50) == tuple(range(2, 10))


def test_reads_do_not_set_busy_flags():
    rank, register = _register()
    rank.reserve_read([0, 1, 2], bank=0, end=1000, row=1)
    assert register.poll(now=10).busy_chips == ()
