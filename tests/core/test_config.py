"""Unit tests for system configuration validation."""

import pytest

from repro.core.config import SystemConfig, pcmap_config
from repro.memory.address import BASELINE_GEOMETRY, PCMAP_GEOMETRY
from repro.memory.timing import DEFAULT_TIMING


def test_default_config_is_baseline():
    config = SystemConfig()
    assert config.name == "baseline"
    assert not config.is_pcmap
    assert config.geometry is not None


def test_row_requires_fine_grained_writes():
    with pytest.raises(ValueError):
        SystemConfig(enable_row=True, geometry=PCMAP_GEOMETRY)


def test_wow_requires_fine_grained_writes():
    with pytest.raises(ValueError):
        SystemConfig(enable_wow=True, geometry=PCMAP_GEOMETRY)


def test_row_requires_pcc_chip():
    with pytest.raises(ValueError):
        SystemConfig(
            enable_row=True,
            fine_grained_writes=True,
            geometry=BASELINE_GEOMETRY,
        )


def test_ecc_rotation_requires_pcc():
    with pytest.raises(ValueError):
        SystemConfig(
            fine_grained_writes=True,
            rotate_ecc=True,
            rotate_data=True,
            geometry=BASELINE_GEOMETRY,
        )


def test_ecc_rotation_implies_data_rotation():
    with pytest.raises(ValueError):
        pcmap_config(rotate_ecc=True, rotate_data=False)


def test_rollback_rate_bounds():
    with pytest.raises(ValueError):
        pcmap_config(enable_row=True, row_rollback_rate=1.5)


def test_with_rollback_rate_copies():
    config = pcmap_config(enable_row=True)
    updated = config.with_rollback_rate(0.058)
    assert updated.row_rollback_rate == 0.058
    assert config.row_rollback_rate == 0.0


def test_with_timing_copies():
    config = SystemConfig()
    timing = DEFAULT_TIMING.with_write_to_read_ratio(4.0)
    updated = config.with_timing(timing)
    assert updated.timing.write_to_read_ratio == pytest.approx(4.0)
    assert config.timing.write_to_read_ratio == pytest.approx(2.0)


def test_wow_group_and_row_word_bounds():
    with pytest.raises(ValueError):
        pcmap_config(wow_max_group=0)
    with pytest.raises(ValueError):
        pcmap_config(row_max_essential_words=0)


def test_describe_mentions_features():
    config = pcmap_config(
        name="rwow-rde",
        enable_row=True,
        enable_wow=True,
        rotate_data=True,
        rotate_ecc=True,
    )
    text = config.describe()
    assert "RoW" in text and "WoW" in text and "ECC" in text


def test_pcmap_config_defaults():
    config = pcmap_config()
    assert config.is_pcmap
    assert config.geometry.has_pcc_chip
