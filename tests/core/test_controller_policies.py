"""Targeted tests for the PCMap scheduler's policy details."""


from repro.core.row import ReadOverWritePolicy
from repro.memory.request import ServiceClass, make_read, make_write
from repro.memory.timing import DEFAULT_TIMING

from tests.conftest import harness


def row_policy(controller) -> ReadOverWritePolicy:
    policy = controller.policies.find(ReadOverWritePolicy)
    assert policy is not None, "RoW-enabled system must chain the RoW policy"
    return policy


# ----------------------------------------------------------------------
# RoW usefulness pre-check
# ----------------------------------------------------------------------
def test_row_window_useful_true_for_reconstructable_read():
    h = harness("row-nr")
    controller = h.controller
    write = make_write(1, 0, 0b1)  # chip 0 (fixed layout)
    controller.write_q.push(write)  # queued, not yet issued
    read = make_read(2, 100 * 64 * 4)
    controller.read_q.push(read)
    decoded = controller.mapper.decode(write.address)
    assert row_policy(controller).window_useful(
        write, decoded, controller.engine.now
    )


def test_row_window_useless_when_pcc_busy():
    h = harness("row-nr")
    controller = h.controller
    rank = controller.ranks[0]
    # Occupy the PCC chip (9) and one data chip so reconstruction of any
    # read (which needs PCC) is impossible and plain overlap is blocked.
    rank.reserve_chip_write(9, 0, 10_000, None)
    write = make_write(1, 0, 0b1)
    controller.write_q.push(write)
    read = make_read(2, 100 * 64 * 4)
    controller.read_q.push(read)
    decoded = controller.mapper.decode(write.address)
    # Data chip 0 (write) + chip 9 (busy) -> no read can join.
    assert not row_policy(controller).window_useful(
        write, decoded, controller.engine.now
    )


def test_row_skipped_under_drain_pressure_with_wow():
    """rwow systems prefer WoW while the queue is above the watermark."""
    h = harness("rwow-rde")
    # Saturate the write queue with 1-dirty writes and queue reads.
    for i in range(28):
        h.write(i, 0b1)
    for i in range(4):
        h.read(1000 + i)
    # Drive only the first write-issue decisions (queue still > 80%).
    h.run_until(h.engine.now + 2 * DEFAULT_TIMING.array_write_ticks)
    stats = h.controller.stats
    # Early drain work went to WoW groups, not RoW windows.
    assert stats.wow_member_writes > 0
    h.run()
    assert h.all_done()


# ----------------------------------------------------------------------
# Two-pass WoW admission
# ----------------------------------------------------------------------
def test_wow_prefers_code_disjoint_members():
    """With full rotation, members whose ECC/PCC chips are disjoint get
    packed first, keeping the window tight."""
    h = harness("rwow-rde")
    # Lines chosen so rotations differ; all 1-word dirty.
    for i in range(28):
        h.write(i, 0b1)
    h.run()
    stats = h.controller.stats
    assert stats.wow_groups > 0
    mean_group = stats.wow_member_writes / stats.wow_groups
    assert mean_group >= 2.0


def test_wow_group_respects_group_cap():
    h = harness("wow-nr", wow_max_group=2)
    for i in range(28):
        h.write(i, 1 << (i % 8))
    h.run()
    stats = h.controller.stats
    if stats.wow_groups:
        assert stats.wow_member_writes / stats.wow_groups <= 2.0


# ----------------------------------------------------------------------
# Overlap-read deadline admission
# ----------------------------------------------------------------------
def test_overlapped_reads_do_not_stall_next_write_much():
    h = harness("row-nr")
    for i in range(28):
        h.write(i, 0b1)
    for i in range(6):
        h.read(1000 + i)
    h.run()
    # Writes keep flowing: with deadline admission, no write should wait
    # longer than a couple of service windows behind read tails.
    writes = [r for r in h.submitted if r.is_write and r.dirty_count]
    gaps = [
        b.start_service - a.completion
        for a, b in zip(writes, writes[1:])
        if a.completion >= 0 and b.start_service >= 0
    ]
    if gaps:
        assert max(gaps) < 6 * DEFAULT_TIMING.array_write_ticks


def test_mid_window_read_joins_open_window():
    h = harness("row-nr")
    for i in range(28):
        h.write(i, 0b1)
    h.read(1000)  # makes the first RoW window open
    # Let a window open, then submit another read mid-window.
    h.run_until(h.engine.now + DEFAULT_TIMING.array_write_ticks // 2)
    before = h.controller.stats.row_reads + (
        h.controller.stats.row_normal_overlap_reads
    )
    h.read(2000)
    h.run()
    after = h.controller.stats.row_reads + (
        h.controller.stats.row_normal_overlap_reads
    )
    assert after >= before
    assert h.all_done()


# ----------------------------------------------------------------------
# Engine-token serialisation
# ----------------------------------------------------------------------
def test_write_engine_serialises_groups():
    h = harness("rwow-rde")
    for i in range(28):
        h.write(i, 0b1)
    h.run()
    # Service windows never overlap in their data spans beyond the group
    # structure: consecutive window starts are separated by at least one
    # quantum of array work.
    windows = sorted(
        (w for w in h.controller.irlp.windows if w.duration > 0),
        key=lambda w: w.start,
    )
    for a, b in zip(windows, windows[1:]):
        assert b.start >= a.start  # sorted sanity
    assert h.all_done()


def test_fine_write_statistics_classes():
    h = harness("rwow-rde")
    h.write(0, 0)      # silent
    h.write(1, 0b1)    # solo fine write
    h.run()
    classes = {r.service_class for r in h.submitted}
    assert ServiceClass.SILENT in classes
