"""Unit tests for the palp-lite comparator (bank-scoped write engine)."""

import pytest

from repro.core.palp import PartitionParallelWritePolicy
from repro.core.systems import make_system

from tests.conftest import harness

# The default 8 KB rows hold 128 lines, so line index b * 128 lands in
# bank b of rank 0 (see AddressMapper's channel|column|bank|rank|row
# interleave).
LINES_PER_ROW = 128


def parallel_issues(h) -> int:
    return h.controller.telemetry.metrics.counter("palp.parallel_issues").value


# ----------------------------------------------------------------------
# Configuration surface
# ----------------------------------------------------------------------
def test_palp_lite_config_shape():
    config = make_system("palp-lite")
    assert config.fine_grained_writes
    assert config.write_engine_scope == "bank"
    assert not config.enable_row
    assert not config.enable_wow
    assert "partition-parallel writes (prior art)" in config.describe()


def test_bank_scope_requires_fine_writes():
    with pytest.raises(ValueError):
        make_system("baseline", write_engine_scope="bank")


def test_bank_scope_rejects_row_and_wow():
    with pytest.raises(ValueError):
        make_system("palp-lite", enable_row=True)
    with pytest.raises(ValueError):
        make_system("palp-lite", enable_wow=True)


def test_invalid_scope_rejected():
    with pytest.raises(ValueError):
        make_system("palp-lite", write_engine_scope="chip")


def test_palp_policy_refuses_rank_scoped_engine():
    # The policy guards against being chained onto a rank-scoped engine.
    rank_scoped = harness("palp-lite", write_engine_scope="rank").controller
    assert rank_scoped.fine.scope == "rank"
    with pytest.raises(ValueError):
        PartitionParallelWritePolicy().bind(
            rank_scoped, rank_scoped.policies
        )


def test_palp_chain_composition():
    h = harness("palp-lite")
    assert h.controller.policies.describe() == (
        "silent-write -> palp-partition-write"
    )


# ----------------------------------------------------------------------
# Bank-parallel write issue
# ----------------------------------------------------------------------
# Bank parallelism needs chip-disjoint dirty words: a chip's write
# circuitry is exclusive across its banks, so only writes touching
# different chips (fixed layout: word w -> chip w) can overlap.
def test_writes_to_distinct_banks_overlap():
    palp = harness("palp-lite")
    a = palp.write(0 * LINES_PER_ROW, 0x0F)  # bank 0, chips 0-3
    b = palp.write(1 * LINES_PER_ROW, 0xF0)  # bank 1, chips 4-7
    palp.run()

    serial = harness("palp-lite", write_engine_scope="rank")
    sa = serial.write(0 * LINES_PER_ROW, 0x0F)
    sb = serial.write(1 * LINES_PER_ROW, 0xF0)
    serial.run()

    assert a.completion == sa.completion  # first write is unaffected
    assert b.completion < sb.completion   # second rode the idle bank
    assert parallel_issues(palp) >= 1
    assert parallel_issues(serial) == 0


def test_writes_to_same_bank_serialise():
    """Chip-disjoint writes still serialise within one bank: the token
    scope is the partition, and these share bank 0."""
    h = harness("palp-lite")
    h.write(0, 0x0F)   # bank 0, column 0
    h.write(1, 0xF0)   # bank 0, column 1
    h.run()
    assert parallel_issues(h) == 0
    assert h.all_done()


def test_chip_conflicts_serialise_across_banks():
    """Same dirty chips in different banks: the shared write circuitry
    (not the token) serialises them — bank scope buys nothing here."""
    h = harness("palp-lite")
    h.write(0 * LINES_PER_ROW, 0xFF)
    h.write(1 * LINES_PER_ROW, 0xFF)
    h.run()
    assert parallel_issues(h) == 0
    assert h.all_done()


def test_silent_writes_skip_the_engine_token():
    """Zero-dirty writes never contend for the per-bank token."""
    h = harness("palp-lite")
    h.write(0 * LINES_PER_ROW, 0x0F)
    h.write(1 * LINES_PER_ROW, 0x00)  # silent
    h.write(2 * LINES_PER_ROW, 0xF0)
    h.run()
    assert h.all_done()
    assert parallel_issues(h) >= 1


def test_many_bank_spread_writes_all_complete():
    h = harness("palp-lite")
    for b in range(8):
        h.write(b * LINES_PER_ROW, 1 << (b % 8))
        h.write(b * LINES_PER_ROW + 1, 1 << ((b + 4) % 8))
    h.run()
    assert h.all_done()
    assert parallel_issues(h) >= 1
