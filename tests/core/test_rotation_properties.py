"""Hypothesis property tests for the word-to-chip rotation layouts.

The layouts are pure periodic functions of the line address; these
properties pin exactly the algebra the schedulers rely on:

* the word -> chip map is a bijection at every rotation offset (no two
  words share a chip, every data word has a home),
* ``dirty_chips`` agrees with the naive reference bit-loop for every
  (address, mask) pair,
* ``word_of_chip`` inverts ``data_chip``, and is None exactly on the
  non-data (ECC/PCC) chips,
* the ECC and PCC slots never collide with a data word's chip.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.rotation import (
    DataRotatedLayout,
    FixedLayout,
    FullyRotatedLayout,
    make_layout,
)
from repro.core.systems import make_system
from repro.memory.request import WORDS_PER_LINE


def layouts():
    geometry_9 = make_system("baseline").geometry       # 9 chips, no PCC
    geometry_10 = make_system("rwow-rde").geometry      # 10 chips with PCC
    return [
        FixedLayout(geometry_9),
        FixedLayout(geometry_10),
        DataRotatedLayout(geometry_9),
        DataRotatedLayout(geometry_10),
        FullyRotatedLayout(geometry_10),
    ]


LAYOUTS = layouts()

lines = st.integers(min_value=0, max_value=1 << 34)
masks = st.integers(min_value=0, max_value=(1 << WORDS_PER_LINE) - 1)
words = st.integers(min_value=0, max_value=WORDS_PER_LINE - 1)


@given(line=lines)
def test_data_map_is_bijective_per_offset(line):
    for layout in LAYOUTS:
        chips = [layout.data_chip(line, w) for w in range(WORDS_PER_LINE)]
        assert len(set(chips)) == WORDS_PER_LINE, layout
        assert all(0 <= chip < layout.n_chips for chip in chips)
        assert tuple(chips) == layout.all_data_chips(line)


@given(line=lines)
def test_ecc_and_pcc_chips_never_collide_with_data(line):
    for layout in LAYOUTS:
        data = set(layout.all_data_chips(line))
        assert layout.ecc_chip(line) not in data, layout
        pcc = layout.pcc_chip(line)
        if pcc is not None:
            assert pcc not in data
            assert pcc != layout.ecc_chip(line)


@given(line=lines, mask=masks)
def test_dirty_chips_matches_reference_bit_loop(line, mask):
    for layout in LAYOUTS:
        reference = tuple(
            layout.data_chip(line, w)
            for w in range(WORDS_PER_LINE)
            if (mask >> w) & 1
        )
        assert layout.dirty_chips(line, mask) == reference, layout


def test_dirty_chips_all_256_masks_exhaustive():
    # The hypothesis test samples; this nails every mask at every offset
    # of the largest period (10) plus one wrap-around.
    for layout in LAYOUTS:
        for line in range(11):
            for mask in range(1 << WORDS_PER_LINE):
                expected = tuple(
                    layout.data_chip(line, w)
                    for w in range(WORDS_PER_LINE)
                    if (mask >> w) & 1
                )
                assert layout.dirty_chips(line, mask) == expected


@given(line=lines, word=words)
def test_word_of_chip_inverts_data_chip(line, word):
    for layout in LAYOUTS:
        chip = layout.data_chip(line, word)
        assert layout.word_of_chip(line, chip) == word, layout


@given(line=lines)
def test_word_of_chip_none_exactly_on_non_data_chips(line):
    for layout in LAYOUTS:
        data = set(layout.all_data_chips(line))
        for chip in range(layout.n_chips):
            word = layout.word_of_chip(line, chip)
            if chip in data:
                assert word is not None
                assert layout.data_chip(line, word) == chip
            else:
                assert word is None
        # Out-of-range chips are never data homes.
        assert layout.word_of_chip(line, layout.n_chips) is None
        assert layout.word_of_chip(line, -1) is None


@given(line=lines)
def test_rotation_is_periodic(line):
    for layout in LAYOUTS:
        shifted = line + layout._period
        assert layout.all_data_chips(line) == layout.all_data_chips(shifted)
        assert layout.ecc_chip(line) == layout.ecc_chip(shifted)
        assert layout.pcc_chip(line) == layout.pcc_chip(shifted)


@given(line=lines)
def test_read_chips_is_data_plus_ecc(line):
    for layout in LAYOUTS:
        assert layout.read_chips(line) == (
            layout.all_data_chips(line) + (layout.ecc_chip(line),)
        )


def test_make_layout_dispatch():
    geometry = make_system("rwow-rde").geometry
    assert isinstance(make_layout(geometry, False, False), FixedLayout)
    assert isinstance(make_layout(geometry, True, False), DataRotatedLayout)
    assert isinstance(make_layout(geometry, True, True), FullyRotatedLayout)
    # rotate_ecc implies full rotation regardless of rotate_data.
    assert isinstance(make_layout(geometry, False, True), FullyRotatedLayout)
