"""Independent unit tests for repro.core.wow (two-pass WoW grouping)."""

from repro.core.wow import WriteOverWritePolicy

from tests.conftest import harness


def test_chain_composition():
    h = harness("wow-nr")
    assert h.controller.policies.describe() == "silent-write -> wow-group"
    assert h.controller.policies.find(WriteOverWritePolicy) is not None


def test_chip_disjoint_writes_form_groups():
    h = harness("wow-nr")
    # 1-dirty writes to rotating words would be ideal, but the wow-nr
    # system has no rotation: different dirty *words* map to different
    # chips, so these can share one service window.
    for i in range(8):
        h.write(i, 1 << (i % 8))
    h.run()
    stats = h.controller.stats
    assert stats.wow_groups >= 1
    assert stats.wow_member_writes > stats.wow_groups  # actual grouping
    assert h.all_done()


def test_same_chip_writes_never_group():
    h = harness("wow-nr")
    for i in range(6):
        h.write(i, 0b1)  # all dirty on chip 0
    h.run()
    stats = h.controller.stats
    # Every write went out alone: member count equals group count.
    assert stats.wow_member_writes == stats.wow_groups
    assert h.all_done()


def test_group_size_respects_cap():
    h = harness("wow-nr", wow_max_group=2)
    for i in range(12):
        h.write(i, 1 << (i % 8))
    h.run()
    stats = h.controller.stats
    assert stats.wow_groups >= 1
    assert stats.wow_member_writes <= 2 * stats.wow_groups
    assert h.all_done()


def test_group_size_respects_inflight_budget():
    h = harness("wow-nr", max_inflight_writes=1)
    for i in range(8):
        h.write(i, 1 << (i % 8))
    h.run()
    stats = h.controller.stats
    # A budget of one in-flight write forbids consolidation entirely.
    assert stats.wow_member_writes == stats.wow_groups
    assert h.all_done()


def test_silent_writes_bypass_wow():
    h = harness("wow-nr")
    h.write(0, 0x00)  # zero-dirty
    h.run()
    stats = h.controller.stats
    assert stats.wow_groups == 0
    assert h.all_done()
