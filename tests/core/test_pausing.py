"""Unit tests for the write-pausing comparator controller."""

import pytest

from repro.core.pausing import WritePausingController, WritePausingPolicy
from repro.core.systems import make_system
from repro.memory.memsys import make_controller
from repro.memory.request import make_read, make_write
from repro.memory.timing import DEFAULT_TIMING
from repro.sim.engine import Engine
from repro.telemetry import EventType, ListSink, Telemetry

from tests.conftest import harness


def test_factory_builds_pausing_controller():
    controller = make_controller(Engine(), make_system("write-pausing"))
    assert isinstance(controller, WritePausingController)
    assert controller.policies.find(WritePausingPolicy) is not None
    assert controller.policies.describe() == "write-pausing"


def test_pausing_incompatible_with_pcmap():
    with pytest.raises(ValueError):
        make_system("write-pausing", fine_grained_writes=True)


def test_write_completes_without_reads():
    h = harness("write-pausing")
    w = h.write(0, 0xFF)
    h.run()
    assert w.completion > 0
    assert w.latency >= DEFAULT_TIMING.array_write_ticks
    assert h.controller.pauses_taken == 0


def test_read_preempts_ongoing_write():
    h = harness("write-pausing")
    w = h.write(0, 0xFF)
    # Let the write get into its array phase, then submit a read.
    h.run_until(h.engine.now + DEFAULT_TIMING.array_write_ticks // 3)
    r = h.read(500)
    h.run()
    assert h.controller.pauses_taken >= 1
    # The read finished before the (paused) write did.
    assert r.completion < w.completion
    assert w.completion > 0


def test_pausing_beats_baseline_read_latency_for_sparse_writes():
    """Pausing pays off when reads land mid-write outside drains (its
    design point); during drains it behaves like the baseline."""

    def read_latency(system):
        h = harness(system)
        latencies = []
        for i in range(12):
            h.write(i, 0xFF)
            h.run_until(h.engine.now + DEFAULT_TIMING.array_write_ticks // 3)
            r = h.read(1000 + i)
            h.run_until(h.engine.now + 4 * DEFAULT_TIMING.array_write_ticks)
            latencies.append(r)
        h.run()
        return sum(r.latency for r in latencies) / len(latencies)

    assert read_latency("write-pausing") < read_latency("baseline")


def test_pause_budget_bounds_write_latency():
    h = harness("write-pausing")
    w = h.write(0, 0xFF)
    h.run_until(h.engine.now + DEFAULT_TIMING.array_write_ticks // 4)
    # A stream of reads tries to starve the write.
    for i in range(12):
        try:
            h.read(2000 + i)
        except OverflowError:
            break
    h.run()
    assert w.completion > 0
    # At most MAX_PAUSES pauses were taken for this write.
    assert h.controller.pauses_taken <= WritePausingController.MAX_PAUSES


# ----------------------------------------------------------------------
# Quantum slicing
# ----------------------------------------------------------------------
def test_quantum_is_quarter_write_latency():
    h = harness("write-pausing")
    policy = h.controller.pausing
    expected = max(
        1,
        int(DEFAULT_TIMING.array_write_ticks
            * WritePausingController.PAUSE_QUANTUM_FRACTION),
    )
    assert policy._quantum_ticks == expected


def test_quantum_slicing_adds_no_latency_when_unpaused():
    """Back-to-back quanta must complete at the same tick as one
    monolithic coarse write — slicing only creates pause *opportunities*."""
    hp = harness("write-pausing")
    hb = harness("baseline")
    wp = hp.write(0, 0xFF)
    wb = hb.write(0, 0xFF)
    hp.run()
    hb.run()
    assert hp.controller.pauses_taken == 0
    assert wp.completion == wb.completion


# ----------------------------------------------------------------------
# Resume ordering
# ----------------------------------------------------------------------
def test_resume_waits_for_preempting_reads():
    sink = ListSink()
    engine = Engine()
    controller = make_controller(
        engine,
        make_system("write-pausing"),
        channel_id=0,
        telemetry=Telemetry.recording([sink]),
    )
    stride = 64 * 4  # land on channel 0 of the 4-channel geometry
    write = make_write(1, 0, 0xFF)
    controller.submit(write)
    engine.run(until=engine.now + DEFAULT_TIMING.array_write_ticks // 3)
    read = make_read(2, 500 * stride)
    controller.submit(read)
    engine.run()

    pause = next(
        e for e in sink.events if e.type is EventType.WRITE_PAUSE
    )
    resume = next(
        e for e in sink.events if e.type is EventType.WRITE_RESUME
    )
    read_done = next(
        e for e in sink.events
        if e.type is EventType.REQUEST_COMPLETE and e.kind == "read"
    )
    # Pause -> read drains -> resume -> write completes, in that order.
    assert pause.tick < resume.tick
    assert read_done.tick <= resume.tick
    assert write.completion > resume.tick
    assert pause.extra["remaining_ticks"] == resume.extra["remaining_ticks"]


def test_resume_overhead_is_charged():
    """A paused write finishes later than an unpaused one by at least the
    resume overhead."""
    clean = harness("write-pausing")
    w_clean = clean.write(0, 0xFF)
    clean.run()

    paused = harness("write-pausing")
    w_paused = paused.write(0, 0xFF)
    paused.run_until(paused.engine.now + DEFAULT_TIMING.array_write_ticks // 3)
    paused.read(500)
    paused.run()
    assert paused.controller.pauses_taken >= 1
    overhead = DEFAULT_TIMING.cycles(
        WritePausingController.RESUME_OVERHEAD_CYCLES
    )
    assert w_paused.completion >= w_clean.completion + overhead


# ----------------------------------------------------------------------
# Drain-watermark interaction
# ----------------------------------------------------------------------
def test_no_pausing_under_drain_pressure():
    """Above the high watermark, preemption is disallowed: the drain
    degenerates to the baseline policy and reads wait."""
    h = harness("write-pausing")
    for i in range(28):  # 28/32 > the 80% high watermark -> drain mode
        h.write(i, 0xFF)
    r = h.read(999)
    h.run_until(h.engine.now + 4 * DEFAULT_TIMING.array_write_ticks)
    assert h.controller.pauses_taken == 0
    assert r.completion < 0  # the read is still waiting out the drain
    h.run()
    assert h.all_done()


def test_pausing_resumes_after_drain_exits():
    """Once the drain empties the queue below the low watermark, reads
    preempt writes again."""
    h = harness("write-pausing")
    for i in range(28):
        h.write(i, 0xFF)
    h.run()  # drain everything
    assert h.controller.pauses_taken == 0
    w = h.write(100, 0xFF)
    h.run_until(h.engine.now + DEFAULT_TIMING.array_write_ticks // 3)
    r = h.read(999)
    h.run()
    assert h.controller.pauses_taken >= 1
    assert r.completion < w.completion


def test_all_requests_complete_under_mixed_load():
    h = harness("write-pausing")
    import random

    rng = random.Random(3)
    for i in range(60):
        if rng.random() < 0.4:
            try:
                h.read(rng.randrange(1 << 12))
            except OverflowError:
                pass
        else:
            try:
                h.write(rng.randrange(1 << 12), rng.randrange(1, 256))
            except OverflowError:
                pass
        h.run_until(h.engine.now + 400)
    h.run()
    assert h.all_done()
