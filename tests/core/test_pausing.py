"""Unit tests for the write-pausing comparator controller."""

import pytest

from repro.core.pausing import WritePausingController
from repro.core.systems import make_system
from repro.memory.memsys import make_controller
from repro.memory.timing import DEFAULT_TIMING
from repro.sim.engine import Engine

from tests.conftest import harness


def test_factory_builds_pausing_controller():
    controller = make_controller(Engine(), make_system("write-pausing"))
    assert isinstance(controller, WritePausingController)


def test_pausing_incompatible_with_pcmap():
    with pytest.raises(ValueError):
        make_system("write-pausing", fine_grained_writes=True)


def test_write_completes_without_reads():
    h = harness("write-pausing")
    w = h.write(0, 0xFF)
    h.run()
    assert w.completion > 0
    assert w.latency >= DEFAULT_TIMING.array_write_ticks
    assert h.controller.pauses_taken == 0


def test_read_preempts_ongoing_write():
    h = harness("write-pausing")
    w = h.write(0, 0xFF)
    # Let the write get into its array phase, then submit a read.
    h.run_until(h.engine.now + DEFAULT_TIMING.array_write_ticks // 3)
    r = h.read(500)
    h.run()
    assert h.controller.pauses_taken >= 1
    # The read finished before the (paused) write did.
    assert r.completion < w.completion
    assert w.completion > 0


def test_pausing_beats_baseline_read_latency_for_sparse_writes():
    """Pausing pays off when reads land mid-write outside drains (its
    design point); during drains it behaves like the baseline."""

    def read_latency(system):
        h = harness(system)
        latencies = []
        for i in range(12):
            h.write(i, 0xFF)
            h.run_until(h.engine.now + DEFAULT_TIMING.array_write_ticks // 3)
            r = h.read(1000 + i)
            h.run_until(h.engine.now + 4 * DEFAULT_TIMING.array_write_ticks)
            latencies.append(r)
        h.run()
        return sum(r.latency for r in latencies) / len(latencies)

    assert read_latency("write-pausing") < read_latency("baseline")


def test_pause_budget_bounds_write_latency():
    h = harness("write-pausing")
    w = h.write(0, 0xFF)
    h.run_until(h.engine.now + DEFAULT_TIMING.array_write_ticks // 4)
    # A stream of reads tries to starve the write.
    for i in range(12):
        try:
            h.read(2000 + i)
        except OverflowError:
            break
    h.run()
    assert w.completion > 0
    # At most MAX_PAUSES pauses were taken for this write.
    assert h.controller.pauses_taken <= WritePausingController.MAX_PAUSES


def test_all_requests_complete_under_mixed_load():
    h = harness("write-pausing")
    import random

    rng = random.Random(3)
    for i in range(60):
        if rng.random() < 0.4:
            try:
                h.read(rng.randrange(1 << 12))
            except OverflowError:
                pass
        else:
            try:
                h.write(rng.randrange(1 << 12), rng.randrange(1, 256))
            except OverflowError:
                pass
        h.run_until(h.engine.now + 400)
    h.run()
    assert h.all_done()
