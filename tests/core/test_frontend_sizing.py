"""The ``capacity_mb`` / ``--frontend-mb`` front-end sizing knob."""

import pytest

from repro.cli import build_parser
from repro.core.systems import make_front_end
from repro.sim.runner.jobs import SweepJob
from repro.sim.simulator import SimulationParams


def test_capacity_mb_roundtrips_through_size_bytes():
    config = make_front_end("dram", capacity_mb=64)
    assert config.dram.size_bytes == 64 * 1024 * 1024
    assert config.capacity_mb == 64.0


def test_paper_scale_default_is_256_mb():
    assert make_front_end("dram").capacity_mb == 256.0


def test_fractional_mb_allowed_when_whole_kib():
    config = make_front_end("dram", capacity_mb=0.5)
    assert config.dram.size_bytes == 512 * 1024


def test_capacity_mb_and_size_bytes_are_mutually_exclusive():
    with pytest.raises(ValueError, match="not both"):
        make_front_end("dram", capacity_mb=64, size_bytes=1 << 20)


@pytest.mark.parametrize("bad", [0, -1, 0.3 / 1024])
def test_non_positive_or_fractional_byte_sizes_rejected(bad):
    with pytest.raises(ValueError, match="positive whole number"):
        make_front_end("dram", capacity_mb=bad)


def test_cli_parses_frontend_mb():
    parser = build_parser()
    args = parser.parse_args(
        ["run", "--system", "rwow-rde", "--workload", "canneal",
         "--front-end", "dram", "--frontend-mb", "64"]
    )
    assert args.frontend_mb == 64.0


def _job(capacity_mb):
    return SweepJob.build(
        "canneal",
        "rwow-rde",
        SimulationParams(
            target_requests=100,
            front_end=make_front_end("dram", capacity_mb=capacity_mb),
        ),
    )


def test_sweep_cache_keys_distinguish_tier_sizes():
    """Two sweeps differing only in --frontend-mb must never share
    cached results — the size rides in the content-hashed params."""
    assert _job(64).cache_key() != _job(128).cache_key()
    assert _job(64).cache_key() == _job(64).cache_key()
