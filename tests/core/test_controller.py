"""Unit tests for the PCMap controller (RoW, WoW, fine-grained writes)."""

import pytest

from repro.core.controller import PCMapController
from repro.core.systems import make_system
from repro.memory.memsys import make_controller
from repro.memory.request import ServiceClass, make_read, make_write
from repro.memory.storage import MemoryStorage
from repro.memory.timing import DEFAULT_TIMING
from repro.sim.engine import Engine

from tests.conftest import ControllerHarness, harness


def _functional_harness(system_name: str, **overrides):
    """Harness with a functional backing store attached."""
    h = ControllerHarness(system_name, functional=True, **overrides)
    storage = MemoryStorage(keep_pcc=True)
    h.controller.storage = storage
    h.controller.detector.storage = storage
    return h, storage


def test_pcmap_controller_requires_fine_grained():
    with pytest.raises(ValueError):
        PCMapController(Engine(), make_system("baseline"))


def test_factory_builds_pcmap_for_variants():
    for name in ("row-nr", "wow-nr", "rwow-rde"):
        controller = make_controller(Engine(), make_system(name))
        assert isinstance(controller, PCMapController)
    assert not isinstance(
        make_controller(Engine(), make_system("baseline")), PCMapController
    )


def test_fine_write_blocks_only_its_chips():
    h = harness("wow-nr")
    w = h.write(0, 0b1)  # word 0 -> chip 0 (fixed layout)
    h.run_until(100)
    rank = h.controller.ranks[0]
    busy = rank.busy_chips_at(h.engine.now + 50)
    assert 0 in busy
    # Chips 1-7 hold no data work; only the code chips are also busy.
    assert all(c not in busy for c in range(1, 8))
    h.run()
    assert w.completion > 0


def test_silent_write_fast_and_windowed():
    h = harness("rwow-rde")
    req = h.write(0, 0)
    h.run()
    assert req.service_class is ServiceClass.SILENT
    assert req.latency <= DEFAULT_TIMING.array_write_ticks
    windows = h.controller.irlp.windows
    assert len(windows) == 1
    assert windows[0].irlp() == 0.0


def test_wow_consolidates_disjoint_writes():
    h = harness("wow-nr")
    # Force a drain with chip-disjoint single-word writes.
    for i in range(28):
        h.write(i, 1 << (i % 8))
    h.run()
    assert h.controller.stats.wow_groups > 0
    assert h.controller.stats.wow_member_writes >= 2 * h.controller.stats.wow_groups
    assert h.all_done()


def test_wow_members_overlap_in_time():
    h = harness("wow-nr")
    for i in range(28):
        h.write(i, 1 << (i % 8))
    h.run()
    members = [
        r for r in h.submitted if r.service_class is ServiceClass.WOW_MEMBER
    ]
    assert len(members) >= 2
    # At least one pair of members overlaps in service time.
    overlapping = any(
        a.start_service < b.completion and b.start_service < a.completion
        for a in members
        for b in members
        if a is not b
    )
    assert overlapping


def test_wow_never_groups_conflicting_chips():
    h = harness("wow-nr")
    # All writes dirty the same word -> same chip -> no grouping possible.
    for i in range(28):
        h.write(i, 0b1)
    h.run()
    assert h.controller.stats.wow_groups == 0
    assert h.all_done()


def test_rotation_enables_grouping_of_same_offset_writes():
    h = harness("rwow-rd")
    # Same dirty offset but consecutive lines: rotation spreads the chips.
    for i in range(28):
        h.write(i, 0b1)
    h.run()
    assert h.controller.stats.wow_groups > 0


def test_writes_serialise_without_wow():
    h = harness("row-nr")
    w1 = h.write(0, 0b1)
    w2 = h.write(1, 0b10)  # disjoint chips, but WoW is off
    h.run()
    starts = sorted([w1.start_service, w2.start_service])
    # Second write's data work begins no earlier than the first's data end
    # (write engine token); allow the ECC tail to trail.
    assert starts[1] >= starts[0] + DEFAULT_TIMING.array_write_ticks


def test_row_serves_reads_during_drain():
    h = harness("row-nr")
    for i in range(28):
        h.write(i, 0b1)
    reads = [h.read(1000 + i) for i in range(4)]
    h.run()
    assert h.controller.stats.row_reads > 0
    assert all(r.completion > 0 for r in reads)


def test_row_reconstruction_returns_correct_data():
    h, storage = _functional_harness("row-nr")
    # Pre-materialise the lines so expected values are known.
    expected = {}
    for i in range(1000, 1006):
        line_address = (i * 64 * 4) // 64
        expected[i] = storage.read_line(line_address).words
    for i in range(28):
        h.write(i, 0b1)
    reads = [h.read(i) for i in range(1000, 1006)]
    h.run()
    recon = [r for r in reads if r.service_class is ServiceClass.ROW_OVERLAP]
    assert h.controller.stats.row_reads == len(recon)
    for req in reads:
        assert req.data_words is not None
        line_index = req.address // (64 * 4)
        assert req.data_words == expected[line_index]


def test_row_verify_completion_recorded():
    h = harness("row-nr")
    for i in range(28):
        h.write(i, 0b1)
    reads = [h.read(1000 + i) for i in range(4)]
    h.run()
    recon = [r for r in reads if r.service_class is ServiceClass.ROW_OVERLAP]
    if not recon:
        pytest.skip("no reconstruction happened with this arrival pattern")
    for req in recon:
        assert req.verify_completion >= req.completion
    assert h.controller.stats.verify_count >= len(recon)


def test_rollback_rate_one_forces_rollbacks():
    h = harness("row-nr", row_rollback_rate=1.0)
    seen = []
    for i in range(28):
        h.write(i, 0b1)
    for i in range(4):
        req = make_read(9000 + i, (1000 + i) * 64 * 4)
        req.on_verify = lambda r, rb: seen.append(rb)
        h.controller.submit(req)
        h.submitted.append(req)
    h.run()
    if h.controller.stats.row_reads == 0:
        pytest.skip("no RoW reads with this pattern")
    assert h.controller.stats.rollbacks == h.controller.stats.row_reads
    assert all(seen)


def test_rollback_rate_zero_never_rolls_back():
    h = harness("row-nr", row_rollback_rate=0.0)
    for i in range(28):
        h.write(i, 0b1)
    for i in range(4):
        h.read(1000 + i)
    h.run()
    assert h.controller.stats.rollbacks == 0


def test_ecc_contention_serialises_fixed_layout_groups():
    """Without rotation every member updates ECC chip 8: the group's
    service end stretches (Figure 5(d)), visible as service_end > end."""
    h = harness("wow-nr")
    for i in range(28):
        h.write(i, 1 << (i % 8))
    h.run()
    grouped = [
        w for w in h.controller.irlp.windows
        if w.duration > int(1.3 * DEFAULT_TIMING.array_write_ticks)
    ]
    assert grouped, "expected ECC-tail-stretched windows in wow-nr"


def test_rde_rotation_raises_irlp_over_fixed():
    def run(name):
        h = harness(name, seed=3)
        for i in range(28):
            h.write(i, 1 << (i % 3))  # clustered offsets 0-2
        h.run()
        return h.controller.irlp.average()

    assert run("rwow-rde") > run("rwow-nr")


def test_pcmap_write_data_committed_functionally():
    h, storage = _functional_harness("rwow-rde")
    line_index = 7
    line_address = (line_index * 64 * 4) // 64
    old = storage.read_line(line_address).words
    new = list(old)
    new[5] ^= 0xDEAD
    req = make_write(1234, line_index * 64 * 4, 0, new_words=tuple(new))
    h.controller.submit(req)
    h.submitted.append(req)
    h.run()
    assert req.dirty_mask == 1 << 5
    stored = storage.read_line(line_address)
    assert stored.words[5] == new[5]
    # PCC parity stays consistent after the incremental update.
    from repro.ecc import parity

    assert stored.pcc == parity.compute_parity(stored.words)


def test_status_registers_exist_per_rank():
    h = harness("rwow-rde")
    assert len(h.controller.status_registers) == len(h.controller.ranks)


def test_inflight_cap_respected():
    h = harness("rwow-rde", max_inflight_writes=2)
    for i in range(28):
        h.write(i, 1 << (i % 8))
    # Drive the simulation in small steps, checking the invariant.
    for _ in range(200):
        if not h.engine.step():
            break
        assert h.controller._inflight_writes <= 2
    h.run()
    assert h.all_done()
