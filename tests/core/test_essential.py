"""Unit tests for essential-word detection."""

import random

import pytest

from repro.core.essential import EssentialWordDetector, EssentialWordStats, diff_words
from repro.memory.request import WORDS_PER_LINE, make_read, make_write
from repro.memory.storage import MemoryStorage


def test_diff_words_basic():
    old = tuple(range(8))
    new = (0, 1, 99, 3, 4, 5, 6, 77)
    assert diff_words(old, new) == (1 << 2) | (1 << 7)


def test_diff_words_identical_is_zero():
    words = tuple(range(8))
    assert diff_words(words, words) == 0


def test_diff_words_length_checked():
    with pytest.raises(ValueError):
        diff_words((1, 2), (1, 2))


def test_detector_statistical_mode_trusts_mask():
    detector = EssentialWordDetector()
    req = make_write(1, 0, 0b101)
    assert detector.detect(req) == 0b101
    assert detector.stats.histogram[2] == 1


def test_detector_rejects_reads():
    detector = EssentialWordDetector()
    with pytest.raises(ValueError):
        detector.detect(make_read(1, 0))


def test_detector_functional_mode_narrows_silent_words():
    storage = MemoryStorage()
    detector = EssentialWordDetector(storage)
    old = storage.read_line(0).words
    new = list(old)
    new[3] ^= 0xF
    # Cache claims words 3 and 5 dirty, but word 5 holds the same value:
    # a silent store the read-before-write eliminates (paper §III-B).
    req = make_write(1, 0, dirty_mask=0b101000, new_words=tuple(new))
    mask = detector.detect(req)
    assert mask == 0b1000
    assert req.old_words == old


def test_detector_functional_mode_full_compare_without_mask():
    storage = MemoryStorage()
    detector = EssentialWordDetector(storage)
    old = storage.read_line(1).words
    new = list(old)
    new[0] ^= 1
    new[7] ^= 1
    req = make_write(2, 64, dirty_mask=0, new_words=tuple(new))
    assert detector.detect(req) == 0b1000_0001


def test_stats_fractions():
    stats = EssentialWordStats()
    for count in (1, 1, 2, 8, 0):
        stats.record(count)
    assert stats.total == 5
    assert stats.fraction(1) == pytest.approx(0.4)
    assert stats.fraction_at_most(2) == pytest.approx(0.8)
    assert stats.mean_dirty_words == pytest.approx((1 + 1 + 2 + 8) / 5)


def test_stats_empty():
    stats = EssentialWordStats()
    assert stats.fraction(1) == 0.0
    assert stats.fraction_at_most(8) == 0.0
    assert stats.mean_dirty_words == 0.0


def test_diff_words_random_pairs_match_naive():
    rng = random.Random(1234)
    for _ in range(200):
        old = tuple(rng.getrandbits(64) for _ in range(WORDS_PER_LINE))
        new = tuple(
            word if rng.random() < 0.5 else rng.getrandbits(64)
            for word in old
        )
        expected = 0
        for i in range(WORDS_PER_LINE):
            if old[i] != new[i]:
                expected |= 1 << i
        assert diff_words(old, new) == expected
