"""Independent unit tests for repro.core.row (RoW window engine)."""

from repro.core.row import ReadOverWritePolicy
from repro.memory.timing import DEFAULT_TIMING

from tests.conftest import harness


def counter(h, name) -> int:
    return h.controller.telemetry.metrics.counter(name).value


def row_policy(h) -> ReadOverWritePolicy:
    policy = h.controller.policies.find(ReadOverWritePolicy)
    assert policy is not None
    return policy


def test_chain_composition():
    h = harness("row-nr")
    assert h.controller.policies.describe() == (
        "silent-write -> row-window -> fine-write"
    )


# ----------------------------------------------------------------------
# Decline reasons
# ----------------------------------------------------------------------
def test_declines_without_queued_reads():
    h = harness("row-nr")
    w = h.write(0, 0b1)
    h.run()
    assert w.completion > 0  # fine-write fallback served it
    assert counter(h, "row.attempts") >= 1
    assert counter(h, "row.declined.no-queued-reads") >= 1
    assert counter(h, "row.windows") == 0


def test_declines_writes_with_too_many_essential_words():
    h = harness("row-nr")  # row_max_essential_words defaults to 1
    h.read(1000)
    w = h.write(0, 0b11)  # two essential words
    h.run()
    assert w.completion > 0
    assert counter(h, "row.declined.too-many-essential-words") >= 1
    assert counter(h, "row.windows") == 0


def test_declines_under_write_pressure_when_wow_available():
    h = harness("rwow-nr")
    for i in range(28):  # above the 80% high watermark
        h.write(i, 0b1)
    for i in range(4):
        h.read(1000 + i)
    h.run_until(h.engine.now + 2 * DEFAULT_TIMING.array_write_ticks)
    assert counter(h, "row.declined.write-pressure") >= 1
    h.run()
    assert h.all_done()


# ----------------------------------------------------------------------
# Window service
# ----------------------------------------------------------------------
def test_window_overlaps_read_with_write():
    # A RoW window opens when a read is queued while writes drain:
    # outside drain a queued-but-unready read blocks write issue.
    h = harness("row-nr")
    writes = [h.write(i, 0b1) for i in range(28)]
    r = h.read(1000)  # same rank, different line
    h.run()
    assert counter(h, "row.windows") >= 1
    assert h.controller.stats.row_reads >= 1
    # The overlapped read finished without waiting out the drain.
    assert r.completion < max(w.completion for w in writes)


def test_overlap_cap_bounds_reads_per_window():
    h = harness("row-nr", row_max_overlapped_reads=1)
    h.write(0, 0b1)
    for i in range(3):
        h.read(1000 + i)
    h.run()
    windows = counter(h, "row.windows")
    served = (
        h.controller.stats.row_reads
        + h.controller.stats.row_normal_overlap_reads
    )
    assert served <= windows * 1
    assert h.all_done()


# ----------------------------------------------------------------------
# Deferred verification and rollback
# ----------------------------------------------------------------------
def _run_reconstructing_workload(rate: float):
    """Drain of chip-0 writes + reads that must reconstruct word 0."""
    h = harness("row-nr", row_rollback_rate=rate)
    for i in range(28):
        h.write(i, 0b1)  # every window keeps chip 0 write-busy
    for i in range(4):
        h.read(1000 + i)
    h.run()
    assert h.all_done()
    return h


def test_reconstructed_reads_verify_and_may_roll_back():
    h = _run_reconstructing_workload(rate=1.0)
    stats = h.controller.stats
    assert stats.verify_count >= 1
    assert stats.rollbacks >= 1


def test_zero_rollback_rate_never_rolls_back():
    h = _run_reconstructing_workload(rate=0.0)
    assert h.controller.stats.verify_count >= 1
    assert h.controller.stats.rollbacks == 0
