"""Unit + property tests for the word/ECC/PCC rotation layouts."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.rotation import (
    DataRotatedLayout,
    FixedLayout,
    FullyRotatedLayout,
    make_layout,
)
from repro.memory.address import BASELINE_GEOMETRY, PCMAP_GEOMETRY

LINES = st.integers(min_value=0, max_value=1 << 27)
WORDS = st.integers(min_value=0, max_value=7)


def test_fixed_layout_identity_mapping():
    layout = FixedLayout(PCMAP_GEOMETRY)
    for word in range(8):
        assert layout.data_chip(12345, word) == word
    assert layout.ecc_chip(12345) == 8
    assert layout.pcc_chip(12345) == 9


def test_fixed_layout_without_pcc():
    layout = FixedLayout(BASELINE_GEOMETRY)
    assert layout.pcc_chip(0) is None


def test_data_rotation_matches_figure6():
    """Figure 6: line X+k maps word w to chip (w + k) mod 8."""
    layout = DataRotatedLayout(PCMAP_GEOMETRY)
    base = 8 * 1000  # a line whose offset is 0
    for k in range(8):
        for word in range(8):
            assert layout.data_chip(base + k, word) == (word + k) % 8


def test_data_rotation_keeps_codes_pinned():
    layout = DataRotatedLayout(PCMAP_GEOMETRY)
    for line in range(20):
        assert layout.ecc_chip(line) == 8
        assert layout.pcc_chip(line) == 9


def test_full_rotation_shifts_all_slots():
    layout = FullyRotatedLayout(PCMAP_GEOMETRY)
    line = 10 * 77  # offset 0
    assert layout.data_chip(line, 0) == 0
    assert layout.ecc_chip(line) == 8
    assert layout.pcc_chip(line) == 9
    # Next line: everything shifts by one, ECC wraps through chip 9 -> 0.
    assert layout.data_chip(line + 1, 0) == 1
    assert layout.ecc_chip(line + 1) == 9
    assert layout.pcc_chip(line + 1) == 0


def test_full_rotation_requires_pcc():
    with pytest.raises(ValueError):
        FullyRotatedLayout(BASELINE_GEOMETRY)


@given(LINES)
@settings(max_examples=200)
def test_property_data_chips_distinct_per_line(line):
    for layout in (
        FixedLayout(PCMAP_GEOMETRY),
        DataRotatedLayout(PCMAP_GEOMETRY),
        FullyRotatedLayout(PCMAP_GEOMETRY),
    ):
        chips = layout.all_data_chips(line)
        assert len(set(chips)) == 8


@given(LINES)
@settings(max_examples=200)
def test_property_code_chips_disjoint_from_data(line):
    for layout in (
        FixedLayout(PCMAP_GEOMETRY),
        DataRotatedLayout(PCMAP_GEOMETRY),
        FullyRotatedLayout(PCMAP_GEOMETRY),
    ):
        data = set(layout.all_data_chips(line))
        assert layout.ecc_chip(line) not in data
        assert layout.pcc_chip(line) not in data
        assert layout.ecc_chip(line) != layout.pcc_chip(line)


@given(LINES, WORDS)
@settings(max_examples=200)
def test_property_word_of_chip_inverts_data_chip(line, word):
    for layout in (
        DataRotatedLayout(PCMAP_GEOMETRY),
        FullyRotatedLayout(PCMAP_GEOMETRY),
    ):
        chip = layout.data_chip(line, word)
        assert layout.word_of_chip(line, chip) == word


def test_word_of_chip_none_for_code_chip():
    layout = FixedLayout(PCMAP_GEOMETRY)
    assert layout.word_of_chip(0, 8) is None
    assert layout.word_of_chip(0, 9) is None


def test_dirty_chips_follow_mask():
    layout = DataRotatedLayout(PCMAP_GEOMETRY)
    line = 8 * 5 + 2  # offset 2
    chips = layout.dirty_chips(line, 0b0000_0101)  # words 0, 2
    assert chips == (2, 4)


def test_read_chips_include_ecc():
    layout = FixedLayout(PCMAP_GEOMETRY)
    assert layout.read_chips(0) == (0, 1, 2, 3, 4, 5, 6, 7, 8)


@given(LINES)
@settings(max_examples=100)
def test_property_full_rotation_covers_all_chips_over_cycle(line):
    layout = FullyRotatedLayout(PCMAP_GEOMETRY)
    # Over 10 consecutive lines the ECC word visits all 10 chips.
    ecc_chips = {layout.ecc_chip(line + k) for k in range(10)}
    assert ecc_chips == set(range(10))


def test_make_layout_factory():
    assert isinstance(make_layout(PCMAP_GEOMETRY, False, False), FixedLayout)
    assert isinstance(make_layout(PCMAP_GEOMETRY, True, False), DataRotatedLayout)
    assert isinstance(make_layout(PCMAP_GEOMETRY, True, True), FullyRotatedLayout)
    assert isinstance(make_layout(PCMAP_GEOMETRY, False, True), FullyRotatedLayout)


def test_rotation_decorrelates_same_offset_writes():
    """The clustering argument of §IV-C2 in miniature: consecutive lines
    dirty at the same word offset hit *different* chips once rotated."""
    fixed = FixedLayout(PCMAP_GEOMETRY)
    rotated = DataRotatedLayout(PCMAP_GEOMETRY)
    fixed_chips = {fixed.data_chip(line, 3) for line in range(8)}
    rotated_chips = {rotated.data_chip(line, 3) for line in range(8)}
    assert fixed_chips == {3}
    assert rotated_chips == set(range(8))
