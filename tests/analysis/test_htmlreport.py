"""Tests for the self-contained HTML run report."""

import re
import xml.etree.ElementTree as ET

import pytest

from repro.analysis.htmlreport import (
    render_report,
    report_params,
    system_slot,
    write_report,
)
from repro.analysis.timeline import (
    BarSeries,
    LineSeries,
    svg_grouped_bars,
    svg_line_chart,
)
from repro.core.systems import SYSTEM_NAMES
from repro.sim.runner import run_pairs
from repro.sim.simulator import SimulationParams, simulate
from repro.core.systems import make_system

OBSERVED = SimulationParams(
    instructions_per_core=2_000, n_cores=2,
    sample_every_ticks=500, collect_metrics=True,
)


@pytest.fixture(scope="module")
def six_system_results():
    return run_pairs([("canneal", s) for s in SYSTEM_NAMES], OBSERVED)


def _svgs(text):
    return re.findall(r"<svg.*?</svg>", text, re.S)


def test_report_covers_all_six_systems(six_system_results):
    text = render_report(six_system_results, title="Six systems")
    assert text.startswith("<!DOCTYPE html>")
    for system in SYSTEM_NAMES:
        assert system in text
    for q in ("p50", "p95", "p99"):
        assert q in text
    # At least two time-series panels plus the percentile bars.
    assert "Outstanding reads" in text
    assert "Write queue depth" in text
    assert len(_svgs(text)) >= 3
    # Self-contained: no external fetches of any kind.
    assert "http://" not in text and "https://" not in text
    assert "<script" not in text


def test_report_svgs_are_well_formed(six_system_results):
    text = render_report(six_system_results)
    svgs = _svgs(text)
    assert svgs
    for svg in svgs:
        ET.fromstring(svg)  # raises on malformed XML


def test_report_has_legend_and_table_views(six_system_results):
    """Relief rule: every chart ships a legend and an embedded table."""
    text = render_report(six_system_results)
    assert text.count('class="legend"') >= 2
    assert text.count("<table>") >= 3
    assert "Data table" in text


def test_write_report_is_atomic_and_returns_path(tmp_path, six_system_results):
    out = tmp_path / "report.html"
    path = write_report(out, six_system_results[:2], title="Two systems")
    assert path == out
    assert out.read_text().startswith("<!DOCTYPE html>")


def test_render_report_requires_metrics():
    plain = simulate(
        make_system("baseline"), "canneal",
        SimulationParams(instructions_per_core=2_000, n_cores=2),
    )
    with pytest.raises(ValueError, match="collect_metrics"):
        render_report([plain])
    with pytest.raises(ValueError):
        render_report([])


def test_system_color_slots_are_fixed():
    """Color follows the entity: a subset plot keeps each system's hue."""
    assert system_slot("baseline") == 0
    assert system_slot("rwow-rde") == 5
    # Unknown systems never steal a paper system's slot.
    assert system_slot("my-experiment") >= 6


def test_report_params_enable_observability():
    params = report_params(target_requests=100, n_cores=2, seed=3)
    assert params.collect_metrics is True
    assert params.sample_every_ticks is not None
    assert params.seed == 3


def test_svg_line_chart_handles_empty_and_escapes():
    empty = svg_line_chart([])
    assert "no samples" in empty
    chart = svg_line_chart([
        LineSeries("a<b", "var(--series-1)", [(0, 1), (1, 2)]),
    ], y_label="depth")
    ET.fromstring(chart)
    assert "a&lt;b" in chart
    assert 'stroke-width="2"' in chart


def test_svg_grouped_bars_direct_labels_one_series():
    chart = svg_grouped_bars(
        ["g1", "g2"],
        [
            BarSeries("p50", "var(--ordinal-1)", [1, 2]),
            BarSeries("p99", "var(--ordinal-3)", [3, 4]),
        ],
        label_series="p99",
    )
    ET.fromstring(chart)
    # Only the p99 values get direct labels.
    assert chart.count('class="direct"') == 2
    assert "<title>" in chart
