"""Tests for the cross-run regression sentinel."""

import json

import pytest

from repro.analysis import regress
from repro.analysis.regress import (
    compare_fingerprints,
    fingerprint_from_result,
    format_comparison,
    load_baseline,
    selftest,
    update_baseline,
)


@pytest.fixture(scope="module")
def smoke_fingerprint():
    return regress.collect_fingerprint(smoke=True)


def test_fingerprint_is_deterministic(smoke_fingerprint):
    again = regress.collect_fingerprint(smoke=True)
    assert json.dumps(smoke_fingerprint, sort_keys=True) == json.dumps(
        again, sort_keys=True
    )


def test_fingerprint_pins_engine_and_memory_counters(smoke_fingerprint):
    metrics = smoke_fingerprint["metrics"]
    for name in (
        "engine.events_dispatched",
        "engine.sim_ticks",
        "reads.completed",
        "writes.completed",
        "read.latency_ns.count",
        "read.latency_ns.p95",
        "irlp_average",
    ):
        assert name in metrics, name
    assert metrics["engine.sim_ticks"] > 0
    config = smoke_fingerprint["config"]
    assert config["system"] == "rwow-rde"
    assert config["sample_every_ticks"] is not None


def test_clean_compare_has_no_breaches(smoke_fingerprint):
    assert compare_fingerprints(smoke_fingerprint, smoke_fingerprint) == []


def test_compare_flags_planted_regressions(smoke_fingerprint):
    planted = json.loads(json.dumps(smoke_fingerprint))
    planted["metrics"]["reads.completed"] += 1
    planted["metrics"]["irlp_average"] *= 1.5
    breaches = compare_fingerprints(planted, smoke_fingerprint)
    assert any(b.startswith("reads.completed:") for b in breaches)
    assert any(b.startswith("irlp_average:") for b in breaches)
    report = format_comparison(planted, smoke_fingerprint, breaches)
    assert "BREACH" in report
    assert report.count("ok") >= 5


def test_compare_flags_config_and_coverage_drift(smoke_fingerprint):
    other = json.loads(json.dumps(smoke_fingerprint))
    other["config"]["seed"] = 99
    assert any(
        "config mismatch" in b
        for b in compare_fingerprints(other, smoke_fingerprint)
    )
    shrunk = json.loads(json.dumps(smoke_fingerprint))
    del shrunk["metrics"]["rollbacks"]
    assert any(
        "missing from baseline" in b
        for b in compare_fingerprints(shrunk, smoke_fingerprint)
    )
    assert any(
        "missing from current" in b
        for b in compare_fingerprints(smoke_fingerprint, shrunk)
    )


def test_float_tolerance_band_absorbs_rounding(smoke_fingerprint):
    wiggled = json.loads(json.dumps(smoke_fingerprint))
    wiggled["metrics"]["irlp_average"] *= 1.0 + 1e-9
    assert compare_fingerprints(smoke_fingerprint, wiggled) == []


def test_selftest_passes_on_real_fingerprint(smoke_fingerprint):
    assert selftest(smoke_fingerprint) == []


def test_selftest_detects_a_broken_comparator(smoke_fingerprint, monkeypatch):
    """If the comparator goes blind, the selftest must say so."""
    monkeypatch.setattr(
        regress, "compare_fingerprints", lambda *a, **k: []
    )
    failures = selftest(smoke_fingerprint)
    assert failures


def test_fingerprint_requires_collected_metrics():
    from repro.core.systems import make_system
    from repro.sim.simulator import SimulationParams, simulate

    plain = simulate(
        make_system("baseline"), "canneal",
        SimulationParams(instructions_per_core=1_000, n_cores=2),
    )
    with pytest.raises(ValueError, match="collect_metrics"):
        fingerprint_from_result(plain, smoke=True)


def test_baseline_file_round_trip(tmp_path, monkeypatch, smoke_fingerprint):
    path = tmp_path / "BENCH_perf.json"
    path.write_text(json.dumps({"schema": 1, "suite": "perf"}))
    monkeypatch.setattr(
        regress, "collect_fingerprints",
        lambda seed=7: {"smoke": smoke_fingerprint},
    )
    pinned = update_baseline(path)
    assert pinned["smoke"] == smoke_fingerprint
    payload = json.loads(path.read_text())
    # Existing suite keys survive the re-pin.
    assert payload["suite"] == "perf"
    assert load_baseline(path, smoke=True) == smoke_fingerprint
    with pytest.raises(ValueError, match="lacks 'full'"):
        load_baseline(path, smoke=False)


def test_load_baseline_explains_missing_section(tmp_path):
    path = tmp_path / "BENCH_perf.json"
    path.write_text(json.dumps({"schema": 1}))
    with pytest.raises(ValueError, match="metrics_fingerprint"):
        load_baseline(path, smoke=True)
