"""Unit tests for the occupancy timeline renderer."""

import pytest

from repro.analysis.timeline import (
    event_mark,
    occupancy_summary,
    render_occupancy,
)
from repro.memory.rank import OccupancyEvent


def _event(kind="write", chip=0, start=0, end=100, label=""):
    return OccupancyEvent(kind, chip, 0, start, end, label)


def test_event_marks():
    assert event_mark(_event(kind="write")) == "W"
    assert event_mark(_event(kind="read")) == "R"
    assert event_mark(_event(kind="write", label="code-update")) == "c"


def test_render_empty():
    text = render_occupancy([], n_chips=10, title="T")
    assert "T" in text and "no occupancy" in text


def test_render_marks_cells():
    events = [
        _event(kind="write", chip=3, start=0, end=500),
        _event(kind="read", chip=0, start=250, end=500),
    ]
    text = render_occupancy(events, n_chips=10, tick_step=250)
    lines = text.splitlines()
    chip0 = next(l for l in lines if l.startswith("chip 0"))
    chip3 = next(l for l in lines if l.startswith("chip 3"))
    assert chip0.endswith("|.R|")
    assert chip3.endswith("|WW|")


def test_render_precedence_write_over_read():
    events = [
        _event(kind="read", chip=0, start=0, end=250),
        _event(kind="write", chip=0, start=0, end=250),
    ]
    text = render_occupancy(events, n_chips=10, tick_step=250)
    chip0 = next(l for l in text.splitlines() if l.startswith("chip 0"))
    assert "W" in chip0


def _row_labels(text):
    return [
        line.split("|")[0].strip()
        for line in text.splitlines()
        if "|" in line
    ]


def test_render_names_ecc_pcc_for_ten_chips():
    labels = _row_labels(render_occupancy([_event()], n_chips=10))
    assert "ECC" in labels and "PCC" in labels


def test_render_nine_chip_rank():
    labels = _row_labels(render_occupancy([_event()], n_chips=9))
    assert "ECC" in labels and "PCC" not in labels


def test_render_skips_unknown_starts():
    text = render_occupancy([_event(start=-1)], n_chips=10)
    assert "no occupancy" in text


def test_tick_step_validated():
    with pytest.raises(ValueError):
        render_occupancy([_event()], n_chips=10, tick_step=0)


def test_occupancy_summary():
    events = [
        _event(kind="write", chip=1, start=0, end=100),
        _event(kind="read", chip=1, start=100, end=150),
        _event(kind="write", chip=2, start=0, end=50, label="code-update"),
    ]
    summary = occupancy_summary(events)
    assert summary["per_chip"] == {1: 150, 2: 50}
    assert summary["per_kind"] == {"W": 100, "R": 50, "c": 50}


def test_renderer_consumes_real_controller_log():
    from repro.core.systems import make_system
    from repro.memory.memsys import make_controller
    from repro.memory.request import make_write
    from repro.sim.engine import Engine

    engine = Engine()
    controller = make_controller(engine, make_system("rwow-rde"))
    log = controller.ranks[0].enable_logging()
    controller.submit(make_write(1, 0, 0b11))
    engine.run(max_events=10_000)
    text = render_occupancy(log, controller.geometry.chips_per_rank)
    assert "W" in text and "c" in text


def test_occupancy_from_trace_filters_and_lifts():
    from repro.analysis.timeline import occupancy_from_trace
    from repro.telemetry import EventType, TraceEvent

    events = [
        TraceEvent(type=EventType.CHIP_RESERVE, tick=0, channel=0, rank=0,
                   chip=1, bank=2, start=0, end=100, kind="write",
                   reason="code-update"),
        TraceEvent(type=EventType.CHIP_RESERVE, tick=0, channel=1, rank=0,
                   chip=3, start=0, end=50, kind="read"),
        TraceEvent(type=EventType.REQUEST_ISSUE, tick=5, channel=0),
    ]
    lifted = occupancy_from_trace(events, channel=0)
    assert len(lifted) == 1
    assert lifted[0].chip == 1
    assert lifted[0].label == "code-update"
    assert event_mark(lifted[0]) == "c"
    assert len(occupancy_from_trace(events)) == 2


def test_grid_renders_from_recorded_trace():
    from repro.analysis.timeline import render_trace_occupancy
    from repro.core.systems import make_system
    from repro.memory.memsys import make_controller
    from repro.memory.request import make_write
    from repro.sim.engine import Engine
    from repro.telemetry import Telemetry

    engine = Engine()
    telemetry = Telemetry.recording()
    controller = make_controller(
        engine, make_system("rwow-rde"), telemetry=telemetry
    )
    controller.submit(make_write(1, 0, 0b11))
    engine.run(max_events=10_000)
    text = render_trace_occupancy(
        telemetry.tracer.events(), controller.geometry.chips_per_rank
    )
    assert "W" in text and "c" in text
