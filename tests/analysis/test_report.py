"""Unit tests for report formatting."""

from repro.analysis.report import (
    FigureSeries,
    figure_report,
    format_table,
    percent,
    ratio,
)


def test_format_table_alignment():
    text = format_table(["name", "value"], [["alpha", 1], ["b", 22]])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert "-" in lines[1]
    assert lines[2].startswith("alpha")
    # Numeric column right-aligned: both rows end at the same column.
    assert len(lines[2]) == len(lines[3])


def test_format_table_title():
    text = format_table(["a"], [[1]], title="My Table")
    assert text.splitlines()[0] == "My Table"


def test_percent_and_ratio():
    assert percent(0.156) == "+15.6%"
    assert percent(-0.05) == "-5.0%"
    assert percent(0.1, signed=False) == "10.0%"
    assert ratio(1.166) == "1.17x"


def test_figure_series_mean():
    series = FigureSeries("s", {"a": 1.0, "b": 3.0})
    assert series.mean() == 2.0
    assert FigureSeries("empty", {}).mean() == 0.0


def test_figure_report_has_average_row():
    series = [FigureSeries("sys", {"w1": 1.0, "w2": 2.0})]
    text = figure_report("T", ["w1", "w2"], series)
    assert "Average" in text
    assert "1.50" in text


def test_figure_report_missing_value_is_nan():
    series = [FigureSeries("sys", {"w1": 1.0})]
    text = figure_report("T", ["w1", "w2"], series)
    assert "nan" in text
