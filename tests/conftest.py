"""Shared fixtures and helpers for the test suite."""

import random
import zlib
from typing import List

import pytest

from repro.core.systems import make_system
from repro.memory.memsys import make_controller
from repro.memory.request import MemoryRequest, make_read, make_write
from repro.sim.engine import Engine

try:  # Deterministic hypothesis runs: no random example order, no
    # wall-clock deadline flakes; every rerun explores the same cases.
    from hypothesis import settings

    settings.register_profile("repro", derandomize=True, deadline=None)
    settings.load_profile("repro")
except ImportError:  # pragma: no cover - hypothesis is a test extra
    pass


@pytest.fixture
def seeded_rng(request) -> random.Random:
    """Per-test deterministic RNG, seeded from the test's node id.

    Fault and fuzz tests draw randomness from this instead of the global
    ``random`` module, so a failing test replays identically regardless
    of execution order or ``-k`` selection.
    """
    return random.Random(zlib.crc32(request.node.nodeid.encode()))


class ControllerHarness:
    """One channel controller plus its engine, for direct-drive tests.

    Addresses are multiplied by (line size x channels) so everything the
    test submits lands on channel 0 of the default 4-channel geometry.
    """

    def __init__(self, system_name: str = "baseline", seed: int = 1, **overrides):
        self.config = make_system(system_name, **overrides)
        self.engine = Engine()
        self.controller = make_controller(
            self.engine, self.config, channel_id=0, seed=seed
        )
        self._next_id = 0
        self.submitted: List[MemoryRequest] = []

    def _address(self, line_index: int) -> int:
        # Stride over channels so the single controller owns every line.
        return line_index * 64 * self.config.geometry.n_channels

    def read(self, line_index: int) -> MemoryRequest:
        self._next_id += 1
        req = make_read(self._next_id, self._address(line_index))
        self.controller.submit(req)
        self.submitted.append(req)
        return req

    def write(self, line_index: int, dirty_mask: int) -> MemoryRequest:
        self._next_id += 1
        req = make_write(self._next_id, self._address(line_index), dirty_mask)
        self.controller.submit(req)
        self.submitted.append(req)
        return req

    def run(self, max_events: int = 100_000) -> None:
        self.engine.run(max_events=max_events)

    def run_until(self, tick: int) -> None:
        self.engine.run(until=tick)

    def all_done(self) -> bool:
        return all(req.completion >= 0 for req in self.submitted)


@pytest.fixture
def baseline():
    return ControllerHarness("baseline")


@pytest.fixture
def pcmap():
    return ControllerHarness("rwow-rde")


def harness(system_name: str, **overrides) -> ControllerHarness:
    return ControllerHarness(system_name, **overrides)
