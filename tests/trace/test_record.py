"""Unit tests for trace records."""

import pytest

from repro.trace.record import AccessKind, TraceRecord


def test_read_record():
    record = TraceRecord(10, AccessKind.READ, 128)
    assert record.is_memory_level
    assert record.line_address == 2


def test_write_back_carries_mask():
    record = TraceRecord(0, AccessKind.WRITE_BACK, 64, dirty_mask=0b11)
    assert record.dirty_mask == 0b11


def test_memory_level_records_must_be_aligned():
    with pytest.raises(ValueError):
        TraceRecord(0, AccessKind.READ, 3)
    with pytest.raises(ValueError):
        TraceRecord(0, AccessKind.WRITE_BACK, 65)


def test_loads_may_be_unaligned():
    record = TraceRecord(0, AccessKind.LOAD, 0x1003)
    assert not record.is_memory_level


def test_negative_gap_rejected():
    with pytest.raises(ValueError):
        TraceRecord(-1, AccessKind.READ, 0)


def test_mask_only_on_write_backs():
    with pytest.raises(ValueError):
        TraceRecord(0, AccessKind.READ, 0, dirty_mask=1)
    with pytest.raises(ValueError):
        TraceRecord(0, AccessKind.LOAD, 0, dirty_mask=1)


def test_mask_range_checked():
    with pytest.raises(ValueError):
        TraceRecord(0, AccessKind.WRITE_BACK, 0, dirty_mask=256)


def test_records_are_immutable():
    record = TraceRecord(0, AccessKind.READ, 0)
    with pytest.raises(AttributeError):
        record.address = 64  # type: ignore[misc]
