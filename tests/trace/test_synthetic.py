"""Statistical tests for the synthetic trace generator."""

import collections

import pytest

from repro.memory.request import LINE_BYTES
from repro.trace.record import AccessKind
from repro.trace.synthetic import SyntheticTraceGenerator
from repro.trace.workloads import ALL_WORKLOADS, get_workload


def _sample(name, n=20_000, seed=7, **kwargs):
    generator = SyntheticTraceGenerator(get_workload(name), seed=seed, **kwargs)
    return generator.take(n)


def test_generator_is_deterministic():
    a = _sample("canneal", n=500)
    b = _sample("canneal", n=500)
    assert a == b


def test_different_seeds_differ():
    a = SyntheticTraceGenerator(get_workload("canneal"), seed=1).take(200)
    b = SyntheticTraceGenerator(get_workload("canneal"), seed=2).take(200)
    assert a != b


def test_addresses_line_aligned():
    for record in _sample("MP1", n=2000):
        assert record.address % LINE_BYTES == 0


@pytest.mark.parametrize("name", ["canneal", "MP4", "cactusADM", "freqmine"])
def test_rpki_wpki_within_tolerance(name):
    workload = get_workload(name)
    records = _sample(name, n=30_000)
    instructions = sum(r.gap_instructions for r in records)
    reads = sum(1 for r in records if r.kind is AccessKind.READ)
    writes = len(records) - reads
    rpki = reads / instructions * 1000
    wpki = writes / instructions * 1000
    assert rpki == pytest.approx(workload.rpki, rel=0.15)
    assert wpki == pytest.approx(workload.wpki, rel=0.15)


def test_dirty_distribution_matches_profile():
    workload = get_workload("cactusADM")
    records = _sample("cactusADM", n=40_000)
    counts = collections.Counter(
        bin(r.dirty_mask).count("1")
        for r in records
        if r.kind is AccessKind.WRITE_BACK
    )
    total = sum(counts.values())
    for i, expected in enumerate(workload.dirty_word_distribution):
        observed = counts.get(i, 0) / total
        assert observed == pytest.approx(expected, abs=0.03), f"{i} words"


def test_offset_correlation_visible():
    """With correlation 0.32, successive write-backs share offsets far
    more often than with correlation 0."""
    import dataclasses

    def same_mask_fraction(correlation):
        profile = dataclasses.replace(
            get_workload("canneal"), offset_correlation=correlation
        )
        generator = SyntheticTraceGenerator(profile, seed=11)
        records = [
            r for r in generator.take(40_000)
            if r.kind is AccessKind.WRITE_BACK and r.dirty_mask
        ]
        same = sum(
            1
            for a, b in zip(records, records[1:])
            if a.dirty_mask == b.dirty_mask
        )
        return same / (len(records) - 1)

    assert same_mask_fraction(0.32) > 1.5 * same_mask_fraction(0.0)


def test_offset_bias_favours_low_words():
    records = _sample("MP4", n=40_000)
    word_counts = [0] * 8
    for record in records:
        for w in range(8):
            if (record.dirty_mask >> w) & 1:
                word_counts[w] += 1
    assert word_counts[0] > word_counts[7]


def test_mp_cores_have_disjoint_footprints():
    gen0 = SyntheticTraceGenerator(get_workload("MP1"), seed=1, core_id=0)
    gen1 = SyntheticTraceGenerator(get_workload("MP1"), seed=1, core_id=1)
    lines0 = {r.line_address for r in gen0.take(2000)}
    lines1 = {r.line_address for r in gen1.take(2000)}
    assert not lines0 & lines1


def test_mt_cores_share_footprint():
    gen0 = SyntheticTraceGenerator(get_workload("canneal"), seed=1, core_id=0)
    gen1 = SyntheticTraceGenerator(get_workload("canneal"), seed=1, core_id=1)
    lines0 = {r.line_address for r in gen0.take(4000)}
    lines1 = {r.line_address for r in gen1.take(4000)}
    assert lines0 & lines1


def test_every_workload_generates():
    for workload in ALL_WORKLOADS:
        generator = SyntheticTraceGenerator(workload, seed=3)
        records = generator.take(50)
        assert len(records) == 50


def test_write_bursts_exist():
    records = _sample("canneal", n=10_000)
    kinds = [r.kind for r in records]
    runs = 0
    current = 0
    for kind in kinds:
        if kind is AccessKind.WRITE_BACK:
            current += 1
            runs = max(runs, current)
        else:
            current = 0
    assert runs >= 3  # eviction waves produce back-to-back write-backs


def test_write_read_affinity_draws_from_recent_reads():
    """The affinity path must pick lines the generator actually read
    recently — this is the draw that must stay insertion-ordered."""
    workload = get_workload("canneal")
    generator = SyntheticTraceGenerator(workload, seed=3)
    seen_reads = []
    affinity_hits = 0
    for record in generator.take(20_000):
        line = record.address // LINE_BYTES
        if record.kind is AccessKind.READ:
            seen_reads.append(line)
        elif line in seen_reads[-32:]:
            affinity_hits += 1
    assert affinity_hits > 0


def test_stream_identical_across_hash_seeds():
    """PYTHONHASHSEED must not leak into the trace stream.

    ``_recent_reads`` is drawn from by index, so only insertion order can
    matter; this pins the whole record stream (the draw that PR 1's
    ``zlib.crc32`` fix and the deque-index affinity draw both protect)
    across interpreters with different hash randomisation.
    """
    import os
    import subprocess
    import sys

    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    script = (
        "import hashlib;"
        "from repro.trace.synthetic import SyntheticTraceGenerator;"
        "from repro.trace.workloads import get_workload;"
        "g = SyntheticTraceGenerator("
        "    get_workload('canneal'), seed=11, core_id=3, n_cores=8);"
        "h = hashlib.sha256();"
        "[h.update(repr((r.kind.value, r.address, r.dirty_mask,"
        " r.gap_instructions)).encode()) for r in g.take(4000)];"
        "print(h.hexdigest())"
    )
    digests = set()
    for hash_seed in ("0", "1", "31337"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed, PYTHONPATH=src)
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        digests.add(proc.stdout.strip())
    assert len(digests) == 1, f"stream depends on PYTHONHASHSEED: {digests}"
