"""Unit tests for workload profiles (Table II / Figure 2 encodings)."""

import pytest

from repro.trace.workloads import (
    ALL_WORKLOADS,
    MULTI_PROGRAM,
    MULTI_THREADED,
    STREAM_KERNELS,
    FIGURE_MP_NAMES,
    FIGURE_MT_NAMES,
    FOOTNOTE3_AVERAGE,
    SPEC_SINGLES,
    TABLE4_NAMES,
    WorkloadKind,
    get_workload,
    workload_names,
)


def test_all_distributions_are_normalised():
    for workload in ALL_WORKLOADS:
        assert sum(workload.dirty_word_distribution) == pytest.approx(1.0)
        assert all(p >= 0 for p in workload.dirty_word_distribution)


def test_table2_mt_rates_encoded():
    expected = {
        "canneal": (15.19, 7.13),
        "dedup": (3.04, 2.072),
        "facesim": (6.66, 1.26),
        "fluidanimate": (5.54, 1.51),
        "freqmine": (0.78, 3.33),
        "streamcluster": (5.19, 2.13),
    }
    for name, (rpki, wpki) in expected.items():
        workload = get_workload(name)
        assert workload.rpki == pytest.approx(rpki)
        assert workload.wpki == pytest.approx(wpki)
        assert workload.kind is WorkloadKind.MULTI_THREADED


def test_table2_mp_rates_encoded():
    expected = {
        "MP1": (6.45, 3.11),
        "MP2": (2.68, 1.56),
        "MP3": (2.31, 1.08),
        "MP4": (8.05, 5.65),
        "MP5": (4.15, 2.60),
        "MP6": (5.09, 2.09),
    }
    for name, (rpki, wpki) in expected.items():
        workload = get_workload(name)
        assert workload.rpki == pytest.approx(rpki)
        assert workload.wpki == pytest.approx(wpki)
        assert workload.kind is WorkloadKind.MULTI_PROGRAM


def test_figure2_anchor_points():
    """omnetpp has the minimum 1-word fraction (14%), cactusADM the
    maximum (52%) — the endpoints the paper names explicitly."""
    fractions = {w.name: w.one_word_fraction for w in SPEC_SINGLES}
    assert fractions["omnetpp"] == pytest.approx(0.14, abs=0.005)
    assert fractions["cactusADM"] == pytest.approx(0.52, abs=0.005)
    assert min(fractions.values()) == fractions["omnetpp"]
    assert max(fractions.values()) == fractions["cactusADM"]


def test_figure2_under4_range():
    """77-99% of write-backs have at most 4 dirty words — "less than 4
    words (50% of a cache line)" in the paper's phrasing (§I), which the
    footnote-3 averages show means i in 0..4."""
    paper_set = MULTI_THREADED + MULTI_PROGRAM + SPEC_SINGLES
    for workload in paper_set:
        up_to_half = sum(workload.dirty_word_distribution[:5])
        assert 0.76 <= up_to_half <= 0.995, workload.name


def test_table4_rollback_rates():
    assert get_workload("canneal").rollback_rate == pytest.approx(0.058)
    assert get_workload("facesim").rollback_rate == pytest.approx(0.041)
    assert get_workload("MP6").rollback_rate == pytest.approx(0.034)
    assert get_workload("ferret").rollback_rate == pytest.approx(0.022)
    # Everyone else uses the 1.3% default of §IV-B3.
    assert get_workload("MP1").rollback_rate == pytest.approx(0.013)


def test_mean_dirty_words_near_paper_average():
    """Baseline IRLP derives from these means; the paper's figure is 2.37."""
    paper_set = MULTI_THREADED + MULTI_PROGRAM + SPEC_SINGLES
    means = [w.mean_dirty_words for w in paper_set]
    average = sum(means) / len(means)
    assert 1.8 <= average <= 2.9


def test_stream_kernels_are_bulk_writers():
    """STREAM is the opposite extreme: sequential bulk stores dirty most
    of each line, so PCMap's word-level tricks have less to exploit."""
    assert len(STREAM_KERNELS) == 3
    for workload in STREAM_KERNELS:
        assert workload.mean_dirty_words > 4.5, workload.name
        assert workload.sequential_fraction >= 0.9


def test_offset_correlation_default():
    assert get_workload("MP1").offset_correlation == pytest.approx(0.32)


def test_figure_name_lists():
    assert len(FIGURE_MT_NAMES) == 6
    assert len(FIGURE_MP_NAMES) == 6
    assert set(TABLE4_NAMES) == {"canneal", "facesim", "MP6", "ferret"}
    for name in FIGURE_MT_NAMES + FIGURE_MP_NAMES + TABLE4_NAMES:
        get_workload(name)  # must resolve


def test_unknown_workload_rejected():
    with pytest.raises(ValueError):
        get_workload("doom")


def test_workload_names_filter():
    assert "canneal" in workload_names(WorkloadKind.MULTI_THREADED)
    assert "MP1" not in workload_names(WorkloadKind.MULTI_THREADED)
    assert len(workload_names()) == len(ALL_WORKLOADS)


def test_footnote3_average_normalised():
    assert sum(FOOTNOTE3_AVERAGE) == pytest.approx(1.0)


def test_derived_properties():
    workload = get_workload("canneal")
    assert workload.mpki == pytest.approx(15.19 + 7.13)
    assert workload.write_fraction == pytest.approx(7.13 / (15.19 + 7.13))
