"""Unit tests for trace file I/O."""

import pytest

from repro.trace.record import AccessKind, TraceRecord
from repro.trace.synthetic import SyntheticTraceGenerator
from repro.trace.trace_io import (
    format_record,
    iter_trace,
    load_trace,
    parse_record,
    save_trace,
)
from repro.trace.workloads import get_workload


def test_format_read():
    record = TraceRecord(12, AccessKind.READ, 0x1000)
    assert format_record(record) == "12 R 0x1000"


def test_format_write_back_includes_mask():
    record = TraceRecord(0, AccessKind.WRITE_BACK, 0x40, dirty_mask=0xA5)
    assert format_record(record) == "0 W 0x40 0xa5"


def test_parse_roundtrip():
    original = TraceRecord(7, AccessKind.WRITE_BACK, 0x2000, dirty_mask=0x3)
    assert parse_record(format_record(original)) == original


def test_parse_rejects_malformed():
    with pytest.raises(ValueError):
        parse_record("12 R")
    with pytest.raises(ValueError):
        parse_record("12 X 0x40")
    with pytest.raises(ValueError):
        parse_record("12 W 0x40")  # missing mask


def test_save_and_load_file_roundtrip(tmp_path):
    generator = SyntheticTraceGenerator(get_workload("MP1"), seed=5)
    records = generator.take(300)
    path = tmp_path / "mp1.trace"
    count = save_trace(path, records)
    assert count == 300
    loaded = load_trace(path)
    assert loaded == records


def test_iter_trace_skips_comments_and_blanks(tmp_path):
    path = tmp_path / "t.trace"
    path.write_text("# header\n\n5 R 0x40\n# mid comment\n0 W 0x80 0x1\n")
    records = list(iter_trace(path))
    assert len(records) == 2
    assert records[0].kind is AccessKind.READ
    assert records[1].dirty_mask == 1
