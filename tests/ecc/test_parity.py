"""Unit + property tests for PCC parity and erasure reconstruction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ecc import parity

WORD = st.integers(min_value=0, max_value=(1 << 64) - 1)
LINE = st.lists(WORD, min_size=8, max_size=8)


def test_parity_of_zero_line_is_zero():
    assert parity.compute_parity([0] * 8) == 0


def test_parity_is_xor():
    words = [1 << i for i in range(8)]
    assert parity.compute_parity(words) == 0xFF


def test_parity_wrong_length_rejected():
    with pytest.raises(ValueError):
        parity.compute_parity([0] * 7)


def test_parity_out_of_range_word_rejected():
    with pytest.raises(ValueError):
        parity.compute_parity([1 << 64] + [0] * 7)


@given(LINE)
@settings(max_examples=200)
def test_property_reconstruct_any_missing_word(words):
    pcc = parity.compute_parity(words)
    for missing in range(8):
        partial = list(words)
        partial[missing] = None
        rebuilt = parity.reconstruct_word(partial, pcc)
        assert list(rebuilt) == words


@given(LINE, st.integers(min_value=0, max_value=7), WORD)
@settings(max_examples=200)
def test_property_incremental_update_matches_recompute(words, index, new_word):
    pcc = parity.compute_parity(words)
    updated = parity.update_parity(pcc, words[index], new_word)
    new_words = list(words)
    new_words[index] = new_word
    assert updated == parity.compute_parity(new_words)


def test_reconstruct_requires_exactly_one_missing():
    words = [1, 2, 3, 4, 5, 6, 7, 8]
    pcc = parity.compute_parity(words)
    with pytest.raises(ValueError):
        parity.reconstruct_word(words, pcc)  # nothing missing
    partial = [None, None] + words[2:]
    with pytest.raises(ValueError):
        parity.reconstruct_word(partial, pcc)  # two missing


def test_reconstruct_wrong_length():
    with pytest.raises(ValueError):
        parity.reconstruct_word([None] + [0] * 6, 0)


def test_reconstruct_bad_parity_value():
    partial = [None] + [0] * 7
    with pytest.raises(ValueError):
        parity.reconstruct_word(partial, 1 << 64)


def test_update_parity_identity_when_unchanged():
    pcc = parity.compute_parity(list(range(8)))
    assert parity.update_parity(pcc, 5, 5) == pcc


def test_can_reconstruct_predicate():
    assert parity.can_reconstruct([])
    assert parity.can_reconstruct([3])
    assert parity.can_reconstruct([3, 3])  # same chip twice
    assert not parity.can_reconstruct([3, 4])
