"""Scalar/vector parity suite for the batch codec and storage fast path.

The contract under test: every ``repro.ecc.batch`` array operation and
every ``MemoryStorage`` batch method is **bit-identical** to the scalar
implementation it accelerates.  That equivalence is what lets the
storage layer pick whichever path is available without moving golden
traces or perf fingerprints.

Three layers of evidence:

* hypothesis fuzz over random words/checks (encode and decode parity),
* exhaustive corruption classes (all 1-bit and 2-bit flips over the
  72-bit codeword, sampled 3-bit flips) compared against the scalar
  decoder's verdicts,
* storage-level batch-vs-scalar differential runs, plus a subprocess
  leg that re-imports everything under ``REPRO_NO_NUMPY=1`` and proves
  the fallback produces the same bytes.
"""

from __future__ import annotations

import itertools
import os
import random
import subprocess
import sys
import textwrap

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import batch, hamming, parity
from repro.ecc.hamming import DecodeStatus
from repro.memory.storage import MemoryStorage, _cold_line, _cold_pattern

requires_numpy = pytest.mark.skipif(
    not batch.HAS_NUMPY, reason="numpy unavailable (scalar-only build)"
)

WORD = st.integers(min_value=0, max_value=(1 << 64) - 1)
CHECK = st.integers(min_value=0, max_value=0xFF)
LINE = st.tuples(*([WORD] * 8))


def scalar_decode_triplet(word: int, check: int):
    """Scalar decode as the (data, status-code, flipped) triple."""
    result = hamming.decode(word, check)
    return (
        result.data,
        batch.STATUS_TO_ENUM.index(result.status),
        result.flipped_position,
    )


# ----------------------------------------------------------------------
# Word-level fuzz parity
# ----------------------------------------------------------------------
@requires_numpy
@settings(max_examples=200, deadline=None)
@given(st.lists(WORD, min_size=1, max_size=64))
def test_encode_words_matches_scalar(words):
    np = batch.np
    got = batch.encode_words(np.array(words, dtype=np.uint64))
    assert got.tolist() == [hamming.encode(w) for w in words]


@requires_numpy
@settings(max_examples=200, deadline=None)
@given(st.lists(st.tuples(WORD, CHECK), min_size=1, max_size=64))
def test_decode_words_matches_scalar_on_random_checks(pairs):
    """Random (word, check) pairs — mostly garbage checks, so every
    status class is exercised, not just CLEAN."""
    np = batch.np
    words = np.array([w for w, _ in pairs], dtype=np.uint64)
    checks = np.array([c for _, c in pairs], dtype=np.uint8)
    data, status, flipped = batch.decode_words(words, checks)
    expected = [scalar_decode_triplet(w, c) for w, c in pairs]
    assert (
        list(zip(data.tolist(), status.tolist(), flipped.tolist())) == expected
    )


@requires_numpy
@settings(max_examples=100, deadline=None)
@given(st.lists(WORD, min_size=1, max_size=32))
def test_decode_of_clean_encoding_is_clean(words):
    np = batch.np
    arr = np.array(words, dtype=np.uint64)
    data, status, flipped = batch.decode_words(arr, batch.encode_words(arr))
    assert data.tolist() == words
    assert set(status.tolist()) == {batch.STATUS_CLEAN}
    assert set(flipped.tolist()) == {-1}


@requires_numpy
@settings(max_examples=100, deadline=None)
@given(st.lists(LINE, min_size=1, max_size=16))
def test_encode_lines_matches_scalar(lines):
    np = batch.np
    checks, pcc = batch.encode_lines(np.array(lines, dtype=np.uint64))
    assert checks.tolist() == [list(hamming.encode_line(l)) for l in lines]
    assert pcc.tolist() == [parity.compute_parity(l) for l in lines]


@requires_numpy
@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2**40), min_size=1,
                max_size=32))
def test_cold_line_words_matches_scalar_pattern(addresses):
    np = batch.np
    got = batch.cold_line_words(np.array(addresses, dtype=np.uint64))
    assert got.tolist() == [list(_cold_pattern(a)) for a in addresses]


# ----------------------------------------------------------------------
# Exhaustive corruption classes over the 72-bit codeword
# ----------------------------------------------------------------------
def _flip(word: int, check: int, position: int):
    """Flip one of the 72 codeword bits (0..63 data, 64..71 check)."""
    if position < 64:
        return word ^ (1 << position), check
    return word, check ^ (1 << (position - 64))


def _corrupt(word: int, check: int, positions):
    for position in positions:
        word, check = _flip(word, check, position)
    return word, check


CORRUPTION_SEEDS = [0, (1 << 64) - 1, 0xDEADBEEFCAFEBABE, 0x0123456789ABCDEF]


@requires_numpy
@pytest.mark.parametrize("seed_word", CORRUPTION_SEEDS)
def test_every_single_bit_error_corrects(seed_word):
    """All 72 one-bit flips: data flips correct back to the original,
    check flips leave data intact — vector verdicts equal scalar's."""
    np = batch.np
    check = hamming.encode(seed_word)
    corrupted = [_corrupt(seed_word, check, (p,)) for p in range(72)]
    words = np.array([w for w, _ in corrupted], dtype=np.uint64)
    checks = np.array([c for _, c in corrupted], dtype=np.uint8)
    data, status, flipped = batch.decode_words(words, checks)

    for position in range(72):
        w, c = corrupted[position]
        assert (
            data[position],
            status[position],
            flipped[position],
        ) == scalar_decode_triplet(w, c)
        if position < 64:
            assert status[position] == batch.STATUS_CORRECTED_DATA
            assert int(data[position]) == seed_word
        else:
            assert status[position] == batch.STATUS_CORRECTED_CHECK
            assert int(data[position]) == w  # data untouched
        assert flipped[position] >= 0


@requires_numpy
@pytest.mark.parametrize("seed_word", CORRUPTION_SEEDS[:2])
def test_every_double_bit_error_detects(seed_word):
    """All C(72,2) = 2556 two-bit flips are flagged DOUBLE_ERROR and the
    vector verdict matches the scalar decoder on every one."""
    np = batch.np
    check = hamming.encode(seed_word)
    combos = list(itertools.combinations(range(72), 2))
    corrupted = [_corrupt(seed_word, check, pair) for pair in combos]
    words = np.array([w for w, _ in corrupted], dtype=np.uint64)
    checks = np.array([c for _, c in corrupted], dtype=np.uint8)
    data, status, flipped = batch.decode_words(words, checks)

    assert set(status.tolist()) == {batch.STATUS_DOUBLE_ERROR}
    for i, (w, c) in enumerate(corrupted):
        assert (data[i], status[i], flipped[i]) == scalar_decode_triplet(w, c)


@requires_numpy
def test_sampled_triple_bit_errors_match_scalar():
    """Three-bit flips exceed SECDED's guarantee — the only contract is
    that the vector path mirrors the scalar decoder's verdict exactly
    (including any miscorrection)."""
    np = batch.np
    rng = random.Random(1234)
    cases = []
    for seed_word in CORRUPTION_SEEDS:
        check = hamming.encode(seed_word)
        for _ in range(250):
            positions = rng.sample(range(72), 3)
            cases.append(_corrupt(seed_word, check, positions))
    words = np.array([w for w, _ in cases], dtype=np.uint64)
    checks = np.array([c for _, c in cases], dtype=np.uint8)
    data, status, flipped = batch.decode_words(words, checks)
    for i, (w, c) in enumerate(cases):
        assert (data[i], status[i], flipped[i]) == scalar_decode_triplet(w, c)


@requires_numpy
def test_decode_words_shape_mismatch_raises():
    np = batch.np
    with pytest.raises(ValueError, match="shape mismatch"):
        batch.decode_words(
            np.zeros(4, dtype=np.uint64), np.zeros(5, dtype=np.uint8)
        )


@requires_numpy
def test_encode_lines_requires_eight_words():
    np = batch.np
    with pytest.raises(ValueError, match="last axis"):
        batch.encode_lines(np.zeros((4, 7), dtype=np.uint64))


# ----------------------------------------------------------------------
# decode_words_py — the path-agnostic convenience
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(WORD, CHECK), min_size=0, max_size=32))
def test_decode_words_py_matches_scalar(pairs):
    """Works on both builds; on the vector build this pins the wrapper's
    re-boxing of array results into scalar DecodeResult objects."""
    words = [w for w, _ in pairs]
    checks = [c for _, c in pairs]
    got = batch.decode_words_py(words, checks)
    assert got == [hamming.decode(w, c) for w, c in pairs]


def test_decode_words_py_length_mismatch_raises():
    with pytest.raises(ValueError):
        batch.decode_words_py([1, 2], [0])


# ----------------------------------------------------------------------
# Storage batch APIs vs their scalar twins
# ----------------------------------------------------------------------
def _random_lines(rng, count):
    addresses = rng.sample(range(1, 1 << 30), count)
    lines = [
        tuple(rng.getrandbits(64) for _ in range(8)) for _ in range(count)
    ]
    return addresses, lines


@requires_numpy
def test_prefetch_matches_lazy_materialisation():
    rng = random.Random(7)
    addresses = rng.sample(range(1 << 28), 64)
    fast, slow = MemoryStorage(), MemoryStorage()
    assert fast.prefetch(addresses) == len(addresses)
    for address in addresses:
        assert fast.read_line(address) == slow.read_line(address)
    # Idempotent, counter-free, and never overwrites a written line.
    assert fast.prefetch(addresses) == 0
    fast.write_line(addresses[0], (1,) * 8)
    written = fast.read_line(addresses[0])
    fast.prefetch(addresses)
    assert fast.read_line(addresses[0]) == written
    assert fast.silent_word_writes == slow.silent_word_writes


@requires_numpy
def test_diff_masks_matches_scalar_diff_mask():
    rng = random.Random(11)
    addresses, _ = _random_lines(rng, 48)
    # Perturb a random subset of each cold line's words so masks vary.
    new_lines = []
    for address in addresses:
        words = list(_cold_line(address)[0])
        for w in rng.sample(range(8), rng.randrange(9)):
            words[w] ^= rng.getrandbits(64)
        new_lines.append(tuple(words))
    fast, slow = MemoryStorage(), MemoryStorage()
    got = fast.diff_masks(addresses, new_lines)
    want = [slow.diff_mask(a, l) for a, l in zip(addresses, new_lines)]
    assert got == want
    assert fast.silent_word_writes == slow.silent_word_writes


@requires_numpy
@pytest.mark.parametrize("with_masks", [False, True])
def test_write_lines_matches_scalar_write_line(with_masks):
    rng = random.Random(13)
    addresses, new_lines = _random_lines(rng, 40)
    masks = (
        [rng.randrange(256) for _ in addresses] if with_masks else None
    )
    fast, slow = MemoryStorage(), MemoryStorage()
    got = fast.write_lines(addresses, new_lines, masks)
    want = [
        slow.write_line(a, l, None if masks is None else masks[i])
        for i, (a, l) in enumerate(zip(addresses, new_lines))
    ]
    assert got == want
    for address in addresses:
        assert fast.read_line(address) == slow.read_line(address)
    assert fast.committed_words == slow.committed_words
    assert fast.silent_word_writes == slow.silent_word_writes


@requires_numpy
def test_write_lines_rejects_duplicate_addresses():
    addresses = [5] * 20
    lines = [(0,) * 8] * 20
    with pytest.raises(ValueError, match="duplicate line addresses"):
        MemoryStorage().write_lines(addresses, lines)


@requires_numpy
def test_write_lines_falls_back_for_write_line_overrides():
    """A subclass that hooks write_line (the fault-injecting storage)
    must keep seeing every per-line call."""

    class Recording(MemoryStorage):
        def __init__(self):
            super().__init__()
            self.calls = 0

        def write_line(self, line_address, new_words, dirty_mask=None):
            self.calls += 1
            return super().write_line(line_address, new_words, dirty_mask)

    rng = random.Random(17)
    addresses, new_lines = _random_lines(rng, 24)
    recording = Recording()
    plain = MemoryStorage()
    assert recording.write_lines(addresses, new_lines) == plain.write_lines(
        addresses, new_lines
    )
    assert recording.calls == len(addresses)


@requires_numpy
def test_corrupt_bit_then_batch_decode_reports_correctable():
    storage = MemoryStorage()
    addresses = list(range(100, 132))
    storage.prefetch(addresses)
    victim = addresses[3]
    original = storage.read_line(victim).words[2]
    storage.corrupt_bit(victim, word=2, bit=17)
    line = storage.read_line(victim)
    results = batch.decode_words_py(line.words, line.checks)
    assert results[2].status is DecodeStatus.CORRECTED_DATA
    assert results[2].data == original
    for i, result in enumerate(results):
        if i != 2:
            assert result.status is DecodeStatus.CLEAN


# ----------------------------------------------------------------------
# The no-numpy build, exercised for real in a subprocess
# ----------------------------------------------------------------------
_FALLBACK_PROBE = textwrap.dedent(
    """
    import random

    from repro.ecc import batch, hamming
    from repro.memory.storage import MemoryStorage

    assert not batch.HAS_NUMPY
    assert batch.np is None
    reason = batch.numpy_disabled_reason()
    assert reason and "REPRO_NO_NUMPY" in reason, reason

    # Array entry points refuse loudly rather than half-working.
    for fn, args in (
        (batch.encode_words, ([1, 2],)),
        (batch.decode_words, ([1], [0])),
        (batch.encode_lines, ([[0] * 8],)),
        (batch.cold_line_words, ([3],)),
    ):
        try:
            fn(*args)
        except RuntimeError as error:
            assert "REPRO_NO_NUMPY" in str(error)
        else:
            raise AssertionError(f"{fn.__name__} did not raise")

    # The path-agnostic conveniences silently take the scalar route.
    words = [random.Random(3).getrandbits(64) for _ in range(32)]
    checks = [hamming.encode(w) for w in words]
    assert batch.decode_words_py(words, checks) == [
        hamming.decode(w, c) for w, c in zip(words, checks)
    ]

    rng = random.Random(5)
    addresses = rng.sample(range(1 << 24), 32)
    lines = [tuple(rng.getrandbits(64) for _ in range(8)) for _ in addresses]
    batched, scalar = MemoryStorage(), MemoryStorage()
    assert batched.prefetch(addresses) == len(addresses)
    assert batched.diff_masks(addresses, lines) == [
        scalar.diff_mask(a, l) for a, l in zip(addresses, lines)
    ]
    assert batched.write_lines(addresses, lines) == [
        scalar.write_line(a, l) for a, l in zip(addresses, lines)
    ]
    for address in addresses:
        assert batched.read_line(address) == scalar.read_line(address)
    print("FALLBACK-OK")
    """
)


def test_no_numpy_fallback_subprocess():
    """Re-import the stack under REPRO_NO_NUMPY=1 and prove the scalar
    fallback is complete and byte-identical for the storage batch APIs."""
    env = dict(os.environ, REPRO_NO_NUMPY="1")
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.run(
        [sys.executable, "-c", _FALLBACK_PROBE],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "FALLBACK-OK" in proc.stdout
