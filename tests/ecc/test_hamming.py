"""Unit + property tests for the Hamming(72,64) SECDED code."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ecc import hamming
from repro.ecc.hamming import DecodeStatus

WORDS = st.integers(min_value=0, max_value=(1 << 64) - 1)
POSITIONS = st.integers(min_value=0, max_value=71)


def test_encode_zero_word():
    assert hamming.encode(0) == 0


def test_clean_roundtrip_simple():
    data = 0xDEADBEEF_12345678
    check = hamming.encode(data)
    result = hamming.decode(data, check)
    assert result.status is DecodeStatus.CLEAN
    assert result.data == data
    assert result.ok


def test_encode_rejects_out_of_range():
    with pytest.raises(ValueError):
        hamming.encode(1 << 64)
    with pytest.raises(ValueError):
        hamming.encode(-1)


def test_decode_rejects_bad_check_byte():
    with pytest.raises(ValueError):
        hamming.decode(0, 0x100)


@given(WORDS)
@settings(max_examples=200)
def test_property_clean_roundtrip(data):
    check = hamming.encode(data)
    result = hamming.decode(data, check)
    assert result.status is DecodeStatus.CLEAN
    assert result.data == data


@given(WORDS, POSITIONS)
@settings(max_examples=200)
def test_property_single_bit_error_corrected(data, position):
    check = hamming.encode(data)
    bad_data, bad_check = hamming.inject_error(data, check, (position,))
    result = hamming.decode(bad_data, bad_check)
    assert result.ok
    assert result.data == data
    assert result.status in (
        DecodeStatus.CORRECTED_DATA,
        DecodeStatus.CORRECTED_CHECK,
    )


@given(WORDS, st.lists(POSITIONS, min_size=2, max_size=2, unique=True))
@settings(max_examples=200)
def test_property_double_bit_error_detected(data, positions):
    check = hamming.encode(data)
    bad_data, bad_check = hamming.inject_error(data, check, tuple(positions))
    result = hamming.decode(bad_data, bad_check)
    assert result.status is DecodeStatus.DOUBLE_ERROR
    assert not result.ok


def test_every_data_bit_position_corrects():
    data = 0xA5A5_A5A5_5A5A_5A5A
    check = hamming.encode(data)
    corrected_data_positions = 0
    for position in range(72):
        bad_data, bad_check = hamming.inject_error(data, check, (position,))
        result = hamming.decode(bad_data, bad_check)
        assert result.data == data, f"position {position} failed"
        if result.status is DecodeStatus.CORRECTED_DATA:
            corrected_data_positions += 1
    assert corrected_data_positions == 64  # the 64 data-bit positions


def test_flipped_data_bit_changes_data_then_fixed():
    data = 0x1
    check = hamming.encode(data)
    bad_data, bad_check = hamming.inject_error(data, check, (3,))
    assert bad_data != data  # position 3 is a data bit
    result = hamming.decode(bad_data, bad_check)
    assert result.status is DecodeStatus.CORRECTED_DATA
    assert result.data == data


def test_overall_parity_bit_flip_reported_as_check_fix():
    data = 0xFFFF_0000_FFFF_0000
    check = hamming.encode(data)
    bad_data, bad_check = hamming.inject_error(data, check, (0,))
    assert bad_data == data
    result = hamming.decode(bad_data, bad_check)
    assert result.status is DecodeStatus.CORRECTED_CHECK
    assert result.flipped_position == 0


def test_inject_error_position_out_of_range():
    with pytest.raises(ValueError):
        hamming.inject_error(0, 0, (72,))


def test_inject_error_twice_same_position_is_identity():
    data = 0x1234_5678_9ABC_DEF0
    check = hamming.encode(data)
    d1, c1 = hamming.inject_error(data, check, (17,))
    d2, c2 = hamming.inject_error(d1, c1, (17,))
    assert (d2, c2) == (data, check)


def test_encode_line_produces_eight_checks():
    words = tuple(range(8))
    checks = hamming.encode_line(words)
    assert len(checks) == 8
    assert checks == tuple(hamming.encode(w) for w in words)


def test_decode_line_roundtrip():
    words = tuple((w * 0x9E3779B97F4A7C15) & ((1 << 64) - 1) for w in range(8))
    checks = hamming.encode_line(words)
    decoded, results = hamming.decode_line(words, checks)
    assert decoded == words
    assert all(r.status is DecodeStatus.CLEAN for r in results)


def test_decode_line_length_mismatch():
    with pytest.raises(ValueError):
        hamming.decode_line((1, 2), (3,))


def test_decode_line_corrects_one_word():
    words = tuple(range(100, 108))
    checks = hamming.encode_line(words)
    corrupted = list(words)
    corrupted[5] ^= 1 << 30
    decoded, results = hamming.decode_line(tuple(corrupted), checks)
    assert decoded == words
    assert results[5].status is DecodeStatus.CORRECTED_DATA


@given(WORDS, WORDS)
@settings(max_examples=100)
def test_property_distinct_words_rarely_share_codewords(a, b):
    # Not a strict code property, but encode must be a function: equal
    # inputs give equal checks, and decode(a, encode(a)) never reports an
    # error.
    if a == b:
        assert hamming.encode(a) == hamming.encode(b)
    assert hamming.decode(a, hamming.encode(a)).status is DecodeStatus.CLEAN

# ----------------------------------------------------------------------
# Table-driven fast path vs the bit-loop reference (the tables' spec)
# ----------------------------------------------------------------------
@given(WORDS)
@settings(max_examples=300)
def test_property_encode_matches_reference(data):
    assert hamming.encode(data) == hamming._encode_reference(data)


@given(WORDS, st.integers(min_value=0, max_value=0xFF))
@settings(max_examples=300)
def test_property_decode_matches_reference_any_check(data, check):
    # Arbitrary (data, check) pairs reach every decode branch, including
    # the out-of-codeword syndromes 72..127.
    fast = hamming.decode(data, check)
    reference = hamming._decode_reference(data, check)
    assert fast == reference


@given(WORDS, POSITIONS)
@settings(max_examples=200)
def test_property_decode_matches_reference_single_error(data, position):
    check = hamming.encode(data)
    bad_data, bad_check = hamming.inject_error(data, check, (position,))
    assert hamming.decode(bad_data, bad_check) == hamming._decode_reference(
        bad_data, bad_check
    )


@given(WORDS, st.lists(POSITIONS, min_size=2, max_size=2, unique=True))
@settings(max_examples=200)
def test_property_decode_matches_reference_double_error(data, positions):
    check = hamming.encode(data)
    bad_data, bad_check = hamming.inject_error(data, check, tuple(positions))
    assert hamming.decode(bad_data, bad_check) == hamming._decode_reference(
        bad_data, bad_check
    )


def test_syndrome_table_marks_check_positions():
    # Positions 1, 2, 4, ... 64 carry check bits (-1); all other nonzero
    # positions map back to their data-bit index.
    table = hamming._SYNDROME_TO_DATA_BIT
    for position in range(1, 72):
        if position in (1, 2, 4, 8, 16, 32, 64):
            assert table[position] == -1
        else:
            assert table[position] >= 0
