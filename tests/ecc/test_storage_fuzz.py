"""Fuzz the SECDED paths *through the storage layer*.

The codec-level fast-vs-reference equivalence is covered in
``test_hamming.py``; this suite drives random single- and double-bit
codeword corruptions through :class:`FaultInjectingStorage`'s read-time
scrub — the path production campaigns exercise — and asserts that the
storage's classification (corrected / detected-uncorrectable) and the
post-scrub array state agree exactly with what the bit-loop reference
decoder says about the same raw codeword.
"""

import pytest

from repro.ecc import hamming
from repro.ecc.hamming import DecodeStatus, _decode_reference
from repro.faults.models import FaultConfig
from repro.faults.storage import FaultInjectingStorage
from repro.memory.request import WORDS_PER_LINE

pytestmark = pytest.mark.faults

_CODEWORD_BITS = 72


def fresh_storage() -> FaultInjectingStorage:
    return FaultInjectingStorage(fault=FaultConfig.disabled())


def corrupt_and_read(storage, line, word, positions):
    """Corrupt one stored word's codeword bits, then read (scrub) the line."""
    raw_before = storage.raw_line(line)
    storage.corrupt_codeword(line, word, positions)
    raw_corrupt = storage.raw_line(line)
    reference = _decode_reference(
        raw_corrupt.words[word], raw_corrupt.checks[word]
    )
    view = storage.read_line(line)
    return raw_before, reference, view


def test_single_bit_fuzz_matches_reference(seeded_rng):
    storage = fresh_storage()
    for trial in range(300):
        line, word = trial, trial % WORDS_PER_LINE
        position = seeded_rng.randrange(_CODEWORD_BITS)
        before, reference, view = corrupt_and_read(
            storage, line, word, (position,)
        )
        # Reference: every single-bit codeword error is correctable back
        # to the original data word.
        assert reference.ok
        assert reference.data == before.words[word]
        # Storage classified it the same way and scrubbed the array.
        assert storage.counters.silent == 0
        assert storage.counters.detected_uncorrectable == 0
        assert view.words[word] == before.words[word]
        raw_after = storage.raw_line(line)
        assert raw_after.words[word] == before.words[word]
        assert raw_after.checks[word] == before.checks[word]
    assert storage.counters.corrected == 300


def test_double_bit_fuzz_matches_reference(seeded_rng):
    storage = fresh_storage()
    corrected = detected = 0
    for trial in range(300):
        line, word = 1000 + trial, trial % WORDS_PER_LINE
        a = seeded_rng.randrange(_CODEWORD_BITS)
        b = seeded_rng.randrange(_CODEWORD_BITS)
        while b == a:
            b = seeded_rng.randrange(_CODEWORD_BITS)
        before, reference, view = corrupt_and_read(storage, line, word, (a, b))
        if reference.status is DecodeStatus.DOUBLE_ERROR:
            detected += 1
            # Flagged and left raw, exactly as the reference demands.
            raw_after = storage.raw_line(line)
            assert raw_after.words[word] == view.words[word]
            assert storage.data_flip(line, word) != 0 or storage.check_flip(line, word) != 0
        else:  # pragma: no cover - double flips always raise DOUBLE_ERROR
            corrected += 1
    assert detected == 300
    assert storage.counters.detected_uncorrectable == 300
    assert storage.counters.corrected == corrected == 0


def test_triple_bit_fuzz_never_diverges_from_reference(seeded_rng):
    # Triple errors are beyond SECDED: the decoder may miscorrect (to a
    # wrong-but-consistent codeword) or flag a double error.  Whatever it
    # does, the storage layer must classify identically to the reference
    # and must leave the array in a state consistent with its ledger.
    storage = fresh_storage()
    outcomes = {"silent": 0, "detected": 0}
    for trial in range(200):
        line, word = 5000 + trial, trial % WORDS_PER_LINE
        positions = tuple(seeded_rng.sample(range(_CODEWORD_BITS), 3))
        before, reference, view = corrupt_and_read(storage, line, word, positions)
        raw_after = storage.raw_line(line)
        if reference.status is DecodeStatus.DOUBLE_ERROR:
            outcomes["detected"] += 1
            assert raw_after.words[word] == view.words[word]
        else:
            # Miscorrection: scrubbed to the decoder's (wrong) answer —
            # a silent corruption, and the ledger must still reconcile
            # raw state with the original pristine value.
            outcomes["silent"] += 1
            assert reference.data != before.words[word]
            assert raw_after.words[word] == reference.data
            assert (
                raw_after.words[word] ^ storage.data_flip(line, word)
                == before.words[word]
            )
    assert outcomes["silent"] == storage.counters.silent
    assert outcomes["detected"] == storage.counters.detected_uncorrectable
    assert outcomes["silent"] > 0  # the fuzz actually found miscorrections


def test_fast_decode_agrees_with_reference_on_storage_codewords(seeded_rng):
    # Belt and braces: the exact (data, check) pairs the storage scrub
    # feeds to the fast decoder produce identical DecodeResults from the
    # bit-loop reference.
    storage = fresh_storage()
    for trial in range(200):
        line, word = 9000 + trial, trial % WORDS_PER_LINE
        count = seeded_rng.choice((1, 1, 2, 2, 3))
        positions = tuple(seeded_rng.sample(range(_CODEWORD_BITS), count))
        storage.corrupt_codeword(line, word, positions)
        raw = storage.raw_line(line)
        fast = hamming.decode(raw.words[word], raw.checks[word])
        reference = _decode_reference(raw.words[word], raw.checks[word])
        assert fast == reference
