"""Unit tests for the scheduler-policy layer: chain mechanics + protocol."""

import inspect

import pytest

from repro.core.fine import FineWritePolicy, SilentWritePolicy
from repro.core.palp import PartitionParallelWritePolicy
from repro.core.pausing import WritePausingPolicy
from repro.core.row import ReadOverWritePolicy
from repro.core.wow import WriteOverWritePolicy
from repro.memory.policy import (
    BaseSchedulerPolicy,
    CoarseWritePolicy,
    PolicyChain,
    ReadAdmission,
    SchedulerPolicy,
    WriteContext,
)

ALL_POLICY_TYPES = [
    CoarseWritePolicy,
    SilentWritePolicy,
    FineWritePolicy,
    ReadOverWritePolicy,
    WriteOverWritePolicy,
    PartitionParallelWritePolicy,
    WritePausingPolicy,
]


class FakeController:
    """Just enough controller for PolicyChain.select_write."""

    def __init__(self, ctx=None):
        self.ctx = ctx
        self.candidate_calls = 0

    def select_write_candidate(self, now):
        self.candidate_calls += 1
        return self.ctx


class Recorder(BaseSchedulerPolicy):
    name = "recorder"

    def __init__(self, pre=None, select=False, admit=None):
        super().__init__()
        self._pre = pre
        self._select = select
        self._admit = admit
        self.events = []

    def pre_select(self, now):
        self.events.append(("pre", now))
        return self._pre

    def select_write(self, ctx):
        self.events.append(("select", ctx))
        return self._select

    def admit_overlap_read(self, window, request, now):
        self.events.append(("admit", request))
        return self._admit

    def on_window_open(self, window, rank):
        self.events.append(("open", rank))

    def on_window_close(self, window, rank):
        self.events.append(("close", rank))

    def on_verify_result(self, request, rollback):
        self.events.append(("verify", request, rollback))


class Permissive(Recorder):
    name = "permissive"
    reads_block_writes = False
    mark_reads_delayed_in_drain = False


# ----------------------------------------------------------------------
# Chain construction
# ----------------------------------------------------------------------
def test_empty_chain_rejected():
    with pytest.raises(ValueError):
        PolicyChain(FakeController(), [])


def test_bind_happens_at_construction():
    controller = FakeController()
    policy = Recorder()
    chain = PolicyChain(controller, [policy])
    assert policy.controller is controller
    assert policy.chain is chain


def test_describe_joins_names_in_issue_order():
    chain = PolicyChain(FakeController(), [Recorder(), Permissive()])
    assert chain.describe() == "recorder -> permissive"


def test_find_returns_first_of_type():
    first, second = Recorder(), Recorder()
    chain = PolicyChain(FakeController(), [first, second])
    assert chain.find(Recorder) is first
    assert chain.find(WritePausingPolicy) is None


def test_discipline_flags_require_unanimity():
    strict = PolicyChain(FakeController(), [Recorder(), Recorder()])
    assert strict.reads_block_writes
    assert strict.mark_reads_delayed_in_drain
    mixed = PolicyChain(FakeController(), [Recorder(), Permissive()])
    assert not mixed.reads_block_writes
    assert not mixed.mark_reads_delayed_in_drain


# ----------------------------------------------------------------------
# The two-phase write step
# ----------------------------------------------------------------------
def test_pre_select_claims_step_before_head_selection():
    controller = FakeController()
    claimer = Recorder(pre=True)
    later = Recorder()
    assert PolicyChain(controller, [claimer, later]).select_write(5)
    assert controller.candidate_calls == 0  # no head was even picked
    assert later.events == []  # chain stopped at the claimer


def test_pre_select_false_ends_step_without_progress():
    controller = FakeController()
    blocker = Recorder(pre=False)
    later = Recorder()
    assert not PolicyChain(controller, [blocker, later]).select_write(5)
    assert controller.candidate_calls == 0
    assert later.events == []


def test_no_candidate_means_no_progress():
    controller = FakeController(ctx=None)
    policy = Recorder(select=True)
    assert not PolicyChain(controller, [policy]).select_write(5)
    assert controller.candidate_calls == 1
    assert policy.events == [("pre", 5)]  # select_write never offered


def test_first_claiming_policy_wins_the_step():
    ctx = WriteContext(now=5, head=object(), decoded=object())
    controller = FakeController(ctx=ctx)
    decliner = Recorder(select=False)
    winner = Recorder(select=True)
    shadowed = Recorder(select=True)
    chain = PolicyChain(controller, [decliner, winner, shadowed])
    assert chain.select_write(5)
    assert ("select", ctx) in decliner.events  # offered, declined
    assert ("select", ctx) in winner.events
    assert ("select", ctx) not in shadowed.events  # never consulted


# ----------------------------------------------------------------------
# Broadcasts
# ----------------------------------------------------------------------
def test_admit_overlap_read_returns_first_plan():
    plan = ReadAdmission(chips=(0, 1), missing_word=None)
    refuser = Recorder(admit=None)
    planner = Recorder(admit=plan)
    chain = PolicyChain(FakeController(), [refuser, planner])
    assert chain.admit_overlap_read(object(), object(), 0) is plan
    assert [e[0] for e in refuser.events] == ["admit"]


def test_lifecycle_broadcasts_reach_every_policy():
    a, b = Recorder(), Recorder()
    chain = PolicyChain(FakeController(), [a, b])
    chain.on_window_open(object(), rank=0)
    chain.on_window_close(object(), rank=0)
    chain.on_verify_result(request=object(), rollback=True)
    for policy in (a, b):
        kinds = [e[0] for e in policy.events]
        assert kinds == ["open", "close", "verify"]


# ----------------------------------------------------------------------
# Protocol conformance (the contract mypy locks down in CI)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy_type", ALL_POLICY_TYPES)
def test_concrete_policies_satisfy_the_protocol(policy_type):
    policy = policy_type()
    assert isinstance(policy, SchedulerPolicy)
    assert policy.name  # every policy names itself for describe()


@pytest.mark.parametrize("policy_type", ALL_POLICY_TYPES)
def test_hook_signatures_match_the_protocol(policy_type):
    """Local stand-in for the CI mypy gate: overridden hooks must keep
    the protocol's parameter list exactly."""
    hooks = [
        "bind", "pre_select", "select_write", "on_read_enqueued",
        "admit_overlap_read", "on_window_open", "on_window_close",
        "on_verify_result",
    ]
    for hook in hooks:
        expected = inspect.signature(getattr(BaseSchedulerPolicy, hook))
        actual = inspect.signature(getattr(policy_type, hook))
        assert list(actual.parameters) == list(expected.parameters), (
            f"{policy_type.__name__}.{hook} diverges from the protocol"
        )


def test_read_admission_is_immutable():
    plan = ReadAdmission(chips=(1, 2, 3))
    assert plan.missing_word is None
    with pytest.raises(Exception):
        plan.chips = (9,)
