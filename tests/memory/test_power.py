"""Unit tests for the PCM energy model."""

import pytest

from repro.memory.power import DEFAULT_ENERGY_MODEL, EnergyModel
from repro.sim.metrics import MemoryStats


def _stats(reads=0, chip_writes=None, verifies=0, silents=0, writes=0):
    stats = MemoryStats()
    stats.reads_completed = reads
    stats.writes_completed = writes
    stats.verify_count = verifies
    stats.silent_writes = silents
    stats.chip_word_writes = dict(chip_writes or {})
    return stats


def test_empty_run_has_zero_energy():
    assert DEFAULT_ENERGY_MODEL.run_energy_uj(MemoryStats()) == 0.0


def test_reads_contribute_line_read_energy():
    model = EnergyModel(line_read_nj=2.0)
    stats = _stats(reads=500)
    assert model.run_energy_uj(stats) == pytest.approx(1.0)  # 1000 nJ


def test_code_updates_split_from_data_writes():
    model = EnergyModel(word_write_nj=1.0, code_update_nj=0.5)
    stats = _stats(chip_writes={0: 10, 8: 10, 9: 10})
    # 10 data words + 20 code updates.
    assert model.run_energy_uj(stats) == pytest.approx(
        (10 * 1.0 + 20 * 0.5) / 1000.0
    )


def test_verify_and_silent_costs_counted():
    model = EnergyModel(verify_read_nj=1.0, compare_nj=2.0)
    stats = _stats(verifies=3, silents=4)
    assert model.run_energy_uj(stats) == pytest.approx((3 + 8) / 1000.0)


def test_energy_per_request():
    model = EnergyModel(line_read_nj=1.0)
    stats = _stats(reads=10, writes=0)
    assert model.energy_per_request_nj(stats) == pytest.approx(1.0)
    assert model.energy_per_request_nj(MemoryStats()) == 0.0


def test_end_to_end_energy_is_positive_and_comparable():
    from repro.sim.experiment import run_workload
    from repro.sim.simulator import SimulationParams

    params = SimulationParams(instructions_per_core=5_000, n_cores=2)
    base = run_workload("canneal", "baseline", params)
    pcmap = run_workload("canneal", "rwow-rde", params)
    e_base = DEFAULT_ENERGY_MODEL.run_energy_uj(base.memory)
    e_pcmap = DEFAULT_ENERGY_MODEL.run_energy_uj(pcmap.memory)
    assert e_base > 0 and e_pcmap > 0
    # PCMap adds PCC updates and verify reads: some energy overhead, but
    # bounded (well under 2x).
    assert e_pcmap < 2.0 * e_base
