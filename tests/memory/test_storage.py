"""Unit tests for the functional backing store."""

import pytest

from repro.ecc import hamming, parity
from repro.memory.storage import MemoryStorage, _cold_pattern


def test_cold_pattern_deterministic():
    assert _cold_pattern(42) == _cold_pattern(42)
    assert _cold_pattern(42) != _cold_pattern(43)


def test_cold_read_has_consistent_codes():
    storage = MemoryStorage()
    line = storage.read_line(7)
    assert line.checks == hamming.encode_line(line.words)
    assert line.pcc == parity.compute_parity(line.words)


def test_read_word_matches_line():
    storage = MemoryStorage()
    line = storage.read_line(3)
    for w in range(8):
        assert storage.read_word(3, w) == line.words[w]


def test_read_word_index_checked():
    with pytest.raises(ValueError):
        MemoryStorage().read_word(0, 8)


def test_diff_mask_detects_changes_and_silent_words():
    storage = MemoryStorage()
    old = storage.read_line(5).words
    new = list(old)
    new[2] ^= 0xFF
    new[6] ^= 1
    mask = storage.diff_mask(5, tuple(new))
    assert mask == (1 << 2) | (1 << 6)
    assert storage.silent_word_writes == 6


def test_write_line_updates_only_dirty_words():
    storage = MemoryStorage()
    old = storage.read_line(9).words
    new = tuple(w ^ 0xABC for w in old)
    # Only word 4 flagged dirty: other words must stay old despite new
    # values being different (the mask is authoritative).
    storage.write_line(9, new, dirty_mask=1 << 4)
    line = storage.read_line(9)
    assert line.words[4] == new[4]
    for w in range(8):
        if w != 4:
            assert line.words[w] == old[w]


def test_write_line_maintains_codes():
    storage = MemoryStorage()
    old = storage.read_line(11).words
    new = list(old)
    new[0] = 0x1234
    new[7] = 0x5678
    storage.write_line(11, tuple(new))
    line = storage.read_line(11)
    assert line.checks == hamming.encode_line(line.words)
    assert line.pcc == parity.compute_parity(line.words)


def test_write_line_derives_mask_when_none():
    storage = MemoryStorage()
    old = storage.read_line(13).words
    new = list(old)
    new[1] ^= 0b11
    mask = storage.write_line(13, tuple(new))
    assert mask == 1 << 1
    assert storage.committed_words == 1


def test_corrupt_bit_breaks_secded_until_corrected():
    storage = MemoryStorage()
    line_addr = 21
    storage.read_line(line_addr)
    storage.corrupt_bit(line_addr, word=3, bit=17)
    line = storage.read_line(line_addr)
    result = hamming.decode(line.words[3], line.checks[3])
    assert result.status is hamming.DecodeStatus.CORRECTED_DATA
    assert result.data == line.words[3] ^ (1 << 17)


def test_len_and_contains_track_materialised_lines():
    storage = MemoryStorage()
    assert len(storage) == 0
    assert 5 not in storage
    storage.read_line(5)
    assert len(storage) == 1
    assert 5 in storage


def test_no_pcc_mode():
    storage = MemoryStorage(keep_pcc=False)
    line = storage.read_line(1)
    assert line.pcc == 0
