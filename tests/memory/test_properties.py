"""Hypothesis property tests across the memory substrate."""

from hypothesis import given, settings, strategies as st

from repro.memory.bus import BusDirection, ChannelBus
from repro.memory.queues import RequestQueue
from repro.memory.rank import RankState
from repro.memory.request import make_read
from repro.memory.timing import DEFAULT_TIMING


@given(st.lists(st.sampled_from([BusDirection.READ, BusDirection.WRITE]),
                min_size=1, max_size=30))
@settings(max_examples=100)
def test_property_bus_reservations_never_overlap(directions):
    bus = ChannelBus(DEFAULT_TIMING, n_chips=10)
    previous_end = 0
    for direction in directions:
        start, end = bus.reserve(direction, earliest=0)
        assert start >= previous_end
        assert end > start
        previous_end = end


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=9),
                          st.sampled_from([BusDirection.READ, BusDirection.WRITE])),
                min_size=1, max_size=40))
@settings(max_examples=100)
def test_property_partial_bus_per_chip_monotone(operations):
    bus = ChannelBus(DEFAULT_TIMING, n_chips=10)
    last_end = {c: 0 for c in range(10)}
    for chip, direction in operations:
        start, end = bus.reserve_partial(chip, direction, earliest=0)
        assert start >= last_end[chip]
        last_end[chip] = end


@given(st.lists(st.tuples(st.booleans(),
                          st.integers(min_value=0, max_value=9),
                          st.integers(min_value=0, max_value=7),
                          st.integers(min_value=1, max_value=5_000)),
                min_size=1, max_size=60))
@settings(max_examples=100)
def test_property_rank_busy_horizons_never_shrink(operations):
    rank = RankState(DEFAULT_TIMING, n_chips=10, n_banks=8)
    clock = 0
    for is_write, chip, bank, duration in operations:
        before = rank.chips[chip].write_busy_until
        start = max(clock, rank.chips[chip].write_ready(bank))
        end = start + duration
        if is_write:
            rank.reserve_chip_write(chip, bank, end, row=None)
            assert rank.chips[chip].write_busy_until >= before
        else:
            rank.reserve_read([chip], bank, end, row=None)
            assert rank.chips[chip].write_busy_until == before
        clock += duration // 2


@given(st.integers(min_value=1, max_value=16),
       st.lists(st.booleans(), min_size=1, max_size=60))
@settings(max_examples=100)
def test_property_queue_occupancy_invariants(capacity, pushes):
    queue = RequestQueue(capacity=capacity)
    next_id = 0
    for push in pushes:
        if push and not queue.full:
            next_id += 1
            queue.push(make_read(next_id, next_id * 64))
        elif not queue.empty:
            queue.remove(queue.oldest())
        assert 0 <= len(queue) <= capacity
        assert 0.0 <= queue.occupancy <= 1.0
        assert queue.high_water <= capacity


@given(st.floats(min_value=1.1, max_value=10.0))
@settings(max_examples=50)
def test_property_timing_ratio_roundtrip(ratio):
    timing = DEFAULT_TIMING.with_write_to_read_ratio(ratio)
    assert timing.write_to_read_ratio == __import__("pytest").approx(ratio)
    assert timing.array_write_ns == DEFAULT_TIMING.array_write_ns
