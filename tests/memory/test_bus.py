"""Unit tests for the channel bus model (turnaround, partial buses)."""

import pytest

from repro.memory.bus import BusDirection, ChannelBus
from repro.memory.timing import DEFAULT_TIMING


@pytest.fixture
def bus():
    return ChannelBus(DEFAULT_TIMING, n_chips=10)


def test_first_reservation_starts_at_earliest(bus):
    start, end = bus.reserve(BusDirection.READ, earliest=100)
    assert start == 100
    assert end == 100 + DEFAULT_TIMING.burst_ticks


def test_back_to_back_same_direction(bus):
    _s1, e1 = bus.reserve(BusDirection.READ, 0)
    s2, _e2 = bus.reserve(BusDirection.READ, 0)
    # tCCD (4 cycles) equals the burst, so bursts pack back-to-back.
    assert s2 == e1


def test_write_to_read_turnaround(bus):
    _s1, e1 = bus.reserve(BusDirection.WRITE, 0)
    s2, _e2 = bus.reserve(BusDirection.READ, 0)
    assert s2 == e1 + DEFAULT_TIMING.cycles(DEFAULT_TIMING.tWTR)


def test_read_to_write_turnaround(bus):
    _s1, e1 = bus.reserve(BusDirection.READ, 0)
    s2, _e2 = bus.reserve(BusDirection.WRITE, 0)
    assert s2 == e1 + DEFAULT_TIMING.cycles(DEFAULT_TIMING.tRTW)


def test_earliest_beyond_busy_time_wins(bus):
    bus.reserve(BusDirection.READ, 0)
    start, _end = bus.reserve(BusDirection.READ, 10_000)
    assert start == 10_000


def test_custom_duration(bus):
    start, end = bus.reserve(BusDirection.READ, 0, duration=777)
    assert end - start == 777


def test_busy_ticks_accumulate(bus):
    bus.reserve(BusDirection.READ, 0)
    bus.reserve(BusDirection.WRITE, 0)
    assert bus.busy_ticks == 2 * DEFAULT_TIMING.burst_ticks


def test_partial_buses_independent(bus):
    s0, e0 = bus.reserve_partial(0, BusDirection.WRITE, 0)
    s1, _e1 = bus.reserve_partial(1, BusDirection.READ, 0)
    # Different sub-links: no serialisation, no turnaround.
    assert s0 == 0 and s1 == 0
    # Same sub-link serialises.
    s0b, _ = bus.reserve_partial(0, BusDirection.WRITE, 0)
    assert s0b >= e0


def test_partial_bus_direction_turnaround(bus):
    _s, e = bus.reserve_partial(3, BusDirection.WRITE, 0)
    s2, _ = bus.reserve_partial(3, BusDirection.READ, 0)
    assert s2 == e + DEFAULT_TIMING.cycles(DEFAULT_TIMING.tWTR)


def test_full_width_burst_occupies_sub_links(bus):
    _s, e = bus.reserve(BusDirection.READ, 0)
    s2, _ = bus.reserve_partial(5, BusDirection.READ, 0)
    assert s2 >= e


def test_partial_chip_out_of_range(bus):
    with pytest.raises(ValueError):
        bus.reserve_partial(10, BusDirection.READ, 0)


def test_free_at_tracks_full_bus(bus):
    assert bus.free_at == 0
    _s, e = bus.reserve(BusDirection.READ, 50)
    assert bus.free_at == e
    assert bus.chip_free_at(0) == e
