"""Unit tests for the multi-channel memory facade."""


from repro.core.controller import PCMapController
from repro.core.systems import make_system
from repro.memory.memsys import MainMemory
from repro.memory.request import RequestKind, make_read, make_write
from repro.sim.engine import Engine


def _memory(name="baseline", **overrides):
    engine = Engine()
    return engine, MainMemory(engine, make_system(name, **overrides))


def test_one_controller_per_channel():
    _engine, memory = _memory()
    assert len(memory.controllers) == 4


def test_requests_route_by_channel():
    engine, memory = _memory()
    # Consecutive lines interleave over channels.
    for line in range(4):
        req = make_read(line, line * 64)
        memory.submit(req)
    engine.run(max_events=100_000)
    for channel, controller in enumerate(memory.controllers):
        assert controller.stats.reads_completed == 1, channel


def test_controller_for_matches_mapper():
    _engine, memory = _memory()
    address = 7 * 64
    decoded = memory.mapper.decode(address)
    assert memory.controller_for(address) is memory.controllers[decoded.channel]


def test_pcmap_config_builds_pcmap_controllers():
    _engine, memory = _memory("rwow-rde")
    assert all(isinstance(c, PCMapController) for c in memory.controllers)


def test_functional_mode_creates_shared_storage():
    _engine, memory = _memory("rwow-rde", functional=True)
    assert memory.storage is not None
    assert all(c.storage is memory.storage for c in memory.controllers)


def test_non_functional_mode_has_no_storage():
    _engine, memory = _memory()
    assert memory.storage is None


def test_idle_property():
    engine, memory = _memory()
    assert memory.idle
    memory.submit(make_write(1, 0, 0b1))
    assert not memory.idle
    engine.run(max_events=10_000)
    assert memory.idle


def test_aggregate_stats_sums_channels():
    engine, memory = _memory()
    for line in range(8):
        memory.submit(make_read(line, line * 64))
    engine.run(max_events=100_000)
    assert memory.aggregate_stats().reads_completed == 8


def test_can_accept_and_wait_for_space():
    engine, memory = _memory()
    address = 0
    assert memory.can_accept(RequestKind.READ, address)
    fired = []
    # Fill channel 0's read queue.
    line = 0
    while memory.can_accept(RequestKind.READ, 0):
        memory.submit(make_read(1000 + line, line * 4 * 64))
        line += 1
        if line > 50:
            break
    if not memory.can_accept(RequestKind.READ, 0):
        memory.wait_for_space(RequestKind.READ, 0, lambda: fired.append(1))
        engine.run(max_events=100_000)
        assert fired == [1]


def test_irlp_helpers_empty_run():
    _engine, memory = _memory()
    assert memory.irlp_average() == 0.0
    assert memory.irlp_max() == 0.0
    assert memory.write_service_busy_ticks() == 0
