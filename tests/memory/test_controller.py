"""Unit tests for the baseline memory controller."""

import pytest

from repro.memory.request import ServiceClass
from repro.memory.timing import DEFAULT_TIMING

from tests.conftest import harness


def test_single_read_completes(baseline):
    req = baseline.read(0)
    baseline.run()
    assert req.completion > 0
    # Cold read: array read + CAS + burst.
    expected_min = (
        DEFAULT_TIMING.array_read_ticks
        + DEFAULT_TIMING.cycles(DEFAULT_TIMING.tCL)
        + DEFAULT_TIMING.burst_ticks
    )
    assert req.latency >= expected_min


def test_row_hit_read_is_faster(baseline):
    # Same line twice: second read hits the open row.
    first = baseline.read(0)
    baseline.run()
    second = baseline.read(0)
    baseline.run()
    assert second.latency < first.latency
    assert second.latency >= (
        DEFAULT_TIMING.cycles(DEFAULT_TIMING.tCL) + DEFAULT_TIMING.burst_ticks
    )


def test_single_write_completes_with_write_latency(baseline):
    req = baseline.write(0, dirty_mask=0b1)
    baseline.run()
    assert req.completion > 0
    assert req.latency >= DEFAULT_TIMING.array_write_ticks


def test_silent_write_cheap(baseline):
    silent = baseline.write(0, dirty_mask=0)
    baseline.run()
    assert silent.service_class is ServiceClass.SILENT
    assert silent.latency < DEFAULT_TIMING.array_write_ticks


def test_read_priority_over_buffered_write(baseline):
    baseline.write(1, 0b1)
    read = baseline.read(2)
    baseline.run()
    # The read should not wait behind a full write drain: only one write
    # is buffered, well below the watermark, but it may have been issued
    # opportunistically before the read arrived.  The read still finishes
    # long before a serial write+read would suggest if writes had priority.
    assert read.completion > 0


def test_writes_buffered_until_watermark():
    h = harness("baseline")
    wq = h.controller.write_q
    # Fill to just below the high watermark: no drain mode.
    below = int(wq.capacity * 0.8)  # 25 entries: occupancy not > 0.8
    for i in range(below):
        h.write(i, 0b1)
    assert h.controller.stats.drain_entries == 0
    for i in range(100, 104):
        h.write(i, 0b1)
    assert h.controller.stats.drain_entries >= 1
    h.run()
    assert h.all_done()


def test_drain_delays_reads():
    h = harness("baseline")
    for i in range(30):
        h.write(i, 0xFF)
    read = h.read(1000)
    h.run()
    assert read.delayed_by_write
    assert h.controller.stats.reads_delayed_by_write >= 1


def test_baseline_irlp_equals_dirty_count():
    h = harness("baseline")
    h.write(0, 0b111)  # 3 dirty words
    h.run()
    windows = [w for w in h.controller.irlp.windows if w.duration > 0]
    assert len(windows) == 1
    assert windows[0].irlp() == pytest.approx(3.0)


def test_baseline_writes_serialise():
    h = harness("baseline")
    w1 = h.write(0, 0b1)
    w2 = h.write(1, 0b10)  # different chip, but coarse writes block all
    h.run()
    assert w2.start_service >= w1.completion - DEFAULT_TIMING.burst_ticks


def test_stats_count_requests(baseline):
    baseline.read(0)
    baseline.read(1)
    baseline.write(2, 0b11)
    baseline.run()
    assert baseline.controller.stats.reads_completed == 2
    assert baseline.controller.stats.writes_completed == 1
    assert baseline.controller.stats.dirty_word_histogram[2] == 1


def test_queue_capacity_backpressure():
    h = harness("baseline")
    accepted = 0
    for i in range(20):
        try:
            h.read(i)
            accepted += 1
        except OverflowError:
            break
    # Reads issue immediately at tick 0, so a couple leave the queue
    # before it fills; acceptance stays near the configured capacity.
    assert accepted <= h.config.read_queue_capacity + 4
    assert not h.controller.can_accept(h.submitted[0].kind)


def test_controller_idle_after_drain(baseline):
    baseline.read(0)
    baseline.write(1, 0b1)
    baseline.run()
    assert baseline.controller.idle


def test_reads_to_different_banks_overlap():
    h = harness("baseline")
    # Lines in different banks: bank changes every lines_per_row lines.
    lines_per_row = h.config.geometry.lines_per_row
    r1 = h.read(0)
    r2 = h.read(lines_per_row)  # next bank
    h.run()
    # Bank-level parallelism: the two array reads overlap, so the second
    # finishes well before two serial reads would.
    serial = 2 * (r1.latency)
    assert r2.completion < serial


def test_reads_to_same_bank_serialise():
    h = harness("baseline")
    r1 = h.read(0)
    r2 = h.read(1)  # same bank (consecutive columns), different row? no: same row
    r3 = h.read(8 * h.config.geometry.lines_per_row * 123)  # other bank/row
    h.run()
    assert r1.completion > 0 and r2.completion > 0 and r3.completion > 0


def test_write_data_committed_in_functional_mode():
    h = harness("baseline", functional=True)
    from repro.memory.storage import MemoryStorage

    storage = MemoryStorage(keep_pcc=False)
    h.controller.storage = storage
    h.controller.detector.storage = storage
    line_index = 5
    address_line = (line_index * 64 * 4) // 64
    old = storage.read_line(address_line).words
    new = list(old)
    new[2] ^= 0xFFFF
    from repro.memory.request import make_write

    req = make_write(999, line_index * 64 * 4, 0, new_words=tuple(new))
    h.controller.submit(req)
    h.run()
    assert req.dirty_mask == 0b100  # essential-word detection narrowed it
    assert storage.read_line(address_line).words[2] == new[2]


def test_read_forwarded_from_write_queue():
    h = harness("baseline")
    w = h.write(5, 0b1)
    # Fill more writes so w sits buffered while we read it back.
    for i in range(10, 20):
        h.write(i, 0b1)
    r = h.read(5)
    h.run()
    assert h.controller.stats.forwarded_reads >= 1
    assert r.completion > 0


def test_forwarded_read_returns_merged_data():
    from repro.memory.request import make_read, make_write
    from repro.memory.storage import MemoryStorage

    h = harness("baseline", functional=True)
    storage = MemoryStorage(keep_pcc=False)
    h.controller.storage = storage
    h.controller.detector.storage = storage
    line_index = 3
    address = line_index * 64 * 4
    line_address = address // 64
    old = storage.read_line(line_address).words
    new = list(old)
    new[1] ^= 0xBEEF
    write = make_write(500, address, 0, new_words=tuple(new))
    # Pile writes ahead so `write` stays queued when the read arrives.
    for i in range(30, 50):
        h.write(i, 0xFF)
    h.controller.submit(write)
    read = make_read(501, address)
    h.controller.submit(read)
    h.submitted.extend([write, read])
    h.run()
    assert read.data_words is not None
    assert read.data_words[1] == new[1]


def test_row_buffer_hit_rate_tracked():
    h = harness("baseline")
    h.read(0)
    h.run()
    h.read(0)  # same line: open-row hit
    h.run()
    stats = h.controller.stats
    assert stats.row_buffer_misses >= 1
    assert stats.row_buffer_hits >= 1
    assert 0.0 < stats.row_buffer_hit_rate < 1.0
