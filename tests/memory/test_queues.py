"""Unit tests for request queues and drain watermarks."""

import pytest

from repro.memory.queues import RequestQueue, WriteQueue
from repro.memory.request import make_read, make_write


def _reads(n):
    return [make_read(i, i * 64) for i in range(n)]


def test_offer_until_full():
    queue = RequestQueue(capacity=2)
    a, b, c = _reads(3)
    assert queue.offer(a)
    assert queue.offer(b)
    assert not queue.offer(c)
    assert queue.full


def test_push_raises_when_full():
    queue = RequestQueue(capacity=1)
    queue.push(_reads(1)[0])
    with pytest.raises(OverflowError):
        queue.push(make_read(99, 0))


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        RequestQueue(capacity=0)


def test_fifo_order_and_oldest():
    queue = RequestQueue(capacity=4)
    reqs = _reads(3)
    for req in reqs:
        queue.push(req)
    assert queue.oldest() is reqs[0]
    assert queue.entries() == reqs
    assert list(queue) == reqs


def test_remove_frees_space_and_notifies():
    queue = RequestQueue(capacity=1)
    req = _reads(1)[0]
    queue.push(req)
    called = []
    queue.wait_for_space(lambda: called.append(True))
    assert called == []  # still full
    queue.remove(req)
    assert called == [True]


def test_waiter_fires_once():
    queue = RequestQueue(capacity=1)
    a, b = _reads(2)
    queue.push(a)
    calls = []
    queue.wait_for_space(lambda: calls.append(1))
    queue.remove(a)
    queue.push(b)
    queue.remove(b)
    assert calls == [1]


def test_occupancy_and_high_water():
    queue = RequestQueue(capacity=4)
    for req in _reads(3):
        queue.push(req)
    assert queue.occupancy == pytest.approx(0.75)
    assert queue.high_water == 3


def test_oldest_of_empty_queue_is_none():
    assert RequestQueue(capacity=1).oldest() is None


def test_write_queue_watermarks():
    queue = WriteQueue(capacity=10, drain_high=0.8, drain_low=0.25)
    writes = [make_write(i, i * 64, 1) for i in range(9)]
    for w in writes[:8]:
        queue.push(w)
    assert not queue.above_high_watermark  # exactly 0.8, needs strictly more
    queue.push(writes[8])
    assert queue.above_high_watermark
    while len(queue) > 2:
        queue.remove(queue.oldest())
    assert queue.below_low_watermark


def test_write_queue_invalid_watermarks():
    with pytest.raises(ValueError):
        WriteQueue(capacity=4, drain_high=0.2, drain_low=0.5)
    with pytest.raises(ValueError):
        WriteQueue(capacity=4, drain_high=1.5, drain_low=0.1)
