"""Unit tests for the rank/chip occupancy model."""

import pytest

from repro.memory.rank import ChipState, RankState
from repro.memory.timing import DEFAULT_TIMING


@pytest.fixture
def rank():
    return RankState(DEFAULT_TIMING, n_chips=10, n_banks=8)


def test_fresh_rank_everything_ready(rank):
    assert rank.read_ready_time(range(10), bank=0) == 0
    assert rank.write_ready_time(range(10), bank=0) == 0
    assert rank.busy_chips_at(0) == ()


def test_write_blocks_chip_across_all_banks(rank):
    rank.reserve_chip_write(chip=3, bank=0, end=1000, row=5)
    # Same chip, *different* bank: still blocked (single-server writes).
    assert rank.chips[3].read_ready(bank=7) == 1000
    # Other chips unaffected.
    assert rank.chips[4].read_ready(bank=0) == 0


def test_read_blocks_only_its_bank(rank):
    rank.reserve_read([2], bank=1, end=500, row=9)
    assert rank.chips[2].read_ready(bank=1) == 500
    assert rank.chips[2].read_ready(bank=2) == 0


def test_busy_chips_reflects_write_reservations(rank):
    rank.reserve_chip_write(0, 0, 1000, None)
    rank.reserve_chip_write(4, 2, 800, None)
    assert rank.busy_chips_at(0) == (0, 4)
    assert rank.busy_chips_at(900) == (0,)
    assert rank.busy_chips_at(1000) == ()


def test_multi_chip_ready_time_is_max(rank):
    rank.reserve_chip_write(1, 0, 300, None)
    rank.reserve_chip_write(2, 0, 700, None)
    assert rank.read_ready_time([0, 1, 2], bank=0) == 700


def test_row_hit_requires_all_chips(rank):
    rank.reserve_read([0, 1], bank=0, end=10, row=42)
    assert not rank.row_hit([0, 1, 2], bank=0, row=42)
    rank.reserve_read([2], bank=0, end=10, row=42)
    assert rank.row_hit([0, 1, 2], bank=0, row=42)


def test_row_open_any(rank):
    assert not rank.row_open_any([0, 1], bank=3)
    rank.reserve_read([1], bank=3, end=5, row=7)
    assert rank.row_open_any([0, 1], bank=3)


def test_activation_cost_empty_row_buffer(rank):
    cost = rank.activation_ticks([0], bank=0, row=3)
    assert cost == DEFAULT_TIMING.array_read_ticks


def test_activation_cost_row_hit_is_zero(rank):
    rank.reserve_read([0], bank=0, end=1, row=3)
    assert rank.activation_ticks([0], bank=0, row=3) == 0


def test_activation_cost_row_conflict_pays_close(rank):
    rank.reserve_read([0], bank=0, end=1, row=3)
    cost = rank.activation_ticks([0], bank=0, row=4)
    assert cost == DEFAULT_TIMING.row_close_ticks + DEFAULT_TIMING.array_read_ticks


def test_activation_cost_is_worst_chip(rank):
    rank.reserve_read([0], bank=0, end=1, row=3)   # chip 0: hit for row 3
    # chip 1: empty buffer -> array read
    cost = rank.activation_ticks([0, 1], bank=0, row=3)
    assert cost == DEFAULT_TIMING.array_read_ticks


def test_reservations_never_shrink(rank):
    rank.reserve_chip_write(0, 0, 1000, None)
    rank.reserve_chip_write(0, 0, 500, None)  # earlier end must not shrink
    assert rank.chips[0].write_busy_until == 1000


def test_chip_state_slots():
    chip = ChipState(n_banks=4)
    assert chip.write_busy_until == 0
    assert len(chip.array_busy_until) == 4
    assert all(row is None for row in chip.open_row)
