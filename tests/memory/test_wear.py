"""Unit + property tests for Start-Gap wear levelling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.wear import StartGapRemapper


def test_initial_mapping_is_identity():
    remapper = StartGapRemapper(n_lines=8)
    assert remapper.mapping_snapshot() == list(range(8))


def test_parameters_validated():
    with pytest.raises(ValueError):
        StartGapRemapper(n_lines=1)
    with pytest.raises(ValueError):
        StartGapRemapper(n_lines=8, gap_interval=0)


def test_logical_line_bounds():
    remapper = StartGapRemapper(n_lines=8)
    with pytest.raises(ValueError):
        remapper.physical_line(8)


def test_gap_moves_after_interval():
    remapper = StartGapRemapper(n_lines=8, gap_interval=4)
    for _ in range(4):
        remapper.on_write(0)
    assert remapper.stats.gap_moves == 1
    assert remapper.gap == 7


def test_mapping_stays_permutation_through_full_rotation():
    remapper = StartGapRemapper(n_lines=8, gap_interval=1)
    for i in range(200):
        remapper.on_write(i % 8)
        assert remapper.is_permutation(), f"broken after write {i}"


def test_start_advances_when_gap_wraps():
    remapper = StartGapRemapper(n_lines=4, gap_interval=1)
    # Gap positions: 4 -> 3 -> 2 -> 1 -> 0 -> wrap (start++).
    for _ in range(5):
        remapper.on_write(0)
    assert remapper.start == 1
    assert remapper.gap == 4


def test_hot_line_migrates_across_physical_slots():
    remapper = StartGapRemapper(n_lines=8, gap_interval=2)
    touched = set()
    for _ in range(200):
        touched.add(remapper.on_write(3))  # single hot logical line
    assert len(touched) >= 6  # the hot line visited most physical slots


def test_wear_levelling_reduces_max_line_writes():
    hot_writes = 600

    def run(gap_interval):
        remapper = StartGapRemapper(n_lines=16, gap_interval=gap_interval)
        for _ in range(hot_writes):
            remapper.on_write(5)
        return remapper.stats.max_line_writes()

    levelled = run(gap_interval=4)
    unlevelled = run(gap_interval=10 ** 9)
    assert levelled < unlevelled / 2


@given(
    st.integers(min_value=2, max_value=64),
    st.integers(min_value=1, max_value=16),
    st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200),
)
@settings(max_examples=100)
def test_property_mapping_always_injective(n_lines, interval, writes):
    remapper = StartGapRemapper(n_lines=n_lines, gap_interval=interval)
    for logical in writes:
        remapper.on_write(logical % n_lines)
    assert remapper.is_permutation()


def test_stats_imbalance():
    remapper = StartGapRemapper(n_lines=8, gap_interval=10 ** 9)
    for _ in range(10):
        remapper.on_write(0)
    remapper.on_write(1)
    assert remapper.stats.total_writes == 11
    assert remapper.stats.max_line_writes() == 10
    assert remapper.stats.imbalance() > 1.5
