"""Unit + property tests for address mapping."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.address import (
    AddressMapper,
    BASELINE_GEOMETRY,
    MemoryGeometry,
    PCMAP_GEOMETRY,
)
from repro.memory.request import LINE_BYTES

MAPPER = AddressMapper(BASELINE_GEOMETRY)

LINE_ADDRESSES = st.integers(
    min_value=0, max_value=BASELINE_GEOMETRY.total_lines - 1
).map(lambda line: line * LINE_BYTES)


def test_geometry_defaults_match_table1():
    geo = BASELINE_GEOMETRY
    assert geo.n_channels == 4
    assert geo.ranks_per_channel == 1
    assert geo.banks_per_rank == 8
    assert geo.row_bytes == 8192
    assert geo.capacity_bytes == 8 * 1024 ** 3
    assert geo.data_chips == 8


def test_baseline_has_nine_chips_pcmap_ten():
    assert BASELINE_GEOMETRY.chips_per_rank == 9
    assert PCMAP_GEOMETRY.chips_per_rank == 10


def test_ecc_and_pcc_chip_indices():
    assert BASELINE_GEOMETRY.ecc_chip_index == 8
    assert PCMAP_GEOMETRY.ecc_chip_index == 8
    assert PCMAP_GEOMETRY.pcc_chip_index == 9
    with pytest.raises(ValueError):
        BASELINE_GEOMETRY.pcc_chip_index


def test_lines_per_row():
    assert BASELINE_GEOMETRY.lines_per_row == 128


def test_consecutive_lines_interleave_channels():
    channels = [
        MAPPER.decode(line * LINE_BYTES).channel for line in range(8)
    ]
    assert channels == [0, 1, 2, 3, 0, 1, 2, 3]


def test_decode_rejects_unaligned():
    with pytest.raises(ValueError):
        MAPPER.decode(7)


def test_decode_rejects_out_of_capacity():
    with pytest.raises(ValueError):
        MAPPER.decode(BASELINE_GEOMETRY.capacity_bytes)


def test_encode_rejects_out_of_range_fields():
    with pytest.raises(ValueError):
        MAPPER.encode(channel=4, rank=0, bank=0, row=0, column=0)
    with pytest.raises(ValueError):
        MAPPER.encode(channel=0, rank=0, bank=8, row=0, column=0)
    with pytest.raises(ValueError):
        MAPPER.encode(channel=0, rank=0, bank=0, row=0, column=128)


@given(LINE_ADDRESSES)
@settings(max_examples=300)
def test_property_decode_encode_roundtrip(address):
    decoded = MAPPER.decode(address)
    rebuilt = MAPPER.encode(
        decoded.channel, decoded.rank, decoded.bank, decoded.row, decoded.column
    )
    assert rebuilt == address


@given(LINE_ADDRESSES)
@settings(max_examples=300)
def test_property_fields_in_range(address):
    decoded = MAPPER.decode(address)
    geo = BASELINE_GEOMETRY
    assert 0 <= decoded.channel < geo.n_channels
    assert 0 <= decoded.rank < geo.ranks_per_channel
    assert 0 <= decoded.bank < geo.banks_per_rank
    assert 0 <= decoded.column < geo.lines_per_row
    assert decoded.row >= 0
    assert decoded.line_address == address // LINE_BYTES


def test_same_row_lines_share_bank_and_row():
    # Lines that differ only in column should land in the same row/bank.
    a = MAPPER.decode(MAPPER.encode(0, 0, 3, 17, 5))
    b = MAPPER.decode(MAPPER.encode(0, 0, 3, 17, 6))
    assert (a.bank, a.row) == (b.bank, b.row)
    assert a.column + 1 == b.column


def test_bank_key():
    decoded = MAPPER.decode(0)
    assert decoded.bank_key() == (decoded.rank, decoded.bank)


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        MemoryGeometry(row_bytes=100)  # not a multiple of the line size
    with pytest.raises(ValueError):
        MemoryGeometry(n_channels=0)


def test_rows_per_bank_positive():
    assert BASELINE_GEOMETRY.rows_per_bank > 0
