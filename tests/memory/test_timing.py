"""Unit tests for timing parameters (Table I)."""

import pytest

from repro.memory.timing import DEFAULT_TIMING, TimingParams, WriteLatencyMode


def test_default_clock_is_400mhz():
    assert DEFAULT_TIMING.cycle_ticks == 25  # 2.5 ns at 0.1 ns ticks


def test_cycles_helper():
    assert DEFAULT_TIMING.cycles(4) == 100


def test_burst_of_eight_is_four_cycles():
    assert DEFAULT_TIMING.burst_ticks == DEFAULT_TIMING.cycles(4)


def test_array_latencies_from_paper():
    assert DEFAULT_TIMING.array_read_ticks == 600    # 60 ns
    assert DEFAULT_TIMING.array_write_ticks == 1200  # 120 ns


def test_default_write_to_read_ratio_is_two():
    assert DEFAULT_TIMING.write_to_read_ratio == pytest.approx(2.0)


def test_with_write_to_read_ratio_holds_write_constant():
    for ratio in (2.0, 4.0, 6.0, 8.0):
        timing = DEFAULT_TIMING.with_write_to_read_ratio(ratio)
        assert timing.array_write_ns == DEFAULT_TIMING.array_write_ns
        assert timing.write_to_read_ratio == pytest.approx(ratio)


def test_with_write_to_read_ratio_rejects_nonpositive():
    with pytest.raises(ValueError):
        DEFAULT_TIMING.with_write_to_read_ratio(0)


def test_symmetric_variant_equalises_latencies():
    symmetric = DEFAULT_TIMING.symmetric()
    assert symmetric.array_write_ticks == symmetric.array_read_ticks
    assert symmetric.array_write_set_ticks == symmetric.array_read_ticks
    assert symmetric.write_to_read_ratio == pytest.approx(1.0)


def test_ecc_update_cheaper_than_word_write():
    assert 0 < DEFAULT_TIMING.ecc_update_ticks < DEFAULT_TIMING.array_write_ticks


def test_read_write_io_ticks():
    t = DEFAULT_TIMING
    assert t.read_io_ticks == t.cycles(t.tCL) + t.burst_ticks
    assert t.write_io_ticks == t.cycles(t.tWL) + t.burst_ticks


def test_status_poll_matches_paper():
    # 2 memory cycles = 0.8 ns (paper §IV-D1)
    assert DEFAULT_TIMING.status_poll_ticks == 8


def test_set_reset_asymmetry():
    timing = TimingParams(write_mode=WriteLatencyMode.SET_RESET)
    assert timing.array_write_set_ticks == 1200   # 120 ns SET
    assert timing.array_write_reset_ticks == 500  # 50 ns RESET


def test_timing_params_frozen():
    with pytest.raises(AttributeError):
        DEFAULT_TIMING.tCL = 7  # type: ignore[misc]
