"""Unit tests for memory request records."""

import pytest

from repro.memory.request import (
    MemoryRequest,
    RequestKind,
    make_read,
    make_write,
    popcount,
)


def test_make_read_defaults():
    req = make_read(1, 0x1000)
    assert req.kind is RequestKind.READ
    assert req.is_read and not req.is_write
    assert req.dirty_mask == 0


def test_make_write_carries_mask():
    req = make_write(2, 0x40, 0b1010_0001)
    assert req.is_write
    assert req.dirty_words == (0, 5, 7)
    assert req.dirty_count == 3


def test_unaligned_address_rejected():
    with pytest.raises(ValueError):
        make_read(1, 0x1001)


def test_read_with_dirty_mask_rejected():
    with pytest.raises(ValueError):
        MemoryRequest(1, RequestKind.READ, 0, dirty_mask=1)


def test_mask_out_of_range_rejected():
    with pytest.raises(ValueError):
        make_write(1, 0, 1 << 8)


def test_new_words_length_checked():
    with pytest.raises(ValueError):
        make_write(1, 0, 1, new_words=(1, 2, 3))


def test_line_address():
    assert make_read(1, 128).line_address == 2


def test_latency_requires_completion():
    req = make_read(1, 0)
    with pytest.raises(ValueError):
        _ = req.latency
    req.arrival = 100
    req.complete(350)
    assert req.latency == 250


def test_effective_latency_uses_requested_at():
    req = make_read(1, 0)
    req.requested_at = 50
    req.arrival = 100
    req.complete(350)
    assert req.latency == 250
    assert req.effective_latency == 300


def test_effective_latency_falls_back_to_arrival():
    req = make_read(1, 0)
    req.arrival = 100
    req.complete(300)
    assert req.effective_latency == 200


def test_complete_fires_callback():
    seen = []
    req = make_read(1, 0)
    req.on_complete = seen.append
    req.complete(123)
    assert seen == [req]
    assert req.completion == 123


def test_popcount():
    assert popcount(0) == 0
    assert popcount(0xFF) == 8
    assert popcount(0b1010) == 2


def test_dirty_words_empty_for_silent_write():
    req = make_write(1, 0, 0)
    assert req.dirty_words == ()
    assert req.dirty_count == 0
