"""End-to-end campaigns: reproducibility, convergence, self-test, CLI."""

import json

import pytest

from repro.cli import main
from repro.faults import (
    FaultCampaignSpec,
    FaultConfig,
    cross_system_convergence,
    oracle_selftest,
    report_json,
    run_campaign,
)
from repro.faults.payload import WritePayloadAdapter, static_word
from repro.trace.record import AccessKind, TraceRecord

pytestmark = pytest.mark.faults

SMALL = dict(target_requests=800)


class TestPayloadAdapter:
    def records(self):
        return [
            TraceRecord(gap_instructions=1, kind=AccessKind.READ, address=0),
            TraceRecord(gap_instructions=1, kind=AccessKind.WRITE_BACK,
                        address=64, dirty_mask=0b101),
            TraceRecord(gap_instructions=1, kind=AccessKind.WRITE_BACK,
                        address=128, dirty_mask=0),
        ]

    def test_fills_only_dirty_write_backs(self):
        out = list(WritePayloadAdapter(iter(self.records()), mode="random"))
        assert out[0].new_words is None               # read untouched
        assert out[1].new_words is not None
        assert out[1].new_words[0] != 0
        assert out[1].new_words[1] == 0               # clean slot zeroed
        assert out[2].new_words is None               # silent WB untouched
        assert out[2].dirty_mask == 0

    def test_static_mode_is_pure(self):
        a = list(WritePayloadAdapter(iter(self.records()), mode="static"))
        b = list(WritePayloadAdapter(iter(self.records()), mode="static"))
        assert a[1].new_words == b[1].new_words
        assert a[1].new_words[0] == static_word(1, 0)

    def test_random_mode_deterministic_per_seed_and_core(self):
        a = list(WritePayloadAdapter(iter(self.records()), seed=4, core_id=2))
        b = list(WritePayloadAdapter(iter(self.records()), seed=4, core_id=2))
        c = list(WritePayloadAdapter(iter(self.records()), seed=4, core_id=3))
        assert a[1].new_words == b[1].new_words
        assert a[1].new_words != c[1].new_words

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            WritePayloadAdapter(iter([]), mode="zeros")

    def test_static_word_differs_from_cold_pattern(self):
        from repro.memory.storage import _cold_pattern

        for line in (0, 7, 999):
            cold = _cold_pattern(line)
            assert all(static_word(line, w) != cold[w] for w in range(8))


class TestCampaignReproducibility:
    def test_same_seed_same_report(self):
        spec = FaultCampaignSpec(seed=11, **SMALL)
        assert report_json(run_campaign(spec)) == report_json(run_campaign(spec))

    def test_different_seed_different_faults(self):
        a = run_campaign(FaultCampaignSpec(seed=1, **SMALL))
        b = run_campaign(FaultCampaignSpec(seed=2, **SMALL))
        assert a["injected"] != b["injected"]

    def test_report_is_json_and_oracle_clean(self):
        report = run_campaign(FaultCampaignSpec(seed=3, **SMALL))
        parsed = json.loads(report_json(report))
        assert parsed["ok"] is True
        assert parsed["oracle"]["violations"] == 0
        assert parsed["row"]["within_paper_band"] is True
        assert parsed["injected"]["read_disturb_injected"] > 0

    def test_faults_off_campaign_injects_nothing(self):
        report = run_campaign(FaultCampaignSpec(
            seed=1, fault=FaultConfig.disabled(), **SMALL
        ))
        assert all(v == 0 for v in report["injected"].values())
        assert report["ok"]


class TestConvergenceAndSelftest:
    def test_six_systems_converge(self):
        report = cross_system_convergence(target_requests=600)
        assert report["converged"], report
        assert len(set(report["fingerprints"].values())) == 1
        assert all(report["oracle_ok"].values())

    def test_selftest_detects_planted_bug(self):
        report = oracle_selftest()
        assert report["clean_before_plant"]
        assert report["detected"]
        assert report["passed"]
        assert report["violations"]


class TestFaultsCli:
    def test_smoke_campaign_writes_report(self, tmp_path):
        out = tmp_path / "report.json"
        code = main([
            "faults", "--smoke", "--seed", "5", "--out", str(out),
        ])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["schema"] == "repro.faults.campaign/1"
        assert report["spec"]["seed"] == 5
        assert report["ok"] is True

    def test_selftest_mode(self, capsys):
        assert main(["faults", "--selftest"]) == 0
        assert '"passed": true' in capsys.readouterr().out

    def test_json_output_is_bit_stable(self, capsys):
        main(["faults", "--smoke", "--json", "--seed", "7"])
        first = capsys.readouterr().out
        main(["faults", "--smoke", "--json", "--seed", "7"])
        assert capsys.readouterr().out == first
