"""Golden memory and the differential oracle's detection power."""

import pytest

from repro.faults.models import FaultConfig
from repro.faults.oracle import DifferentialOracle, GoldenMemory
from repro.faults.storage import FaultInjectingStorage
from repro.memory.request import WORDS_PER_LINE
from repro.memory.storage import _cold_pattern

pytestmark = pytest.mark.faults

LINE = 23


class TestGoldenMemory:
    def test_cold_lines_match_storage_cold_pattern(self):
        golden = GoldenMemory()
        assert golden.read(LINE) == _cold_pattern(LINE)

    def test_commit_applies_only_masked_words(self):
        golden = GoldenMemory()
        cold = _cold_pattern(LINE)
        new = tuple(range(WORDS_PER_LINE))
        golden.commit(LINE, new, mask=0b101)
        words = golden.read(LINE)
        assert words[0] == new[0]
        assert words[2] == new[2]
        assert words[1] == cold[1]

    def test_empty_mask_is_a_no_op(self):
        golden = GoldenMemory()
        golden.commit(LINE, tuple(range(WORDS_PER_LINE)), mask=0)
        assert golden.commits == 0
        assert len(golden) == 0

    def test_fingerprint_order_independent(self):
        a, b = GoldenMemory(), GoldenMemory()
        w1 = tuple(range(WORDS_PER_LINE))
        w2 = tuple(range(8, 8 + WORDS_PER_LINE))
        a.commit(1, w1, 0xFF)
        a.commit(2, w2, 0xFF)
        b.commit(2, w2, 0xFF)
        b.commit(1, w1, 0xFF)
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_value_sensitive(self):
        a, b = GoldenMemory(), GoldenMemory()
        a.commit(1, tuple(range(WORDS_PER_LINE)), 0xFF)
        b.commit(1, tuple(range(1, 1 + WORDS_PER_LINE)), 0xFF)
        assert a.fingerprint() != b.fingerprint()


def wired_pair():
    oracle = DifferentialOracle()
    storage = FaultInjectingStorage(
        fault=FaultConfig.disabled(), oracle=oracle
    )
    oracle.attach(storage)
    return storage, oracle


class TestDifferentialOracle:
    def test_clean_run_is_clean(self):
        storage, oracle = wired_pair()
        storage.read_line(LINE)
        storage.write_line(LINE, tuple(range(WORDS_PER_LINE)), 0b11)
        storage.read_line(LINE)
        assert oracle.check_all(storage)
        assert oracle.ok
        oracle.assert_clean()

    def test_tracked_faults_are_not_violations(self):
        storage, oracle = wired_pair()
        storage.corrupt_codeword(LINE, 3, (3, 5))  # uncorrectable, tracked
        storage._xor_pcc(LINE, 1 << 9)
        assert oracle.check_line(storage, LINE)
        assert oracle.ok

    def test_untracked_data_corruption_detected(self):
        storage, oracle = wired_pair()
        storage.read_line(LINE)
        storage.corrupt_bit(LINE, word=3, bit=17)  # bypasses the ledger
        assert not oracle.check_line(storage, LINE)
        assert not oracle.ok
        assert "word[3]" in str(oracle.violations[0])
        with pytest.raises(AssertionError):
            oracle.assert_clean()

    def test_missed_golden_commit_detected(self):
        # A write that reaches the array but not the golden model (or
        # vice versa) is exactly the silent-corruption signature.
        storage, oracle = wired_pair()
        storage.oracle = None  # sever the mirror: commit goes unmirrored
        storage.write_line(LINE, tuple(range(WORDS_PER_LINE)), 0xFF)
        assert not oracle.check_line(storage, LINE)

    def test_pcc_divergence_detected(self):
        storage, oracle = wired_pair()
        line = storage._materialise(LINE)
        from repro.memory.storage import StoredLine

        storage._lines[LINE] = StoredLine(
            line.words, line.checks, line.pcc ^ 1
        )  # raw pcc edit without a ledger entry
        assert not oracle.check_line(storage, LINE)
        assert any(v.slot == "pcc" for v in oracle.violations)

    def test_on_read_complete_checks_request_line(self):
        storage, oracle = wired_pair()

        class Req:
            line_address = LINE

        storage.read_line(LINE)
        oracle.on_read_complete(Req())
        assert oracle.reads_checked == 1
        assert oracle.ok

    def test_as_dict_shape(self):
        storage, oracle = wired_pair()
        storage.write_line(LINE, tuple(range(WORDS_PER_LINE)), 0xFF)
        oracle.check_all(storage)
        data = oracle.as_dict()
        assert data["violations"] == 0
        assert data["golden_commits"] == 1
        assert data["lines_checked"] >= 1
