"""Fault-model primitives: config validation, stuck-cell derivation."""

import pytest

from repro.faults.models import (
    CHECK_SLOT,
    PCC_SLOT,
    FaultConfig,
    FaultCounters,
    StuckCell,
    derive_stuck_cells,
)

pytestmark = pytest.mark.faults


class TestFaultConfig:
    def test_disabled_by_default(self):
        config = FaultConfig()
        assert not config.enabled
        assert FaultConfig.disabled() == config

    def test_any_model_enables(self):
        assert FaultConfig(read_disturb_rate=0.01).enabled
        assert FaultConfig(write_fail_rate=0.01).enabled
        assert FaultConfig(stuck_at_threshold=5).enabled

    @pytest.mark.parametrize("kwargs", [
        {"read_disturb_rate": -0.1},
        {"read_disturb_rate": 1.5},
        {"write_fail_rate": 2.0},
        {"stuck_at_threshold": -1},
        {"stuck_cells_per_line": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultConfig(**kwargs)

    def test_as_dict_round_trip(self):
        config = FaultConfig(read_disturb_rate=0.25, stuck_at_threshold=7)
        assert FaultConfig(**config.as_dict()) == config


class TestStuckCell:
    def test_force_set(self):
        cell = StuckCell(slot=0, bit=5, value=1)
        assert cell.force(0) == 1 << 5
        assert cell.force(0xFFFF) == 0xFFFF

    def test_force_reset(self):
        cell = StuckCell(slot=0, bit=5, value=0)
        assert cell.force(1 << 5) == 0
        assert cell.force(0xFF) == 0xDF


class TestDeriveStuckCells:
    def test_pure_function_of_seed_and_line(self):
        a = derive_stuck_cells(7, 1234, 4, include_pcc=True)
        b = derive_stuck_cells(7, 1234, 4, include_pcc=True)
        assert a == b

    def test_seed_sensitivity(self):
        assert derive_stuck_cells(1, 99, 4, True) != derive_stuck_cells(2, 99, 4, True)

    def test_line_sensitivity(self):
        assert derive_stuck_cells(1, 98, 4, True) != derive_stuck_cells(1, 99, 4, True)

    def test_distinct_cells(self):
        cells = derive_stuck_cells(3, 42, 8, include_pcc=True)
        assert len({(c.slot, c.bit) for c in cells}) == len(cells) == 8

    def test_slot_ranges(self):
        for line in range(50):
            for cell in derive_stuck_cells(5, line, 3, include_pcc=True):
                assert 0 <= cell.slot <= PCC_SLOT
                assert 0 <= cell.bit < 64
                assert cell.value in (0, 1)

    def test_no_pcc_slot_without_pcc(self):
        for line in range(200):
            for cell in derive_stuck_cells(5, line, 3, include_pcc=False):
                assert cell.slot <= CHECK_SLOT

    def test_covers_all_slot_kinds(self):
        # Over many lines the derivation must hit data, check and PCC
        # slots — a biased mix would leave fault paths unexercised.
        slots = {
            kind: 0 for kind in ("data", "check", "pcc")
        }
        for line in range(300):
            for cell in derive_stuck_cells(11, line, 2, include_pcc=True):
                if cell.slot == PCC_SLOT:
                    slots["pcc"] += 1
                elif cell.slot == CHECK_SLOT:
                    slots["check"] += 1
                else:
                    slots["data"] += 1
        assert all(count > 0 for count in slots.values())


def test_counters_as_dict():
    counters = FaultCounters(corrected=3, silent=1)
    data = counters.as_dict()
    assert data["corrected"] == 3
    assert data["silent"] == 1
    assert set(data) == {
        "read_disturb_injected", "write_fail_injected",
        "stuck_lines_activated", "stuck_cells_activated",
        "corrected", "detected_uncorrectable", "silent",
    }
