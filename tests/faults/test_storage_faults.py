"""FaultInjectingStorage: ledger invariant, scrub semantics, write drift."""

import pytest

from repro.ecc import hamming
from repro.faults.models import PCC_SLOT, FaultConfig, StuckCell
from repro.faults.storage import FaultInjectingStorage
from repro.memory.request import WORDS_PER_LINE
from repro.memory.storage import MemoryStorage
from repro.telemetry import Telemetry

pytestmark = pytest.mark.faults

LINE = 17


def make_storage(**kwargs) -> FaultInjectingStorage:
    kwargs.setdefault("fault", FaultConfig.disabled())
    return FaultInjectingStorage(**kwargs)


def assert_ledger_invariant(storage: FaultInjectingStorage, line: int) -> None:
    """raw == pristine ^ flip for every slot, with pristine self-consistent."""
    raw = storage.raw_line(line)
    for w in range(WORDS_PER_LINE):
        pristine = raw.words[w] ^ storage.data_flip(line, w)
        pristine_check = raw.checks[w] ^ storage.check_flip(line, w)
        # The pristine codeword must decode clean: the ledger tracks the
        # exact distance from what the SECDED byte was computed over.
        result = hamming.decode(pristine, pristine_check)
        assert result.status is hamming.DecodeStatus.CLEAN


class TestLedgerMutation:
    def test_corrupt_codeword_tracks_flips(self):
        storage = make_storage()
        before = storage.raw_line(LINE)
        storage.corrupt_codeword(LINE, 2, (3,))  # one data bit
        after = storage.raw_line(LINE)
        assert after.words[2] != before.words[2]
        assert storage.data_flip(LINE, 2) == after.words[2] ^ before.words[2]
        assert_ledger_invariant(storage, LINE)

    def test_xor_twice_clears_ledger(self):
        storage = make_storage()
        storage.corrupt_codeword(LINE, 2, (3,))
        storage.corrupt_codeword(LINE, 2, (3,))
        assert storage.data_flip(LINE, 2) == 0
        assert LINE not in storage._faulty_lines

    def test_pcc_flip_tracked(self):
        storage = make_storage()
        pristine_pcc = storage.raw_line(LINE).pcc
        storage._xor_pcc(LINE, 1 << 7)
        assert storage.raw_line(LINE).pcc == pristine_pcc ^ (1 << 7)
        assert storage.pcc_flip(LINE) == 1 << 7


class TestScrubOnRead:
    def test_single_data_bit_corrected(self):
        storage = make_storage()
        pristine = storage.raw_line(LINE).words[4]
        storage.corrupt_codeword(LINE, 4, (3,))
        line = storage.read_line(LINE)
        assert line.words[4] == pristine          # returned view corrected
        assert storage.data_flip(LINE, 4) == 0     # array scrubbed
        assert storage.counters.corrected == 1

    def test_single_check_bit_corrected(self):
        storage = make_storage()
        storage.corrupt_codeword(LINE, 4, (2,))   # a check-bit position
        storage.read_line(LINE)
        assert storage.check_flip(LINE, 4) == 0
        assert storage.counters.corrected == 1

    def test_double_error_detected_not_fixed(self):
        storage = make_storage()
        storage.corrupt_codeword(LINE, 1, (3, 5))
        line = storage.read_line(LINE)
        assert storage.counters.detected_uncorrectable == 1
        assert storage.counters.corrected == 0
        # Left raw: the flips persist (flagged, not silently dropped).
        assert storage.data_flip(LINE, 1) != 0
        assert line.words[1] == storage.raw_line(LINE).words[1]
        assert_ledger_invariant(storage, LINE)

    def test_double_error_counted_again_each_read(self):
        storage = make_storage()
        storage.corrupt_codeword(LINE, 1, (3, 5))
        storage.read_line(LINE)
        storage.read_line(LINE)
        assert storage.counters.detected_uncorrectable == 2

    def test_pcc_corruption_never_scrubbed(self):
        storage = make_storage()
        storage._xor_pcc(LINE, 1 << 11)
        storage.read_line(LINE)
        storage.read_line(LINE)
        assert storage.pcc_flip(LINE) == 1 << 11

    def test_metrics_registry_mirrors_outcomes(self):
        telemetry = Telemetry.disabled()
        storage = make_storage(telemetry=telemetry)
        storage.corrupt_codeword(LINE, 0, (3,))
        storage.read_line(LINE)
        assert telemetry.metrics.value("faults.outcome.corrected") == 1


class TestWritePath:
    def test_commit_clears_flips_and_migrates_to_pcc(self):
        storage = make_storage()
        storage.corrupt_codeword(LINE, 2, (3,))
        flip = storage.data_flip(LINE, 2)
        assert flip != 0
        new_words = tuple(w + 1 for w in storage.raw_line(LINE).words)
        storage.write_line(LINE, new_words, dirty_mask=1 << 2)
        # The base incremental update xor'd the *raw* old word into the
        # PCC, so the stale flip now lives there — tracked exactly.
        assert storage.data_flip(LINE, 2) == 0
        assert storage.pcc_flip(LINE) == flip
        assert_ledger_invariant(storage, LINE)

    def test_drift_cancels_when_flip_returns(self):
        storage = make_storage()
        storage.corrupt_codeword(LINE, 2, (3,))
        flip = storage.data_flip(LINE, 2)
        words = tuple(storage.raw_line(LINE).words)
        storage.write_line(LINE, tuple(w + 1 for w in words), dirty_mask=1 << 2)
        assert storage.pcc_flip(LINE) == flip
        # Plant the same flip again and overwrite again: drift xors out.
        storage._xor_data(LINE, 2, flip)
        storage.write_line(LINE, words, dirty_mask=1 << 2)
        assert storage.pcc_flip(LINE) == 0

    def test_uncommitted_words_keep_their_flips(self):
        storage = make_storage()
        storage.corrupt_codeword(LINE, 5, (3,))
        flip = storage.data_flip(LINE, 5)
        new_words = tuple(w ^ 0xFF for w in storage.raw_line(LINE).words)
        storage.write_line(LINE, new_words, dirty_mask=1 << 0)
        assert storage.data_flip(LINE, 5) == flip

    def test_write_fail_injection_counted_and_tracked(self):
        storage = make_storage(
            fault=FaultConfig(write_fail_rate=1.0), seed=3
        )
        new_words = tuple(range(100, 100 + WORDS_PER_LINE))
        storage.write_line(LINE, new_words, dirty_mask=0xFF)
        assert storage.counters.write_fail_injected >= WORDS_PER_LINE
        assert any(
            storage.data_flip(LINE, w) for w in range(WORDS_PER_LINE)
        )
        assert_ledger_invariant(storage, LINE)

    def test_oracle_commit_mirrored(self):
        commits = []

        class Spy:
            def on_commit(self, line, words, mask):
                commits.append((line, words, mask))

        storage = make_storage(oracle=Spy())
        new_words = tuple(range(WORDS_PER_LINE))
        storage.write_line(LINE, new_words, dirty_mask=0b11)
        assert commits == [(LINE, new_words, 0b11)]


class TestStuckCells:
    def test_activation_at_threshold(self):
        storage = make_storage(
            fault=FaultConfig(stuck_at_threshold=3, stuck_cells_per_line=2),
            seed=5,
        )
        words = tuple(range(WORDS_PER_LINE))
        for i in range(3):
            storage.write_line(LINE, tuple(w + i for w in words), dirty_mask=0xFF)
        assert storage.counters.stuck_lines_activated == 1
        assert len(storage.stuck_cells(LINE)) == 2

    def test_stuck_cells_reassert_after_scrub(self):
        storage = make_storage(
            fault=FaultConfig(stuck_at_threshold=1, stuck_cells_per_line=2),
            seed=5,
        )
        storage.write_line(LINE, tuple(range(WORDS_PER_LINE)), dirty_mask=0xFF)
        cells = storage.stuck_cells(LINE)
        assert cells
        for _ in range(3):
            storage.read_line(LINE)
            raw = storage.raw_line(LINE)
            for cell in cells:
                if cell.slot < WORDS_PER_LINE:
                    bit = (raw.words[cell.slot] >> cell.bit) & 1
                    assert bit == cell.value
                elif cell.slot == PCC_SLOT:
                    bit = (raw.pcc >> cell.bit) & 1
                    assert bit == cell.value
            assert_ledger_invariant(storage, LINE)

    def test_stuck_value_survives_overwrite(self):
        storage = make_storage(
            fault=FaultConfig(stuck_at_threshold=1, stuck_cells_per_line=3),
            seed=9,
        )
        storage.write_line(LINE, tuple(range(WORDS_PER_LINE)), dirty_mask=0xFF)
        cells = [c for c in storage.stuck_cells(LINE) if c.slot < WORDS_PER_LINE]
        storage.write_line(
            LINE, tuple(w ^ 0xFFFF for w in range(WORDS_PER_LINE)), dirty_mask=0xFF
        )
        raw = storage.raw_line(LINE)
        for cell in cells:
            assert ((raw.words[cell.slot] >> cell.bit) & 1) == cell.value


class TestZeroCostWhenOff:
    def test_disabled_matches_plain_storage(self):
        plain = MemoryStorage(keep_pcc=True)
        faulty = make_storage(fault=FaultConfig.disabled())
        words = tuple(range(10, 10 + WORDS_PER_LINE))
        for store in (plain, faulty):
            store.read_line(5)
            store.write_line(5, words, dirty_mask=0b101)
            store.read_line(5)
        for attr in ("words", "checks", "pcc"):
            assert getattr(plain.read_line(5), attr) == getattr(
                faulty.read_line(5), attr
            )
        assert faulty.counters.as_dict() == {
            key: 0 for key in faulty.counters.as_dict()
        }

    def test_disabled_never_injects_on_read(self):
        storage = make_storage(fault=FaultConfig.disabled())
        for _ in range(50):
            storage.read_line(LINE)
        assert storage.counters.read_disturb_injected == 0
        assert not storage._faulty_lines


class TestReadDisturb:
    def test_injection_lands_after_the_read(self):
        storage = make_storage(
            fault=FaultConfig(read_disturb_rate=1.0), seed=2
        )
        pristine = storage.raw_line(LINE)
        view = storage.read_line(LINE)
        # The triggering read returns the pre-disturb (clean) view...
        assert view.words == pristine.words
        assert view.pcc == pristine.pcc
        # ...but the array now carries exactly one new flipped bit.
        assert storage.counters.read_disturb_injected == 1
        assert LINE in storage._faulty_lines
        assert_ledger_invariant(storage, LINE)

    def test_disturb_then_reread_corrects_or_flags(self):
        storage = make_storage(
            fault=FaultConfig(read_disturb_rate=1.0), seed=2
        )
        for _ in range(40):
            storage.read_line(LINE)
            assert_ledger_invariant(storage, LINE)
        outcomes = storage.counters
        # Every single-bit disturb observed by a later read is corrected
        # (or was a PCC hit, which SECDED cannot see).
        assert outcomes.corrected > 0
        assert outcomes.silent == 0
