"""Pre/post-refactor regression harness: a golden JSONL scheduler trace.

A short seeded ``rwow-rde`` run is traced and every scheduler-visible
event (RoW/WoW decisions, request issue/completion, drain transitions,
rollbacks) is serialised — one canonical JSON object per line — and
compared **byte-identically** against a checked-in golden file.

Unlike the sweep-runner tests, this harness calls
:func:`repro.sim.simulator.simulate` directly: no result cache, no
worker processes, no ``code_version()`` key — so it cannot be masked by
a warm ``sweep_cache`` and fails loudly on any behavioural change to the
scheduling layer, however the run is executed.

Regenerate only after confirming a diff is an *intended* policy change::

    PYTHONPATH=src python -c "
    from tests.integration.test_golden_trace import regenerate_golden
    regenerate_golden()"
"""

import json
from pathlib import Path

from repro.core.systems import make_system
from repro.sim.simulator import SimulationParams, simulate
from repro.telemetry import EventType, ListSink, Telemetry

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "golden_rwow_rde_trace.jsonl"

#: Everything the scheduling layer decides, in emission order.  Chip-level
#: occupancy events are excluded (huge, and already covered by the rank
#: reservation tests); the request/issue stream pins down ordering anyway.
TRACED_TYPES = {
    EventType.REQUEST_ENQUEUE,
    EventType.REQUEST_ISSUE,
    EventType.REQUEST_COMPLETE,
    EventType.ROW_ATTEMPT,
    EventType.ROW_SERVE,
    EventType.ROW_DECLINE,
    EventType.WOW_OPEN,
    EventType.WOW_JOIN,
    EventType.WOW_CLOSE,
    EventType.ROLLBACK,
    EventType.DRAIN_ENTER,
    EventType.DRAIN_EXIT,
}

_PARAMS = dict(target_requests=150, n_cores=8, seed=7)


def _traced_jsonl_lines():
    sink = ListSink()
    telemetry = Telemetry.recording([sink])
    simulate(
        make_system("rwow-rde"),
        "canneal",
        SimulationParams(**_PARAMS),
        telemetry,
    )
    return [
        json.dumps(event.to_dict(), sort_keys=True, separators=(",", ":"))
        for event in sink.events
        if event.type in TRACED_TYPES
    ]


def regenerate_golden() -> None:
    """Refresh the golden file after an intended scheduler change."""
    lines = _traced_jsonl_lines()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text("\n".join(lines) + "\n")
    print(f"wrote {len(lines)} events to {GOLDEN_PATH}")


def test_golden_trace_bytes_identical():
    expected = GOLDEN_PATH.read_text()
    actual = "\n".join(_traced_jsonl_lines()) + "\n"
    assert actual == expected, (
        "scheduler decision stream diverged from the golden JSONL trace; "
        "diff the streams and regenerate only if the change is intended"
    )


def test_golden_trace_exercises_all_decision_paths():
    """The checked-in run is only a useful regression anchor if it covers
    RoW serves *and* declines, WoW grouping, drains and rollbacks."""
    seen = {
        json.loads(line)["type"] for line in GOLDEN_PATH.read_text().splitlines()
    }
    for required in (
        "row.attempt",
        "row.serve",
        "row.decline",
        "wow.open",
        "wow.join",
        "wow.close",
        "drain.enter",
        "request.issue",
        "request.complete",
    ):
        assert required in seen, f"golden trace never exercises {required}"
