"""Randomised stress tests asserting system-wide invariants.

These drive arbitrary request mixes through every controller variant and
check properties that must hold regardless of scheduling decisions:
everything completes, time never runs backwards, the occupancy log shows
no two array writes overlapping on one chip, and runs are deterministic.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.systems import SYSTEM_NAMES, make_system
from repro.memory.memsys import make_controller
from repro.memory.request import make_read, make_write
from repro.sim.engine import Engine

ALL_SYSTEMS = SYSTEM_NAMES + ["write-pausing"]


def _drive(system_name, operations, seed=1, log=False):
    """Run (kind, line, mask, gap) operations through one controller."""
    engine = Engine()
    config = make_system(system_name)
    controller = make_controller(engine, config, channel_id=0, seed=seed)
    events = controller.ranks[0].enable_logging() if log else None
    stride = 64 * config.geometry.n_channels
    requests = []
    req_id = 0
    for kind, line, mask, gap in operations:
        req_id += 1
        address = (line % (1 << 20)) * stride
        if kind == "r":
            request = make_read(req_id, address)
        else:
            request = make_write(req_id, address, mask)
        if controller.can_accept(request.kind):
            controller.submit(request)
            requests.append(request)
        engine.run(until=engine.now + gap)
    engine.run(max_events=2_000_000)
    return controller, requests, events


def _random_operations(rng, count):
    ops = []
    for _ in range(count):
        if rng.random() < 0.4:
            ops.append(("r", rng.randrange(1 << 14), 0, rng.randrange(0, 800)))
        else:
            mask = rng.randrange(0, 256)
            ops.append(("w", rng.randrange(1 << 14), mask, rng.randrange(0, 400)))
    return ops


@pytest.mark.parametrize("system_name", ALL_SYSTEMS)
def test_all_requests_complete_under_random_load(system_name):
    rng = random.Random(42)
    ops = _random_operations(rng, 250)
    controller, requests, _ = _drive(system_name, ops)
    assert requests, "nothing was accepted"
    incomplete = [r for r in requests if r.completion < 0]
    assert not incomplete, f"{len(incomplete)} requests never completed"
    assert controller.idle


@pytest.mark.parametrize("system_name", ALL_SYSTEMS)
def test_time_monotonicity(system_name):
    rng = random.Random(7)
    ops = _random_operations(rng, 200)
    _controller, requests, _ = _drive(system_name, ops)
    for request in requests:
        assert request.completion >= request.arrival
        if request.start_service >= 0:
            assert request.start_service >= request.arrival
            assert request.completion >= request.start_service


@pytest.mark.parametrize("system_name", ALL_SYSTEMS)
def test_no_overlapping_writes_on_one_chip(system_name):
    """The chip-exclusivity premise: array writes on a chip never overlap."""
    rng = random.Random(3)
    ops = _random_operations(rng, 220)
    _controller, _requests, events = _drive(system_name, ops, log=True)
    writes_by_chip = {}
    for event in events:
        if event.kind == "write" and event.start >= 0:
            writes_by_chip.setdefault(event.chip, []).append(
                (event.start, event.end)
            )
    for chip, intervals in writes_by_chip.items():
        intervals.sort()
        for (s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
            assert s2 >= e1, f"chip {chip}: write overlap {s1, e1} vs {s2}"


@pytest.mark.parametrize("system_name", ["baseline", "rwow-rde"])
def test_determinism_under_random_load(system_name):
    rng = random.Random(11)
    ops = _random_operations(rng, 150)
    _c1, reqs1, _ = _drive(system_name, ops, seed=5)
    _c2, reqs2, _ = _drive(system_name, ops, seed=5)
    assert [r.completion for r in reqs1] == [r.completion for r in reqs2]


@pytest.mark.parametrize("system_name", ALL_SYSTEMS)
def test_irlp_bounds_under_random_load(system_name):
    rng = random.Random(23)
    ops = _random_operations(rng, 200)
    controller, _requests, _ = _drive(system_name, ops)
    for window in controller.irlp.windows:
        if window.duration > 0:
            assert 0.0 <= window.irlp() <= 8.0


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["r", "w"]),
            st.integers(min_value=0, max_value=255),
            st.integers(min_value=0, max_value=255),
            st.integers(min_value=0, max_value=2_000),
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=30, deadline=None)
def test_property_pcmap_serves_arbitrary_streams(operations):
    controller, requests, _ = _drive("rwow-rde", operations)
    assert all(r.completion >= 0 for r in requests)
    stats = controller.stats
    assert stats.reads_completed + stats.writes_completed + \
        stats.forwarded_reads >= len(requests)
