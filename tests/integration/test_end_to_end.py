"""End-to-end integration tests: cores + controllers + PCM memory."""

import pytest

from repro.core.systems import SYSTEM_NAMES, make_system
from repro.sim.experiment import compare_systems, run_workload
from repro.sim.simulator import SimulationParams

FAST = SimulationParams(instructions_per_core=6_000, n_cores=4)


@pytest.mark.parametrize("system_name", SYSTEM_NAMES)
def test_every_system_completes_canneal(system_name):
    result = run_workload("canneal", system_name, FAST)
    assert result.instructions == 4 * 6_000
    assert result.memory.reads_completed > 0
    assert result.memory.writes_completed > 0
    assert result.ipc > 0


@pytest.mark.parametrize("system_name", SYSTEM_NAMES)
def test_irlp_within_physical_bounds(system_name):
    result = run_workload("MP4", system_name, FAST)
    assert 0.0 <= result.irlp_average <= 8.0
    assert result.irlp_average <= result.irlp_max <= 8.0


def test_results_are_deterministic():
    a = run_workload("MP1", "rwow-rde", FAST)
    b = run_workload("MP1", "rwow-rde", FAST)
    assert a.ipc == b.ipc
    assert a.irlp_average == b.irlp_average
    assert a.memory.reads_completed == b.memory.reads_completed
    assert a.sim_ticks == b.sim_ticks


def test_seed_changes_results():
    a = run_workload("MP1", "baseline", FAST)
    b = run_workload(
        "MP1", "baseline", SimulationParams(
            instructions_per_core=6_000, n_cores=4, seed=99
        )
    )
    assert a.sim_ticks != b.sim_ticks


def test_full_pcmap_beats_baseline_on_memory_bound_workload():
    params = SimulationParams(instructions_per_core=12_000)
    comparison = compare_systems("canneal", ["baseline", "rwow-rde"], params)
    assert comparison.ipc_improvement("rwow-rde") > 0.03
    assert comparison.results["rwow-rde"].irlp_average > (
        comparison.results["baseline"].irlp_average
    )


def test_row_only_system_reconstructs_reads():
    params = SimulationParams(instructions_per_core=12_000)
    result = run_workload("canneal", "row-nr", params)
    assert result.memory.row_reads > 0
    # Every RoW read gets verified; a handful may still be in flight when
    # the last core retires and the run stops.
    assert result.memory.verify_count >= result.memory.row_reads - 8


def test_wow_only_system_consolidates():
    params = SimulationParams(instructions_per_core=12_000)
    result = run_workload("canneal", "wow-nr", params)
    assert result.memory.wow_groups > 0
    assert result.memory.row_reads == 0


def test_baseline_never_uses_pcmap_mechanisms():
    result = run_workload("canneal", "baseline", FAST)
    assert result.memory.row_reads == 0
    assert result.memory.wow_member_writes == 0
    assert result.memory.rollbacks == 0


def test_rollbacks_follow_workload_rate():
    params = SimulationParams(instructions_per_core=12_000)
    canneal = run_workload("canneal", "row-nr", params)  # 5.8% rate
    if canneal.memory.row_reads >= 50:
        observed = canneal.memory.rollbacks / canneal.memory.row_reads
        assert observed == pytest.approx(0.058, abs=0.06)


def test_symmetric_timing_removes_write_penalty():
    from repro.memory.timing import DEFAULT_TIMING

    params = SimulationParams(instructions_per_core=8_000, n_cores=4)
    asym = run_workload("mcf", "baseline", params)
    sym = run_workload(
        "mcf", make_system("baseline", timing=DEFAULT_TIMING.symmetric()), params
    )
    assert sym.mean_read_latency_ns < asym.mean_read_latency_ns


def test_delayed_read_fraction_in_paper_range():
    """Figure 1 reports 11.5-38.1% of reads delayed by writes; allow a
    wider band for the synthetic streams but require the effect."""
    params = SimulationParams(instructions_per_core=12_000)
    result = run_workload("mcf", "baseline", params)
    assert 0.03 <= result.memory.delayed_read_fraction <= 0.75


def test_write_queue_high_water_reached():
    params = SimulationParams(instructions_per_core=12_000)
    result = run_workload("canneal", "baseline", params)
    assert result.memory.drain_entries > 0
