"""Multi-rank channels: geometry generality the default config doesn't use.

Table I uses one rank per channel; these tests pin down that the
substrate and the PCMap controller stay correct with more ranks — and
that the rank-level write-engine token really is per rank (writes to
different ranks of one channel may overlap)."""

import dataclasses

import pytest

from repro.core.systems import make_system
from repro.memory.address import AddressMapper, MemoryGeometry, PCMAP_GEOMETRY
from repro.memory.memsys import make_controller
from repro.memory.request import make_read, make_write
from repro.sim.engine import Engine

TWO_RANK = dataclasses.replace(PCMAP_GEOMETRY, ranks_per_channel=2)
TWO_RANK_BASE = dataclasses.replace(
    MemoryGeometry(), ranks_per_channel=2
)


def _controller(system_name, geometry):
    engine = Engine()
    config = make_system(system_name, geometry=geometry)
    return engine, make_controller(engine, config, channel_id=0)


def _rank_addresses(geometry, rank, count, bank=0):
    """Line addresses on channel 0 of the given rank."""
    mapper = AddressMapper(geometry)
    return [
        mapper.encode(channel=0, rank=rank, bank=bank, row=row, column=0)
        for row in range(count)
    ]


def test_decode_covers_both_ranks():
    mapper = AddressMapper(TWO_RANK)
    # The rank bit sits above channel, column and bank: it flips every
    # 4 channels x 128 columns x 8 banks = 4096 lines.
    seen = set()
    for line in range(0, 16384, 509):
        seen.add(mapper.decode(line * 64).rank)
    assert seen == {0, 1}


def test_controller_builds_one_rankstate_per_rank():
    _engine, controller = _controller("rwow-rde", TWO_RANK)
    assert len(controller.ranks) == 2
    assert len(controller.status_registers) == 2


@pytest.mark.parametrize("system_name", ["baseline", "rwow-rde"])
def test_requests_complete_on_both_ranks(system_name):
    geometry = TWO_RANK_BASE if system_name == "baseline" else TWO_RANK
    engine, controller = _controller(system_name, geometry)
    requests = []
    for rank in (0, 1):
        for i, address in enumerate(_rank_addresses(geometry, rank, 6)):
            write = make_write(rank * 100 + i, address, 0b11)
            controller.submit(write)
            requests.append(write)
            read = make_read(rank * 100 + 50 + i, address)
            if controller.can_accept(read.kind):
                controller.submit(read)
                requests.append(read)
    engine.run(max_events=1_000_000)
    assert all(r.completion >= 0 for r in requests)


def test_write_engine_token_is_per_rank():
    """Writes to different ranks overlap; within one rank they serialise."""
    geometry = TWO_RANK
    engine, controller = _controller("rwow-rde", geometry)
    # Two writes per rank, all chip-compatible.
    w_r0 = make_write(1, _rank_addresses(geometry, 0, 1)[0], 0b1)
    w_r1 = make_write(2, _rank_addresses(geometry, 1, 1)[0], 0b1)
    controller.submit(w_r0)
    controller.submit(w_r1)
    engine.run(max_events=100_000)
    assert w_r0.completion > 0 and w_r1.completion > 0
    # Cross-rank overlap: both array services intersect in time.
    assert (
        w_r0.start_service < w_r1.completion
        and w_r1.start_service < w_r0.completion
    )


def test_row_windows_independent_per_rank():
    geometry = TWO_RANK
    engine, controller = _controller("row-nr", geometry)
    # Saturate rank 0 with single-word writes and read from rank 0.
    for i, address in enumerate(_rank_addresses(geometry, 0, 26)):
        controller.submit(make_write(i, address, 0b1))
    reads = []
    for j, address in enumerate(_rank_addresses(geometry, 0, 3, bank=4)):
        read = make_read(500 + j, address)
        controller.submit(read)
        reads.append(read)
    # Rank 1 stays fully available meanwhile.
    r1 = make_read(999, _rank_addresses(geometry, 1, 1)[0])
    controller.submit(r1)
    engine.run(max_events=1_000_000)
    assert r1.completion > 0
    assert all(r.completion > 0 for r in reads)
