"""Functional-mode integration: real bits through the whole stack.

These tests run small simulations with a functional backing store and
verify *data integrity* — every read (including RoW-reconstructed ones)
returns exactly the bytes the storage holds, and every write-back commits
its dirty words.
"""

import random


from repro.core.systems import make_system
from repro.memory.memsys import MainMemory
from repro.memory.request import (
    MemoryRequest,
    RequestKind,
    ServiceClass,
    make_read,
)
from repro.sim.engine import Engine


def _functional_system(name):
    engine = Engine()
    memory = MainMemory(engine, make_system(name, functional=True))
    return engine, memory


def _write_with_payload(memory, req_id, address, mutate_words):
    """Build a write whose new_words mutate the given word indices."""
    decoded = memory.mapper.decode(address)
    old = memory.storage.read_line(decoded.line_address).words
    new = list(old)
    for word in mutate_words:
        new[word] ^= (0xABCD << word)
    return MemoryRequest(
        req_id,
        RequestKind.WRITE,
        address,
        new_words=tuple(new),
    ), tuple(new)


def test_writes_then_reads_roundtrip_data():
    engine, memory = _functional_system("rwow-rde")
    expected = {}
    rng = random.Random(0)
    for i in range(60):
        address = rng.randrange(0, 1 << 16) * 64
        req, new = _write_with_payload(memory, i, address, [i % 8, (i + 3) % 8])
        if memory.can_accept(req.kind, address):
            memory.submit(req)
            expected[address] = new
            engine.run(until=engine.now + 2000)
    engine.run(max_events=1_000_000)
    reads = []
    for j, (address, words) in enumerate(expected.items()):
        read = make_read(10_000 + j, address)
        if memory.can_accept(read.kind, address):
            memory.submit(read)
            reads.append((read, words))
            engine.run(until=engine.now + 2000)
    engine.run(max_events=1_000_000)
    assert reads
    for read, words in reads:
        assert read.completion > 0
        assert read.data_words == words


def test_row_reconstructed_reads_return_true_data():
    engine, memory = _functional_system("row-nr")
    controller = memory.controllers[0]
    # Fill the write queue with single-word writes to force RoW windows.
    rng = random.Random(1)
    writes = []
    for i in range(28):
        address = (i * 4) * 64  # channel 0
        req, _new = _write_with_payload(memory, i, address, [i % 8])
        memory.submit(req)
        writes.append(req)
    expected = {}
    reads = []
    for j in range(6):
        address = ((1000 + j) * 4) * 64
        decoded = memory.mapper.decode(address)
        expected[address] = memory.storage.read_line(decoded.line_address).words
        read = make_read(5000 + j, address)
        memory.submit(read)
        reads.append(read)
    engine.run(max_events=2_000_000)
    reconstructed = [
        r for r in reads if r.service_class is ServiceClass.ROW_OVERLAP
    ]
    assert controller.stats.row_reads == len(reconstructed)
    assert reconstructed, "expected at least one RoW-reconstructed read"
    for read in reads:
        assert read.data_words == expected[read.address]


def test_functional_verify_detects_injected_corruption():
    engine, memory = _functional_system("row-nr")
    # Pre-materialise a victim line and corrupt one bit without fixing
    # the ECC, then force a RoW window over it.
    victim_address = (1000 * 4) * 64
    decoded = memory.mapper.decode(victim_address)
    memory.storage.read_line(decoded.line_address)

    for i in range(28):
        address = (i * 4) * 64
        req, _ = _write_with_payload(memory, i, address, [0])
        memory.submit(req)
    # Corrupt the word that chip 0's busy write will force us to
    # reconstruct; the deferred SECDED check must notice.
    memory.storage.corrupt_bit(decoded.line_address, word=0, bit=5)
    read = make_read(7777, victim_address)
    rollbacks = []
    read.on_verify = lambda r, rb: rollbacks.append(rb)
    memory.submit(read)
    engine.run(max_events=2_000_000)
    if read.service_class is ServiceClass.ROW_OVERLAP:
        assert rollbacks == [True]
        assert read.rolled_back


def test_storage_shared_across_channels():
    engine, memory = _functional_system("rwow-rde")
    assert all(
        controller.storage is memory.storage
        for controller in memory.controllers
    )
