"""Unit tests for the OpenMetrics exporter, lint and JSONL sink."""

import json

import pytest

from repro.telemetry import MetricsRegistry
from repro.telemetry.export import (
    lint_openmetrics,
    sanitize_name,
    timeseries_to_jsonl,
    to_openmetrics,
)
from repro.telemetry.timeseries import TimeSeries


def _sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("reads.completed").inc(7)
    registry.gauge("ch0.queue.read.depth").set(3)
    histogram = registry.histogram("read.latency.ns", buckets=(10, 20))
    for value in (5, 15, 99):
        histogram.observe(value)
    return registry


def test_sanitize_name():
    assert sanitize_name("ch0.queue.read.depth") == "ch0_queue_read_depth"
    assert sanitize_name("row.declined.no-overlappable-read") == (
        "row_declined_no_overlappable_read"
    )
    assert sanitize_name("9lives") == "_9lives"


def test_to_openmetrics_families():
    text = to_openmetrics(_sample_registry().as_dict())
    assert text.endswith("# EOF\n")
    assert "# TYPE repro_reads_completed counter\n" in text
    assert "repro_reads_completed_total 7\n" in text
    assert "repro_ch0_queue_read_depth 3\n" in text
    assert "repro_ch0_queue_read_depth_max 3\n" in text
    # Histogram buckets are cumulative and end at +Inf == _count.
    assert 'repro_read_latency_ns_bucket{le="10"} 1\n' in text
    assert 'repro_read_latency_ns_bucket{le="20"} 2\n' in text
    assert 'repro_read_latency_ns_bucket{le="+Inf"} 3\n' in text
    assert "repro_read_latency_ns_sum 119\n" in text
    assert "repro_read_latency_ns_count 3\n" in text


def test_to_openmetrics_is_deterministic():
    dump = _sample_registry().as_dict()
    assert to_openmetrics(dump) == to_openmetrics(dump)


def test_lint_accepts_exporter_output():
    text = to_openmetrics(_sample_registry().as_dict())
    assert lint_openmetrics(text) == []


def test_lint_rejects_structural_breakage():
    good = to_openmetrics(_sample_registry().as_dict())

    assert lint_openmetrics(good.replace("# EOF\n", ""))  # missing EOF
    assert lint_openmetrics(good + "trailing 1\n")  # content after EOF

    no_type = good.replace("# TYPE repro_reads_completed counter\n", "")
    assert any("no # TYPE" in f for f in lint_openmetrics(no_type))

    bad_counter = good.replace(
        "repro_reads_completed_total 7", "repro_reads_completed 7"
    )
    assert any("_total" in f for f in lint_openmetrics(bad_counter))

    non_cumulative = good.replace(
        'repro_read_latency_ns_bucket{le="20"} 2',
        'repro_read_latency_ns_bucket{le="20"} 0',
    )
    assert any("cumulative" in f for f in lint_openmetrics(non_cumulative))

    count_mismatch = good.replace(
        "repro_read_latency_ns_count 3", "repro_read_latency_ns_count 9"
    )
    assert any("_count" in f for f in lint_openmetrics(count_mismatch))

    bad_value = good.replace(
        "repro_reads_completed_total 7", "repro_reads_completed_total seven"
    )
    assert any("non-numeric" in f for f in lint_openmetrics(bad_value))


def test_timeseries_to_jsonl_round_trips():
    series = TimeSeries(["depth", "irlp"], cadence_ticks=100)
    series.append(0, [1.0, 0.0])
    series.append(100, [2.0, 3.5])
    text = timeseries_to_jsonl(series)
    lines = [json.loads(line) for line in text.strip().splitlines()]
    assert lines == [
        {"tick": 0, "depth": 1.0, "irlp": 0.0},
        {"tick": 100, "depth": 2.0, "irlp": 3.5},
    ]
    # The as_dict form renders identically.
    assert timeseries_to_jsonl(series.as_dict()) == text


def test_to_openmetrics_rejects_unknown_kind():
    with pytest.raises(TypeError):
        to_openmetrics({"x": {"type": "mystery", "value": 1}})
