"""Guards on the cost of telemetry when tracing is off.

The emit-site contract is ``if self.tracer.enabled: self.tracer.emit(...)``
— a disabled run must never construct or emit an event.  The counting
tracer below would catch any unguarded ``emit`` call; the wall-clock test
bounds the always-on metrics cost with a deliberately generous factor so
it stays robust on loaded CI machines.
"""

import time

from repro.core.systems import make_system
from repro.sim.simulator import SimulationParams, simulate
from repro.telemetry import NullTracer, Telemetry, TraceEvent

PARAMS = SimulationParams(target_requests=150, n_cores=2, seed=2)


class CountingNullTracer(NullTracer):
    """Disabled tracer that records any emit() call reaching it."""

    def __init__(self) -> None:
        self.calls = 0

    def emit(self, event: TraceEvent) -> None:
        self.calls += 1


def test_disabled_tracer_never_receives_events():
    tracer = CountingNullTracer()
    assert tracer.enabled is False
    telemetry = Telemetry(tracer=tracer)
    result = simulate(make_system("rwow-rde"), "canneal", PARAMS, telemetry)
    assert result.memory.reads_completed > 0
    # Every hot-path emit site must be guarded by `tracer.enabled`.
    assert tracer.calls == 0
    # The always-on registry still populated.
    assert telemetry.metrics.value("reads.completed") > 0


def test_disabled_telemetry_overhead_is_bounded():
    system = make_system("rwow-rde")
    # Warm-up run so imports/JIT-free caches don't skew either side.
    simulate(system, "canneal", PARAMS)

    start = time.perf_counter()
    simulate(system, "canneal", PARAMS)
    plain_seconds = time.perf_counter() - start

    start = time.perf_counter()
    simulate(system, "canneal", PARAMS, Telemetry.disabled())
    disabled_seconds = time.perf_counter() - start

    # Identical code path (the default builds the same disabled bundle);
    # the generous factor only catches a gross regression, not noise.
    assert disabled_seconds < max(plain_seconds, 0.01) * 5
