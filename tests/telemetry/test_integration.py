"""End-to-end telemetry tests: a short traced run of the full system.

The golden-file test freezes the exact RoW/WoW/rollback decision sequence
of a small ``rwow-rde`` run.  The stream is deterministic by construction
(integer-tick engine, one seeded RNG per generator, no str-hash salt), so
any diff means a behavioural change in the scheduler — regenerate the
golden only after confirming the change is intended::

    PYTHONPATH=src python -c "
    from tests.telemetry.test_integration import regenerate_golden
    regenerate_golden()"
"""

from pathlib import Path

from repro.core.systems import make_system
from repro.sim.simulator import SimulationParams, simulate
from repro.telemetry import EventType, ListSink, Telemetry

GOLDEN_PATH = Path(__file__).parent / "golden_rwow_events.txt"

#: Scheduler-decision event types captured by the golden file.
DECISION_TYPES = {
    EventType.ROW_ATTEMPT,
    EventType.ROW_SERVE,
    EventType.ROW_DECLINE,
    EventType.WOW_OPEN,
    EventType.WOW_JOIN,
    EventType.WOW_CLOSE,
    EventType.ROLLBACK,
}

_CACHE = {}


def _traced_run():
    """One short traced rwow-rde run (memoised across tests)."""
    if not _CACHE:
        sink = ListSink()
        telemetry = Telemetry.recording([sink])
        params = SimulationParams(target_requests=200, n_cores=8, seed=1)
        result = simulate(make_system("rwow-rde"), "canneal", params, telemetry)
        _CACHE.update(result=result, telemetry=telemetry, events=sink.events)
    return _CACHE


def _decision_lines(events):
    return [
        f"{e.tick} {e.type.value} req={e.req_id} reason={e.reason or '-'}"
        for e in events
        if e.type in DECISION_TYPES
    ]


def regenerate_golden() -> None:
    """Refresh the golden file after an intended scheduler change."""
    lines = _decision_lines(_traced_run()["events"])
    GOLDEN_PATH.write_text("\n".join(lines) + "\n")


def test_rwow_event_sequence_matches_golden():
    lines = _decision_lines(_traced_run()["events"])
    golden = GOLDEN_PATH.read_text().splitlines()
    assert lines == golden


def test_event_stream_covers_all_decision_kinds():
    kinds = {e.type for e in _traced_run()["events"]}
    assert DECISION_TYPES <= kinds
    assert EventType.REQUEST_ENQUEUE in kinds
    assert EventType.REQUEST_COMPLETE in kinds
    assert EventType.CHIP_RESERVE in kinds


def test_metrics_agree_with_result_stats():
    run = _traced_run()
    stats = run["result"].memory
    metrics = run["telemetry"].metrics
    assert metrics.value("row.reads") == stats.row_reads
    assert metrics.value("wow.member_writes") == stats.wow_member_writes
    assert metrics.value("wow.groups") == stats.wow_groups
    assert metrics.value("rollbacks") == stats.rollbacks
    assert metrics.value("reads.completed") == stats.reads_completed
    # MemoryStats counts a write when it is accepted (submit time); the
    # registry's writes.completed counts actual completions, so it can
    # only lag by the writes still queued or in flight at sim end.
    assert metrics.value("requests.write.enqueued") == stats.writes_completed
    assert 0 < metrics.value("writes.completed") <= stats.writes_completed
    assert metrics.value("drain.entries") == stats.drain_entries


def test_decline_reasons_partition_attempts():
    metrics = _traced_run()["telemetry"].metrics
    attempts = metrics.value("row.attempts")
    windows = metrics.value("row.windows")
    declined = sum(
        metrics.value(name)
        for name in metrics.names()
        if name.startswith("row.declined.")
    )
    assert attempts > 0
    assert windows + declined == attempts


def test_tracing_does_not_change_results():
    traced = _traced_run()["result"]
    params = SimulationParams(target_requests=200, n_cores=8, seed=1)
    plain = simulate(make_system("rwow-rde"), "canneal", params)
    assert plain.ipc == traced.ipc
    assert plain.memory.row_reads == traced.memory.row_reads
    assert plain.memory.wow_member_writes == traced.memory.wow_member_writes
    assert plain.sim_ticks == traced.sim_ticks
