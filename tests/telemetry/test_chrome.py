"""Unit tests for the Chrome-trace-format exporter."""

import json

from repro.telemetry import EventType, TraceEvent, to_chrome_trace, write_chrome_trace
from repro.telemetry.chrome import SCHEDULER_TID


def _events():
    return [
        TraceEvent(type=EventType.CHIP_RESERVE, tick=100, channel=0, rank=0,
                   chip=2, bank=1, req_id=5, start=100, end=1300, kind="read"),
        TraceEvent(type=EventType.ROW_SERVE, tick=90, channel=0, req_id=5),
        TraceEvent(type=EventType.CHIP_RESERVE, tick=200, channel=0, rank=1,
                   chip=9, bank=0, req_id=6, start=200, end=1400,
                   kind="write", reason="code-update"),
    ]


def test_duration_event_mapping():
    document = to_chrome_trace(_events(), chips_per_rank=10)
    durations = [e for e in document["traceEvents"] if e.get("ph") == "X"]
    assert len(durations) == 2
    first = durations[0]
    assert first["pid"] == 0
    assert first["tid"] == 0 * 10 + 2
    assert first["ts"] == 100 / 10_000
    assert first["dur"] == 1200 / 10_000
    second = durations[1]
    assert second["tid"] == 1 * 10 + 9
    assert second["name"] == "code-update"


def test_instant_events_land_on_scheduler_lane():
    document = to_chrome_trace(_events(), chips_per_rank=10)
    instants = [e for e in document["traceEvents"] if e.get("ph") == "i"]
    assert len(instants) == 1
    assert instants[0]["tid"] == SCHEDULER_TID
    assert instants[0]["name"] == "row.serve"


def test_thread_metadata_names_code_chips():
    document = to_chrome_trace(_events(), chips_per_rank=10)
    names = {
        (e["pid"], e["tid"]): e["args"]["name"]
        for e in document["traceEvents"]
        if e.get("ph") == "M" and e["name"] == "thread_name"
    }
    assert names[(0, 2)] == "rank 0 chip 2"
    assert names[(0, 19)] == "rank 1 PCC"
    assert names[(0, SCHEDULER_TID)] == "scheduler"
    process_names = [
        e["args"]["name"]
        for e in document["traceEvents"]
        if e.get("ph") == "M" and e["name"] == "process_name"
    ]
    assert process_names == ["channel 0"]


def test_timestamps_are_monotonic():
    document = to_chrome_trace(_events(), chips_per_rank=10)
    stamps = [
        e["ts"] for e in document["traceEvents"] if e.get("ph") in ("X", "i")
    ]
    assert stamps == sorted(stamps)


def test_chips_per_rank_inferred_from_events():
    document = to_chrome_trace(_events())
    durations = [e for e in document["traceEvents"] if e.get("ph") == "X"]
    # max chip id seen is 9 -> 10 chips per rank inferred.
    assert durations[1]["tid"] == 1 * 10 + 9


def test_write_chrome_trace_emits_valid_json(tmp_path):
    path = tmp_path / "run.trace.json"
    count = write_chrome_trace(path, _events(), chips_per_rank=10, label="unit")
    with open(path) as handle:
        document = json.load(handle)
    assert count == len(document["traceEvents"])
    assert document["displayTimeUnit"] == "ns"
    assert document["otherData"]["label"] == "unit"
    assert any(e.get("ph") == "X" for e in document["traceEvents"])
