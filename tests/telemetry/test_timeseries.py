"""Unit tests for the columnar time-series ring buffer and sampler."""

import pytest

from repro.telemetry.timeseries import (
    DEFAULT_CADENCE_TICKS,
    TimeSeries,
    TimeseriesSampler,
    merge_series_dicts,
)


def test_timeseries_append_and_columns():
    series = TimeSeries(["a", "b"], cadence_ticks=10, capacity=8)
    series.append(0, [1.0, 2.0])
    series.append(10, [3.0, 4.0])
    assert len(series) == 2
    assert series.dropped == 0
    assert series.ticks() == [0, 10]
    assert series.column("a") == [1.0, 3.0]
    assert series.column("b") == [2.0, 4.0]
    assert series.rows() == [
        {"tick": 0, "a": 1.0, "b": 2.0},
        {"tick": 10, "a": 3.0, "b": 4.0},
    ]


def test_timeseries_ring_overwrites_oldest():
    series = TimeSeries(["x"], cadence_ticks=1, capacity=3)
    for tick in range(5):
        series.append(tick, [float(tick * 10)])
    assert len(series) == 3
    assert series.total_samples == 5
    assert series.dropped == 2
    # Chronological order is preserved across the wrap point.
    assert series.ticks() == [2, 3, 4]
    assert series.column("x") == [20.0, 30.0, 40.0]


def test_timeseries_validation():
    with pytest.raises(ValueError):
        TimeSeries([])
    with pytest.raises(ValueError):
        TimeSeries(["a", "a"])
    with pytest.raises(ValueError):
        TimeSeries(["a"], cadence_ticks=0)
    with pytest.raises(ValueError):
        TimeSeries(["a"], capacity=0)
    series = TimeSeries(["a", "b"])
    with pytest.raises(ValueError):
        series.append(0, [1.0])


def test_timeseries_as_dict_round_trip():
    series = TimeSeries(["a", "b"], cadence_ticks=5, capacity=2)
    for tick in (0, 5, 10):
        series.append(tick, [float(tick), float(-tick)])
    data = series.as_dict()
    assert data["cadence_ticks"] == 5
    assert data["total_samples"] == 3
    assert data["dropped"] == 1
    assert data["ticks"] == [5, 10]
    assert data["columns"] == {"a": [5.0, 10.0], "b": [-5.0, -10.0]}

    rebuilt = TimeSeries.from_dict(data)
    assert rebuilt.as_dict() == data

    bad = dict(data)
    bad["columns"] = {"a": [5.0, 10.0], "b": [-5.0]}
    with pytest.raises(ValueError):
        TimeSeries.from_dict(bad)


def test_sampler_samples_on_cadence_boundaries():
    sampler = TimeseriesSampler(cadence_ticks=100)
    ticks = []
    sampler.add_probe("t", lambda: ticks[-1])
    # First call samples immediately (initial state), then once per
    # crossed boundary — a jump over several boundaries yields ONE sample.
    for now in (3, 40, 99, 100, 150, 420, 430, 500):
        ticks.append(now)
        sampler.maybe_sample(now)
    assert sampler.series.ticks() == [3, 100, 420, 500]
    assert sampler.series.column("t") == [3.0, 100.0, 420.0, 500.0]


def test_sampler_probe_registration_rules():
    sampler = TimeseriesSampler()
    assert sampler.cadence_ticks == DEFAULT_CADENCE_TICKS
    with pytest.raises(RuntimeError):
        _ = sampler.series  # no probes yet
    sampler.add_probe("a", lambda: 1)
    with pytest.raises(ValueError):
        sampler.add_probe("a", lambda: 2)
    sampler.sample(0)
    with pytest.raises(RuntimeError):
        sampler.add_probe("b", lambda: 3)  # frozen after first sample
    with pytest.raises(ValueError):
        TimeseriesSampler(cadence_ticks=0)


def test_merge_series_dicts_sorted_and_collision_checked():
    one = TimeSeries(["a"], cadence_ticks=1)
    one.append(0, [1.0])
    two = TimeSeries(["a"], cadence_ticks=1)
    two.append(0, [2.0])
    merged = merge_series_dicts([
        {"z/run": one.as_dict()},
        {"a/run": two.as_dict()},
    ])
    assert list(merged) == ["a/run", "z/run"]
    with pytest.raises(ValueError):
        merge_series_dicts([{"x": one.as_dict()}, {"x": two.as_dict()}])
