"""Unit tests for the engine profiler and run profiles."""

import pytest

from repro.sim.engine import Engine
from repro.telemetry import EngineProfiler, RunProfile, WallClock


def test_profiler_keeps_top_n_slowest():
    profiler = EngineProfiler(top_n=2)

    def cb():
        pass

    for seconds in (0.001, 0.005, 0.002, 0.010):
        profiler.record(seconds, tick=int(seconds * 1e6), callback=cb)
    top = profiler.top()
    assert [s.seconds for s in top] == [0.010, 0.005]
    assert profiler.samples_recorded == 4
    assert profiler.total_callback_seconds == pytest.approx(0.018)
    assert all("cb" in s.name for s in top)
    with pytest.raises(ValueError):
        EngineProfiler(top_n=0)


def test_engine_counts_and_profiles_dispatches():
    engine = Engine()
    engine.enable_profiling(top_n=3)
    fired = []
    for delay in (5, 1, 9):
        engine.schedule_after(delay, lambda d=delay: fired.append(d))
    engine.run()
    assert fired == [1, 5, 9]
    assert engine.events_dispatched == 3
    assert engine.profiler.samples_recorded == 3
    assert len(engine.profiler.top()) == 3


def test_run_profile_summary_and_merge():
    profile = RunProfile(events_dispatched=1000, wall_seconds=0.5)
    assert profile.events_per_second == pytest.approx(2000)
    assert "1000 events" in profile.summary()

    other = RunProfile(events_dispatched=500, wall_seconds=0.5)
    profile.merge(other)
    assert profile.events_dispatched == 1500
    assert profile.wall_seconds == pytest.approx(1.0)

    empty = RunProfile()
    assert empty.events_per_second == 0.0


def test_wall_clock_measures_elapsed():
    with WallClock() as clock:
        sum(range(1000))
    assert clock.elapsed > 0
