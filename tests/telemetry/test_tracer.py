"""Unit tests for trace events, sinks and tracers."""

from repro.telemetry import (
    NULL_TRACER,
    EventType,
    JsonlSink,
    ListSink,
    NullTracer,
    RingBufferSink,
    Telemetry,
    TraceEvent,
    Tracer,
    read_jsonl,
)

import pytest


def _event(tick=100, **kwargs):
    return TraceEvent(type=EventType.REQUEST_ISSUE, tick=tick, **kwargs)


def test_event_to_dict_is_compact():
    event = _event(channel=1, req_id=42, kind="read")
    record = event.to_dict()
    assert record == {
        "type": "request.issue", "tick": 100,
        "channel": 1, "req_id": 42, "kind": "read",
    }
    # Defaulted coordinates are omitted entirely.
    assert "rank" not in record and "reason" not in record


def test_event_dict_round_trip():
    event = TraceEvent(
        type=EventType.CHIP_RESERVE, tick=5, channel=0, rank=1, chip=9,
        bank=3, req_id=7, start=5, end=1205, kind="write",
        reason="code-update", extra={"words": 2},
    )
    assert TraceEvent.from_dict(event.to_dict()) == event


def test_ring_buffer_eviction():
    sink = RingBufferSink(capacity=3)
    for tick in range(5):
        sink.append(_event(tick=tick))
    assert sink.total_seen == 5
    assert sink.evicted == 2
    assert [e.tick for e in sink.events] == [2, 3, 4]
    with pytest.raises(ValueError):
        RingBufferSink(capacity=0)


def test_jsonl_round_trip(tmp_path):
    path = tmp_path / "events.jsonl"
    events = [
        _event(tick=1, req_id=1),
        TraceEvent(type=EventType.ROW_DECLINE, tick=2, reason="write-pressure"),
        TraceEvent(type=EventType.WOW_OPEN, tick=3, extra={"group_size": 3}),
    ]
    with JsonlSink(path) as sink:
        for event in events:
            sink.append(event)
    assert sink.written == 3
    assert read_jsonl(path) == events


def test_tracer_fans_out_to_all_sinks():
    a, b = ListSink(), ListSink()
    tracer = Tracer([a, b])
    tracer.emit(_event())
    tracer.emit(_event(tick=200))
    assert tracer.emitted == 2
    assert len(a.events) == len(b.events) == 2
    assert [e.tick for e in tracer.events()] == [100, 200]


def test_null_tracer_is_disabled():
    assert NULL_TRACER.enabled is False
    assert isinstance(NULL_TRACER, NullTracer)
    NULL_TRACER.emit(_event())  # discards silently
    NULL_TRACER.close()


def test_telemetry_bundle_defaults():
    disabled = Telemetry.disabled()
    assert disabled.tracer is NULL_TRACER
    assert disabled.metrics.names() == []

    recording = Telemetry.recording()
    assert recording.tracer.enabled is True
    recording.tracer.emit(_event())
    assert len(recording.tracer.events()) == 1
    # Each bundle gets its own registry.
    assert recording.metrics is not disabled.metrics
