"""Unit tests for the metrics registry instruments."""

import pytest

from repro.telemetry import MetricsRegistry
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    merge_dumps,
)


def test_counter_math():
    registry = MetricsRegistry()
    counter = registry.counter("reads")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    assert registry.value("reads") == 5
    assert counter.as_dict() == {"type": "counter", "value": 5}


def test_gauge_tracks_maximum():
    gauge = MetricsRegistry().gauge("queue.depth")
    gauge.inc()
    gauge.inc()
    gauge.dec()
    gauge.inc(3)
    assert gauge.value == 4
    assert gauge.max_value == 4
    gauge.set(1)
    assert gauge.value == 1
    assert gauge.max_value == 4
    assert gauge.as_dict() == {"type": "gauge", "value": 1, "max": 4}


def test_gauge_set_vs_inc_contract():
    """``set`` is absolute, ``inc``/``dec`` are relative; all share max."""
    gauge = Gauge()
    gauge.set(5)
    gauge.inc(2)       # relative: 5 -> 7
    assert gauge.value == 7 and gauge.max_value == 7
    gauge.set(2)       # absolute: ignores current value
    assert gauge.value == 2 and gauge.max_value == 7
    gauge.dec(3)       # relative: 2 -> -1
    assert gauge.value == -1 and gauge.max_value == 7


def test_gauge_negative_round_trips_through_export():
    """A negative-going gauge exports its true value; max holds at the
    initial 0 because the gauge held 0 before the first update."""
    gauge = Gauge()
    gauge.dec(4)
    assert gauge.value == -4
    assert gauge.max_value == 0
    assert gauge.as_dict() == {"type": "gauge", "value": -4, "max": 0}

    from repro.telemetry.export import to_openmetrics

    text = to_openmetrics({"depth": gauge.as_dict()})
    assert "repro_depth -4\n" in text
    assert "repro_depth_max 0\n" in text


def test_histogram_bucket_placement():
    histogram = Histogram(buckets=(10, 20, 40))
    for value in (5, 10, 11, 39, 40, 41, 1000):
        histogram.observe(value)
    # counts: <=10, <=20, <=40, overflow
    assert histogram.counts == [2, 1, 2, 2]
    assert histogram.count == 7
    assert histogram.min_seen == 5
    assert histogram.max_seen == 1000
    assert histogram.mean == pytest.approx(sum((5, 10, 11, 39, 40, 41, 1000)) / 7)


def test_histogram_percentile():
    histogram = Histogram(buckets=(10, 20, 40))
    for value in (1, 2, 15, 30, 30):
        histogram.observe(value)
    # q = 0 is the exact observed minimum, not the first bucket bound.
    assert histogram.percentile(0.0) == 1.0
    assert histogram.percentile(0.4) == 10.0
    assert histogram.percentile(0.6) == 20.0
    # q = 1 is the exact observed maximum — it must not saturate at the
    # top bucket bound (40).
    assert histogram.percentile(1.0) == 30.0
    # Overflow bucket reports the observed maximum.
    histogram.observe(999)
    assert histogram.percentile(1.0) == 999.0


def test_histogram_percentile_exact_bucket_edges():
    """An integral target rank selects the lower bucket, even when the
    floating-point product q * count rounds just above the edge."""
    histogram = Histogram(buckets=(10, 20))
    for value in (5, 6, 7, 15, 16, 17, 18, 19, 25, 26):
        histogram.observe(value)
    # q * count = 0.3 * 10: float product is 3.0000000000000004; the
    # 3rd observation (7) still lives in the first bucket.
    assert histogram.percentile(0.3) == 10.0
    assert histogram.percentile(0.8) == 20.0
    # One observation past the edge moves to the next bucket.
    assert histogram.percentile(0.31) == 20.0
    # Quantiles landing in the overflow bucket report the exact max.
    assert histogram.percentile(0.95) == 26.0


def test_histogram_percentile_clamps_to_observed_range():
    """Bucket bounds never leak outside [min_seen, max_seen]."""
    histogram = Histogram(buckets=(100, 200))
    histogram.observe(150)
    for q in (0.0, 0.5, 1.0):
        assert histogram.percentile(q) == 150.0


def test_histogram_from_dict_round_trip_and_merge():
    first = Histogram(buckets=(10, 20))
    for value in (1, 5, 15, 99):
        first.observe(value)
    rebuilt = Histogram.from_dict(first.as_dict())
    assert rebuilt.as_dict() == first.as_dict()

    second = Histogram(buckets=(10, 20))
    second.observe(3)
    second.observe(500)
    first.merge(second)
    assert first.count == 6
    assert first.total == sum((1, 5, 15, 99, 3, 500))
    assert first.min_seen == 1 and first.max_seen == 500
    assert first.counts == [3, 1, 2]

    with pytest.raises(ValueError):
        first.merge(Histogram(buckets=(1, 2)))


def test_histogram_empty_and_validation():
    histogram = Histogram()
    assert histogram.buckets == DEFAULT_BUCKETS
    assert histogram.mean == 0.0
    assert histogram.percentile(0.5) == 0.0
    with pytest.raises(ValueError):
        Histogram(buckets=())
    with pytest.raises(ValueError):
        Histogram(buckets=(5, 3, 1))
    with pytest.raises(ValueError):
        histogram.percentile(1.5)


def test_histogram_as_dict_round_numbers():
    histogram = MetricsRegistry().histogram("lat", buckets=(1, 2))
    histogram.observe(1)
    histogram.observe(3)
    data = histogram.as_dict()
    assert data["type"] == "histogram"
    # The explicit overflow bound keeps buckets and counts zippable.
    assert data["buckets"] == [1, 2, "+Inf"]
    assert data["counts"] == [1, 0, 1]
    assert len(data["buckets"]) == len(data["counts"])
    assert data["count"] == 2
    assert data["sum"] == 4.0
    assert data["min"] == 1 and data["max"] == 3
    assert data["p50"] == 1.0 and data["p99"] == 3.0


def test_merge_dumps_is_deterministic_and_typed():
    left = MetricsRegistry()
    left.counter("reads").inc(3)
    left.gauge("depth").set(2)
    left.histogram("lat", buckets=(10, 20)).observe(5)
    right = MetricsRegistry()
    right.counter("reads").inc(4)
    right.gauge("depth").set(7)
    right.histogram("lat", buckets=(10, 20)).observe(15)
    right.counter("writes").inc()

    merged = merge_dumps([left.as_dict(), right.as_dict()])
    assert list(merged) == sorted(merged)
    assert merged["reads"]["value"] == 7
    assert merged["depth"] == {"type": "gauge", "value": 9, "max": 7}
    assert merged["lat"]["counts"] == [1, 1, 0]
    assert merged["lat"]["min"] == 5 and merged["lat"]["max"] == 15
    assert merged["writes"]["value"] == 1
    # Merge order does not matter for the serialised form.
    import json

    swapped = merge_dumps([right.as_dict(), left.as_dict()])
    assert json.dumps(merged, sort_keys=True) == json.dumps(
        swapped, sort_keys=True
    )

    clash = MetricsRegistry()
    clash.gauge("reads").set(1)
    with pytest.raises(TypeError):
        merge_dumps([left.as_dict(), clash.as_dict()])


def test_registry_get_or_create_is_idempotent():
    registry = MetricsRegistry()
    first = registry.counter("x")
    second = registry.counter("x")
    assert first is second
    assert len(registry) == 1
    assert "x" in registry
    assert registry.names() == ["x"]


def test_registry_kind_collision_raises():
    registry = MetricsRegistry()
    registry.counter("clash")
    with pytest.raises(TypeError):
        registry.gauge("clash")
    with pytest.raises(TypeError):
        registry.histogram("clash")


def test_registry_as_dict_sorted():
    registry = MetricsRegistry()
    registry.counter("b").inc()
    registry.gauge("a").set(2)
    dump = registry.as_dict()
    assert list(dump) == ["a", "b"]
    assert dump["a"]["value"] == 2
    assert dump["b"]["value"] == 1
    assert registry.value("missing", default=-7) == -7
    assert registry.get("missing") is None
