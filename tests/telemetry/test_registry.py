"""Unit tests for the metrics registry instruments."""

import pytest

from repro.telemetry import MetricsRegistry
from repro.telemetry.registry import DEFAULT_BUCKETS, Histogram


def test_counter_math():
    registry = MetricsRegistry()
    counter = registry.counter("reads")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    assert registry.value("reads") == 5
    assert counter.as_dict() == {"type": "counter", "value": 5}


def test_gauge_tracks_maximum():
    gauge = MetricsRegistry().gauge("queue.depth")
    gauge.inc()
    gauge.inc()
    gauge.dec()
    gauge.inc(3)
    assert gauge.value == 4
    assert gauge.max_value == 4
    gauge.set(1)
    assert gauge.value == 1
    assert gauge.max_value == 4
    assert gauge.as_dict() == {"type": "gauge", "value": 1, "max": 4}


def test_histogram_bucket_placement():
    histogram = Histogram(buckets=(10, 20, 40))
    for value in (5, 10, 11, 39, 40, 41, 1000):
        histogram.observe(value)
    # counts: <=10, <=20, <=40, overflow
    assert histogram.counts == [2, 1, 2, 2]
    assert histogram.count == 7
    assert histogram.min_seen == 5
    assert histogram.max_seen == 1000
    assert histogram.mean == pytest.approx(sum((5, 10, 11, 39, 40, 41, 1000)) / 7)


def test_histogram_percentile():
    histogram = Histogram(buckets=(10, 20, 40))
    for value in (1, 2, 15, 30, 30):
        histogram.observe(value)
    assert histogram.percentile(0.0) == 0.0 or histogram.count
    assert histogram.percentile(0.4) == 10.0
    assert histogram.percentile(0.6) == 20.0
    assert histogram.percentile(1.0) == 40.0
    # Overflow bucket reports the observed maximum.
    histogram.observe(999)
    assert histogram.percentile(1.0) == 999.0


def test_histogram_empty_and_validation():
    histogram = Histogram()
    assert histogram.buckets == DEFAULT_BUCKETS
    assert histogram.mean == 0.0
    assert histogram.percentile(0.5) == 0.0
    with pytest.raises(ValueError):
        Histogram(buckets=())
    with pytest.raises(ValueError):
        Histogram(buckets=(5, 3, 1))
    with pytest.raises(ValueError):
        histogram.percentile(1.5)


def test_histogram_as_dict_round_numbers():
    histogram = MetricsRegistry().histogram("lat", buckets=(1, 2))
    histogram.observe(1)
    histogram.observe(3)
    data = histogram.as_dict()
    assert data["type"] == "histogram"
    assert data["buckets"] == [1, 2]
    assert data["counts"] == [1, 0, 1]
    assert data["count"] == 2
    assert data["sum"] == 4.0


def test_registry_get_or_create_is_idempotent():
    registry = MetricsRegistry()
    first = registry.counter("x")
    second = registry.counter("x")
    assert first is second
    assert len(registry) == 1
    assert "x" in registry
    assert registry.names() == ["x"]


def test_registry_kind_collision_raises():
    registry = MetricsRegistry()
    registry.counter("clash")
    with pytest.raises(TypeError):
        registry.gauge("clash")
    with pytest.raises(TypeError):
        registry.histogram("clash")


def test_registry_as_dict_sorted():
    registry = MetricsRegistry()
    registry.counter("b").inc()
    registry.gauge("a").set(2)
    dump = registry.as_dict()
    assert list(dump) == ["a", "b"]
    assert dump["a"]["value"] == 2
    assert dump["b"]["value"] == 1
    assert registry.value("missing", default=-7) == -7
    assert registry.get("missing") is None
