"""Tests for the top-level package API and misc wrappers."""


import repro
from repro.sim.simulator import SimulationParams


def test_version_string():
    assert repro.__version__ == "1.0.0"


def test_top_level_run_workload_wrapper():
    result = repro.run_workload(
        "MP3",
        repro.make_system("baseline"),
        params=SimulationParams(instructions_per_core=3_000, n_cores=2),
    )
    assert result.ipc > 0
    assert result.workload_name == "MP3"


def test_public_names_importable():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_system_names_exported():
    assert repro.SYSTEM_NAMES[0] == "baseline"
    assert len(repro.PCMAP_SYSTEM_NAMES) == 5


def test_make_read_write_exported():
    read = repro.make_read(1, 64)
    write = repro.make_write(2, 128, 0b1)
    assert read.is_read and write.is_write
