"""Unit tests for the columnar (array-backed) set-associative cache."""

import pytest

from repro.cache.array_backend import BATCH_MIN_ACCESSES, ArraySetCache
from repro.cache.replacement import ReplacementPolicy, register_replacement_policy
from repro.cache.set_assoc import (
    CACHE_BACKENDS,
    SetAssociativeCache,
    make_set_cache,
)

LINE = 64


def _small_cache(sets=4, assoc=2, **kwargs):
    return ArraySetCache(LINE * sets * assoc, assoc, **kwargs)


# ----------------------------------------------------------------------
# Geometry / construction
# ----------------------------------------------------------------------
def test_geometry_validation():
    with pytest.raises(ValueError):
        ArraySetCache(100, 2)


def test_custom_policy_instance_is_rejected():
    class Weird(ReplacementPolicy):
        def on_fill(self, line, tick):
            return 0

        def on_hit(self, line, tick):
            return None

        def victim(self, lines, tick):
            return 0

    with pytest.raises(ValueError, match="no array mirror"):
        ArraySetCache(LINE * 8, 2, policy=Weird())


# ----------------------------------------------------------------------
# Probe / line_state / merge_dirty contracts
# ----------------------------------------------------------------------
def test_probe_returns_slab_index_possibly_zero():
    cache = _small_cache(sets=1, assoc=2)
    assert cache.probe(0) is None           # miss: no allocation
    assert cache.stats.misses == 1
    cache.install(0)
    idx = cache.probe(0)
    # The first fill of set 0 lands at slab index 0 — the reason callers
    # must test `is not None`, never truthiness.
    assert idx == 0
    assert cache.stats.hits == 1


def test_probe_merges_dirty_mask_on_hit():
    cache = _small_cache(sets=1, assoc=2)
    cache.install(0)
    cache.probe(0, dirty_mask=0b101)
    state = cache.line_state(0)
    assert state is not None and state.dirty_mask == 0b101
    assert cache.dirty_lines() == [0]


def test_line_state_is_a_snapshot_not_a_writethrough():
    cache = _small_cache(sets=1, assoc=2)
    cache.install(0)
    state = cache.line_state(0)
    state.dirty_mask |= 0xFF                # mutating the copy ...
    assert cache.line_state(0).dirty_mask == 0   # ... changes nothing
    cache.merge_dirty(0, 0b11)              # merge_dirty writes through
    assert cache.line_state(0).dirty_mask == 0b11


def test_merge_dirty_is_noop_on_miss_and_zero_mask():
    cache = _small_cache(sets=1, assoc=2)
    cache.merge_dirty(0, 0b1)               # not resident: no-op
    assert cache.line_state(0) is None
    cache.install(0)
    cache.merge_dirty(0, 0)                 # zero mask: no-op
    assert cache.line_state(0).dirty_mask == 0


def test_line_state_miss_returns_none():
    cache = _small_cache()
    assert cache.line_state(12345 * LINE) is None


# ----------------------------------------------------------------------
# Sentinel hygiene: vacated slots must never produce stale hits
# ----------------------------------------------------------------------
def test_invalidate_restores_sentinel_no_stale_classify_hits():
    cache = _small_cache(sets=1, assoc=4)
    addresses = [i * LINE for i in range(4)]
    for address in addresses:
        cache.access(address, is_write=False)
    cache.invalidate(1 * LINE)
    # Enough duplicates to clear BATCH_MIN_ACCESSES so the vector path
    # (when numpy is present) is the one under test.
    batch = addresses * BATCH_MIN_ACCESSES
    flags = cache.classify_batch(batch)
    for address, flag in zip(batch, flags):
        assert flag == (address != 1 * LINE)
    assert not cache.contains(1 * LINE)


def test_eviction_shifts_tail_and_restores_sentinel():
    cache = _small_cache(sets=1, assoc=2)
    cache.access(0 * LINE, True)            # A dirty
    cache.access(1 * LINE, True)            # B dirty
    cache.access(0 * LINE, False)           # touch A -> B is LRU
    _hit, evicted = cache.access(2 * LINE, False)
    assert evicted is not None and evicted.address == 1 * LINE
    assert cache.contains(0) and cache.contains(2 * LINE)
    assert not cache.contains(1 * LINE)
    flags = cache.classify_batch([1 * LINE] * BATCH_MIN_ACCESSES)
    assert not any(flags)


# ----------------------------------------------------------------------
# dirty_lines drain order
# ----------------------------------------------------------------------
def test_dirty_lines_matches_object_backend_drain_order():
    obj = SetAssociativeCache(LINE * 8 * 4, 4)
    arr = _small_cache(sets=8, assoc=4)
    # Touch sets out of numeric order so first-fill order != set order.
    stream = [5, 2, 7, 2, 0, 5, 3, 1, 6, 0, 4]
    for i, set_index in enumerate(stream):
        address = (i * 8 + set_index) * LINE
        obj.access(address, is_write=True)
        arr.access(address, is_write=True)
    assert arr.dirty_lines() == obj.dirty_lines()
    assert arr.resident_lines() == obj.resident_lines()


# ----------------------------------------------------------------------
# Scalar fallback and functional payloads
# ----------------------------------------------------------------------
def test_access_batch_small_batches_take_scalar_path():
    cache = _small_cache(sets=2, assoc=2)
    addresses = [0, LINE, 0]
    assert len(addresses) < BATCH_MIN_ACCESSES
    hits, evictions = cache.access_batch(addresses, [False, True, True])
    assert hits == [False, False, True]
    assert evictions == [None, None, None]
    assert cache.stats.hits == 1 and cache.stats.misses == 2


def test_track_words_stores_values_and_validates():
    cache = _small_cache(sets=1, assoc=2, track_words=True)
    cache.access(0 + 8 * 3, is_write=True, value=0xDEAD)
    state = cache.line_state(0)
    assert state.words[3] == 0xDEAD
    assert state.dirty_mask == 1 << 3
    with pytest.raises(ValueError, match="out of range"):
        cache.access(0, is_write=True, value=1 << 64)


def test_install_is_idempotent_and_invalidate_clean_returns_none():
    cache = _small_cache(sets=1, assoc=2)
    assert cache.install(0) is None
    assert cache.install(0) is None         # already resident: no-op
    assert cache.resident_lines() == 1
    assert cache.invalidate(0) is None      # clean: no write-back record
    assert cache.resident_lines() == 0
    assert cache.invalidate(0) is None      # not resident: no-op


def test_invalidate_dirty_returns_eviction_record():
    cache = _small_cache(sets=1, assoc=2)
    cache.access(2 * LINE + 8, is_write=True)
    evicted = cache.invalidate(2 * LINE)
    assert evicted is not None
    assert evicted.address == 2 * LINE
    assert evicted.dirty_mask == 1 << 1
    assert cache.stats.dirty_evictions == 1


# ----------------------------------------------------------------------
# Factory selection
# ----------------------------------------------------------------------
def test_factory_auto_picks_array_for_builtin_policies():
    for name in ("lru", "clock", "mac"):
        cache = make_set_cache(LINE * 16, 4, policy=name)
        assert isinstance(cache, ArraySetCache)


def test_factory_auto_falls_back_to_object_for_custom_policy():
    class Custom(ReplacementPolicy):
        def on_fill(self, line, tick):
            return 0

        def on_hit(self, line, tick):
            return None

        def victim(self, lines, tick):
            return 0

    cache = make_set_cache(LINE * 16, 4, policy=Custom())
    assert isinstance(cache, SetAssociativeCache)


def test_factory_array_with_custom_policy_raises():
    class Custom(ReplacementPolicy):
        def on_fill(self, line, tick):
            return 0

        def on_hit(self, line, tick):
            return None

        def victim(self, lines, tick):
            return 0

    with pytest.raises(ValueError, match="no array mirror"):
        make_set_cache(LINE * 16, 4, policy=Custom(), backend="array")


def test_factory_object_forced_and_bad_backend_rejected():
    cache = make_set_cache(LINE * 16, 4, backend="object")
    assert isinstance(cache, SetAssociativeCache)
    with pytest.raises(ValueError, match="unknown cache backend"):
        make_set_cache(LINE * 16, 4, backend="rowmajor")
    assert CACHE_BACKENDS == ("auto", "array", "object")


def test_factory_lru_subclass_falls_back_to_object():
    """A *subclass* of a builtin must not silently get the builtin's
    array mirror — its overridden hooks would never run."""
    from repro.cache.replacement import LruReplacement

    class Pinned(LruReplacement):
        def victim(self, lines, tick):
            return 0

    cache = make_set_cache(LINE * 16, 4, policy=Pinned())
    assert isinstance(cache, SetAssociativeCache)
