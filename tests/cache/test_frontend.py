"""Unit tests for the timed DRAM-cache front end.

Driven against a scripted fake memory port so latencies and back-pressure
are exact; one test runs the real MainMemory underneath for integration.
"""

import pytest

from repro.cache.frontend import (
    FILL_ID_BASE,
    WRITE_BACK_ID_BASE,
    DramCacheFrontEnd,
    FrontEndConfig,
    FrontEndStats,
)
from repro.cache.dram_cache import DramCacheConfig
from repro.memory.request import MemoryRequest, RequestKind
from repro.sim.engine import Engine

LINE = 64


class FakeMemory:
    """Scripted MemoryPort: fixed fill latency, togglable write admission."""

    def __init__(self, engine, read_latency=500):
        self.engine = engine
        self.read_latency = read_latency
        self.submitted = []
        self.accept_writes = True
        self._write_waiters = []

    def can_accept(self, kind, address):
        if kind is RequestKind.WRITE:
            return self.accept_writes
        return True

    def submit(self, request):
        request.arrival = self.engine.now
        self.submitted.append(request)
        if request.is_read:
            self.engine.call_after(
                self.read_latency,
                request.complete,
                self.engine.now + self.read_latency,
            )

    def wait_for_space(self, kind, address, callback):
        assert kind is RequestKind.WRITE
        self._write_waiters.append(callback)

    def open_writes(self):
        self.accept_writes = True
        waiters, self._write_waiters = self._write_waiters, []
        for callback in waiters:
            callback()

    @property
    def idle(self):
        return True


def _frontend(engine, memory, *, access_cycles=25, cycle_ticks=4,
              size_bytes=8 * LINE, associativity=2, mshrs=4,
              writeback_buffer=2, replacement="lru"):
    config = FrontEndConfig(
        kind="dram",
        dram=DramCacheConfig(
            size_bytes=size_bytes,
            associativity=associativity,
            access_cycles=access_cycles,
        ),
        replacement=replacement,
        mshrs=mshrs,
        writeback_buffer=writeback_buffer,
    )
    return DramCacheFrontEnd(engine, memory, config, cycle_ticks=cycle_ticks)


def _read(address, req_id=1, core_id=0):
    return MemoryRequest(
        req_id=req_id, kind=RequestKind.READ, address=address, core_id=core_id
    )


def _write(address, dirty_mask, req_id=1, core_id=0):
    return MemoryRequest(
        req_id=req_id, kind=RequestKind.WRITE, address=address,
        core_id=core_id, dirty_mask=dirty_mask,
    )


def _completion_tracker(request, log):
    request.on_complete = lambda req: log.append(
        (req.req_id, req.completion)
    )
    return request


# ---------------------------------------------------------------------------
# Satellite: access_cycles drives scheduled hit latency
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("access_cycles,cycle_ticks", [(25, 4), (100, 4), (1, 10)])
def test_access_cycles_config_round_trips_into_event_timing(
    access_cycles, cycle_ticks
):
    """The once-dead ``DramCacheConfig.access_cycles`` knob must determine
    exactly when a tier hit completes on the engine."""
    engine = Engine()
    memory = FakeMemory(engine)
    frontend = _frontend(
        engine, memory, access_cycles=access_cycles, cycle_ticks=cycle_ticks
    )
    assert frontend.hit_ticks == access_cycles * cycle_ticks

    frontend.dram.cache.install(0)          # make the next read a hit
    done = []
    frontend.submit(_completion_tracker(_read(0), done))
    assert not done                          # hit is an event, not instant
    engine.run()
    assert done == [(1, access_cycles * cycle_ticks)]
    assert frontend.stats.read_hits == 1


def test_miss_latency_is_memory_latency_not_hit_latency():
    engine = Engine()
    memory = FakeMemory(engine, read_latency=500)
    frontend = _frontend(engine, memory)
    done = []
    frontend.submit(_completion_tracker(_read(0), done))
    engine.run()
    assert done == [(1, 500)]
    assert frontend.stats.read_misses == 1
    assert frontend.stats.fills == 1


# ---------------------------------------------------------------------------
# MSHR coalescing
# ---------------------------------------------------------------------------
def test_overlapping_read_misses_coalesce_to_one_fill():
    engine = Engine()
    memory = FakeMemory(engine)
    frontend = _frontend(engine, memory)
    done = []
    frontend.submit(_completion_tracker(_read(0, req_id=1), done))
    frontend.submit(_completion_tracker(_read(0, req_id=2), done))
    frontend.submit(_completion_tracker(_read(0, req_id=3), done))
    assert frontend.mshr_depth == 1
    engine.run()
    # One PCM fill (with a tier-namespace id), all three waiters complete
    # together when it lands.
    fills = [r for r in memory.submitted if r.req_id > FILL_ID_BASE]
    assert len(fills) == 1
    assert sorted(done) == [(1, 500), (2, 500), (3, 500)]
    assert frontend.stats.coalesced == 2
    assert frontend.mshr_depth == 0


def test_write_miss_coalesces_and_merges_pending_mask():
    engine = Engine()
    memory = FakeMemory(engine)
    frontend = _frontend(engine, memory)
    frontend.submit(_write(0, dirty_mask=0b0001, req_id=1))
    frontend.submit(_write(0, dirty_mask=0b1000, req_id=2))
    assert frontend.stats.coalesced == 1
    engine.run()
    line = frontend.dram.cache.line_state(0)
    assert line is not None
    assert line.dirty_mask == 0b1001        # merged at install time
    assert frontend.stats.write_misses == 2
    assert frontend.stats.fills == 1


def test_write_hit_merges_mask_immediately():
    engine = Engine()
    memory = FakeMemory(engine)
    frontend = _frontend(engine, memory)
    frontend.dram.cache.install(0)
    frontend.submit(_write(0, dirty_mask=0b0110))
    assert frontend.dram.cache.line_state(0).dirty_mask == 0b0110
    engine.run()
    assert frontend.stats.write_hits == 1


def test_line_not_visible_before_fill_completes():
    engine = Engine()
    memory = FakeMemory(engine, read_latency=500)
    frontend = _frontend(engine, memory)
    frontend.submit(_read(0))
    assert not frontend.dram.cache.contains(0)
    engine.run(until=499)
    assert not frontend.dram.cache.contains(0)
    engine.run()
    assert frontend.dram.cache.contains(0)


# ---------------------------------------------------------------------------
# Admission control and back-pressure
# ---------------------------------------------------------------------------
def test_mshr_exhaustion_blocks_new_misses_but_not_hits():
    engine = Engine()
    memory = FakeMemory(engine)
    frontend = _frontend(engine, memory, mshrs=2)
    frontend.dram.cache.install(100 * LINE)
    frontend.submit(_read(0, req_id=1))
    frontend.submit(_read(LINE, req_id=2))
    assert frontend.mshr_depth == 2
    assert not frontend.can_accept(RequestKind.READ, 2 * LINE)  # new miss
    assert frontend.can_accept(RequestKind.READ, 0)             # MSHR hit
    assert frontend.can_accept(RequestKind.READ, 100 * LINE)    # cache hit
    engine.run()
    assert frontend.can_accept(RequestKind.READ, 2 * LINE)


def test_space_waiters_wake_after_fill_completion():
    engine = Engine()
    memory = FakeMemory(engine)
    frontend = _frontend(engine, memory, mshrs=1)
    frontend.submit(_read(0))
    woken = []
    frontend.wait_for_space(RequestKind.READ, LINE, lambda: woken.append(1))
    engine.run()
    assert woken == [1]


def test_full_writeback_buffer_blocks_writes():
    engine = Engine()
    memory = FakeMemory(engine)
    memory.accept_writes = False
    # assoc-1 cache: every distinct-set fill evicts; dirty lines become
    # write-backs that pile up in the tier buffer while PCM refuses them.
    frontend = _frontend(engine, memory, size_bytes=2 * LINE,
                         associativity=1, writeback_buffer=2)
    for i in (0, 2, 4, 6):  # set 0 each time (2 sets, stride 2 lines)
        frontend.submit(_write(i * LINE, dirty_mask=1, req_id=i))
        engine.run()
    assert frontend.writeback_depth >= 2
    assert not frontend.can_accept(RequestKind.WRITE, 8 * LINE)
    # Reads are still admissible (they don't need a write-back slot).
    assert frontend.can_accept(RequestKind.READ, LINE)
    # When the controller opens up, the tier drains in eviction order and
    # write admission resumes.
    memory.open_writes()
    engine.run()
    assert frontend.writeback_depth == 0
    assert frontend.can_accept(RequestKind.WRITE, 8 * LINE)
    wbs = [r for r in memory.submitted if r.req_id > WRITE_BACK_ID_BASE]
    assert len(wbs) >= 2
    addresses = [r.address for r in wbs]
    assert addresses == sorted(addresses, key=addresses.index)  # in order


def test_dirty_eviction_becomes_pcm_write_with_mask():
    engine = Engine()
    memory = FakeMemory(engine)
    frontend = _frontend(engine, memory, size_bytes=2 * LINE, associativity=1)
    frontend.submit(_write(0, dirty_mask=0b101))
    engine.run()
    frontend.submit(_read(2 * LINE))        # same set -> evicts dirty line 0
    engine.run()
    wbs = [r for r in memory.submitted if r.req_id > WRITE_BACK_ID_BASE]
    assert len(wbs) == 1
    assert wbs[0].address == 0
    assert wbs[0].dirty_mask == 0b101
    assert frontend.stats.write_backs == 1


def test_clean_eviction_issues_no_write_back():
    engine = Engine()
    memory = FakeMemory(engine)
    frontend = _frontend(engine, memory, size_bytes=2 * LINE, associativity=1)
    frontend.submit(_read(0))
    engine.run()
    frontend.submit(_read(2 * LINE))        # evicts clean line 0
    engine.run()
    assert frontend.stats.write_backs == 0
    assert frontend.dram.stats.clean_evictions == 1


# ---------------------------------------------------------------------------
# Verify forwarding (RoW rollback propagation through the tier)
# ---------------------------------------------------------------------------
def test_fill_verify_forwards_to_all_coalesced_readers():
    engine = Engine()
    memory = FakeMemory(engine)
    frontend = _frontend(engine, memory)
    outcomes = []

    def make_reader(req_id):
        request = _read(0, req_id=req_id)
        request.on_verify = lambda req, rollback: outcomes.append(
            (req.req_id, rollback)
        )
        return request

    frontend.submit(make_reader(1))
    frontend.submit(make_reader(2))
    fill = [r for r in memory.submitted if r.req_id > FILL_ID_BASE][0]
    engine.run()
    fill.on_verify(fill, True)              # controller's deferred verify
    assert sorted(outcomes) == [(1, True), (2, True)]
    assert frontend.stats.fill_rollbacks == 1


# ---------------------------------------------------------------------------
# Bookkeeping
# ---------------------------------------------------------------------------
def test_stats_agree_with_cache_counters():
    engine = Engine()
    memory = FakeMemory(engine)
    frontend = _frontend(engine, memory, size_bytes=4 * LINE, associativity=2)
    for i in range(20):
        frontend.submit(_read((i % 6) * LINE, req_id=i))
        engine.run()
    assert frontend.stats.hits == frontend.dram.stats.hits
    assert frontend.stats.read_misses + frontend.stats.write_misses == (
        frontend.dram.stats.misses
    )
    assert frontend.stats.accesses == 20


def test_idle_reflects_inflight_work():
    engine = Engine()
    memory = FakeMemory(engine)
    frontend = _frontend(engine, memory)
    assert frontend.idle
    frontend.submit(_read(0))
    assert not frontend.idle
    engine.run()
    assert frontend.idle


def test_summary_shape():
    engine = Engine()
    memory = FakeMemory(engine)
    frontend = _frontend(engine, memory, replacement="mac")
    frontend.submit(_read(0))
    engine.run()
    summary = frontend.summary()
    assert summary["kind"] == "dram"
    assert summary["replacement"] == "mac"
    assert summary["fills"] == 1
    assert summary["cache"]["misses"] == 1
    assert set(summary["cache"]) == {
        "hits", "misses", "evictions", "dirty_evictions", "clean_evictions"
    }


def test_config_validation():
    with pytest.raises(ValueError):
        FrontEndConfig(kind="sram")
    with pytest.raises(ValueError):
        FrontEndConfig(kind="dram", replacement="random")
    with pytest.raises(ValueError):
        FrontEndConfig(kind="dram", mshrs=0)
    with pytest.raises(ValueError):
        FrontEndConfig(kind="dram", writeback_buffer=0)
    with pytest.raises(ValueError):
        DramCacheFrontEnd(Engine(), FakeMemory(Engine()), FrontEndConfig(), 4)
    assert not FrontEndConfig().enabled
    assert FrontEndConfig(kind="dram").enabled


def test_stats_hit_rate_empty():
    stats = FrontEndStats()
    assert stats.hit_rate == 0.0
    assert stats.accesses == 0
