"""Unit tests for the pluggable replacement policies."""

import pytest

from repro.cache.replacement import (
    REPLACEMENT_POLICIES,
    REPLACEMENT_POLICY_NAMES,
    ClockReplacement,
    LruReplacement,
    MacReplacement,
    ReplacementPolicy,
    make_replacement_policy,
    register_replacement_policy,
)
from repro.cache.set_assoc import SetAssociativeCache

LINE = 64


def _cache(policy, sets=1, assoc=4):
    return SetAssociativeCache(LINE * sets * assoc, assoc, policy=policy)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
def test_registry_names_match_factories():
    assert set(REPLACEMENT_POLICY_NAMES) <= set(REPLACEMENT_POLICIES)
    for name in ("lru", "clock", "mac"):
        assert name in REPLACEMENT_POLICIES
        policy = make_replacement_policy(name)
        assert policy.name == name


def test_make_policy_defaults_to_lru():
    assert isinstance(make_replacement_policy(None), LruReplacement)


def test_make_policy_passes_instances_through():
    policy = ClockReplacement()
    assert make_replacement_policy(policy) is policy


def test_make_policy_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown replacement policy"):
        make_replacement_policy("fifo-ish")


def test_register_custom_policy():
    class AlwaysFirst(ReplacementPolicy):
        name = "always-first"

        def victim(self, set_index, entries):
            return entries[0]

    register_replacement_policy("always-first", AlwaysFirst)
    try:
        assert "always-first" in REPLACEMENT_POLICY_NAMES
        cache = _cache("always-first", assoc=2)
        cache.access(0 * LINE, False)
        cache.access(1 * LINE, False)
        cache.access(1 * LINE, False)  # touch B; LRU would evict A anyway
        cache.access(0 * LINE, False)  # touch A; LRU victim is now B
        cache.access(2 * LINE, False)  # AlwaysFirst still evicts A
        assert not cache.contains(0)
        assert cache.contains(1 * LINE)
    finally:
        REPLACEMENT_POLICIES.pop("always-first", None)
        REPLACEMENT_POLICY_NAMES.remove("always-first")


# ---------------------------------------------------------------------------
# LRU (must match the historical hard-coded behaviour)
# ---------------------------------------------------------------------------
def test_lru_evicts_least_recently_used():
    cache = _cache("lru", assoc=3)
    for i in range(3):
        cache.access(i * LINE, False)
    cache.access(0 * LINE, False)   # order now: 1, 2, 0
    cache.access(3 * LINE, False)   # evicts 1
    assert not cache.contains(1 * LINE)
    assert cache.contains(0) and cache.contains(2 * LINE)


def test_default_policy_is_lru():
    cache = SetAssociativeCache(LINE * 4, 4)
    assert isinstance(cache.policy, LruReplacement)


# ---------------------------------------------------------------------------
# CLOCK
# ---------------------------------------------------------------------------
def test_clock_gives_second_chance_to_referenced_lines():
    cache = _cache("clock", assoc=2)
    cache.access(0 * LINE, False)   # A (ref set on fill)
    cache.access(1 * LINE, False)   # B (ref set on fill)
    cache.access(0 * LINE, False)   # A re-referenced (ref already set)
    # Both bits are set, so the first eviction is a full sweep: it clears
    # both bits and takes the line at the hand.  The survivor is left
    # with a *clear* bit while the newcomer C fills with its bit set.
    cache.access(2 * LINE, False)
    survivors = [a for a in (0, LINE) if cache.contains(a)]
    assert len(survivors) == 1
    # Second chance: the next eviction must take the clear-bit survivor
    # and spare the referenced newcomer C.
    cache.access(3 * LINE, False)
    assert not cache.contains(survivors[0])
    assert cache.contains(2 * LINE)


def test_clock_terminates_when_all_bits_set():
    policy = ClockReplacement()
    cache = _cache(policy, assoc=4)
    for i in range(4):
        cache.access(i * LINE, False)
    for i in range(4):
        cache.access(i * LINE, False)  # every ref bit set
    cache.access(4 * LINE, False)      # full sweep, then a victim
    assert cache.resident_lines() == 4


# ---------------------------------------------------------------------------
# MAC (multilevel access counters)
# ---------------------------------------------------------------------------
def test_mac_protects_frequently_hit_lines():
    cache = _cache("mac", assoc=2)
    cache.access(0 * LINE, False)
    for _ in range(3):
        cache.access(0 * LINE, False)   # promote A to the top level
    cache.access(1 * LINE, False)       # B at level 0
    cache.access(1 * LINE, False)       # B level 1 but more recent than A
    cache.access(2 * LINE, False)       # victim = lowest level -> B
    assert cache.contains(0)
    assert not cache.contains(1 * LINE)


def test_mac_renormalises_saturated_sets():
    policy = MacReplacement(levels=4)
    cache = _cache(policy, assoc=2)
    cache.access(0 * LINE, False)
    cache.access(1 * LINE, False)
    for _ in range(5):                  # both lines promoted off level 0
        cache.access(0 * LINE, False)
        cache.access(1 * LINE, False)
    lines_before = [cache.line_state(0), cache.line_state(LINE)]
    assert all(line.policy_state > 0 for line in lines_before)
    cache.access(2 * LINE, False)       # victim() renormalises first
    # The set's floor was subtracted, so the survivor is not pinned at
    # the ceiling and the newcomer can compete.
    remaining = [
        cache.line_state(a) for a in (0, LINE, 2 * LINE)
        if cache.contains(a)
    ]
    assert min(line.policy_state for line in remaining) == 0


def test_mac_rejects_degenerate_levels():
    with pytest.raises(ValueError):
        MacReplacement(levels=1)


# ---------------------------------------------------------------------------
# Policies actually change eviction behaviour
# ---------------------------------------------------------------------------
def test_policies_diverge_on_mixed_reuse_pattern():
    """A hot line + streaming scans: frequency-aware MAC keeps the hot
    line resident longer than pure recency does."""
    def run(policy_name):
        cache = _cache(policy_name, sets=2, assoc=2)
        hot_hits = 0
        for i in range(64):
            cache.access(0, False)                      # hot line
            cache.access((1 + i % 16) * 2 * LINE, False)  # same-set scan
            if cache.contains(0):
                hot_hits += 1
        return hot_hits

    results = {name: run(name) for name in REPLACEMENT_POLICY_NAMES}
    assert len(set(results.values())) >= 2, results
    assert results["mac"] >= results["lru"]
