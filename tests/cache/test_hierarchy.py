"""Unit tests for the DRAM cache and the three-level hierarchy."""

import pytest

from repro.cache.dram_cache import DramCache, DramCacheConfig
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.trace.record import AccessKind, TraceRecord

LINE = 64


def _tiny_hierarchy():
    """Small caches so evictions actually happen in tests."""
    return CacheHierarchy(
        n_cores=2,
        config=HierarchyConfig(
            l1_size=4 * LINE,
            l1_associativity=2,
            l2_size=16 * LINE,
            l2_associativity=2,
            dram_cache=DramCacheConfig(size_bytes=64 * LINE, associativity=2),
        ),
    )


def test_dram_cache_write_back_stream():
    dram = DramCache(DramCacheConfig(size_bytes=2 * LINE, associativity=1))
    dram.access(0, is_write=True)
    hit, write_backs = dram.access(2 * LINE, is_write=False)  # same set
    assert not hit
    assert len(write_backs) == 1
    assert write_backs[0].address == 0
    assert dram.write_backs == 1


def test_dram_cache_flush_drains_dirty_lines():
    dram = DramCache(DramCacheConfig(size_bytes=8 * LINE, associativity=2))
    dram.access(0, True)
    dram.access(LINE, True)
    dram.access(2 * LINE, False)
    drained = dram.flush()
    assert {e.address for e in drained} == {0, LINE}
    assert all(e.dirty for e in drained)


def test_first_touch_misses_to_memory():
    hierarchy = _tiny_hierarchy()
    outcome = hierarchy.reference(0, 0x1000, is_write=False)
    assert outcome.hit_level == "memory"
    assert outcome.fills == [0x1000]


def test_second_touch_hits_l1():
    hierarchy = _tiny_hierarchy()
    hierarchy.reference(0, 0x1000, False)
    outcome = hierarchy.reference(0, 0x1000, False)
    assert outcome.hit_level == "l1"
    assert not outcome.fills


def test_l1_eviction_falls_to_l2():
    hierarchy = _tiny_hierarchy()
    hierarchy.reference(0, 0, False)
    # Evict line 0 from the 4-line L1 by touching its set.
    for i in range(1, 6):
        hierarchy.reference(0, i * 2 * LINE * 2, False)
    # The L2 should now serve line 0 if it was spilled there, or the
    # reference at least must not crash and must come from below L1.
    outcome = hierarchy.reference(0, 0, False)
    assert outcome.hit_level in ("l1", "l2", "dram")


def test_dirty_masks_propagate_to_memory_writebacks():
    hierarchy = _tiny_hierarchy()
    seen_masks = []
    # Hammer stores at word 3 of many lines; tiny caches force dirty
    # evictions all the way out to memory write-backs.
    for i in range(400):
        outcome = hierarchy.reference(0, i * LINE + 8 * 3, is_write=True)
        for wb in outcome.write_backs:
            seen_masks.append(wb.dirty_mask)
    assert seen_masks, "expected memory-level write-backs"
    assert all(mask & (1 << 3) for mask in seen_masks)


def test_replay_produces_memory_level_trace():
    hierarchy = _tiny_hierarchy()
    records = [
        TraceRecord(10, AccessKind.STORE, i * LINE + (i % 8) * 8)
        for i in range(300)
    ]
    trace, levels = hierarchy.replay(0, records)
    assert sum(levels.values()) == 300
    assert levels["memory"] > 0
    kinds = {r.kind for r in trace}
    assert AccessKind.READ in kinds
    assert AccessKind.WRITE_BACK in kinds
    # Gaps are conserved: total gap in == total gap out (trailing gap of
    # accesses that produced no memory event may be carried forward).
    assert sum(r.gap_instructions for r in trace) <= 300 * 10


def test_replay_rejects_memory_level_records():
    hierarchy = _tiny_hierarchy()
    with pytest.raises(ValueError):
        hierarchy.replay(0, [TraceRecord(0, AccessKind.READ, 0)])


def test_core_id_validated():
    hierarchy = _tiny_hierarchy()
    with pytest.raises(ValueError):
        hierarchy.reference(5, 0, False)


def test_per_core_l1s_are_private():
    hierarchy = _tiny_hierarchy()
    hierarchy.reference(0, 0, False)
    outcome = hierarchy.reference(1, 0, False)
    # Core 1 misses its own L1 but finds the line below.
    assert outcome.hit_level in ("l2", "dram")


def _post_l2_hierarchy():
    """No functional DRAM level: the post-L2 stream is the boundary."""
    return CacheHierarchy(
        n_cores=1,
        config=HierarchyConfig(
            l1_size=4 * LINE,
            l1_associativity=2,
            l2_size=16 * LINE,
            l2_associativity=2,
            dram_cache=None,
        ),
    )


def test_dramless_hierarchy_misses_straight_to_memory():
    hierarchy = _post_l2_hierarchy()
    assert hierarchy.dram is None
    outcome = hierarchy.reference(0, 0x1000, False)
    assert outcome.hit_level == "memory"
    assert outcome.fills == [0x1000]


def test_dramless_hierarchy_emits_l2_evictions_as_write_backs():
    hierarchy = _post_l2_hierarchy()
    masks = []
    for i in range(400):
        outcome = hierarchy.reference(0, i * LINE + 8 * 2, is_write=True)
        assert outcome.hit_level in ("l1", "l2", "memory")  # never "dram"
        for wb in outcome.write_backs:
            masks.append(wb.dirty_mask)
    assert masks, "expected post-L2 write-backs"
    assert all(mask & (1 << 2) for mask in masks)


def test_hierarchy_replacement_policy_threads_to_every_level():
    hierarchy = CacheHierarchy(
        n_cores=1, config=HierarchyConfig(replacement="clock")
    )
    assert hierarchy.l1s[0].policy.name == "clock"
    assert hierarchy.l2.policy.name == "clock"
    assert hierarchy.dram.cache.policy.name == "clock"
