"""Determinism of the cache hierarchy across interpreter hash seeds.

The hierarchy (and the replacement policies behind it) must never iterate
a hash-ordered container on a decision path: the same trace and config
must produce a byte-identical write-back stream whatever PYTHONHASHSEED
the interpreter started with.  Mirrors the synthetic-trace pin in
``tests/trace/test_synthetic.py``.
"""

import os
import subprocess
import sys

import pytest

import repro

_SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

#: Replays a deterministic pseudo-random access pattern through a tiny
#: three-level hierarchy and hashes the resulting memory-level stream —
#: fills, write-back addresses AND masks, in order.
_SCRIPT = """
import hashlib
from repro.cache.dram_cache import DramCacheConfig
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig

LINE = 64
hierarchy = CacheHierarchy(
    n_cores=2,
    config=HierarchyConfig(
        l1_size=4 * LINE, l1_associativity=2,
        l2_size=16 * LINE, l2_associativity=2,
        dram_cache=DramCacheConfig(size_bytes=64 * LINE, associativity=2),
        replacement={policy!r},
    ),
)
h = hashlib.sha256()
state = 12345
for i in range(4000):
    state = (state * 1103515245 + 12345) % (1 << 31)
    address = (state % 512) * LINE + (state % 8) * 8
    outcome = hierarchy.reference(i % 2, address, is_write=(state % 3 == 0))
    h.update(repr((outcome.hit_level, tuple(outcome.fills))).encode())
    for wb in outcome.write_backs:
        h.update(repr((wb.address, wb.dirty_mask)).encode())
print(h.hexdigest())
"""


@pytest.mark.parametrize("policy", ["lru", "clock", "mac"])
def test_writeback_stream_identical_across_hash_seeds(policy):
    digests = set()
    for hash_seed in ("0", "1", "31337"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed, PYTHONPATH=_SRC)
        proc = subprocess.run(
            [sys.executable, "-c", _SCRIPT.format(policy=policy)],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        digests.add(proc.stdout.strip())
    assert len(digests) == 1, (
        f"{policy} hierarchy stream depends on PYTHONHASHSEED: {digests}"
    )
