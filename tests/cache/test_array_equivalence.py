"""Property tests: the array backend is bit-identical to the object one.

The columnar :class:`~repro.cache.array_backend.ArraySetCache` claims to
reproduce the object-backed
:class:`~repro.cache.set_assoc.SetAssociativeCache` stream for stream —
every hit/miss verdict, every victim choice, every write-back record,
under all three builtin replacement policies.  Hypothesis drives random
access streams (and mixed probe/install/invalidate/merge_dirty op
sequences) through both backends on a tiny eviction-heavy geometry and
asserts the observable sequences match exactly.  A subprocess leg
re-runs a seeded subset under ``REPRO_NO_NUMPY=1`` so the ``array``
-module scalar path is held to the same bar as the vectorized one.
"""

import os
import random
import subprocess
import sys
import textwrap

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.array_backend import ArraySetCache
from repro.cache.set_assoc import SetAssociativeCache

LINE = 64
SETS = 4
ASSOC = 2
#: Line pool spanning 6 tags per set: far more tags than ways, so every
#: policy's victim selection is exercised constantly.
N_LINES = SETS * 6

POLICIES = ("lru", "clock", "mac")


def _pair(policy):
    size = LINE * SETS * ASSOC
    return (
        SetAssociativeCache(size, ASSOC, policy=policy),
        ArraySetCache(size, ASSOC, policy=policy),
    )


def _assert_same_stats(obj, arr):
    for field in ("hits", "misses", "evictions",
                  "clean_evictions", "dirty_evictions"):
        assert getattr(arr.stats, field) == getattr(obj.stats, field), field


accesses = st.lists(
    st.tuples(st.integers(0, N_LINES - 1), st.booleans()),
    max_size=200,
)


@pytest.mark.parametrize("policy", POLICIES)
@settings(max_examples=50, deadline=None)
@given(stream=accesses)
def test_access_streams_are_bit_identical(policy, stream):
    obj, arr = _pair(policy)
    for line, is_write in stream:
        address = line * LINE + (line % 8) * 8
        obj_hit, obj_ev = obj.access(address, is_write)
        arr_hit, arr_ev = arr.access(address, is_write)
        assert arr_hit == obj_hit
        if obj_ev is None:
            assert arr_ev is None
        else:
            assert arr_ev is not None
            assert arr_ev.address == obj_ev.address
            assert arr_ev.dirty_mask == obj_ev.dirty_mask
    _assert_same_stats(obj, arr)
    assert arr.dirty_lines() == obj.dirty_lines()
    assert arr.resident_lines() == obj.resident_lines()


@pytest.mark.parametrize("policy", POLICIES)
@settings(max_examples=25, deadline=None)
@given(stream=accesses, chunk=st.integers(1, 64))
def test_chunked_access_batch_matches_object_loop(policy, stream, chunk):
    """The batch entry point (vector path included) equals the scalar
    loop no matter how the stream is chunked into epochs."""
    obj, arr = _pair(policy)
    addresses = [line * LINE for line, _ in stream]
    writes = [is_write for _, is_write in stream]
    obj_hits, obj_evs = [], []
    for address, is_write in zip(addresses, writes):
        hit, ev = obj.access(address, is_write)
        obj_hits.append(hit)
        obj_evs.append(ev)
    arr_hits, arr_evs = [], []
    for start in range(0, len(addresses), chunk):
        hits, evs = arr.access_batch(
            addresses[start:start + chunk], writes[start:start + chunk]
        )
        arr_hits.extend(hits)
        arr_evs.extend(evs)
    assert arr_hits == obj_hits
    assert [
        (ev.address, ev.dirty_mask) if ev else None for ev in arr_evs
    ] == [
        (ev.address, ev.dirty_mask) if ev else None for ev in obj_evs
    ]
    _assert_same_stats(obj, arr)
    assert arr.dirty_lines() == obj.dirty_lines()


#: One mixed operation: (op_code, line, mask_or_write).
mixed_ops = st.lists(
    st.tuples(
        st.sampled_from(["access", "probe", "install",
                         "invalidate", "merge_dirty", "classify"]),
        st.integers(0, N_LINES - 1),
        st.integers(0, 255),
    ),
    max_size=150,
)


@pytest.mark.parametrize("policy", POLICIES)
@settings(max_examples=25, deadline=None)
@given(ops=mixed_ops)
def test_mixed_op_sequences_are_bit_identical(policy, ops):
    obj, arr = _pair(policy)
    for op, line, extra in ops:
        address = line * LINE
        if op == "access":
            assert (
                arr.access(address, bool(extra & 1))[0]
                == obj.access(address, bool(extra & 1))[0]
            )
        elif op == "probe":
            obj_hit = obj.probe(address, dirty_mask=extra)
            arr_hit = arr.probe(address, dirty_mask=extra)
            # Return types differ by contract (CacheLine vs slab index);
            # only hit/miss and the merged state must agree.
            assert (arr_hit is not None) == (obj_hit is not None)
        elif op == "install":
            obj_ev = obj.install(address)
            arr_ev = arr.install(address)
            assert (obj_ev is None) == (arr_ev is None)
            if obj_ev is not None:
                assert arr_ev.address == obj_ev.address
                assert arr_ev.dirty_mask == obj_ev.dirty_mask
        elif op == "invalidate":
            obj_ev = obj.invalidate(address)
            arr_ev = arr.invalidate(address)
            assert (obj_ev is None) == (arr_ev is None)
            if obj_ev is not None:
                assert arr_ev.address == obj_ev.address
                assert arr_ev.dirty_mask == obj_ev.dirty_mask
        elif op == "merge_dirty":
            obj.merge_dirty(address, extra)
            arr.merge_dirty(address, extra)
        elif op == "classify":
            probe_set = [(line + i) % N_LINES * LINE for i in range(20)]
            assert arr.classify_batch(probe_set) == obj.classify_batch(
                probe_set
            )
        obj_state = obj.line_state(address)
        arr_state = arr.line_state(address)
        assert (obj_state is None) == (arr_state is None)
        if obj_state is not None:
            assert arr_state.dirty_mask == obj_state.dirty_mask
    _assert_same_stats(obj, arr)
    assert arr.dirty_lines() == obj.dirty_lines()


# ----------------------------------------------------------------------
# REPRO_NO_NUMPY leg: the array-module scalar path meets the same bar
# ----------------------------------------------------------------------
_NO_NUMPY_PROBE = textwrap.dedent(
    """
    import random

    from repro.cache.array_backend import ArraySetCache
    from repro.cache.set_assoc import SetAssociativeCache
    from repro.ecc.batch import HAS_NUMPY

    assert not HAS_NUMPY, "probe must run on the scalar build"
    LINE = 64
    for policy in ("lru", "clock", "mac"):
        rng = random.Random(1234)
        obj = SetAssociativeCache(LINE * 8, 2, policy=policy)
        arr = ArraySetCache(LINE * 8, 2, policy=policy)
        stream = [
            (rng.randrange(24) * LINE, rng.random() < 0.3)
            for _ in range(600)
        ]
        for address, is_write in stream:
            obj_hit, obj_ev = obj.access(address, is_write)
            arr_hit, arr_ev = arr.access(address, is_write)
            assert arr_hit == obj_hit
            assert (obj_ev is None) == (arr_ev is None)
            if obj_ev is not None:
                assert arr_ev.address == obj_ev.address
                assert arr_ev.dirty_mask == obj_ev.dirty_mask
        assert arr.dirty_lines() == obj.dirty_lines()
        assert arr.stats.hits == obj.stats.hits
        assert arr.stats.misses == obj.stats.misses
        # access_batch must fall back to the scalar loop, identically.
        obj2 = SetAssociativeCache(LINE * 8, 2, policy=policy)
        arr2 = ArraySetCache(LINE * 8, 2, policy=policy)
        addresses = [a for a, _ in stream]
        writes = [w for _, w in stream]
        expect = [obj2.access(a, w)[0] for a, w in stream]
        hits, _ = arr2.access_batch(addresses, writes)
        assert hits == expect
    print("SCALAR-EQUIV-OK")
    """
)


def test_no_numpy_equivalence_subprocess():
    env = dict(os.environ, REPRO_NO_NUMPY="1")
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.run(
        [sys.executable, "-c", _NO_NUMPY_PROBE],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "SCALAR-EQUIV-OK" in proc.stdout


def test_seeded_smoke_equivalence():
    """Deterministic (non-hypothesis) leg mirroring the subprocess probe
    on the current build — the subset CI's no-numpy job also runs."""
    for policy in POLICIES:
        rng = random.Random(99)
        obj, arr = _pair(policy)
        for _ in range(800):
            address = rng.randrange(N_LINES) * LINE
            is_write = rng.random() < 0.3
            assert (
                arr.access(address, is_write)[0]
                == obj.access(address, is_write)[0]
            )
        _assert_same_stats(obj, arr)
        assert arr.dirty_lines() == obj.dirty_lines()
