"""Unit tests for the set-associative cache."""

import pytest

from repro.cache.set_assoc import SetAssociativeCache

LINE = 64


def _small_cache(sets=4, assoc=2, **kwargs):
    return SetAssociativeCache(LINE * sets * assoc, assoc, **kwargs)


def test_geometry_validation():
    with pytest.raises(ValueError):
        SetAssociativeCache(100, 2)


def test_miss_then_hit():
    cache = _small_cache()
    hit, _ = cache.access(0, is_write=False)
    assert not hit
    hit, _ = cache.access(0, is_write=False)
    assert hit
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def test_same_line_different_bytes_hit():
    cache = _small_cache()
    cache.access(0, False)
    hit, _ = cache.access(63, False)
    assert hit


def test_lru_eviction_order():
    cache = _small_cache(sets=1, assoc=2)
    cache.access(0 * LINE, True)       # A (dirty, so its eviction shows)
    cache.access(1 * LINE, True)       # B (dirty)
    cache.access(0 * LINE, False)      # touch A -> B is LRU
    _hit, evicted = cache.access(2 * LINE, False)  # C evicts B
    assert evicted is not None
    assert evicted.address == 1 * LINE
    assert cache.contains(0) and cache.contains(2 * LINE)
    assert not cache.contains(1 * LINE)


def test_clean_eviction_returns_none_and_counts():
    cache = _small_cache(sets=1, assoc=1)
    cache.access(0, False)
    _hit, evicted = cache.access(LINE, False)
    assert evicted is None
    assert cache.stats.evictions == 1
    assert cache.stats.clean_evictions == 1
    assert cache.stats.dirty_evictions == 0


def test_dirty_eviction_carries_word_mask():
    cache = _small_cache(sets=1, assoc=1)
    cache.access(0 + 8 * 2, True)   # dirty word 2
    cache.access(0 + 8 * 5, True)   # dirty word 5 (hit)
    _hit, evicted = cache.access(LINE, False)
    assert evicted is not None
    assert evicted.dirty_mask == (1 << 2) | (1 << 5)
    assert cache.stats.dirty_evictions == 1


def test_eviction_address_reconstruction():
    cache = _small_cache(sets=4, assoc=1)
    target = 13 * LINE
    cache.access(target, True)
    conflicting = target + 4 * LINE  # same set, different tag
    _hit, evicted = cache.access(conflicting, False)
    assert evicted is not None
    assert evicted.address == target


def test_track_words_stores_values():
    cache = _small_cache(track_words=True)
    cache.access(8 * 3, True, value=0x1234)
    line = cache.line_state(0)
    assert line is not None
    assert line.words[3] == 0x1234
    assert line.dirty_mask == 1 << 3


def test_install_without_access():
    cache = _small_cache()
    evicted = cache.install(0)
    assert evicted is None
    assert cache.contains(0)
    assert cache.stats.misses == 0  # install is not an access


def test_invalidate_dirty_returns_eviction():
    cache = _small_cache()
    cache.access(0, True)
    eviction = cache.invalidate(0)
    assert eviction is not None and eviction.dirty
    assert not cache.contains(0)


def test_invalidate_clean_returns_none():
    cache = _small_cache()
    cache.access(0, False)
    assert cache.invalidate(0) is None
    assert not cache.contains(0)


def test_hit_rate():
    cache = _small_cache()
    cache.access(0, False)
    cache.access(0, False)
    cache.access(0, False)
    cache.access(LINE, False)
    assert cache.stats.hit_rate == pytest.approx(0.5)
    assert cache.stats.accesses == 4


def test_resident_lines():
    cache = _small_cache()
    for i in range(5):
        cache.access(i * LINE, False)
    assert cache.resident_lines() == 5
