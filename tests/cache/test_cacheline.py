"""Unit tests for cache line state."""

import pytest

from repro.cache.cacheline import CacheLine, FULL_MASK, line_base, word_index


def test_new_line_is_clean():
    line = CacheLine(tag=1)
    assert not line.dirty
    assert line.dirty_mask == 0


def test_mark_dirty_sets_word_bit():
    line = CacheLine(tag=1)
    line.mark_dirty(3)
    line.mark_dirty(3)
    line.mark_dirty(7)
    assert line.dirty_mask == (1 << 3) | (1 << 7)
    assert line.dirty


def test_mark_dirty_bounds():
    line = CacheLine(tag=1)
    with pytest.raises(ValueError):
        line.mark_dirty(8)


def test_mark_all_dirty():
    line = CacheLine(tag=1)
    line.mark_all_dirty()
    assert line.dirty_mask == FULL_MASK == 0xFF


def test_write_word_updates_payload_and_mask():
    line = CacheLine(tag=1, words=tuple([0] * 8))
    line.write_word(2, 0xABCD)
    assert line.words[2] == 0xABCD
    assert line.dirty_mask == 1 << 2


def test_write_word_same_value_still_marks_dirty():
    """Silent stores look dirty in the cache; memory detects them later."""
    line = CacheLine(tag=1, words=tuple([7] * 8))
    line.write_word(0, 7)
    assert line.dirty_mask == 1


def test_write_word_requires_payload():
    line = CacheLine(tag=1)
    with pytest.raises(ValueError):
        line.write_word(0, 1)


def test_write_word_value_range():
    line = CacheLine(tag=1, words=tuple([0] * 8))
    with pytest.raises(ValueError):
        line.write_word(0, 1 << 64)


def test_word_index_and_line_base():
    assert word_index(0) == 0
    assert word_index(8) == 1
    assert word_index(63) == 7
    assert word_index(64) == 0
    assert line_base(130) == 128


def test_touch_updates_lru_timestamp():
    line = CacheLine(tag=1)
    line.touch(42)
    assert line.last_use == 42
