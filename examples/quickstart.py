#!/usr/bin/env python3
"""Quickstart: run one workload on the baseline and on full PCMap.

Simulates the paper's 8-core system running the `canneal` workload on a
plain PCM main memory and on PCMap (RoW + WoW + data and ECC/PCC
rotation), then prints the headline metrics the paper reports:
IPC, intra-rank-level parallelism (IRLP) during writes, effective read
latency and write throughput.

Run:  python examples/quickstart.py [workload]

Set REPRO_EXAMPLE_REQUESTS to shrink the run (CI smoke-tests use it).
"""

import os
import sys

from repro.analysis import format_table, percent
from repro.sim.experiment import compare_systems
from repro.sim.simulator import SimulationParams


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "canneal"
    params = SimulationParams(
        target_requests=int(os.environ.get("REPRO_EXAMPLE_REQUESTS", "4000"))
    )

    print(f"Simulating workload {workload!r} on 8 cores, 4 PCM channels...")
    comparison = compare_systems(workload, ["baseline", "rwow-rde"], params)

    rows = []
    for name, result in comparison.results.items():
        rows.append(
            [
                name,
                f"{result.ipc:.3f}",
                f"{result.irlp_average:.2f}",
                f"{result.irlp_max:.2f}",
                f"{result.mean_read_latency_ns:.0f}",
                f"{result.write_throughput:.1f}",
                result.memory.row_reads,
                result.memory.wow_member_writes,
            ]
        )
    print()
    print(
        format_table(
            [
                "system", "IPC", "IRLP", "IRLP max",
                "read lat (ns)", "writes/us", "RoW reads", "WoW writes",
            ],
            rows,
        )
    )
    print()
    gain = comparison.ipc_improvement("rwow-rde")
    print(f"PCMap (rwow-rde) IPC improvement over baseline: {percent(gain)}")
    print(
        "Paper reference: +15.6% (multi-programmed) / +16.7% (multi-threaded)"
        " on average; IRLP 2.37 -> 4.5."
    )


if __name__ == "__main__":
    main()
