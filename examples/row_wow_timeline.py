#!/usr/bin/env python3
"""Reproduce the paper's Figure 5: RoW and WoW scheduling timelines.

Two micro-scenarios are driven through a single PCMap channel controller
with chip-occupancy logging enabled, then rendered as ASCII chip-by-time
grids comparable with Figure 5:

* **RoW** — a write with one essential word (cache line A) overlapped
  with two reads (lines B and C), whose missing words are reconstructed
  from the PCC chip while chip 3 is busy writing.
* **WoW** — three writes with disjoint essential words (A: words 2 and 5,
  B: words 3 and 6, C: word 4) consolidated into one service window.

Run:  python examples/row_wow_timeline.py
"""

from repro.analysis.timeline import render_occupancy
from repro.core.systems import make_system
from repro.memory.memsys import make_controller
from repro.memory.request import make_read, make_write
from repro.sim.engine import Engine, ticks_to_ns


def render_timeline(events, n_chips, title, tick_step=250):
    """Library renderer with the example's title prepended."""
    return render_occupancy(events, n_chips, title=title, tick_step=tick_step)


def row_scenario():
    """Figure 5(b): one-word write of A overlapped with reads of B and C."""
    engine = Engine()
    config = make_system("row-nr")
    controller = make_controller(engine, config, channel_id=0)
    rank = controller.ranks[0]
    log = rank.enable_logging()

    stride = 64 * config.geometry.n_channels  # stay on channel 0
    # Pre-fill the write queue over the drain watermark so the controller
    # enters drain mode and applies RoW to the head write.
    for i in range(27):
        controller.submit(make_write(100 + i, (50 + i) * stride, 0b1000))
    write_a = make_write(1, 10 * stride, dirty_mask=0b1000)  # word 3
    controller.submit(write_a)
    read_b = make_read(2, 20 * stride)
    read_c = make_read(3, 21 * stride)
    controller.submit(read_b)
    controller.submit(read_c)
    engine.run(max_events=100_000)

    print(render_timeline(
        [e for e in log if e.end <= max(read_b.completion, read_c.completion) + 2000],
        config.geometry.chips_per_rank,
        "\n=== RoW (cf. Figure 5(b)): Write-A on chip 3 + ECC; reads B, C "
        "reconstruct word 3 from PCC ===",
    ))
    print(f"read B service class: {read_b.service_class.value}, "
          f"latency {ticks_to_ns(read_b.latency):.0f} ns")
    print(f"read C service class: {read_c.service_class.value}, "
          f"latency {ticks_to_ns(read_c.latency):.0f} ns")
    print(f"RoW reads served: {controller.stats.row_reads}")


def wow_scenario():
    """Figure 5(d): three chip-disjoint writes consolidated by WoW."""
    engine = Engine()
    config = make_system("wow-nr")
    controller = make_controller(engine, config, channel_id=0)
    rank = controller.ranks[0]
    log = rank.enable_logging()

    stride = 64 * config.geometry.n_channels
    # The Figure 5 example: A dirties words 2 and 5, B words 3 and 6,
    # C word 4 — all disjoint, so one window serves all three.
    masks = {
        "A": (1 << 2) | (1 << 5),
        "B": (1 << 3) | (1 << 6),
        "C": (1 << 4),
    }
    writes = {}
    for i, (label, mask) in enumerate(masks.items()):
        writes[label] = make_write(i + 1, (10 + i) * stride, mask)
    # Push the queue over the watermark so a drain (and grouping) starts.
    for i in range(25):
        controller.submit(make_write(200 + i, (100 + i) * stride, 0b1))
    for write in writes.values():
        controller.submit(write)
    engine.run(max_events=200_000)

    window_events = [
        e for e in log
        if min(w.start_service for w in writes.values()) - 1000
        <= e.start <= max(w.completion for w in writes.values())
    ]
    print(render_timeline(
        window_events,
        config.geometry.chips_per_rank,
        "\n=== WoW (cf. Figure 5(d)): writes A{2,5}, B{3,6}, C{4} "
        "consolidated ===",
    ))
    for label, write in writes.items():
        print(f"write {label}: class={write.service_class.value}, "
              f"service [{ticks_to_ns(write.start_service):.0f}, "
              f"{ticks_to_ns(write.completion):.0f}] ns")
    print(f"WoW groups formed: {controller.stats.wow_groups}, "
          f"member writes: {controller.stats.wow_member_writes}")


if __name__ == "__main__":
    row_scenario()
    wow_scenario()
