#!/usr/bin/env python3
"""Workload study: all six evaluated systems across several workloads.

A miniature of the paper's §VI evaluation — runs the six systems of §V on
a few representative workloads and prints the four figure-style tables
(IRLP, write throughput, effective read latency, IPC improvement).

Run:  python examples/workload_study.py [workload ...]

Set REPRO_EXAMPLE_REQUESTS to shrink the run (CI smoke-tests use it).
"""

import os
import sys

from repro.analysis import FigureSeries, figure_report, percent, ratio
from repro.core.systems import PCMAP_SYSTEM_NAMES, SYSTEM_NAMES
from repro.sim.experiment import sweep_workloads
from repro.sim.simulator import SimulationParams

DEFAULT_WORKLOADS = ["canneal", "streamcluster", "MP1", "MP4"]


def main() -> None:
    workloads = sys.argv[1:] or DEFAULT_WORKLOADS
    params = SimulationParams(
        target_requests=int(os.environ.get("REPRO_EXAMPLE_REQUESTS", "3000"))
    )
    print(f"Sweeping {len(SYSTEM_NAMES)} systems x {len(workloads)} workloads...")
    comparisons = sweep_workloads(workloads, params=params)

    irlp = [
        FigureSeries(name, {c.workload_name: c.irlp(name) for c in comparisons})
        for name in SYSTEM_NAMES
    ]
    print()
    print(figure_report("IRLP during writes (cf. Figure 8)", workloads, irlp))

    throughput = [
        FigureSeries(
            name,
            {c.workload_name: c.write_throughput_ratio(name) for c in comparisons},
        )
        for name in PCMAP_SYSTEM_NAMES
    ]
    print()
    print(
        figure_report(
            "Write throughput vs baseline (cf. Figure 9)",
            workloads,
            throughput,
            value_format=lambda v: ratio(v),
        )
    )

    latency = [
        FigureSeries(
            name,
            {c.workload_name: c.read_latency_ratio(name) for c in comparisons},
        )
        for name in PCMAP_SYSTEM_NAMES
    ]
    print()
    print(
        figure_report(
            "Effective read latency vs baseline (cf. Figure 10)",
            workloads,
            latency,
            value_format=lambda v: ratio(v),
        )
    )

    ipc = [
        FigureSeries(
            name,
            {c.workload_name: c.ipc_improvement(name) for c in comparisons},
        )
        for name in PCMAP_SYSTEM_NAMES
    ]
    print()
    print(
        figure_report(
            "IPC improvement over baseline (cf. Figure 11)",
            workloads,
            ipc,
            value_format=lambda v: percent(v),
        )
    )


if __name__ == "__main__":
    main()
