#!/usr/bin/env python3
"""Full functional path: CPU loads/stores -> caches -> dirty masks -> PCM.

Everywhere else in this repository, dirty-word masks come from the
statistical workload profiles.  This example shows where they come from
physically: a stream of CPU loads and stores runs through the L1/L2/DRAM
cache hierarchy with per-word dirty tracking; the DRAM cache's dirty
evictions carry the masks Figure 2 histograms; and the resulting
memory-level trace is replayed against baseline vs PCMap memory with a
functional backing store, checking end-to-end data integrity.

Run:  python examples/full_hierarchy.py

Set REPRO_EXAMPLE_REQUESTS to shrink the run (CI smoke-tests use it);
the CPU trace is 15 accesses per requested memory operation.
"""

import os
import random

from repro.analysis import format_table
from repro.cache.dram_cache import DramCacheConfig
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.core.systems import make_system
from repro.memory.memsys import MainMemory
from repro.memory.request import MemoryRequest, RequestKind
from repro.sim.engine import Engine
from repro.trace.record import AccessKind, TraceRecord


def generate_cpu_trace(n_accesses=60_000, seed=42):
    """Pointer-chasing-plus-streaming CPU reference stream.

    Stores cluster on the low words of lines (struct headers / counters),
    producing exactly the skewed dirty-offset distribution the paper's
    rotation mechanism targets.
    """
    rng = random.Random(seed)
    records = []
    streams = [rng.randrange(1 << 14) * 64 for _ in range(4)]
    for _ in range(n_accesses):
        if rng.random() < 0.6:
            index = rng.randrange(len(streams))
            streams[index] += 64
            address = streams[index]
        else:
            address = rng.randrange(1 << 14) * 64
        if rng.random() < 0.35:
            word = rng.choices(range(8), weights=[30, 16, 12, 10, 9, 8, 8, 7])[0]
            records.append(
                TraceRecord(5, AccessKind.STORE, address + word * 8)
            )
        else:
            records.append(TraceRecord(5, AccessKind.LOAD, address))
    return records


def main() -> None:
    requests = int(os.environ.get("REPRO_EXAMPLE_REQUESTS", "4000"))
    # Scaled-down hierarchy so the working set actually spills to PCM.
    hierarchy = CacheHierarchy(
        n_cores=1,
        config=HierarchyConfig(
            l1_size=16 * 1024,
            l2_size=128 * 1024,
            dram_cache=DramCacheConfig(size_bytes=512 * 1024, associativity=8),
        ),
    )
    cpu_trace = generate_cpu_trace(n_accesses=15 * requests)
    memory_trace, levels = hierarchy.replay(0, cpu_trace)

    print("Cache hierarchy filtering:")
    print(
        format_table(
            ["level", "hits"],
            [[level, count] for level, count in levels.items()],
        )
    )
    write_backs = [
        r for r in memory_trace if r.kind is AccessKind.WRITE_BACK
    ]
    fills = [r for r in memory_trace if r.kind is AccessKind.READ]
    print(f"\nPCM traffic: {len(fills)} line fills, "
          f"{len(write_backs)} write-backs")

    histogram = [0] * 9
    for wb in write_backs:
        histogram[bin(wb.dirty_mask).count("1")] += 1
    total = max(1, len(write_backs))
    print("\nDirty-word distribution of real write-backs (cf. Figure 2):")
    print(
        format_table(
            ["dirty words", "write-backs", "fraction"],
            [
                [i, count, f"{count / total:.1%}"]
                for i, count in enumerate(histogram)
            ],
        )
    )

    # Replay the derived trace against functional PCM, verifying data.
    engine = Engine()
    memory = MainMemory(engine, make_system("rwow-rde", functional=True))
    expected = {}
    req_id = 0
    mismatches = 0
    checked = 0
    # Replay the tail of the trace: the head is cold fills only, while
    # the tail mixes fills with dirty evictions.
    for record in memory_trace[-requests:]:
        req_id += 1
        if record.kind is AccessKind.WRITE_BACK:
            decoded = memory.mapper.decode(record.address)
            old = memory.storage.read_line(decoded.line_address).words
            new = list(old)
            for w in range(8):
                if (record.dirty_mask >> w) & 1:
                    new[w] = (new[w] + 0x1234_5678) & ((1 << 64) - 1)
            request = MemoryRequest(
                req_id, RequestKind.WRITE, record.address,
                new_words=tuple(new),
            )
            if memory.can_accept(request.kind, record.address):
                memory.submit(request)
                expected[record.address] = tuple(new)
        else:
            request = MemoryRequest(req_id, RequestKind.READ, record.address)
            if memory.can_accept(request.kind, record.address):
                if record.address in expected:
                    want = expected[record.address]

                    def check(req, want=want):
                        nonlocal mismatches, checked
                        checked += 1
                        if req.data_words != want:
                            mismatches += 1

                    request.on_complete = check
                memory.submit(request)
        engine.run(until=engine.now + 400)
    engine.run(max_events=5_000_000)

    stats = memory.aggregate_stats()
    print(f"\nReplayed {stats.reads_completed} reads / "
          f"{stats.writes_completed} writes on functional PCMap memory")
    print(f"RoW-reconstructed reads: {stats.row_reads}, "
          f"WoW-consolidated writes: {stats.wow_member_writes}")
    print(f"Data integrity: {checked} read-after-write checks, "
          f"{mismatches} mismatches")
    assert mismatches == 0, "data corruption through the PCMap path!"


if __name__ == "__main__":
    main()
