#!/usr/bin/env python3
"""Full path: CPU loads/stores -> caches -> the *simulated* DRAM tier -> PCM.

Everywhere else in this repository, dirty-word masks come from the
statistical workload profiles.  This example shows where they come from
physically, in two stages:

1. **Functional derivation** — a stream of CPU loads and stores runs
   through the L1/L2/DRAM hierarchy with per-word dirty tracking; the
   DRAM cache's dirty evictions carry the masks Figure 2 histograms.
2. **Timed tier replay** — the same CPU trace is reduced to its post-L2
   stream (``HierarchyConfig(dram_cache=None)``) and pushed through the
   simulated :class:`DramCacheFrontEnd` over real PCMap memory: hits are
   engine-scheduled events, misses coalesce in MSHRs, dirty evictions
   enter the controller write queues.  The tier's scoreboard is then
   cross-checked against the telemetry counters it emits.

Run:  python examples/full_hierarchy.py

Set REPRO_EXAMPLE_REQUESTS to shrink the run (CI smoke-tests use it);
the CPU trace is 15 accesses per requested memory operation.
"""

import os
import random

from repro.analysis import format_table
from repro.cache.dram_cache import DramCacheConfig
from repro.cache.frontend import DramCacheFrontEnd, FrontEndConfig
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.core.systems import make_system
from repro.cpu.core import CoreParams
from repro.memory.memsys import MainMemory
from repro.memory.request import MemoryRequest, RequestKind
from repro.sim.engine import Engine
from repro.telemetry import Telemetry
from repro.trace.record import AccessKind, TraceRecord


def generate_cpu_trace(n_accesses=60_000, seed=42):
    """Pointer-chasing-plus-streaming CPU reference stream.

    Stores cluster on the low words of lines (struct headers / counters),
    producing exactly the skewed dirty-offset distribution the paper's
    rotation mechanism targets.
    """
    rng = random.Random(seed)
    records = []
    streams = [rng.randrange(1 << 14) * 64 for _ in range(4)]
    for _ in range(n_accesses):
        if rng.random() < 0.6:
            index = rng.randrange(len(streams))
            streams[index] += 64
            address = streams[index]
        else:
            address = rng.randrange(1 << 14) * 64
        if rng.random() < 0.35:
            word = rng.choices(range(8), weights=[30, 16, 12, 10, 9, 8, 8, 7])[0]
            records.append(
                TraceRecord(5, AccessKind.STORE, address + word * 8)
            )
        else:
            records.append(TraceRecord(5, AccessKind.LOAD, address))
    return records


def functional_derivation(cpu_trace):
    """Stage 1: derive Figure 2's masks through the functional stack."""
    hierarchy = CacheHierarchy(
        n_cores=1,
        config=HierarchyConfig(
            l1_size=16 * 1024,
            l2_size=128 * 1024,
            dram_cache=DramCacheConfig(size_bytes=512 * 1024, associativity=8),
        ),
    )
    memory_trace, levels = hierarchy.replay(0, cpu_trace)

    print("Cache hierarchy filtering:")
    print(
        format_table(
            ["level", "hits"],
            [[level, count] for level, count in levels.items()],
        )
    )
    write_backs = [
        r for r in memory_trace if r.kind is AccessKind.WRITE_BACK
    ]
    fills = [r for r in memory_trace if r.kind is AccessKind.READ]
    print(f"\nPCM traffic: {len(fills)} line fills, "
          f"{len(write_backs)} write-backs")

    histogram = [0] * 9
    for wb in write_backs:
        histogram[bin(wb.dirty_mask).count("1")] += 1
    total = max(1, len(write_backs))
    print("\nDirty-word distribution of real write-backs (cf. Figure 2):")
    print(
        format_table(
            ["dirty words", "write-backs", "fraction"],
            [
                [i, count, f"{count / total:.1%}"]
                for i, count in enumerate(histogram)
            ],
        )
    )


def timed_tier_replay(cpu_trace, requests):
    """Stage 2: the DRAM level as a simulated tier over PCMap memory."""
    post_l2 = CacheHierarchy(
        n_cores=1,
        config=HierarchyConfig(
            l1_size=16 * 1024,
            l2_size=128 * 1024,
            dram_cache=None,            # the DRAM level is simulated below
        ),
    )
    memory_trace, _levels = post_l2.replay(0, cpu_trace)
    memory_trace = memory_trace[: 4 * requests]

    telemetry = Telemetry.disabled()     # metrics registry is always on
    engine = Engine()
    memory = MainMemory(engine, make_system("rwow-rde"), telemetry=telemetry)
    frontend = DramCacheFrontEnd(
        engine,
        memory,
        FrontEndConfig(
            kind="dram",
            dram=DramCacheConfig(size_bytes=512 * 1024, associativity=8),
            replacement="mac",
        ),
        cycle_ticks=CoreParams().cycle_ticks,
        telemetry=telemetry,
    )

    req_id = 0
    for record in memory_trace:
        kind = (
            RequestKind.READ
            if record.kind is AccessKind.READ
            else RequestKind.WRITE
        )
        while not frontend.can_accept(kind, record.address):
            if not engine.step():
                raise RuntimeError("tier deadlocked under back-pressure")
        req_id += 1
        if kind is RequestKind.READ:
            frontend.submit(
                MemoryRequest(req_id, RequestKind.READ, record.address)
            )
        else:
            frontend.submit(
                MemoryRequest(
                    req_id, RequestKind.WRITE, record.address,
                    dirty_mask=record.dirty_mask,
                )
            )
        engine.run(until=engine.now + 40)
    engine.run(max_events=5_000_000)

    stats = frontend.stats
    print("\nSimulated DRAM tier (mac replacement) over rwow-rde PCM:")
    print(
        format_table(
            ["tier metric", "value"],
            [
                ["accesses", stats.accesses],
                ["hit rate", f"{stats.hit_rate:.3f}"],
                ["MSHR-coalesced misses", stats.coalesced],
                ["PCM line fills", stats.fills],
                ["PCM write-backs", stats.write_backs],
            ],
        )
    )
    pcm = memory.aggregate_stats()
    print(f"\nPCM behind the tier: {pcm.reads_completed} reads / "
          f"{pcm.writes_completed} writes completed "
          f"(RoW reads {pcm.row_reads}, WoW writes {pcm.wow_member_writes})")

    # The tier's scoreboard and its telemetry counters are two views of
    # the same events — they must agree exactly.
    counters = telemetry.metrics
    checks = [
        ("frontend.hits", stats.hits),
        ("frontend.misses", stats.misses),
        ("frontend.mshr_coalesced", stats.coalesced),
        ("frontend.fills", stats.fills),
        ("frontend.write_backs", stats.write_backs),
    ]
    for name, expected in checks:
        actual = counters.counter(name).value
        assert actual == expected, f"{name}: {actual} != {expected}"
    assert frontend.dram.stats.hits == stats.hits
    assert frontend.dram.stats.misses == stats.misses
    print(f"Telemetry cross-check: {len(checks)} counters match "
          "the tier scoreboard")


def main() -> None:
    requests = int(os.environ.get("REPRO_EXAMPLE_REQUESTS", "4000"))
    cpu_trace = generate_cpu_trace(n_accesses=15 * requests)
    functional_derivation(cpu_trace)
    timed_tier_replay(cpu_trace, requests)


if __name__ == "__main__":
    main()
