#!/usr/bin/env python3
"""Wear: PCMap's rotation (chip level) + Start-Gap (line level).

The paper argues (§IV-C2) that rotating data and ECC/PCC words balances
per-chip wear, and cites Start-Gap [5] as the orthogonal line-level wear
leveller.  This example measures both:

1. per-chip PCM word-write counts for the fixed vs fully-rotated layouts
   on a skewed write stream (the rotation claim);
2. per-line write concentration with and without Start-Gap remapping on
   a hot-spot stream (the orthogonal mechanism).

Run:  python examples/wear_leveling.py

Set REPRO_EXAMPLE_REQUESTS to shrink the run (CI smoke-tests use it).
"""

import os
import random

from repro.analysis import format_table
from repro.memory.wear import StartGapRemapper
from repro.sim.experiment import run_workload
from repro.sim.simulator import SimulationParams


def chip_level_rotation() -> None:
    print("=== Chip-level wear: layout rotation (paper §IV-C2) ===\n")
    params = SimulationParams(
        target_requests=int(os.environ.get("REPRO_EXAMPLE_REQUESTS", "3000"))
    )
    rows = []
    for system in ("baseline", "rwow-nr", "rwow-rde"):
        result = run_workload("canneal", system, params)
        stats = result.memory
        counts = [
            stats.chip_word_writes.get(chip, 0)
            for chip in range(max(stats.chip_word_writes) + 1)
        ]
        rows.append(
            [system]
            + counts
            + [f"{stats.chip_write_imbalance():.3f}"]
        )
    n_chips = max(len(r) - 2 for r in rows)
    print(
        format_table(
            ["system"] + [f"c{c}" for c in range(n_chips)] + ["CoV"],
            rows,
        )
    )
    print(
        "\nFull rotation (rwow-rde) spreads data *and* code-word writes "
        "evenly across all ten chips — the paper's lifetime argument.\n"
    )


def line_level_start_gap() -> None:
    print("=== Line-level wear: Start-Gap remapping (paper's [5]) ===\n")
    rng = random.Random(7)
    n_lines = 256
    writes = 20_000

    def hot_spot_stream():
        # 60% of writes hit 4 hot lines; the rest spread uniformly.
        for _ in range(writes):
            if rng.random() < 0.6:
                yield rng.randrange(4)
            else:
                yield rng.randrange(n_lines)

    levelled = StartGapRemapper(n_lines, gap_interval=16)
    raw = StartGapRemapper(n_lines, gap_interval=10 ** 12)  # never moves
    stream = list(hot_spot_stream())
    for line in stream:
        levelled.on_write(line)
        raw.on_write(line)

    rows = [
        [
            "without Start-Gap",
            raw.stats.max_line_writes(),
            f"{raw.stats.imbalance():.1f}",
            raw.stats.gap_moves,
        ],
        [
            "with Start-Gap",
            levelled.stats.max_line_writes(),
            f"{levelled.stats.imbalance():.1f}",
            levelled.stats.gap_moves,
        ],
    ]
    print(
        format_table(
            ["configuration", "max writes to one line", "max/mean", "gap moves"],
            rows,
        )
    )
    lifetime_gain = (
        raw.stats.max_line_writes() / levelled.stats.max_line_writes()
    )
    print(
        f"\nStart-Gap cuts the hottest line's writes by "
        f"{lifetime_gain:.1f}x on this stream — the array endures that "
        "much longer before its first line wears out."
    )


if __name__ == "__main__":
    chip_level_rotation()
    line_level_start_gap()
