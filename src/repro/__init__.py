"""PCMap: Boosting Access Parallelism to PCM-Based Main Memory (ISCA 2016).

A from-scratch reproduction of the paper's system: a DDR3-style PCM memory
simulator, the PCMap controller (RoW + WoW + rotation), SECDED/PCC error
codes, a cache hierarchy and CPU model, synthetic workload generation, and
the benchmark harness regenerating every figure and table of the paper's
evaluation.

Quick start::

    from repro import make_system, run_workload
    result = run_workload("canneal", make_system("rwow-rde"))
    print(result.ipc, result.irlp_average)
"""

__version__ = "1.0.0"

from repro.core.config import SystemConfig, pcmap_config
from repro.core.systems import (
    PCMAP_SYSTEM_NAMES,
    SYSTEM_NAMES,
    all_systems,
    make_system,
)
from repro.memory.memsys import MainMemory
from repro.memory.request import MemoryRequest, RequestKind, make_read, make_write
from repro.memory.timing import TimingParams, WriteLatencyMode
from repro.sim.engine import Engine

__all__ = [
    "__version__",
    "SystemConfig",
    "pcmap_config",
    "PCMAP_SYSTEM_NAMES",
    "SYSTEM_NAMES",
    "all_systems",
    "make_system",
    "MainMemory",
    "MemoryRequest",
    "RequestKind",
    "make_read",
    "make_write",
    "TimingParams",
    "WriteLatencyMode",
    "Engine",
]


def run_workload(workload, system, **kwargs):
    """Convenience wrapper around :func:`repro.sim.experiment.run_workload`.

    Imported lazily so that ``import repro`` stays light.
    """
    from repro.sim.experiment import run_workload as _run

    return _run(workload, system, **kwargs)
