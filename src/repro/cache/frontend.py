"""Timed DRAM-cache tier between the trace cores and the PCM memory.

Everywhere else the repository drives the PCM channels with raw post-LLC
traffic; this module makes Table I's 256 MB DRAM cache a first-class
*simulated* tier instead of an offline mask generator:

* **Hits are events.**  A tier hit completes
  ``DramCacheConfig.access_cycles`` CPU cycles after submission,
  scheduled on the shared :class:`~repro.sim.engine.Engine` — the
  config knob that used to be documented as "folded into base CPI"
  now drives real event timing.
* **Misses coalesce in MSHRs.**  A read or write miss allocates a miss
  entry keyed by line address and issues one PCM line fill; overlapping
  misses to the same line attach to the existing entry instead of
  duplicating the fill.  The line is installed only when the fill
  completes, so a line is never visible before its data could exist.
* **Write-backs enter the real controller queues.**  Dirty victims are
  queued into the tier's write-back buffer and drained into the
  per-channel :class:`~repro.memory.controller.MemoryController` write
  queues, with the controllers' own back-pressure chained upward to the
  cores.
* **Writes allocate.**  A write miss fetches the line from PCM
  (write-allocate) and merges its dirty words on fill completion, so
  PCM write traffic is *shaped* by the tier — it happens at eviction
  time with merged masks, which is exactly the filtering deployment
  puts in front of RoW/WoW.

The tier implements the same :class:`~repro.memory.port.MemoryPort`
shape as :class:`~repro.memory.memsys.MainMemory`, so cores are wired to
either interchangeably; ``front_end=none`` builds nothing and keeps the
direct path bit-for-bit identical.  See docs/FRONTEND.md.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional

from repro.cache.dram_cache import DramCache, DramCacheConfig
from repro.cache.replacement import REPLACEMENT_POLICIES
from repro.cache.set_assoc import CACHE_BACKENDS, Eviction
from repro.memory.request import MemoryRequest, RequestKind
from repro.telemetry import Telemetry

if TYPE_CHECKING:
    from repro.memory.port import MemoryPort
    from repro.sim.engine import Engine

#: Recognised ``FrontEndConfig.kind`` values.
FRONT_END_KINDS = ("none", "dram")

#: Tier-generated transactions get their own request-id namespaces, far
#: above the per-core ``core_id << 32`` ranges the trace cores use.
FILL_ID_BASE = 1 << 60
WRITE_BACK_ID_BASE = (1 << 60) | (1 << 59)


@dataclass(frozen=True)
class FrontEndConfig:
    """Configuration of the simulated memory front end.

    Frozen (and nested-frozen) so it participates in
    :class:`~repro.sim.simulator.SimulationParams` content hashing — the
    sweep runner's cache keys cover the tier configuration for free.
    """

    #: ``"none"`` — no tier, today's direct path, bit-for-bit.
    #: ``"dram"`` — the timed DRAM cache described above.
    kind: str = "none"
    dram: DramCacheConfig = DramCacheConfig()
    #: Replacement policy name (:mod:`repro.cache.replacement`).
    replacement: str = "lru"
    #: Miss-status-holding registers: concurrent outstanding line fills.
    mshrs: int = 16
    #: Tier-side write-back buffer entries (evictions waiting to enter a
    #: controller write queue).
    writeback_buffer: int = 16
    #: Storage backend of the tier's cache (``repro.cache.set_assoc.
    #: CACHE_BACKENDS``): ``"auto"`` uses the columnar array backend for
    #: the builtin replacement policies (the only practical choice at
    #: the paper-scale 256 MB configuration) and the object backend for
    #: custom registered policies; both produce bit-identical streams.
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.kind not in FRONT_END_KINDS:
            raise ValueError(
                f"unknown front-end kind {self.kind!r}; "
                f"expected one of {FRONT_END_KINDS}"
            )
        if self.replacement not in REPLACEMENT_POLICIES:
            raise ValueError(
                f"unknown replacement policy {self.replacement!r}; "
                f"known: {sorted(REPLACEMENT_POLICIES)}"
            )
        if self.mshrs < 1:
            raise ValueError("front end needs at least one MSHR")
        if self.writeback_buffer < 1:
            raise ValueError("front end needs at least one write-back slot")
        if self.backend not in CACHE_BACKENDS:
            raise ValueError(
                f"unknown cache backend {self.backend!r}; "
                f"expected one of {CACHE_BACKENDS}"
            )

    @property
    def enabled(self) -> bool:
        return self.kind != "none"

    @property
    def capacity_mb(self) -> float:
        """Tier capacity in MiB (the ``--frontend-mb`` sizing knob)."""
        return self.dram.size_bytes / (1024 * 1024)


@dataclass
class FrontEndStats:
    """Counters for one front-end instance (the tier's scoreboard)."""

    reads: int = 0           #: read requests submitted to the tier
    writes: int = 0          #: write-backs submitted to the tier
    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    coalesced: int = 0       #: misses absorbed by an in-flight MSHR
    fills: int = 0           #: PCM line reads the tier issued
    write_backs: int = 0     #: dirty evictions issued toward PCM
    fill_rollbacks: int = 0  #: fills whose RoW verification failed

    @property
    def hits(self) -> int:
        return self.read_hits + self.write_hits

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses

    def as_dict(self) -> dict:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "read_hits": self.read_hits,
            "read_misses": self.read_misses,
            "write_hits": self.write_hits,
            "write_misses": self.write_misses,
            "coalesced": self.coalesced,
            "fills": self.fills,
            "write_backs": self.write_backs,
            "fill_rollbacks": self.fill_rollbacks,
            "hit_rate": self.hit_rate,
        }


class _MissEntry:
    """One MSHR: the in-flight fill for a line plus its waiters."""

    __slots__ = ("address", "waiting_reads", "waiting_writes", "pending_mask")

    def __init__(self, address: int):
        self.address = address
        self.waiting_reads: List[MemoryRequest] = []
        self.waiting_writes: List[MemoryRequest] = []
        #: Dirty words from writes that arrived while the fill was in
        #: flight; merged into the line at install time.
        self.pending_mask = 0


class DramCacheFrontEnd:
    """The timed DRAM tier; a :class:`MemoryPort` in front of another."""

    def __init__(
        self,
        engine: "Engine",
        memory: "MemoryPort",
        config: FrontEndConfig,
        cycle_ticks: int,
        telemetry: Optional[Telemetry] = None,
    ):
        if not config.enabled:
            raise ValueError("front end constructed with kind='none'")
        self.engine = engine
        self.memory = memory
        self.config = config
        self.telemetry = (
            telemetry if telemetry is not None else Telemetry.disabled()
        )
        self.dram = DramCache(
            config.dram, policy=config.replacement, backend=config.backend
        )
        #: Engine ticks a tier hit takes — ``access_cycles`` expressed in
        #: CPU cycles of the core clock this tier serves.
        self.hit_ticks = config.dram.access_cycles * cycle_ticks
        self.stats = FrontEndStats()

        self._mshrs: Dict[int, _MissEntry] = {}
        #: Evictions waiting to enter a controller write queue, in
        #: eviction order (the tier's single write-back port drains them
        #: strictly in order).
        self._write_backs: Deque[MemoryRequest] = deque()
        #: One-shot wake-ups for producers blocked on the tier
        #: (mirrors the controller queues' wait_for_space semantics).
        self._space_waiters: List[Callable[[], None]] = []
        self._wb_blocked = False
        self._next_fill_id = FILL_ID_BASE
        self._next_wb_id = WRITE_BACK_ID_BASE

        metrics = self.telemetry.metrics
        self._m_hits = metrics.counter("frontend.hits")
        self._m_misses = metrics.counter("frontend.misses")
        self._m_coalesced = metrics.counter("frontend.mshr_coalesced")
        self._m_fills = metrics.counter("frontend.fills")
        self._m_write_backs = metrics.counter("frontend.write_backs")

    # ------------------------------------------------------------------
    # MemoryPort interface (what the cores call)
    # ------------------------------------------------------------------
    def can_accept(self, kind: RequestKind, address: int) -> bool:
        if kind is RequestKind.WRITE:
            # A write may allocate and evict a dirty line; require room
            # in the write-back buffer before admitting it.
            if len(self._write_backs) >= self.config.writeback_buffer:
                return False
        if self.dram.cache.contains(address) or address in self._mshrs:
            return True
        # A miss needs an MSHR and a slot in the PCM read queue for the
        # fill (write misses fetch-on-write, so both kinds fill via READ).
        return (
            len(self._mshrs) < self.config.mshrs
            and self.memory.can_accept(RequestKind.READ, address)
        )

    def submit(self, request: MemoryRequest) -> None:
        request.arrival = self.engine.now
        if request.is_read:
            self._submit_read(request)
        else:
            self._submit_write(request)

    def wait_for_space(
        self, kind: RequestKind, address: int, callback: Callable[[], None]
    ) -> None:
        # Every admission blocker implies in-flight tier work whose
        # completion calls _notify_space: a full MSHR table or full PCM
        # read queue means fills are outstanding, and a full write-back
        # buffer keeps a drain registration against the controller's
        # write queue.  So a local one-shot list cannot strand waiters.
        self._space_waiters.append(callback)

    @property
    def idle(self) -> bool:
        return (
            not self._mshrs
            and not self._write_backs
            and self.memory.idle
        )

    # ------------------------------------------------------------------
    # Introspection (time-series probes, results, examples)
    # ------------------------------------------------------------------
    @property
    def mshr_depth(self) -> int:
        return len(self._mshrs)

    @property
    def writeback_depth(self) -> int:
        return len(self._write_backs)

    def summary(self) -> dict:
        """JSON-safe scoreboard embedded in saved results (schema 2)."""
        cache = self.dram.stats
        return {
            "kind": self.config.kind,
            "replacement": self.config.replacement,
            "access_cycles": self.config.dram.access_cycles,
            "mshrs": self.config.mshrs,
            "writeback_buffer": self.config.writeback_buffer,
            **self.stats.as_dict(),
            "cache": {
                "hits": cache.hits,
                "misses": cache.misses,
                "evictions": cache.evictions,
                "dirty_evictions": cache.dirty_evictions,
                "clean_evictions": cache.clean_evictions,
            },
        }

    # ------------------------------------------------------------------
    # Epoch-batched classification (PR 7's on_epoch hook, tier-aware)
    # ------------------------------------------------------------------
    def make_epoch_hook(self, storage) -> Optional[Callable]:
        """Per-epoch hook classifying a whole epoch in one batched pass.

        The trace generators hand each freshly generated epoch (256
        records) to this hook before the cores consume it.  The tier
        classifies every address against the cache's *current* state in
        one vectorized pass (:meth:`ArraySetCache.classify_batch`; a
        scalar scan without numpy) and prefetch-materialises only the
        predicted-miss lines — the lines whose PCM fills the tier will
        issue.  The classification is advisory by design: tier state
        moves between generation and consumption (in-flight MSHR fills),
        so the real per-event probes still decide hits and misses.  A
        predicted miss that turns out to hit was resident, hence already
        materialised by its own fill — prefetching it again is a no-op —
        so steering never materialises a line the run leaves cold, and
        ``storage.prefetch`` is semantically invisible either way.

        Mirrors ``repro.cpu.multicore._epoch_prefetcher``'s guard: plain
        :class:`~repro.memory.storage.MemoryStorage` only (the
        fault-injecting subclass sweeps every materialised line through
        its oracle), else ``None``.
        """
        from repro.memory.storage import MemoryStorage

        if type(storage) is not MemoryStorage:
            return None
        cache = self.dram.cache

        def classify_and_prefetch(records) -> None:
            addresses = [record.address for record in records]
            hits = cache.classify_batch(addresses)
            storage.prefetch(
                {
                    address // 64
                    for address, hit in zip(addresses, hits)
                    if not hit
                }
            )

        return classify_and_prefetch

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def _submit_read(self, request: MemoryRequest) -> None:
        self.stats.reads += 1
        entry = self.dram.cache.probe(request.address)
        if entry is not None:
            self.stats.read_hits += 1
            self._m_hits.inc()
            self._schedule_hit(request)
            return
        self.stats.read_misses += 1
        self._m_misses.inc()
        miss = self._mshrs.get(request.address)
        if miss is not None:
            miss.waiting_reads.append(request)
            self.stats.coalesced += 1
            self._m_coalesced.inc()
            return
        self._start_fill(request.address, request, waiting_read=True)

    # ------------------------------------------------------------------
    # Write path (write-allocate, fetch-on-write)
    # ------------------------------------------------------------------
    def _submit_write(self, request: MemoryRequest) -> None:
        self.stats.writes += 1
        entry = self.dram.cache.probe(
            request.address, dirty_mask=request.dirty_mask
        )
        if entry is not None:
            self.stats.write_hits += 1
            self._m_hits.inc()
            self._schedule_hit(request)
            return
        self.stats.write_misses += 1
        self._m_misses.inc()
        miss = self._mshrs.get(request.address)
        if miss is not None:
            miss.pending_mask |= request.dirty_mask
            miss.waiting_writes.append(request)
            self.stats.coalesced += 1
            self._m_coalesced.inc()
            return
        self._start_fill(request.address, request, waiting_read=False)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _schedule_hit(self, request: MemoryRequest) -> None:
        """Complete ``request`` after the tier's scheduled hit latency."""
        self.engine.call_after(
            self.hit_ticks, request.complete, self.engine.now + self.hit_ticks
        )

    def _start_fill(
        self, address: int, waiter: MemoryRequest, waiting_read: bool
    ) -> None:
        miss = _MissEntry(address)
        if waiting_read:
            miss.waiting_reads.append(waiter)
        else:
            miss.waiting_writes.append(waiter)
            miss.pending_mask = waiter.dirty_mask
        self._mshrs[address] = miss
        self._next_fill_id += 1
        fill = MemoryRequest(
            req_id=self._next_fill_id,
            kind=RequestKind.READ,
            address=address,
            core_id=waiter.core_id,
            requested_at=self.engine.now,
        )
        fill.on_complete = self._on_fill_complete
        # RoW verification outcomes propagate to whoever was waiting on
        # the fill; the closure sees the MSHR's final waiter list because
        # coalesced misses append to the same object.
        readers = miss.waiting_reads
        fill.on_verify = (
            lambda _fr, rollback, readers=readers:
            self._forward_verify(readers, rollback)
        )
        self.stats.fills += 1
        self._m_fills.inc()
        self.memory.submit(fill)

    def _on_fill_complete(self, fill: MemoryRequest) -> None:
        miss = self._mshrs.pop(fill.address)
        evicted = self.dram.cache.install(fill.address)
        self.dram.cache.merge_dirty(fill.address, miss.pending_mask)
        now = self.engine.now
        for waiter in miss.waiting_reads:
            waiter.complete(now)
        for waiter in miss.waiting_writes:
            waiter.complete(now)
        if evicted is not None:
            self._queue_write_back(evicted)
        self._notify_space()

    def _forward_verify(
        self, readers: List[MemoryRequest], rollback: bool
    ) -> None:
        if rollback:
            self.stats.fill_rollbacks += 1
        for reader in readers:
            if reader.on_verify is not None:
                reader.on_verify(reader, rollback)

    def _queue_write_back(self, eviction: Eviction) -> None:
        self._next_wb_id += 1
        wb = MemoryRequest(
            req_id=self._next_wb_id,
            kind=RequestKind.WRITE,
            address=eviction.address,
            dirty_mask=eviction.dirty_mask,
            new_words=eviction.words,
        )
        self.stats.write_backs += 1
        self._m_write_backs.inc()
        self._write_backs.append(wb)
        self._drain_write_backs()

    def _drain_write_backs(self) -> None:
        while self._write_backs and self.memory.can_accept(
            RequestKind.WRITE, self._write_backs[0].address
        ):
            self.memory.submit(self._write_backs.popleft())
        if self._write_backs and not self._wb_blocked:
            self._wb_blocked = True
            self.memory.wait_for_space(
                RequestKind.WRITE,
                self._write_backs[0].address,
                self._writeback_space_available,
            )

    def _writeback_space_available(self) -> None:
        self._wb_blocked = False
        self._drain_write_backs()
        self._notify_space()

    def _notify_space(self) -> None:
        """Wake blocked producers once (they re-check and re-register)."""
        if not self._space_waiters:
            return
        waiters, self._space_waiters = self._space_waiters, []
        for callback in waiters:
            callback()
