"""Three-level cache hierarchy (Table I): L1 -> L2 -> DRAM cache -> PCM.

The hierarchy consumes CPU-level LOAD/STORE trace records and emits
main-memory events: line READs on last-cache-level misses and
dirty-masked WRITE_BACKs on evictions.  This is the functional path that
*derives* the dirty-word masks the statistical generator otherwise
synthesises — the full-hierarchy example and the cache tests use it.

The DRAM level is optional: ``HierarchyConfig(dram_cache=None)`` stops
the functional stack after the L2, producing the post-L2 stream the
timed :class:`~repro.cache.frontend.DramCacheFrontEnd` consumes — the
DRAM tier is then *simulated* (engine-scheduled hits, MSHRs, write-back
queues) instead of folded in functionally.  See docs/FRONTEND.md.

Simplifications (documented in DESIGN.md §5): this stack is functional
(its hit latencies live in the core's base CPI, or in the timed front
end when one is configured); L1/L2 are unified per core here (the
paper's split I/D L1s matter for instruction fetch, which trace replay
does not model); coherence is not simulated (single-writer traces).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.cache.cacheline import line_base
from repro.cache.dram_cache import DramCache, DramCacheConfig
from repro.cache.set_assoc import Eviction, SetAssociativeCache
from repro.trace.record import AccessKind, TraceRecord


@dataclass(frozen=True)
class HierarchyConfig:
    """Cache geometry (Table I defaults)."""

    l1_size: int = 32 * 1024
    l1_associativity: int = 2
    l2_size: int = 8 * 1024 * 1024
    l2_associativity: int = 8
    #: ``None`` drops the functional DRAM level entirely: references
    #: that miss the L2 go straight to "memory", which is how the stack
    #: is composed in front of the timed DRAM tier.
    dram_cache: Optional[DramCacheConfig] = field(
        default_factory=DramCacheConfig
    )
    track_words: bool = False
    #: Replacement policy name for every level (repro.cache.replacement).
    replacement: str = "lru"


@dataclass
class HierarchyOutcome:
    """What one CPU reference produced at the memory boundary."""

    hit_level: str                      #: "l1", "l2", "dram", or "memory"
    fills: List[int] = field(default_factory=list)       #: PCM line reads
    write_backs: List[Eviction] = field(default_factory=list)  #: to PCM


class CacheHierarchy:
    """Per-core L1 over a shared L2 (+ optional functional DRAM cache)."""

    def __init__(self, n_cores: int = 8, config: Optional[HierarchyConfig] = None):
        self.config = config or HierarchyConfig()
        self.n_cores = n_cores
        self.l1s = [
            SetAssociativeCache(
                self.config.l1_size,
                self.config.l1_associativity,
                name=f"l1-{core}",
                track_words=self.config.track_words,
                policy=self.config.replacement,
            )
            for core in range(n_cores)
        ]
        self.l2 = SetAssociativeCache(
            self.config.l2_size,
            self.config.l2_associativity,
            name="l2",
            track_words=self.config.track_words,
            policy=self.config.replacement,
        )
        self.dram: Optional[DramCache] = None
        if self.config.dram_cache is not None:
            self.dram = DramCache(
                self.config.dram_cache,
                track_words=self.config.track_words,
                policy=self.config.replacement,
            )

    # ------------------------------------------------------------------
    def reference(
        self,
        core_id: int,
        address: int,
        is_write: bool,
        value: Optional[int] = None,
    ) -> HierarchyOutcome:
        """One load/store from ``core_id``; returns memory-boundary events."""
        if not 0 <= core_id < self.n_cores:
            raise ValueError(f"core id out of range: {core_id}")
        outcome = HierarchyOutcome(hit_level="l1")
        l1 = self.l1s[core_id]

        l1_hit, l1_evicted = l1.access(address, is_write, value)
        self._spill(l1_evicted, outcome, into_l2=True)
        if l1_hit:
            return outcome

        outcome.hit_level = "l2"
        l2_hit, l2_evicted = self.l2.access(line_base(address), False)
        self._spill(l2_evicted, outcome, into_l2=False)
        if l2_hit:
            return outcome

        if self.dram is not None:
            outcome.hit_level = "dram"
            dram_hit, write_backs = self.dram.access(line_base(address), False)
            outcome.write_backs.extend(write_backs)
            if dram_hit:
                return outcome

        outcome.hit_level = "memory"
        outcome.fills.append(line_base(address))
        return outcome

    def _spill(
        self, eviction: Optional[Eviction], outcome: HierarchyOutcome, into_l2: bool
    ) -> None:
        """Push a dirty eviction one level down."""
        if eviction is None or not eviction.dirty:
            return
        if into_l2:
            # Write-back from an L1 lands in the L2; the L2 line inherits
            # the dirty words.
            _hit, l2_evicted = self.l2.access(eviction.address, True)
            self.l2.merge_dirty(eviction.address, eviction.dirty_mask)
            self._spill(l2_evicted, outcome, into_l2=False)
        elif self.dram is not None:
            # Write-back from the L2 lands in the DRAM cache.
            _hit, write_backs = self.dram.access(eviction.address, True)
            self.dram.cache.merge_dirty(eviction.address, eviction.dirty_mask)
            outcome.write_backs.extend(write_backs)
        else:
            # No functional DRAM level: the L2 eviction *is* the
            # memory-boundary write-back (the timed tier sits below).
            outcome.write_backs.append(eviction)

    # ------------------------------------------------------------------
    def replay(self, core_id: int, records) -> Tuple[List[TraceRecord], dict]:
        """Convert LOAD/STORE records into main-memory-level records.

        Returns the post-LLC trace plus a summary of hit levels — the
        full-hierarchy example uses this to show how Figure 2's dirty
        masks arise from real cache behaviour.
        """
        memory_trace: List[TraceRecord] = []
        levels = {"l1": 0, "l2": 0, "dram": 0, "memory": 0}
        pending_gap = 0
        for record in records:
            if record.kind not in (AccessKind.LOAD, AccessKind.STORE):
                raise ValueError("replay expects LOAD/STORE records")
            pending_gap += record.gap_instructions
            outcome = self.reference(
                core_id, record.address, record.kind is AccessKind.STORE
            )
            levels[outcome.hit_level] += 1
            for fill in outcome.fills:
                memory_trace.append(
                    TraceRecord(pending_gap, AccessKind.READ, fill)
                )
                pending_gap = 0
            for wb in outcome.write_backs:
                memory_trace.append(
                    TraceRecord(
                        pending_gap,
                        AccessKind.WRITE_BACK,
                        wb.address,
                        dirty_mask=wb.dirty_mask,
                    )
                )
                pending_gap = 0
        return memory_trace, levels
