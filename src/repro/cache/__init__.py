"""Cache substrate: functional L1/L2/DRAM stack plus the timed DRAM tier."""

from repro.cache.cacheline import CacheLine, line_base, word_index
from repro.cache.dram_cache import DramCache, DramCacheConfig
from repro.cache.frontend import (
    FRONT_END_KINDS,
    DramCacheFrontEnd,
    FrontEndConfig,
    FrontEndStats,
)
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig, HierarchyOutcome
from repro.cache.replacement import (
    REPLACEMENT_POLICIES,
    REPLACEMENT_POLICY_NAMES,
    ClockReplacement,
    LruReplacement,
    MacReplacement,
    ReplacementPolicy,
    make_replacement_policy,
    register_replacement_policy,
)
from repro.cache.array_backend import ArraySetCache
from repro.cache.set_assoc import (
    CACHE_BACKENDS,
    CacheStats,
    Eviction,
    SetAssociativeCache,
    make_set_cache,
)

__all__ = [
    "CacheLine",
    "line_base",
    "word_index",
    "DramCache",
    "DramCacheConfig",
    "FRONT_END_KINDS",
    "DramCacheFrontEnd",
    "FrontEndConfig",
    "FrontEndStats",
    "CacheHierarchy",
    "HierarchyConfig",
    "HierarchyOutcome",
    "REPLACEMENT_POLICIES",
    "REPLACEMENT_POLICY_NAMES",
    "ClockReplacement",
    "LruReplacement",
    "MacReplacement",
    "ReplacementPolicy",
    "make_replacement_policy",
    "register_replacement_policy",
    "ArraySetCache",
    "CACHE_BACKENDS",
    "CacheStats",
    "Eviction",
    "SetAssociativeCache",
    "make_set_cache",
]
