"""Cache hierarchy substrate: L1/L2/DRAM-cache with per-word dirty masks."""

from repro.cache.cacheline import CacheLine, line_base, word_index
from repro.cache.dram_cache import DramCache, DramCacheConfig
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig, HierarchyOutcome
from repro.cache.set_assoc import CacheStats, Eviction, SetAssociativeCache

__all__ = [
    "CacheLine",
    "line_base",
    "word_index",
    "DramCache",
    "DramCacheConfig",
    "CacheHierarchy",
    "HierarchyConfig",
    "HierarchyOutcome",
    "CacheStats",
    "Eviction",
    "SetAssociativeCache",
]
