"""Pluggable replacement policies for the set-associative caches.

`SetAssociativeCache` used to hard-code LRU victim selection; this module
extracts the choice behind a small protocol so the DRAM tier (and the
functional hierarchy) can swap policies the same way the memory
controllers swap scheduler policies via ``systems.build_policies``.

Three policies ship:

* ``lru``   — least-recently-used, byte-identical to the historical
  behaviour (victim = minimum ``last_use`` stamp).
* ``clock`` — second-chance/CLOCK: one reference bit per line, a per-set
  hand sweeps residency order and clears bits until it finds a line
  whose bit is already clear.
* ``mac``   — a MAC-style multilevel policy (after the multilevel access
  counter caches of arXiv 1606.03248): each line carries a small access
  level, hits promote it, and the victim is the lowest-level line with
  LRU as the tie-break.  When every resident line has been promoted the
  levels are renormalised, so the counters adapt instead of saturating.

Per-line state lives in :attr:`CacheLine.policy_state` (an int the cache
never interprets); per-set state lives inside the policy object.  All
three are deterministic — no hash-order iteration, no RNG — so traces
stay byte-identical across ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Union

from repro.cache.cacheline import CacheLine


class ReplacementPolicy:
    """Victim selection + bookkeeping hooks for one cache instance.

    One policy object serves one cache (it may keep per-set state), and
    the cache calls exactly these hooks:

    * :meth:`on_fill` — a line was allocated into ``set_index``.
    * :meth:`on_hit` — a resident line was referenced.
    * :meth:`victim` — pick which of ``entries`` to evict (the cache
      removes it; ``entries`` is the set's residency-ordered list).
    * :meth:`on_evict` — a line left the set (eviction or invalidation).
    """

    name = "base"

    def on_fill(self, set_index: int, entry: CacheLine) -> None:
        pass

    def on_hit(self, set_index: int, entry: CacheLine) -> None:
        pass

    def victim(self, set_index: int, entries: List[CacheLine]) -> CacheLine:
        raise NotImplementedError

    def on_evict(self, set_index: int, entry: CacheLine) -> None:
        pass


class LruReplacement(ReplacementPolicy):
    """Least-recently-used: evict the minimum ``last_use`` stamp.

    The cache already stamps ``last_use`` on every access, so LRU needs
    no hooks — this is exactly the victim rule ``SetAssociativeCache``
    hard-coded before the protocol was extracted.
    """

    name = "lru"

    def victim(self, set_index: int, entries: List[CacheLine]) -> CacheLine:
        return min(entries, key=lambda e: e.last_use)


class ClockReplacement(ReplacementPolicy):
    """Second-chance (CLOCK): a per-set hand sweeps reference bits.

    ``policy_state`` is the reference bit (set on fill and on hit).  The
    hand walks the set's residency order, clearing set bits; the first
    line found with a clear bit is the victim.  Bounded: after one full
    sweep every bit is clear, so the walk terminates.
    """

    name = "clock"

    def __init__(self) -> None:
        self._hands: Dict[int, int] = {}

    def on_fill(self, set_index: int, entry: CacheLine) -> None:
        entry.policy_state = 1

    def on_hit(self, set_index: int, entry: CacheLine) -> None:
        entry.policy_state = 1

    def victim(self, set_index: int, entries: List[CacheLine]) -> CacheLine:
        n = len(entries)
        hand = self._hands.get(set_index, 0) % n
        for _ in range(2 * n):
            entry = entries[hand]
            if not entry.policy_state:
                self._hands[set_index] = hand
                return entry
            entry.policy_state = 0
            hand = (hand + 1) % n
        # Unreachable (one sweep clears every bit); keep a safe fallback.
        return entries[hand]


class MacReplacement(ReplacementPolicy):
    """Multilevel access-counter policy (MAC-style, arXiv 1606.03248).

    ``policy_state`` is the line's access level (0..levels-1): lines fill
    at level 0, each hit promotes one level, and the victim is the line
    with the lowest (level, last_use) pair — frequency first, recency as
    the tie-break.  When the whole set has been promoted off level 0,
    every level is shifted down by the set's minimum so the counters keep
    discriminating instead of pinning at the ceiling.
    """

    name = "mac"

    def __init__(self, levels: int = 4) -> None:
        if levels < 2:
            raise ValueError("mac replacement needs at least 2 levels")
        self.levels = levels

    def on_fill(self, set_index: int, entry: CacheLine) -> None:
        entry.policy_state = 0

    def on_hit(self, set_index: int, entry: CacheLine) -> None:
        if entry.policy_state < self.levels - 1:
            entry.policy_state += 1

    def victim(self, set_index: int, entries: List[CacheLine]) -> CacheLine:
        floor = min(e.policy_state for e in entries)
        if floor > 0:
            for entry in entries:
                entry.policy_state -= floor
        return min(entries, key=lambda e: (e.policy_state, e.last_use))


#: name -> factory, mirroring how ``systems.build_policies`` maps feature
#: flags to scheduler-policy chains.  Extend via
#: :func:`register_replacement_policy`.
REPLACEMENT_POLICIES: Dict[str, Callable[[], ReplacementPolicy]] = {
    "lru": LruReplacement,
    "clock": ClockReplacement,
    "mac": MacReplacement,
}

#: Stable listing for CLI choices and docs.
REPLACEMENT_POLICY_NAMES: List[str] = ["lru", "clock", "mac"]


def register_replacement_policy(
    name: str, factory: Callable[[], ReplacementPolicy]
) -> None:
    """Register a custom policy under ``name`` (overwrites existing)."""
    REPLACEMENT_POLICIES[name] = factory
    if name not in REPLACEMENT_POLICY_NAMES:
        REPLACEMENT_POLICY_NAMES.append(name)


# ======================================================================
# Array-resident mirrors of the builtin policies
# ======================================================================
# The columnar :class:`~repro.cache.array_backend.ArraySetCache` keeps
# per-line policy state in a flat int array (the same information
# :attr:`CacheLine.policy_state` carries) and per-set CLOCK hands in an
# array indexed by set.  These ops objects are the builtin policies
# re-expressed as index arithmetic over those slabs — victim selection
# walks ``[base, base + count)`` of the set's residency-ordered slab, so
# the choice (including first-minimum tie-breaks and hand positions) is
# bit-identical to the object policies walking the per-set list.
#
# The registry itself is unchanged: caches still resolve policies via
# :data:`REPLACEMENT_POLICIES` / :func:`make_replacement_policy`; the
# array backend merely asks :func:`array_policy_ops` whether the
# *resolved* policy has an array mirror.  Custom registered policies
# return ``None`` and fall back to the object backend.

#: Per-hit state transitions the array cache inlines (no method call on
#: the hit path): 0 — none (LRU), 1 — set reference bit (CLOCK),
#: 2 — saturating level increment (MAC, bound in ``mac_top``).
HIT_NONE, HIT_CLOCK, HIT_MAC = 0, 1, 2


class _LruArrayOps:
    """LRU over the slab: victim = first way with minimal ``last_use``."""

    hit_code = HIT_NONE
    fill_state = 0
    mac_top = 0

    def victim(self, last_use, policy, hands, set_index, base, count) -> int:
        best = base
        best_use = last_use[base]
        for i in range(base + 1, base + count):
            if last_use[i] < best_use:
                best_use = last_use[i]
                best = i
        return best - base


class _ClockArrayOps:
    """CLOCK over the slab: the per-set hand lives in ``hands[set_index]``.

    Identical to :class:`ClockReplacement` including its quirk that the
    stored hand is *not* adjusted when the victim's removal shifts the
    residency order — the object policy keeps the raw index too, so the
    sweeps stay in lockstep.
    """

    hit_code = HIT_CLOCK
    fill_state = 1
    mac_top = 0

    def victim(self, last_use, policy, hands, set_index, base, count) -> int:
        n = count
        hand = hands[set_index] % n
        for _ in range(2 * n):
            i = base + hand
            if not policy[i]:
                hands[set_index] = hand
                return hand
            policy[i] = 0
            hand = (hand + 1) % n
        # Unreachable (one sweep clears every bit); keep a safe fallback.
        return hand


class _MacArrayOps:
    """MAC over the slab: renormalise by the floor, then (level, last_use)."""

    hit_code = HIT_MAC
    fill_state = 0

    def __init__(self, levels: int):
        self.mac_top = levels - 1

    def victim(self, last_use, policy, hands, set_index, base, count) -> int:
        end = base + count
        floor = min(policy[base:end])
        if floor > 0:
            for i in range(base, end):
                policy[i] -= floor
        best = base
        best_level = policy[base]
        best_use = last_use[base]
        for i in range(base + 1, end):
            level = policy[i]
            if level < best_level or (
                level == best_level and last_use[i] < best_use
            ):
                best_level = level
                best_use = last_use[i]
                best = i
        return best - base


def array_policy_ops(policy: ReplacementPolicy):
    """Array mirror for a *resolved* builtin policy, or ``None``.

    Exact-type matches only: a subclass may override hooks the mirror
    would silently drop, so anything but the three builtins (custom
    registrations included) stays on the object backend.
    """
    kind = type(policy)
    if kind is LruReplacement:
        return _LruArrayOps()
    if kind is ClockReplacement:
        return _ClockArrayOps()
    if kind is MacReplacement:
        return _MacArrayOps(policy.levels)
    return None


def make_replacement_policy(
    spec: Union[str, ReplacementPolicy, None],
) -> ReplacementPolicy:
    """Resolve a policy spec: a name, a ready policy object, or None (LRU)."""
    if spec is None:
        return LruReplacement()
    if isinstance(spec, ReplacementPolicy):
        return spec
    try:
        factory = REPLACEMENT_POLICIES[spec]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {spec!r}; "
            f"known: {sorted(REPLACEMENT_POLICIES)}"
        ) from None
    return factory()
