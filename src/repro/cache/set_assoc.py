"""Generic set-associative write-back cache with pluggable replacement.

Used for the L1s, the shared L2, and the 256 MB DRAM cache of Table I.
The model is functional (hit/miss/eviction): what the memory study needs
from the cache stack is the *filtering* of accesses and the per-word
dirty masks of evicted lines.  Timing belongs to the tier that wraps it —
:class:`repro.cache.frontend.DramCacheFrontEnd` schedules hit/fill/
write-back events on the shared engine (docs/FRONTEND.md).

Victim selection is delegated to a :class:`ReplacementPolicy` (LRU by
default, byte-identical to the historical hard-coded behaviour; CLOCK
and MAC ship as alternatives — see :mod:`repro.cache.replacement`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.cache.cacheline import CacheLine, line_base, word_index
from repro.cache.replacement import ReplacementPolicy, make_replacement_policy
from repro.memory.request import LINE_BYTES, WORDS_PER_LINE


@dataclass(frozen=True)
class Eviction:
    """A dirty line pushed out of the cache (a write-back).

    Clean victims never materialise an ``Eviction``: they leave silently
    and are tallied in :attr:`CacheStats.clean_evictions`, so every
    object call sites receive represents real write-back traffic.
    """

    address: int        #: line-aligned byte address
    dirty_mask: int     #: per-word dirty bits (never 0)
    words: Optional[Tuple[int, ...]] = None

    @property
    def dirty(self) -> bool:
        return self.dirty_mask != 0


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    clean_evictions: int = 0    #: victims dropped without a write-back

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses


class SetAssociativeCache:
    """Set-associative cache over 64-byte lines."""

    def __init__(
        self,
        size_bytes: int,
        associativity: int,
        name: str = "cache",
        track_words: bool = False,
        policy: Union[str, ReplacementPolicy, None] = None,
    ):
        if size_bytes % (LINE_BYTES * associativity):
            raise ValueError(
                f"{name}: size must be a multiple of line x associativity"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.n_sets = size_bytes // (LINE_BYTES * associativity)
        if self.n_sets < 1:
            raise ValueError(f"{name}: no sets")
        self.track_words = track_words
        self.policy = make_replacement_policy(policy)
        self._sets: Dict[int, List[CacheLine]] = {}
        self._clock = 0
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def _locate(self, address: int) -> Tuple[int, int]:
        line = line_base(address) // LINE_BYTES
        return line % self.n_sets, line // self.n_sets

    def _find(self, set_index: int, tag: int) -> Optional[CacheLine]:
        for entry in self._sets.get(set_index, ()):
            if entry.valid and entry.tag == tag:
                return entry
        return None

    def contains(self, address: int) -> bool:
        set_index, tag = self._locate(address)
        return self._find(set_index, tag) is not None

    def line_state(self, address: int) -> Optional[CacheLine]:
        """The resident line (for tests/introspection), or None."""
        set_index, tag = self._locate(address)
        return self._find(set_index, tag)

    def merge_dirty(self, address: int, dirty_mask: int) -> None:
        """OR ``dirty_mask`` into the resident line (no-op on a miss).

        The backend-neutral way to inherit dirty words (spills, MSHR
        pending masks): the array backend's ``line_state`` returns a
        snapshot, so callers must not mutate that.
        """
        if not dirty_mask:
            return
        entry = self.line_state(address)
        if entry is not None:
            entry.dirty_mask |= dirty_mask

    # ------------------------------------------------------------------
    def access(
        self,
        address: int,
        is_write: bool,
        value: Optional[int] = None,
    ) -> Tuple[bool, Optional[Eviction]]:
        """One load/store.  Returns (hit, dirty-eviction-on-fill).

        A miss allocates the line (write-allocate) and may evict the
        policy's victim; the caller turns a dirty eviction into a
        write-back and a miss into a fill from the next level.  Clean
        victims return ``None`` (counted in ``stats.clean_evictions``).
        """
        self._clock += 1
        set_index, tag = self._locate(address)
        entry = self._find(set_index, tag)
        evicted: Optional[Eviction] = None
        hit = entry is not None
        if entry is None:
            self.stats.misses += 1
            evicted = self._fill(set_index, tag)
            entry = self._find(set_index, tag)
            assert entry is not None
        else:
            self.stats.hits += 1
            self.policy.on_hit(set_index, entry)
        entry.touch(self._clock)
        if is_write:
            word = word_index(address)
            if self.track_words and value is not None:
                entry.write_word(word, value)
            else:
                entry.mark_dirty(word)
        return hit, evicted

    def probe(self, address: int, dirty_mask: int = 0) -> Optional[CacheLine]:
        """Line-granularity lookup for the timed tier.

        On a hit: touch recency, run the policy's hit hook, merge
        ``dirty_mask`` into the line, count a hit, and return the line.
        On a miss: count a miss and return ``None`` *without allocating*
        — the timed tier installs lines only when their PCM fill
        completes (:meth:`install`), so a line is never visible before
        its data could exist.
        """
        self._clock += 1
        set_index, tag = self._locate(address)
        entry = self._find(set_index, tag)
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        entry.touch(self._clock)
        if dirty_mask:
            entry.dirty_mask |= dirty_mask
        self.policy.on_hit(set_index, entry)
        return entry

    def _fill(self, set_index: int, tag: int) -> Optional[Eviction]:
        """Allocate (tag) in the set; returns the dirty eviction if any."""
        entries = self._sets.setdefault(set_index, [])
        evicted: Optional[Eviction] = None
        if len(entries) >= self.associativity:
            victim = self.policy.victim(set_index, entries)
            entries.remove(victim)
            self.policy.on_evict(set_index, victim)
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.dirty_evictions += 1
                victim_line = (
                    victim.tag * self.n_sets + set_index
                ) * LINE_BYTES
                evicted = Eviction(
                    victim_line, victim.dirty_mask, victim.words
                )
            else:
                self.stats.clean_evictions += 1
        words = None
        if self.track_words:
            words = tuple([0] * WORDS_PER_LINE)
        entry = CacheLine(tag=tag, words=words, last_use=self._clock)
        entries.append(entry)
        self.policy.on_fill(set_index, entry)
        return evicted

    # ------------------------------------------------------------------
    def install(
        self, address: int, words: Optional[Tuple[int, ...]] = None
    ) -> Optional[Eviction]:
        """Fill a line without an access (fill completion, back-fill)."""
        self._clock += 1
        set_index, tag = self._locate(address)
        if self._find(set_index, tag) is not None:
            return None
        return self._fill(set_index, tag)

    def invalidate(self, address: int) -> Optional[Eviction]:
        """Drop a line; returns its eviction record when it was dirty."""
        set_index, tag = self._locate(address)
        entry = self._find(set_index, tag)
        if entry is None:
            return None
        self._sets[set_index].remove(entry)
        self.policy.on_evict(set_index, entry)
        if entry.dirty:
            self.stats.evictions += 1
            self.stats.dirty_evictions += 1
            return Eviction(
                (tag * self.n_sets + set_index) * LINE_BYTES,
                entry.dirty_mask,
                entry.words,
            )
        return None

    def resident_lines(self) -> int:
        return sum(len(entries) for entries in self._sets.values())

    def dirty_lines(self) -> List[int]:
        """Addresses of dirty resident lines, in drain order.

        Order is first-fill order of sets (dict insertion order), then
        residency order within each set — the order the DRAM cache's
        flush has always used, and the order the array backend mirrors.
        """
        addresses: List[int] = []
        for set_index, entries in self._sets.items():
            for entry in entries:
                if entry.dirty:
                    addresses.append(
                        (entry.tag * self.n_sets + set_index) * LINE_BYTES
                    )
        return addresses

    # ------------------------------------------------------------------
    # Batch entry points (scalar here; vectorized on the array backend)
    # ------------------------------------------------------------------
    def classify_batch(self, addresses: List[int]) -> List[bool]:
        """Advisory hit/miss classification (read-only, no bookkeeping)."""
        return [self.contains(address) for address in addresses]

    def access_batch(
        self,
        addresses: List[int],
        writes: List[bool],
        values: Optional[List[Optional[int]]] = None,
    ) -> Tuple[List[bool], List[Optional[Eviction]]]:
        """Run a batch of accesses; per-access (hits, evictions) aligned
        with the input — definitionally the scalar loop."""
        hits: List[bool] = []
        evictions: List[Optional[Eviction]] = []
        for i, address in enumerate(addresses):
            value = values[i] if values is not None else None
            hit, evicted = self.access(address, writes[i], value)
            hits.append(hit)
            evictions.append(evicted)
        return hits, evictions


# ======================================================================
# Backend selection
# ======================================================================
#: Recognised backend specs for :func:`make_set_cache`.
CACHE_BACKENDS = ("auto", "array", "object")


def make_set_cache(
    size_bytes: int,
    associativity: int,
    name: str = "cache",
    track_words: bool = False,
    policy: Union[str, ReplacementPolicy, None] = None,
    backend: str = "auto",
):
    """Build a set-associative cache, choosing the storage backend.

    ``"array"`` is the columnar backend
    (:class:`~repro.cache.array_backend.ArraySetCache`): flat
    tag/recency/dirty/policy columns, index-arithmetic probes, batched
    classification — the only practical representation at Table I's
    256 MB scale.  ``"object"`` is the historical per-line
    :class:`CacheLine` representation.  ``"auto"`` (the default) picks
    the array backend whenever the resolved replacement policy is one
    of the three builtins it mirrors bit-identically, and falls back to
    the object backend for custom registered policies.  Direct
    ``SetAssociativeCache(...)`` construction remains object-backed.
    """
    if backend not in CACHE_BACKENDS:
        raise ValueError(
            f"unknown cache backend {backend!r}; "
            f"expected one of {CACHE_BACKENDS}"
        )
    if backend == "object":
        return SetAssociativeCache(
            size_bytes, associativity, name=name,
            track_words=track_words, policy=policy,
        )
    from repro.cache.array_backend import ArraySetCache
    from repro.cache.replacement import array_policy_ops

    resolved = make_replacement_policy(policy)
    if backend == "auto" and array_policy_ops(resolved) is None:
        return SetAssociativeCache(
            size_bytes, associativity, name=name,
            track_words=track_words, policy=resolved,
        )
    return ArraySetCache(
        size_bytes, associativity, name=name,
        track_words=track_words, policy=resolved,
    )
