"""Generic set-associative write-back cache with LRU replacement.

Used for the L1s, the shared L2, and the 256 MB DRAM cache of Table I.
The model is functional (hit/miss/eviction), not timed — cache hit
latencies are folded into the core's base CPI (DESIGN.md §5); what the
memory study needs from the cache stack is the *filtering* of accesses
and the per-word dirty masks of evicted lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cache.cacheline import CacheLine, line_base, word_index
from repro.memory.request import LINE_BYTES, WORDS_PER_LINE


@dataclass(frozen=True)
class Eviction:
    """A line pushed out of the cache (write-back when dirty)."""

    address: int        #: line-aligned byte address
    dirty_mask: int     #: per-word dirty bits (0 == clean eviction)
    words: Optional[Tuple[int, ...]] = None

    @property
    def dirty(self) -> bool:
        return self.dirty_mask != 0


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses


class SetAssociativeCache:
    """LRU set-associative cache over 64-byte lines."""

    def __init__(
        self,
        size_bytes: int,
        associativity: int,
        name: str = "cache",
        track_words: bool = False,
    ):
        if size_bytes % (LINE_BYTES * associativity):
            raise ValueError(
                f"{name}: size must be a multiple of line x associativity"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.n_sets = size_bytes // (LINE_BYTES * associativity)
        if self.n_sets < 1:
            raise ValueError(f"{name}: no sets")
        self.track_words = track_words
        self._sets: Dict[int, List[CacheLine]] = {}
        self._clock = 0
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def _locate(self, address: int) -> Tuple[int, int]:
        line = line_base(address) // LINE_BYTES
        return line % self.n_sets, line // self.n_sets

    def _find(self, set_index: int, tag: int) -> Optional[CacheLine]:
        for entry in self._sets.get(set_index, ()):
            if entry.valid and entry.tag == tag:
                return entry
        return None

    def contains(self, address: int) -> bool:
        set_index, tag = self._locate(address)
        return self._find(set_index, tag) is not None

    def line_state(self, address: int) -> Optional[CacheLine]:
        """The resident line (for tests/introspection), or None."""
        set_index, tag = self._locate(address)
        return self._find(set_index, tag)

    # ------------------------------------------------------------------
    def access(
        self,
        address: int,
        is_write: bool,
        value: Optional[int] = None,
    ) -> Tuple[bool, Optional[Eviction]]:
        """One load/store.  Returns (hit, eviction-on-fill).

        A miss allocates the line (write-allocate) and may evict the LRU
        victim; the caller turns a dirty eviction into a write-back and a
        miss into a fill from the next level.
        """
        self._clock += 1
        set_index, tag = self._locate(address)
        entry = self._find(set_index, tag)
        evicted: Optional[Eviction] = None
        hit = entry is not None
        if entry is None:
            self.stats.misses += 1
            evicted = self._fill(set_index, tag)
            entry = self._find(set_index, tag)
            assert entry is not None
        else:
            self.stats.hits += 1
        entry.touch(self._clock)
        if is_write:
            word = word_index(address)
            if self.track_words and value is not None:
                entry.write_word(word, value)
            else:
                entry.mark_dirty(word)
        return hit, evicted

    def _fill(self, set_index: int, tag: int) -> Optional[Eviction]:
        """Allocate (tag) in the set; returns the eviction if any."""
        entries = self._sets.setdefault(set_index, [])
        evicted: Optional[Eviction] = None
        if len(entries) >= self.associativity:
            victim = min(entries, key=lambda e: e.last_use)
            entries.remove(victim)
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.dirty_evictions += 1
            victim_line = (
                victim.tag * self.n_sets + set_index
            ) * LINE_BYTES
            evicted = Eviction(victim_line, victim.dirty_mask, victim.words)
        words = None
        if self.track_words:
            words = tuple([0] * WORDS_PER_LINE)
        entries.append(CacheLine(tag=tag, words=words, last_use=self._clock))
        return evicted

    # ------------------------------------------------------------------
    def install(
        self, address: int, words: Optional[Tuple[int, ...]] = None
    ) -> Optional[Eviction]:
        """Fill a line without an access (e.g. inclusive back-fill)."""
        self._clock += 1
        set_index, tag = self._locate(address)
        if self._find(set_index, tag) is not None:
            return None
        return self._fill(set_index, tag)

    def invalidate(self, address: int) -> Optional[Eviction]:
        """Drop a line; returns its eviction record when it was dirty."""
        set_index, tag = self._locate(address)
        entry = self._find(set_index, tag)
        if entry is None:
            return None
        self._sets[set_index].remove(entry)
        if entry.dirty:
            self.stats.evictions += 1
            self.stats.dirty_evictions += 1
            return Eviction(
                (tag * self.n_sets + set_index) * LINE_BYTES,
                entry.dirty_mask,
                entry.words,
            )
        return None

    def resident_lines(self) -> int:
        return sum(len(entries) for entries in self._sets.values())
