"""Cache line state with per-word dirty tracking.

The essential-word machinery needs to know *which* 8-byte words of a
64-byte line changed, so LLC lines carry a per-word dirty mask (the
"extended dirty flag" of paper §IV-A1, option 1) in addition to the
conventional line-level dirty bit.  Functional mode also stores the words
themselves so evictions can carry real data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.memory.request import LINE_BYTES, WORD_BYTES, WORDS_PER_LINE

FULL_MASK = (1 << WORDS_PER_LINE) - 1


@dataclass
class CacheLine:
    """One resident line of a set-associative cache."""

    tag: int
    valid: bool = True
    dirty_mask: int = 0                       #: bit per dirty 8B word
    words: Optional[Tuple[int, ...]] = None   #: functional payload
    last_use: int = 0                         #: LRU timestamp
    #: Opaque per-line replacement-policy state (reference bit for CLOCK,
    #: access level for MAC, unused by LRU); owned by the policy object.
    policy_state: int = 0

    @property
    def dirty(self) -> bool:
        return self.dirty_mask != 0

    def touch(self, now: int) -> None:
        self.last_use = now

    def mark_dirty(self, word: int) -> None:
        if not 0 <= word < WORDS_PER_LINE:
            raise ValueError(f"word index out of range: {word}")
        self.dirty_mask |= 1 << word

    def mark_all_dirty(self) -> None:
        self.dirty_mask = FULL_MASK

    def write_word(self, word: int, value: int) -> None:
        """Functional store: update one word and mark it dirty."""
        if self.words is None:
            raise ValueError("line carries no functional payload")
        if not 0 <= value < (1 << 64):
            raise ValueError(f"word value out of range: {value:#x}")
        updated = list(self.words)
        if updated[word] != value:
            updated[word] = value
            self.words = tuple(updated)
        # The store makes the word architecturally dirty even when the
        # value is unchanged — detecting such silent stores is main
        # memory's job (paper §III-B).
        self.mark_dirty(word)


def word_index(address: int) -> int:
    """Which 8-byte word of its line a byte address falls in."""
    return (address % LINE_BYTES) // WORD_BYTES


def line_base(address: int) -> int:
    """Line-aligned base address of a byte address."""
    return address - (address % LINE_BYTES)
