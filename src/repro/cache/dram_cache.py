"""The 256 MB DRAM cache (Table I's last cache level before PCM).

PCM main-memory studies interpose a large DRAM cache between the SRAM
caches and PCM (Table I: 256 MB shared, 8-way, 64 B lines, write-back).
It is the component that *generates* the write-back stream whose
dirty-word statistics Figure 2 analyses, so its lines track per-word
dirty masks (and, in functional mode, real words).

This wraps :class:`SetAssociativeCache` with the Table I geometry and the
write-back plumbing the hierarchy needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cache.set_assoc import Eviction, SetAssociativeCache


@dataclass(frozen=True)
class DramCacheConfig:
    """Table I parameters for the DRAM cache."""

    size_bytes: int = 256 * 1024 * 1024
    associativity: int = 8
    #: Access latency in CPU cycles (folded into base CPI by the timing
    #: model; kept for reporting and the full-hierarchy example).
    access_cycles: int = 100


class DramCache:
    """Last-level (DRAM) cache in front of the PCM main memory."""

    def __init__(
        self, config: Optional[DramCacheConfig] = None, track_words: bool = False
    ):
        self.config = config or DramCacheConfig()
        self.cache = SetAssociativeCache(
            self.config.size_bytes,
            self.config.associativity,
            name="dram-cache",
            track_words=track_words,
        )
        #: Dirty evictions produced so far (the PCM write-back stream).
        self.write_backs: int = 0

    # ------------------------------------------------------------------
    def access(
        self, address: int, is_write: bool, value: Optional[int] = None
    ) -> Tuple[bool, List[Eviction]]:
        """One reference from the level above.

        Returns ``(hit, write_backs)`` where write-backs are the dirty
        evictions that must be sent to PCM.  A miss implies a PCM line
        fill (the caller issues the read).
        """
        hit, evicted = self.cache.access(address, is_write, value)
        write_backs: List[Eviction] = []
        if evicted is not None and evicted.dirty:
            self.write_backs += 1
            write_backs.append(evicted)
        return hit, write_backs

    def flush(self) -> List[Eviction]:
        """Evict every dirty line (end-of-run write-back drain)."""
        drained: List[Eviction] = []
        for set_index in list(self.cache._sets):
            for entry in list(self.cache._sets[set_index]):
                if entry.dirty:
                    line_address = (
                        entry.tag * self.cache.n_sets + set_index
                    ) * 64
                    eviction = self.cache.invalidate(line_address)
                    if eviction is not None:
                        self.write_backs += 1
                        drained.append(eviction)
        return drained

    @property
    def stats(self):
        return self.cache.stats
