"""The 256 MB DRAM cache (Table I's last cache level before PCM).

PCM main-memory studies interpose a large DRAM cache between the SRAM
caches and PCM (Table I: 256 MB shared, 8-way, 64 B lines, write-back).
It is the component that *generates* the write-back stream whose
dirty-word statistics Figure 2 analyses, so its lines track per-word
dirty masks (and, in functional mode, real words).

This wraps :class:`SetAssociativeCache` with the Table I geometry and the
write-back plumbing its consumers need.  Two consumers exist: the
functional :class:`~repro.cache.hierarchy.CacheHierarchy` (mask
derivation, no timing) and the timed
:class:`~repro.cache.frontend.DramCacheFrontEnd`, which schedules
``access_cycles`` hit latencies on the simulation engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.cache.replacement import ReplacementPolicy
from repro.cache.set_assoc import Eviction, SetAssociativeCache


@dataclass(frozen=True)
class DramCacheConfig:
    """Table I parameters for the DRAM cache."""

    size_bytes: int = 256 * 1024 * 1024
    associativity: int = 8
    #: Hit latency in CPU cycles.  The timed front end
    #: (:class:`repro.cache.frontend.DramCacheFrontEnd`) schedules every
    #: tier hit ``access_cycles`` CPU cycles after submission; with the
    #: front end off (``front_end=none``) traces are post-LLC and the
    #: latency is folded into the core's base CPI instead (DESIGN.md §5).
    access_cycles: int = 100


class DramCache:
    """Last-level (DRAM) cache in front of the PCM main memory."""

    def __init__(
        self,
        config: Optional[DramCacheConfig] = None,
        track_words: bool = False,
        policy: Union[str, ReplacementPolicy, None] = None,
    ):
        self.config = config or DramCacheConfig()
        self.cache = SetAssociativeCache(
            self.config.size_bytes,
            self.config.associativity,
            name="dram-cache",
            track_words=track_words,
            policy=policy,
        )
        #: Dirty evictions produced so far (the PCM write-back stream).
        self.write_backs: int = 0

    # ------------------------------------------------------------------
    def access(
        self, address: int, is_write: bool, value: Optional[int] = None
    ) -> Tuple[bool, List[Eviction]]:
        """One reference from the level above.

        Returns ``(hit, write_backs)`` where write-backs are the dirty
        evictions that must be sent to PCM.  A miss implies a PCM line
        fill (the caller issues the read).
        """
        hit, evicted = self.cache.access(address, is_write, value)
        write_backs: List[Eviction] = []
        if evicted is not None:
            self.write_backs += 1
            write_backs.append(evicted)
        return hit, write_backs

    def flush(self) -> List[Eviction]:
        """Evict every dirty line (end-of-run write-back drain)."""
        drained: List[Eviction] = []
        for set_index in list(self.cache._sets):
            for entry in list(self.cache._sets[set_index]):
                if entry.dirty:
                    line_address = (
                        entry.tag * self.cache.n_sets + set_index
                    ) * 64
                    eviction = self.cache.invalidate(line_address)
                    if eviction is not None:
                        self.write_backs += 1
                        drained.append(eviction)
        return drained

    @property
    def stats(self):
        return self.cache.stats
