"""The 256 MB DRAM cache (Table I's last cache level before PCM).

PCM main-memory studies interpose a large DRAM cache between the SRAM
caches and PCM (Table I: 256 MB shared, 8-way, 64 B lines, write-back).
It is the component that *generates* the write-back stream whose
dirty-word statistics Figure 2 analyses, so its lines track per-word
dirty masks (and, in functional mode, real words).

This wraps :class:`SetAssociativeCache` with the Table I geometry and the
write-back plumbing its consumers need.  Two consumers exist: the
functional :class:`~repro.cache.hierarchy.CacheHierarchy` (mask
derivation, no timing) and the timed
:class:`~repro.cache.frontend.DramCacheFrontEnd`, which schedules
``access_cycles`` hit latencies on the simulation engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.cache.replacement import ReplacementPolicy
from repro.cache.set_assoc import Eviction, make_set_cache


@dataclass(frozen=True)
class DramCacheConfig:
    """Table I parameters for the DRAM cache."""

    size_bytes: int = 256 * 1024 * 1024
    associativity: int = 8
    #: Hit latency in CPU cycles.  The timed front end
    #: (:class:`repro.cache.frontend.DramCacheFrontEnd`) schedules every
    #: tier hit ``access_cycles`` CPU cycles after submission; with the
    #: front end off (``front_end=none``) traces are post-LLC and the
    #: latency is folded into the core's base CPI instead (DESIGN.md §5).
    access_cycles: int = 100

    def __post_init__(self) -> None:
        if self.size_bytes < 64 * self.associativity:
            raise ValueError(
                "dram cache smaller than one set "
                f"({self.size_bytes} bytes, {self.associativity}-way)"
            )
        if self.size_bytes % (64 * self.associativity):
            raise ValueError(
                "dram cache size must be a multiple of line x associativity"
            )
        if self.access_cycles < 1:
            raise ValueError("dram cache access_cycles must be >= 1")


class DramCache:
    """Last-level (DRAM) cache in front of the PCM main memory."""

    def __init__(
        self,
        config: Optional[DramCacheConfig] = None,
        track_words: bool = False,
        policy: Union[str, ReplacementPolicy, None] = None,
        backend: str = "auto",
    ):
        self.config = config or DramCacheConfig()
        self.cache = make_set_cache(
            self.config.size_bytes,
            self.config.associativity,
            name="dram-cache",
            track_words=track_words,
            policy=policy,
            backend=backend,
        )
        #: Dirty evictions produced so far (the PCM write-back stream).
        self.write_backs: int = 0

    # ------------------------------------------------------------------
    def access(
        self, address: int, is_write: bool, value: Optional[int] = None
    ) -> Tuple[bool, List[Eviction]]:
        """One reference from the level above.

        Returns ``(hit, write_backs)`` where write-backs are the dirty
        evictions that must be sent to PCM.  A miss implies a PCM line
        fill (the caller issues the read).
        """
        hit, evicted = self.cache.access(address, is_write, value)
        write_backs: List[Eviction] = []
        if evicted is not None:
            self.write_backs += 1
            write_backs.append(evicted)
        return hit, write_backs

    def flush(self) -> List[Eviction]:
        """Evict every dirty line (end-of-run write-back drain).

        Backend-agnostic: both backends enumerate dirty lines in the
        same canonical order (first-fill order of sets, residency order
        within each set), so the drained stream is identical whichever
        representation backs the cache.
        """
        drained: List[Eviction] = []
        for line_address in self.cache.dirty_lines():
            eviction = self.cache.invalidate(line_address)
            if eviction is not None:
                self.write_backs += 1
                drained.append(eviction)
        return drained

    @property
    def stats(self):
        return self.cache.stats
