"""Columnar (array-backed) set-associative cache for paper-scale tiers.

The object-backed :class:`~repro.cache.set_assoc.SetAssociativeCache`
pays a ``CacheLine`` instance, a per-set Python list and attribute-laden
scans for every resident line — fine for the 32 KB L1s, ~800 MB of
Python objects for Table I's 256 MB DRAM cache.  This backend stores the
same state as flat columns indexed by ``set_index * ways + way``:

* ``tags`` / ``last_use`` — ``array('q')`` (64-bit signed),
* ``dirty`` — ``array('B')`` (one bit per 8-byte word, 8 words),
* ``policy`` — ``array('i')`` (CLOCK reference bit / MAC level),
* ``count`` — lines resident per set; ``hands`` — per-set CLOCK hands.

Each set's slab prefix ``[base, base + count)`` is kept compacted in
residency (insertion) order — evicting way ``v`` shifts the tail left,
installing appends at ``count`` — mirroring the object backend's per-set
list exactly, so policy tie-breaks, CLOCK hand positions and eviction
streams are bit-identical.  The scalar path needs only the ``array``
module (the ``REPRO_NO_NUMPY`` fallback); when numpy is present the
columns are additionally exposed as zero-copy ``np.frombuffer`` views
and the batch entry points (:meth:`ArraySetCache.classify_batch`,
:meth:`ArraySetCache.access_batch`) classify a whole epoch of accesses
in a handful of vector operations, replaying only the sets that contain
a miss through the scalar path so streams stay identical.

Construction goes through :func:`repro.cache.set_assoc.make_set_cache`,
which falls back to the object backend for custom replacement policies
(:func:`~repro.cache.replacement.array_policy_ops` mirrors only the
three builtins).
"""

from __future__ import annotations

from array import array
from typing import List, Optional, Sequence, Tuple, Union

from repro.cache.cacheline import CacheLine, word_index
from repro.cache.replacement import (
    HIT_CLOCK,
    HIT_MAC,
    ReplacementPolicy,
    array_policy_ops,
    make_replacement_policy,
)
from repro.cache.set_assoc import CacheStats, Eviction
from repro.ecc.batch import HAS_NUMPY, np
from repro.memory.request import LINE_BYTES, WORDS_PER_LINE

#: Below this many accesses the vector path's array setup costs more
#: than it saves; the scalar loop is bit-identical either way.
BATCH_MIN_ACCESSES = 16


class ArraySetCache:
    """Set-associative cache over 64-byte lines, stored as flat columns.

    Drop-in for :class:`~repro.cache.set_assoc.SetAssociativeCache` at
    every call site the tier and hierarchy use (``access`` / ``probe`` /
    ``install`` / ``invalidate`` / ``contains`` / ``line_state`` /
    ``merge_dirty`` / ``dirty_lines`` / ``resident_lines`` / ``stats``),
    with two deliberate differences:

    * :meth:`probe` returns the hit line's flat slab index (an ``int``,
      possibly ``0``) instead of a ``CacheLine`` — callers test
      ``is not None``, and a per-hit snapshot object would give back the
      allocation the backend exists to remove.
    * :meth:`line_state` returns a *snapshot* ``CacheLine``; mutating it
      does not write through.  State-changing callers use
      :meth:`merge_dirty` (both backends provide it).
    """

    def __init__(
        self,
        size_bytes: int,
        associativity: int,
        name: str = "cache",
        track_words: bool = False,
        policy: Union[str, ReplacementPolicy, None] = None,
    ):
        if size_bytes % (LINE_BYTES * associativity):
            raise ValueError(
                f"{name}: size must be a multiple of line x associativity"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.n_sets = size_bytes // (LINE_BYTES * associativity)
        if self.n_sets < 1:
            raise ValueError(f"{name}: no sets")
        self.track_words = track_words
        self.policy = make_replacement_policy(policy)
        ops = array_policy_ops(self.policy)
        if ops is None:
            raise ValueError(
                f"{name}: no array mirror for policy "
                f"{type(self.policy).__name__}; use the object backend"
            )
        self._ops = ops
        self._hit_code = ops.hit_code
        self._mac_top = ops.mac_top
        self._fill_state = ops.fill_state

        n_lines = self.n_sets * associativity
        # Preallocated, never resized: numpy views stay valid for the
        # cache's lifetime (resizing an exporting buffer would raise).
        # Tag slots outside a set's resident prefix hold the -1 sentinel
        # (no real tag is negative), so the vector hit test needs no
        # per-way residency mask.
        self._tags = array("q", b"\xff" * (8 * n_lines))
        self._last_use = array("q", bytes(8 * n_lines))
        self._dirty = array("B", bytes(n_lines))
        self._policy = array("i", bytes(4 * n_lines))
        self._count = array("i", bytes(4 * self.n_sets))
        self._hands = array("i", bytes(4 * self.n_sets))
        #: First-fill order of sets (mirrors the object backend's dict
        #: key order) so :meth:`dirty_lines` drains identically.
        self._set_order: List[int] = []
        self._set_seen = bytearray(self.n_sets)
        #: Functional payloads, one slot per slab index; allocated only
        #: when the words are actually tracked.
        self._words: Optional[List[Optional[Tuple[int, ...]]]] = (
            [None] * n_lines if track_words else None
        )
        self._clock = 0
        self.stats = CacheStats()

        if HAS_NUMPY:
            self._np_tags = np.frombuffer(self._tags, dtype=np.int64)
            self._np_last_use = np.frombuffer(self._last_use, dtype=np.int64)
            self._np_dirty = np.frombuffer(self._dirty, dtype=np.uint8)
            self._np_policy = np.frombuffer(self._policy, dtype=np.int32)
            #: (n_sets, ways) view of the tag slab: one row-gather pulls
            #: a whole set's candidate tags per access.
            self._np_tags_2d = self._np_tags.reshape(self.n_sets, associativity)
            #: When ways matches an unsigned dtype width, a per-row
            #: reinterpret of the bool match matrix replaces the (much
            #: slower) ``any(axis=1)`` reduction.
            self._row_dtype = {
                1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64
            }.get(associativity)
            self._bit_lut = np.uint8(1) << np.arange(
                WORDS_PER_LINE, dtype=np.uint8
            )

    # ------------------------------------------------------------------
    # Scalar lookups (array-module only; the REPRO_NO_NUMPY path)
    # ------------------------------------------------------------------
    def _find(self, set_index: int, tag: int) -> int:
        """Flat slab index of (set, tag), or -1 when not resident."""
        base = set_index * self.associativity
        try:
            return self._tags.index(tag, base, base + self._count[set_index])
        except ValueError:
            return -1

    def contains(self, address: int) -> bool:
        line = address // LINE_BYTES
        n_sets = self.n_sets
        return self._find(line % n_sets, line // n_sets) >= 0

    def line_state(self, address: int) -> Optional[CacheLine]:
        """A *snapshot* of the resident line, or ``None``.

        Unlike the object backend this is a copy — use
        :meth:`merge_dirty` to change a resident line's dirty mask.
        """
        line = address // LINE_BYTES
        n_sets = self.n_sets
        idx = self._find(line % n_sets, line // n_sets)
        if idx < 0:
            return None
        return CacheLine(
            tag=self._tags[idx],
            valid=True,
            dirty_mask=self._dirty[idx],
            words=self._words[idx] if self._words is not None else None,
            last_use=self._last_use[idx],
            policy_state=self._policy[idx],
        )

    def merge_dirty(self, address: int, dirty_mask: int) -> None:
        """OR ``dirty_mask`` into the resident line (no-op on a miss)."""
        if not dirty_mask:
            return
        line = address // LINE_BYTES
        n_sets = self.n_sets
        idx = self._find(line % n_sets, line // n_sets)
        if idx >= 0:
            self._dirty[idx] |= dirty_mask

    # ------------------------------------------------------------------
    # Accesses
    # ------------------------------------------------------------------
    def access(
        self,
        address: int,
        is_write: bool,
        value: Optional[int] = None,
    ) -> Tuple[bool, Optional[Eviction]]:
        """One load/store; semantics identical to the object backend."""
        self._clock += 1
        return self._access_stamped(address, is_write, self._clock, value)

    def _access_stamped(
        self,
        address: int,
        is_write: bool,
        stamp: int,
        value: Optional[int] = None,
    ) -> Tuple[bool, Optional[Eviction]]:
        """:meth:`access` with the recency stamp supplied by the caller.

        The batched path pre-assigns each access its stamp (the clock
        advances once per access regardless of processing order), so
        replayed miss-sets interleave exactly as the sequential loop
        would have stamped them.
        """
        line = address // LINE_BYTES
        n_sets = self.n_sets
        set_index = line % n_sets
        tag = line // n_sets
        idx = self._find(set_index, tag)
        evicted: Optional[Eviction] = None
        hit = idx >= 0
        if not hit:
            self.stats.misses += 1
            evicted = self._fill(set_index, tag, stamp)
            idx = set_index * self.associativity + self._count[set_index] - 1
        else:
            self.stats.hits += 1
            hit_code = self._hit_code
            if hit_code == HIT_CLOCK:
                self._policy[idx] = 1
            elif hit_code == HIT_MAC and self._policy[idx] < self._mac_top:
                self._policy[idx] += 1
        self._last_use[idx] = stamp
        if is_write:
            word = word_index(address)
            if self._words is not None and value is not None:
                self._write_word(idx, word, value)
            else:
                self._dirty[idx] |= 1 << word
        return hit, evicted

    def probe(self, address: int, dirty_mask: int = 0) -> Optional[int]:
        """Line-granularity lookup for the timed tier.

        Same contract as the object backend's ``probe`` (hit bookkeeping
        on a hit, miss counted without allocating on a miss) except the
        hit return value is the line's flat slab index — callers only
        test ``is not None``.
        """
        self._clock += 1
        line = address // LINE_BYTES
        n_sets = self.n_sets
        idx = self._find(line % n_sets, line // n_sets)
        if idx < 0:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._last_use[idx] = self._clock
        if dirty_mask:
            self._dirty[idx] |= dirty_mask
        hit_code = self._hit_code
        if hit_code == HIT_CLOCK:
            self._policy[idx] = 1
        elif hit_code == HIT_MAC and self._policy[idx] < self._mac_top:
            self._policy[idx] += 1
        return idx

    def install(
        self, address: int, words: Optional[Tuple[int, ...]] = None
    ) -> Optional[Eviction]:
        """Fill a line without an access (fill completion, back-fill)."""
        self._clock += 1
        line = address // LINE_BYTES
        n_sets = self.n_sets
        set_index = line % n_sets
        tag = line // n_sets
        if self._find(set_index, tag) >= 0:
            return None
        return self._fill(set_index, tag, self._clock)

    def invalidate(self, address: int) -> Optional[Eviction]:
        """Drop a line; returns its eviction record when it was dirty."""
        line = address // LINE_BYTES
        n_sets = self.n_sets
        set_index = line % n_sets
        tag = line // n_sets
        idx = self._find(set_index, tag)
        if idx < 0:
            return None
        dirty_mask = self._dirty[idx]
        words = self._words[idx] if self._words is not None else None
        self._remove(set_index, idx)
        if dirty_mask:
            self.stats.evictions += 1
            self.stats.dirty_evictions += 1
            return Eviction(
                (tag * n_sets + set_index) * LINE_BYTES, dirty_mask, words
            )
        return None

    # ------------------------------------------------------------------
    # Fill / evict internals
    # ------------------------------------------------------------------
    def _fill(self, set_index: int, tag: int, stamp: int) -> Optional[Eviction]:
        """Allocate (tag) at the slab's tail; returns any dirty eviction."""
        ways = self.associativity
        base = set_index * ways
        count = self._count[set_index]
        evicted: Optional[Eviction] = None
        if count >= ways:
            way = self._ops.victim(
                self._last_use, self._policy, self._hands,
                set_index, base, count,
            )
            idx = base + way
            self.stats.evictions += 1
            dirty_mask = self._dirty[idx]
            if dirty_mask:
                self.stats.dirty_evictions += 1
                victim_words = (
                    self._words[idx] if self._words is not None else None
                )
                evicted = Eviction(
                    (self._tags[idx] * self.n_sets + set_index) * LINE_BYTES,
                    dirty_mask,
                    victim_words,
                )
            else:
                self.stats.clean_evictions += 1
            self._remove(set_index, idx)
            count = ways - 1
        idx = base + count
        self._tags[idx] = tag
        self._last_use[idx] = stamp
        self._dirty[idx] = 0
        self._policy[idx] = self._fill_state
        if self._words is not None:
            self._words[idx] = (
                tuple([0] * WORDS_PER_LINE) if self.track_words else None
            )
        self._count[set_index] = count + 1
        if not self._set_seen[set_index]:
            self._set_seen[set_index] = 1
            self._set_order.append(set_index)
        return evicted

    def _remove(self, set_index: int, idx: int) -> None:
        """Drop slab entry ``idx``, compacting the set's residency order."""
        base = set_index * self.associativity
        last = base + self._count[set_index]  # one past the tail
        if idx + 1 < last:
            self._tags[idx:last - 1] = self._tags[idx + 1:last]
            self._last_use[idx:last - 1] = self._last_use[idx + 1:last]
            self._dirty[idx:last - 1] = self._dirty[idx + 1:last]
            self._policy[idx:last - 1] = self._policy[idx + 1:last]
            if self._words is not None:
                self._words[idx:last - 1] = self._words[idx + 1:last]
        elif self._words is not None:
            self._words[idx] = None
        self._tags[last - 1] = -1  # restore the vacated slot's sentinel
        self._count[set_index] -= 1

    def _write_word(self, idx: int, word: int, value: int) -> None:
        """Functional store, matching ``CacheLine.write_word`` exactly."""
        words = self._words[idx] if self._words is not None else None
        if words is None:
            raise ValueError("line carries no functional payload")
        if not 0 <= value < (1 << 64):
            raise ValueError(f"word value out of range: {value:#x}")
        if words[word] != value:
            updated = list(words)
            updated[word] = value
            self._words[idx] = tuple(updated)
        if not 0 <= word < WORDS_PER_LINE:
            raise ValueError(f"word index out of range: {word}")
        self._dirty[idx] |= 1 << word

    # ------------------------------------------------------------------
    # Introspection / drain
    # ------------------------------------------------------------------
    def resident_lines(self) -> int:
        return sum(self._count)

    def dirty_lines(self) -> List[int]:
        """Addresses of dirty resident lines, in the object backend's
        drain order (first-fill order of sets, residency order within)."""
        addresses: List[int] = []
        ways = self.associativity
        n_sets = self.n_sets
        for set_index in self._set_order:
            base = set_index * ways
            for idx in range(base, base + self._count[set_index]):
                if self._dirty[idx]:
                    addresses.append(
                        (self._tags[idx] * n_sets + set_index) * LINE_BYTES
                    )
        return addresses

    # ------------------------------------------------------------------
    # Batched entry points (vectorized when numpy is present)
    # ------------------------------------------------------------------
    @staticmethod
    def _bool_vector(flags: Sequence[bool], n: int):
        """Bool sequence -> bool vector, via the raw-bytes fast path."""
        try:
            return np.frombuffer(bytes(flags), dtype=np.bool_)
        except (TypeError, ValueError):
            return np.fromiter(
                (bool(flag) for flag in flags), dtype=np.bool_, count=n
            )

    def _classify_vector(self, addrs):
        """Vector hit test against current state.

        Returns ``(hit, match, set_idx, base)`` where ``match`` is the
        (n, ways) per-way tag-match matrix.  Non-resident slots hold the
        -1 tag sentinel, so the raw equality test is the residency test
        — no per-way count mask, which keeps this at a handful of
        fixed-cost numpy ops per epoch.
        """
        lines = addrs // LINE_BYTES
        tags, set_idx = np.divmod(lines, self.n_sets)
        base = set_idx * self.associativity
        cand = self._np_tags_2d.take(set_idx, axis=0, mode="clip")
        match = cand == tags[:, None]
        if self._row_dtype is not None:
            hit = match.view(self._row_dtype).ravel() != 0
        else:
            hit = match.any(axis=1)
        return hit, match, set_idx, base

    def classify_batch(self, addresses: Sequence[int]) -> List[bool]:
        """Advisory hit/miss classification of a batch (read-only).

        One vectorized pass when numpy is present; no stats, clock or
        state are touched, so the classification is safe to use for
        steering (prefetch) while the real probes still run per event.
        """
        n = len(addresses)
        if not HAS_NUMPY or n < BATCH_MIN_ACCESSES:
            return [self.contains(a) for a in addresses]
        addrs = np.fromiter(addresses, dtype=np.int64, count=n)
        hit, _, _, _ = self._classify_vector(addrs)
        return hit.tolist()

    def access_batch(
        self,
        addresses: Sequence[int],
        writes: Sequence[bool],
        values: Optional[Sequence[Optional[int]]] = None,
    ) -> Tuple[List[bool], List[Optional[Eviction]]]:
        """Run a batch of accesses, bit-identical to the scalar loop.

        Hits never change residency, so any set whose batch slice is
        all-hits can be applied in one vectorized pass: ``last_use``
        takes each line's final stamp (stamps are pre-assigned — the
        clock advances once per access no matter the order), CLOCK
        reference bits set idempotently, MAC levels accumulate then
        saturate, dirty masks OR.  Every set containing at least one
        candidate miss is replayed through the scalar path in original
        stream order with the same pre-assigned stamps; sets are
        independent, so the interleaving cannot be observed.  Returns
        per-access ``(hits, evictions)`` aligned with the input.
        """
        n = len(addresses)
        scalar = (
            not HAS_NUMPY
            or n < BATCH_MIN_ACCESSES
            or (self._words is not None and values is not None)
        )
        if scalar:
            hits: List[bool] = []
            evictions: List[Optional[Eviction]] = []
            for i in range(n):
                value = values[i] if values is not None else None
                hit, evicted = self.access(addresses[i], writes[i], value)
                hits.append(hit)
                evictions.append(evicted)
            return hits, evictions

        clock0 = self._clock
        addrs = np.asarray(addresses, dtype=np.int64)
        hit, match, set_idx, base = self._classify_vector(addrs)
        stamps = np.arange(clock0 + 1, clock0 + n + 1, dtype=np.int64)
        out_evictions: List[Optional[Eviction]] = [None] * n
        hit_code = self._hit_code

        if hit.all():
            # All-hit epoch — the warm-tier common case, and the one the
            # per-access perf floor is measured on: one vectorized apply,
            # no replay, no per-access Python work.
            gidx = base + match.argmax(axis=1)
            np.maximum.at(self._np_last_use, gidx, stamps)
            if hit_code == HIT_CLOCK:
                self._np_policy[gidx] = 1
            elif hit_code == HIT_MAC:
                np.add.at(self._np_policy, gidx, 1)
                self._np_policy[gidx] = np.minimum(
                    self._np_policy[gidx], self._mac_top
                )
            is_write = self._bool_vector(writes, n)
            if is_write.any():
                waddrs = addrs[is_write]
                bits = self._bit_lut[
                    (waddrs % LINE_BYTES) // (LINE_BYTES // WORDS_PER_LINE)
                ]
                np.bitwise_or.at(self._np_dirty, gidx[is_write], bits)
            self.stats.hits += n
            self._clock = clock0 + n
            return [True] * n, out_evictions

        is_write = self._bool_vector(writes, n)
        miss_sets = np.unique(set_idx[~hit])
        replay = np.isin(set_idx, miss_sets)
        pure = ~replay
        out_hits: List[bool] = hit.tolist()

        if pure.any():
            gidx = (base + match.argmax(axis=1))[pure]
            np.maximum.at(self._np_last_use, gidx, stamps[pure])
            if hit_code == HIT_CLOCK:
                self._np_policy[gidx] = 1
            elif hit_code == HIT_MAC:
                # Accumulate per-duplicate then clamp: min(x0 + k, top)
                # equals k stepwise saturating increments.
                np.add.at(self._np_policy, gidx, 1)
                self._np_policy[gidx] = np.minimum(
                    self._np_policy[gidx], self._mac_top
                )
            pure_writes = pure & is_write
            if pure_writes.any():
                bits = (
                    np.uint8(1) << ((addrs % LINE_BYTES) // 8).astype(np.uint8)
                )
                widx = (base + match.argmax(axis=1))[pure_writes]
                np.bitwise_or.at(self._np_dirty, widx, bits[pure_writes])
            self.stats.hits += int(pure.sum())

        for i in np.nonzero(replay)[0]:
            i = int(i)
            replay_hit, evicted = self._access_stamped(
                addresses[i], writes[i], int(stamps[i])
            )
            out_hits[i] = replay_hit
            out_evictions[i] = evicted
        self._clock = clock0 + n
        return out_hits, out_evictions
