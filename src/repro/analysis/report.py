"""Report formatting: the rows/series each figure and table prints.

Benchmarks call these helpers so every experiment emits a uniformly
formatted table that can be compared side-by-side with the paper's
figures.  EXPERIMENTS.md records one captured output per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.sim.metrics import SimulationResult


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Monospace table with right-aligned numeric columns."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in materialised:
        cells = []
        for i, cell in enumerate(row):
            if i == 0:
                cells.append(cell.ljust(widths[i]))
            else:
                cells.append(cell.rjust(widths[i]))
        lines.append("  ".join(cells))
    return "\n".join(lines)


def percent(value: float, signed: bool = True) -> str:
    """0.156 -> '+15.6%'."""
    sign = "+" if signed and value >= 0 else ""
    return f"{sign}{value * 100:.1f}%"


def ratio(value: float) -> str:
    """1.17 -> '1.17x'."""
    return f"{value:.2f}x"


@dataclass
class FigureSeries:
    """One plotted series: label plus per-workload values."""

    label: str
    values: Dict[str, float]

    def mean(self) -> float:
        if not self.values:
            return 0.0
        return sum(self.values.values()) / len(self.values)


def figure_report(
    title: str,
    workloads: Sequence[str],
    series: Sequence[FigureSeries],
    value_format=lambda v: f"{v:.2f}",
    average_label: str = "Average",
) -> str:
    """Workloads-by-systems matrix with a trailing average row."""
    headers = ["workload"] + [s.label for s in series]
    rows: List[List[object]] = []
    for workload in workloads:
        rows.append(
            [workload]
            + [value_format(s.values.get(workload, float("nan"))) for s in series]
        )
    rows.append(
        [average_label] + [value_format(s.mean()) for s in series]
    )
    return format_table(headers, rows, title=title)


def summarize_result(result: SimulationResult) -> Dict[str, float]:
    """Flat metric dict for one run (handy in tests and notebooks)."""
    return {
        "ipc": result.ipc,
        "irlp_average": result.irlp_average,
        "irlp_max": result.irlp_max,
        "mean_read_latency_ns": result.mean_read_latency_ns,
        "write_throughput": result.write_throughput,
        "delayed_read_fraction": result.memory.delayed_read_fraction,
        "row_reads": float(result.memory.row_reads),
        "wow_member_writes": float(result.memory.wow_member_writes),
        "rollbacks": float(result.memory.rollbacks),
        "reads": float(result.memory.reads_completed),
        "writes": float(result.memory.writes_completed),
    }
