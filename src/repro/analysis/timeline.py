"""Chip-occupancy timeline rendering (Figure-5-style ASCII grids).

Controllers log chip reservations through
:meth:`repro.memory.rank.RankState.enable_logging`; this module turns the
logged :class:`~repro.memory.rank.OccupancyEvent` list into a
one-row-per-chip, one-column-per-time-slice text grid, the visual the
paper uses to explain RoW and WoW (Figure 5).

The same grid can be rendered from a *recorded trace* instead of a live
occupancy log: :func:`occupancy_from_trace` lifts the ``chip.reserve``
events of a :class:`repro.telemetry.TraceEvent` stream (in-memory, or
loaded back from a JSONL file) into occupancy events, and
:func:`render_trace_occupancy` goes straight from trace to grid.
"""

from __future__ import annotations

import html
import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.memory.rank import OccupancyEvent
from repro.sim.engine import ticks_to_ns
from repro.telemetry import EventType, TraceEvent

#: Mark precedence when several events cover the same cell (write work is
#: the most interesting, idle the least).
_PRECEDENCE = {"W": 3, "c": 2, "R": 1, ".": 0}


def event_mark(event: OccupancyEvent) -> str:
    """Grid mark for one event: W=data write, c=code update, R=read."""
    if event.label == "code-update":
        return "c"
    if event.kind == "write":
        return "W"
    return "R"


def render_occupancy(
    events: Iterable[OccupancyEvent],
    n_chips: int,
    title: str = "",
    tick_step: int = 250,
    chip_names: Optional[Sequence[str]] = None,
) -> str:
    """Render logged reservations as an ASCII chip-by-time grid.

    ``tick_step`` is the column width in engine ticks (default 25 ns).
    Events without a known start (``start < 0``) are skipped.
    """
    if tick_step < 1:
        raise ValueError("tick_step must be >= 1")
    usable = [e for e in events if e.start >= 0 and e.end > e.start]
    header: List[str] = []
    if title:
        header.append(title)
    if not usable:
        header.append("(no occupancy recorded)")
        return "\n".join(header)

    t0 = min(e.start for e in usable)
    t1 = max(e.end for e in usable)
    columns = max(1, (t1 - t0 + tick_step - 1) // tick_step)
    if chip_names is None:
        chip_names = _default_chip_names(n_chips)
    width = max(len(name) for name in chip_names)

    header.append(
        f"(one column = {ticks_to_ns(tick_step):.0f} ns; "
        "W=data write, c=ECC/PCC update, R=read, .=idle)"
    )
    lines = header
    for chip in range(n_chips):
        row = []
        for col in range(columns):
            window_start = t0 + col * tick_step
            window_end = window_start + tick_step
            mark = "."
            for event in usable:
                if event.chip != chip:
                    continue
                if event.start < window_end and event.end > window_start:
                    candidate = event_mark(event)
                    if _PRECEDENCE[candidate] > _PRECEDENCE[mark]:
                        mark = candidate
            row.append(mark)
        lines.append(f"{chip_names[chip].ljust(width)} |{''.join(row)}|")
    return "\n".join(lines)


def _default_chip_names(n_chips: int) -> List[str]:
    """chip 0..N-3, then ECC and PCC for a 10-chip PCMap rank."""
    if n_chips >= 10:
        names = [f"chip {c}" for c in range(n_chips - 2)]
        names += ["ECC", "PCC"]
        return names
    if n_chips == 9:
        return [f"chip {c}" for c in range(8)] + ["ECC"]
    return [f"chip {c}" for c in range(n_chips)]


def occupancy_from_trace(
    events: Iterable[TraceEvent],
    channel: Optional[int] = None,
    rank: Optional[int] = None,
) -> List[OccupancyEvent]:
    """Lift ``chip.reserve`` trace events into occupancy events.

    ``channel``/``rank`` filter to one resource domain (``None`` keeps
    all, which only makes sense for single-channel harness runs).  The
    returned list feeds :func:`render_occupancy` and
    :func:`occupancy_summary` unchanged, so a saved JSONL trace can
    regenerate the Figure-5 grid long after the run.
    """
    lifted: List[OccupancyEvent] = []
    for event in events:
        if event.type is not EventType.CHIP_RESERVE:
            continue
        if channel is not None and event.channel != channel:
            continue
        if rank is not None and event.rank != rank:
            continue
        lifted.append(OccupancyEvent(
            kind=event.kind,
            chip=event.chip,
            bank=event.bank,
            start=event.start,
            end=event.end,
            label=event.reason,
        ))
    return lifted


def render_trace_occupancy(
    events: Iterable[TraceEvent],
    n_chips: int,
    title: str = "",
    tick_step: int = 250,
    chip_names: Optional[Sequence[str]] = None,
    channel: Optional[int] = None,
    rank: Optional[int] = None,
) -> str:
    """Render the occupancy grid directly from a recorded trace."""
    return render_occupancy(
        occupancy_from_trace(events, channel, rank),
        n_chips,
        title=title,
        tick_step=tick_step,
        chip_names=chip_names,
    )


def occupancy_summary(events: Iterable[OccupancyEvent]) -> dict:
    """Aggregate busy ticks per chip and per mark kind (tests, reports)."""
    per_chip: dict = {}
    per_kind = {"W": 0, "c": 0, "R": 0}
    for event in events:
        if event.start < 0 or event.end <= event.start:
            continue
        duration = event.end - event.start
        per_chip[event.chip] = per_chip.get(event.chip, 0) + duration
        per_kind[event_mark(event)] += duration
    return {"per_chip": per_chip, "per_kind": per_kind}


# ----------------------------------------------------------------------
# Inline-SVG chart primitives (self-contained HTML reports)
# ----------------------------------------------------------------------
# Rendering follows the repo's chart conventions: 2px line marks,
# top-rounded bars anchored to the baseline with a 2px surface gap
# between adjacent bars, hairline grid, muted axis text, and native
# ``<title>`` hover tooltips on every mark (hit targets wider than the
# mark itself).  Colors arrive as CSS custom-property references
# (``var(--series-1)``) so the embedding page controls light/dark theming.

@dataclass
class LineSeries:
    """One line on a time-series panel: label, color and (x, y) points."""

    label: str
    color: str
    points: List[Tuple[float, float]]


@dataclass
class BarSeries:
    """One bar per group, for grouped-bar charts."""

    label: str
    color: str
    values: List[float]


def _esc(text: object) -> str:
    return html.escape(str(text), quote=True)


def _nice_upper(value: float) -> float:
    """Smallest 1/2/2.5/5 x 10^k at or above ``value`` (axis headroom)."""
    if value <= 0:
        return 1.0
    exponent = math.floor(math.log10(value))
    base = 10.0 ** exponent
    for mult in (1.0, 2.0, 2.5, 5.0, 10.0):
        if value <= mult * base + 1e-12:
            return mult * base
    return 10.0 * base


def _fmt_tick(value: float) -> str:
    if value >= 1000:
        return f"{value:,.0f}"
    if value == int(value):
        return str(int(value))
    return f"{value:g}"


def _grid_and_axes(
    x0: float, y0: float, x1: float, y1: float, upper: float, y_label: str,
    divisions: int = 4,
) -> List[str]:
    """Horizontal gridlines + y tick labels + baseline, as SVG fragments."""
    parts: List[str] = []
    for i in range(divisions + 1):
        value = upper * i / divisions
        y = y1 - (y1 - y0) * i / divisions
        if i > 0:
            parts.append(
                f'<line class="grid" x1="{x0}" y1="{y:.1f}" '
                f'x2="{x1}" y2="{y:.1f}"/>'
            )
        parts.append(
            f'<text class="tick" x="{x0 - 6}" y="{y + 3.5:.1f}" '
            f'text-anchor="end">{_esc(_fmt_tick(value))}</text>'
        )
    parts.append(
        f'<line class="axis" x1="{x0}" y1="{y1}" x2="{x1}" y2="{y1}"/>'
    )
    if y_label:
        parts.append(
            f'<text class="tick" x="{x0 - 6}" y="{y0 - 6}" '
            f'text-anchor="end">{_esc(y_label)}</text>'
        )
    return parts


def svg_line_chart(
    series: Sequence[LineSeries],
    width: int = 640,
    height: int = 220,
    y_label: str = "",
    x_label: str = "",
    x_ticks: int = 5,
) -> str:
    """Multi-series line chart; each series brings its own x values.

    Every vertex carries an oversized invisible hover target with a
    native tooltip, so the panel is inspectable without any scripting.
    """
    pad_l, pad_r, pad_t, pad_b = 56, 12, 16, 34
    x0, y0, x1, y1 = pad_l, pad_t, width - pad_r, height - pad_b
    xs = [x for s in series for x, _ in s.points]
    ys = [y for s in series for _, y in s.points]
    if not xs:
        return (
            f'<svg class="chart" viewBox="0 0 {width} {height}" '
            f'role="img"><text class="tick" x="{width / 2}" '
            f'y="{height / 2}" text-anchor="middle">(no samples)</text></svg>'
        )
    x_min, x_max = min(xs), max(xs)
    x_span = (x_max - x_min) or 1.0
    upper = _nice_upper(max(ys))

    def sx(x: float) -> float:
        return x0 + (x1 - x0) * (x - x_min) / x_span

    def sy(y: float) -> float:
        return y1 - (y1 - y0) * (y / upper)

    parts = [
        f'<svg class="chart" viewBox="0 0 {width} {height}" role="img">',
    ]
    parts += _grid_and_axes(x0, y0, x1, y1, upper, y_label)
    for i in range(x_ticks + 1):
        x_val = x_min + x_span * i / x_ticks
        parts.append(
            f'<text class="tick" x="{sx(x_val):.1f}" y="{y1 + 16}" '
            f'text-anchor="middle">{_esc(_fmt_tick(x_val))}</text>'
        )
    if x_label:
        parts.append(
            f'<text class="tick" x="{(x0 + x1) / 2:.1f}" y="{height - 4}" '
            f'text-anchor="middle">{_esc(x_label)}</text>'
        )
    for s in series:
        coords = " ".join(
            f"{sx(x):.1f},{sy(y):.1f}" for x, y in s.points
        )
        parts.append(
            f'<polyline fill="none" stroke="{s.color}" stroke-width="2" '
            f'stroke-linejoin="round" stroke-linecap="round" '
            f'points="{coords}"/>'
        )
    # Hover layer on top: invisible targets, native tooltips.
    for s in series:
        for x, y in s.points:
            parts.append(
                f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="7" '
                f'fill="transparent"><title>'
                f'{_esc(s.label)} @ {_esc(_fmt_tick(x))}: '
                f'{_esc(_fmt_tick(y))}</title></circle>'
            )
    parts.append("</svg>")
    return "".join(parts)


def _bar_path(x: float, y: float, w: float, h: float, r: float) -> str:
    """Bar with rounded *data end* only, anchored flat on the baseline."""
    r = min(r, w / 2, h)
    return (
        f"M{x:.1f},{y + h:.1f} v{-(h - r):.1f} "
        f"q0,{-r:.1f} {r:.1f},{-r:.1f} h{w - 2 * r:.1f} "
        f"q{r:.1f},0 {r:.1f},{r:.1f} v{h - r:.1f} z"
    )


def svg_grouped_bars(
    groups: Sequence[str],
    series: Sequence[BarSeries],
    width: int = 640,
    height: int = 240,
    y_label: str = "",
    label_series: Optional[str] = None,
) -> str:
    """Grouped vertical bars with a 2px surface gap between bars.

    ``label_series`` names at most one series to direct-label (value text
    above each of its bars); everything else stays tooltip-only.
    """
    pad_l, pad_r, pad_t, pad_b = 56, 12, 20, 40
    x0, y0, x1, y1 = pad_l, pad_t, width - pad_r, height - pad_b
    upper = _nice_upper(max(
        (v for s in series for v in s.values), default=1.0
    ))
    n_groups, n_series = len(groups), len(series)
    group_w = (x1 - x0) / max(1, n_groups)
    gap = 2.0
    bar_w = max(3.0, (group_w * 0.72 - gap * (n_series - 1)) / max(1, n_series))

    def sy(value: float) -> float:
        return y1 - (y1 - y0) * (value / upper)

    parts = [
        f'<svg class="chart" viewBox="0 0 {width} {height}" role="img">',
    ]
    parts += _grid_and_axes(x0, y0, x1, y1, upper, y_label)
    for g, group in enumerate(groups):
        cluster_w = bar_w * n_series + gap * (n_series - 1)
        left = x0 + group_w * g + (group_w - cluster_w) / 2
        for i, s in enumerate(series):
            value = s.values[g]
            bx = left + i * (bar_w + gap)
            by = sy(value)
            bar_h = y1 - by
            if bar_h > 0.5:
                parts.append(
                    f'<path d="{_bar_path(bx, by, bar_w, bar_h, 4)}" '
                    f'fill="{s.color}"/>'
                )
            # Hover target spans the full column height.
            parts.append(
                f'<rect x="{bx - 1:.1f}" y="{y0}" '
                f'width="{bar_w + 2:.1f}" height="{y1 - y0}" '
                f'fill="transparent"><title>'
                f'{_esc(group)} · {_esc(s.label)}: '
                f'{_esc(_fmt_tick(value))}</title></rect>'
            )
            if label_series is not None and s.label == label_series:
                parts.append(
                    f'<text class="direct" x="{bx + bar_w / 2:.1f}" '
                    f'y="{by - 4:.1f}" text-anchor="middle">'
                    f'{_esc(_fmt_tick(value))}</text>'
                )
        parts.append(
            f'<text class="tick" x="{x0 + group_w * (g + 0.5):.1f}" '
            f'y="{y1 + 16}" text-anchor="middle">{_esc(group)}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)
