"""Chip-occupancy timeline rendering (Figure-5-style ASCII grids).

Controllers log chip reservations through
:meth:`repro.memory.rank.RankState.enable_logging`; this module turns the
logged :class:`~repro.memory.rank.OccupancyEvent` list into a
one-row-per-chip, one-column-per-time-slice text grid, the visual the
paper uses to explain RoW and WoW (Figure 5).

The same grid can be rendered from a *recorded trace* instead of a live
occupancy log: :func:`occupancy_from_trace` lifts the ``chip.reserve``
events of a :class:`repro.telemetry.TraceEvent` stream (in-memory, or
loaded back from a JSONL file) into occupancy events, and
:func:`render_trace_occupancy` goes straight from trace to grid.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.memory.rank import OccupancyEvent
from repro.sim.engine import ticks_to_ns
from repro.telemetry import EventType, TraceEvent

#: Mark precedence when several events cover the same cell (write work is
#: the most interesting, idle the least).
_PRECEDENCE = {"W": 3, "c": 2, "R": 1, ".": 0}


def event_mark(event: OccupancyEvent) -> str:
    """Grid mark for one event: W=data write, c=code update, R=read."""
    if event.label == "code-update":
        return "c"
    if event.kind == "write":
        return "W"
    return "R"


def render_occupancy(
    events: Iterable[OccupancyEvent],
    n_chips: int,
    title: str = "",
    tick_step: int = 250,
    chip_names: Optional[Sequence[str]] = None,
) -> str:
    """Render logged reservations as an ASCII chip-by-time grid.

    ``tick_step`` is the column width in engine ticks (default 25 ns).
    Events without a known start (``start < 0``) are skipped.
    """
    if tick_step < 1:
        raise ValueError("tick_step must be >= 1")
    usable = [e for e in events if e.start >= 0 and e.end > e.start]
    header: List[str] = []
    if title:
        header.append(title)
    if not usable:
        header.append("(no occupancy recorded)")
        return "\n".join(header)

    t0 = min(e.start for e in usable)
    t1 = max(e.end for e in usable)
    columns = max(1, (t1 - t0 + tick_step - 1) // tick_step)
    if chip_names is None:
        chip_names = _default_chip_names(n_chips)
    width = max(len(name) for name in chip_names)

    header.append(
        f"(one column = {ticks_to_ns(tick_step):.0f} ns; "
        "W=data write, c=ECC/PCC update, R=read, .=idle)"
    )
    lines = header
    for chip in range(n_chips):
        row = []
        for col in range(columns):
            window_start = t0 + col * tick_step
            window_end = window_start + tick_step
            mark = "."
            for event in usable:
                if event.chip != chip:
                    continue
                if event.start < window_end and event.end > window_start:
                    candidate = event_mark(event)
                    if _PRECEDENCE[candidate] > _PRECEDENCE[mark]:
                        mark = candidate
            row.append(mark)
        lines.append(f"{chip_names[chip].ljust(width)} |{''.join(row)}|")
    return "\n".join(lines)


def _default_chip_names(n_chips: int) -> List[str]:
    """chip 0..N-3, then ECC and PCC for a 10-chip PCMap rank."""
    if n_chips >= 10:
        names = [f"chip {c}" for c in range(n_chips - 2)]
        names += ["ECC", "PCC"]
        return names
    if n_chips == 9:
        return [f"chip {c}" for c in range(8)] + ["ECC"]
    return [f"chip {c}" for c in range(n_chips)]


def occupancy_from_trace(
    events: Iterable[TraceEvent],
    channel: Optional[int] = None,
    rank: Optional[int] = None,
) -> List[OccupancyEvent]:
    """Lift ``chip.reserve`` trace events into occupancy events.

    ``channel``/``rank`` filter to one resource domain (``None`` keeps
    all, which only makes sense for single-channel harness runs).  The
    returned list feeds :func:`render_occupancy` and
    :func:`occupancy_summary` unchanged, so a saved JSONL trace can
    regenerate the Figure-5 grid long after the run.
    """
    lifted: List[OccupancyEvent] = []
    for event in events:
        if event.type is not EventType.CHIP_RESERVE:
            continue
        if channel is not None and event.channel != channel:
            continue
        if rank is not None and event.rank != rank:
            continue
        lifted.append(OccupancyEvent(
            kind=event.kind,
            chip=event.chip,
            bank=event.bank,
            start=event.start,
            end=event.end,
            label=event.reason,
        ))
    return lifted


def render_trace_occupancy(
    events: Iterable[TraceEvent],
    n_chips: int,
    title: str = "",
    tick_step: int = 250,
    chip_names: Optional[Sequence[str]] = None,
    channel: Optional[int] = None,
    rank: Optional[int] = None,
) -> str:
    """Render the occupancy grid directly from a recorded trace."""
    return render_occupancy(
        occupancy_from_trace(events, channel, rank),
        n_chips,
        title=title,
        tick_step=tick_step,
        chip_names=chip_names,
    )


def occupancy_summary(events: Iterable[OccupancyEvent]) -> dict:
    """Aggregate busy ticks per chip and per mark kind (tests, reports)."""
    per_chip: dict = {}
    per_kind = {"W": 0, "c": 0, "R": 0}
    for event in events:
        if event.start < 0 or event.end <= event.start:
            continue
        duration = event.end - event.start
        per_chip[event.chip] = per_chip.get(event.chip, 0) + duration
        per_kind[event_mark(event)] += duration
    return {"per_chip": per_chip, "per_kind": per_kind}
