"""Cross-run regression sentinel (``repro regress``).

Pins a *metrics fingerprint* — a curated set of end-of-run metrics from
one deterministic reference simulation (the perf suite's
rwow-rde/canneal run) — into ``benchmarks/results/BENCH_perf.json`` and
diffs fresh runs against it with per-metric tolerance bands.  Counters
and engine fingerprints are integer-deterministic for a given (seed,
budget), so their band is exact; float metrics get a hair of relative
tolerance for arithmetic-order differences.

The fingerprint run samples at the default cadence with metrics
collection on, so it simultaneously pins the acceptance guarantee that
enabled sampling leaves ``events_dispatched``/``sim_ticks`` untouched.

``compare_fingerprints`` returns breach strings (empty = pass);
``selftest`` plants a perturbed baseline and verifies the sentinel
actually fires — a watchdog that cannot bark is worse than none.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.sim.metrics import SimulationResult
from repro.telemetry.timeseries import DEFAULT_CADENCE_TICKS

#: The reference configuration, matching the perf suite's end_to_end
#: benchmark (full budget) so the pinned engine fingerprints are the
#: same numbers BENCH_perf.json already tracks.
FINGERPRINT_SEED = 7
FULL_TARGET_REQUESTS = 3000
SMOKE_TARGET_REQUESTS = 600

#: Metrics lifted from the registry dump into the fingerprint.  Integer
#: counters/gauges compare exactly; float entries by relative band.
_REGISTRY_METRICS = (
    "engine.events_dispatched",
    "engine.sim_ticks",
    "requests.read.enqueued",
    "requests.write.enqueued",
    "reads.completed",
    "reads.forwarded",
    "reads.delayed_by_write",
    "writes.completed",
    "rollbacks",
    "verifications",
    "wow.groups",
    "row.reads",
    "drain.entries",
)

#: Float tolerance (relative) for non-integer fingerprint metrics.
FLOAT_REL_TOL = 1e-6


#: Front-end summary counters pinned by the frontend fingerprint leg
#: (all integer-deterministic for a given seed/budget).
_FRONTEND_SUMMARY_KEYS = (
    "reads",
    "writes",
    "read_hits",
    "read_misses",
    "write_hits",
    "write_misses",
    "coalesced",
    "fills",
    "write_backs",
    "fill_rollbacks",
)


def fingerprint_params(
    smoke: bool = False,
    seed: int = FINGERPRINT_SEED,
    front_end=None,
):
    """Observability-enabled params of the reference run."""
    from repro.sim.simulator import SimulationParams

    kwargs = {}
    if front_end is not None:
        kwargs["front_end"] = front_end
    return SimulationParams(
        target_requests=(
            SMOKE_TARGET_REQUESTS if smoke else FULL_TARGET_REQUESTS
        ),
        seed=seed,
        sample_every_ticks=DEFAULT_CADENCE_TICKS,
        collect_metrics=True,
        **kwargs,
    )


def fingerprint_from_result(result: SimulationResult, smoke: bool) -> dict:
    """Extract the pinned metric set from a collected reference run."""
    if result.metrics is None:
        raise ValueError("fingerprint needs a run with collect_metrics=True")
    metrics: Dict[str, Union[int, float]] = {}
    for name in _REGISTRY_METRICS:
        entry = result.metrics.get(name)
        if entry is not None:
            metrics[name] = entry["value"]
    latency = result.metrics.get("read.latency_ns")
    if latency is not None:
        for key in ("count", "p50", "p95", "p99", "min", "max"):
            metrics[f"read.latency_ns.{key}"] = latency[key]
    metrics["irlp_average"] = result.irlp_average
    metrics["delayed_read_fraction"] = result.memory.delayed_read_fraction
    if result.frontend is not None:
        for key in _FRONTEND_SUMMARY_KEYS:
            if key in result.frontend:
                metrics[f"frontend.{key}"] = result.frontend[key]
        metrics["frontend.hit_rate"] = result.frontend["hit_rate"]
    return {
        "config": {
            "system": result.system_name,
            "workload": result.workload_name,
            "target_requests": (
                SMOKE_TARGET_REQUESTS if smoke else FULL_TARGET_REQUESTS
            ),
            "seed": result.seed,
            "sample_every_ticks": DEFAULT_CADENCE_TICKS,
            "front_end": (
                result.frontend["kind"] if result.frontend else "none"
            ),
        },
        "metrics": metrics,
    }


def collect_fingerprint(
    smoke: bool = False, seed: int = FINGERPRINT_SEED
) -> dict:
    """Run the reference simulation and fingerprint it."""
    from repro.core.systems import make_rwow_rde
    from repro.sim.simulator import simulate

    result = simulate(
        make_rwow_rde(), "canneal", fingerprint_params(smoke, seed)
    )
    return fingerprint_from_result(result, smoke)


def collect_frontend_fingerprint(
    smoke: bool = False, seed: int = FINGERPRINT_SEED
) -> dict:
    """Fingerprint of the reference run with the timed DRAM tier in front.

    Same system/workload/budget as :func:`collect_fingerprint` but with
    ``front_end=dram`` (array-backed at paper defaults), so the pinned
    metrics additionally carry the tier's hit/miss/fill/write-back
    scoreboard.  This is the leg that holds the array tier — and the
    batched epoch classification riding the on_epoch hook —
    behaviourally frozen across revisions.
    """
    from repro.core.systems import make_front_end, make_rwow_rde
    from repro.sim.simulator import simulate

    result = simulate(
        make_rwow_rde(),
        "canneal",
        fingerprint_params(smoke, seed, front_end=make_front_end("dram")),
    )
    return fingerprint_from_result(result, smoke)


def collect_fingerprints(seed: int = FINGERPRINT_SEED) -> dict:
    """Every pinned leg, keyed by budget — what BENCH_perf.json carries.

    ``smoke``/``full`` are the historical direct-path legs;
    ``frontend_smoke``/``frontend_full`` run the same reference
    configuration through the timed DRAM tier.
    """
    return {
        "smoke": collect_fingerprint(smoke=True, seed=seed),
        "full": collect_fingerprint(smoke=False, seed=seed),
        "frontend_smoke": collect_frontend_fingerprint(smoke=True, seed=seed),
        "frontend_full": collect_frontend_fingerprint(smoke=False, seed=seed),
    }


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
def compare_fingerprints(
    baseline: dict,
    current: dict,
    float_rel_tol: float = FLOAT_REL_TOL,
) -> List[str]:
    """Diff two fingerprints; returns breach messages (empty = pass).

    Integer-valued baseline metrics must match exactly; float metrics
    get ``float_rel_tol`` of relative headroom.  Metrics missing from
    either side are breaches — a fingerprint that silently shrinks
    stops guarding anything.
    """
    breaches: List[str] = []
    if baseline.get("config") != current.get("config"):
        breaches.append(
            f"config mismatch: baseline {baseline.get('config')!r} "
            f"vs current {current.get('config')!r}"
        )
    base_metrics = baseline.get("metrics", {})
    cur_metrics = current.get("metrics", {})
    for name in sorted(set(base_metrics) | set(cur_metrics)):
        if name not in base_metrics:
            breaches.append(f"{name}: missing from baseline (new metric?)")
            continue
        if name not in cur_metrics:
            breaches.append(f"{name}: missing from current run")
            continue
        expected, actual = base_metrics[name], cur_metrics[name]
        if isinstance(expected, int) and isinstance(actual, int):
            if actual != expected:
                breaches.append(
                    f"{name}: {actual} != pinned {expected} (exact band)"
                )
        else:
            band = abs(float(expected)) * float_rel_tol
            if abs(float(actual) - float(expected)) > band:
                breaches.append(
                    f"{name}: {actual!r} outside ±{float_rel_tol:g} rel "
                    f"of pinned {expected!r}"
                )
    return breaches


def format_comparison(
    baseline: dict, current: dict, breaches: List[str]
) -> str:
    """Human-readable sentinel report."""
    from repro.analysis.report import format_table

    rows = []
    base_metrics = baseline.get("metrics", {})
    cur_metrics = current.get("metrics", {})
    for name in sorted(set(base_metrics) | set(cur_metrics)):
        expected = base_metrics.get(name, "—")
        actual = cur_metrics.get(name, "—")
        status = "ok"
        if any(breach.startswith(f"{name}:") for breach in breaches):
            status = "BREACH"
        rows.append([name, expected, actual, status])
    config = baseline.get("config", {})
    title = (
        f"regression sentinel: {config.get('system')}/"
        f"{config.get('workload')} seed {config.get('seed')} "
        f"({len(breaches)} breach(es))"
    )
    return format_table(["metric", "pinned", "current", "status"], rows, title)


# ----------------------------------------------------------------------
# Baseline file plumbing
# ----------------------------------------------------------------------
def load_baseline(
    path: Union[str, Path], smoke: bool, frontend: bool = False
) -> dict:
    """The pinned fingerprint for one budget/leg from BENCH_perf.json."""
    with open(path) as handle:
        payload = json.load(handle)
    section = payload.get("metrics_fingerprint")
    if not section:
        raise ValueError(
            f"{path} has no metrics_fingerprint section; run "
            f"`repro regress --update` (or regenerate the perf suite)"
        )
    key = ("frontend_" if frontend else "") + ("smoke" if smoke else "full")
    if key not in section:
        raise ValueError(f"{path} metrics_fingerprint lacks {key!r} budget")
    return section[key]


def update_baseline(path: Union[str, Path], seed: int = FINGERPRINT_SEED) -> dict:
    """Re-pin every budget/leg fingerprint in BENCH_perf.json (atomic)."""
    from repro.sim.results_io import atomic_write_text

    path = Path(path)
    payload = json.loads(path.read_text()) if path.exists() else {}
    fingerprints = collect_fingerprints(seed)
    payload["metrics_fingerprint"] = fingerprints
    atomic_write_text(path, json.dumps(payload, indent=1, sort_keys=False))
    return fingerprints


# ----------------------------------------------------------------------
# Selftest: the sentinel must fire on a planted regression
# ----------------------------------------------------------------------
def selftest(current: Optional[dict] = None) -> List[str]:
    """Verify breach detection end to end; returns failures (empty = ok).

    Plants a regression by perturbing a copy of the current fingerprint
    (one counter off by one, one float nudged past the band) and checks
    the comparison flags exactly those — and nothing on the clean pair.
    """
    failures: List[str] = []
    if current is None:
        current = collect_fingerprint(smoke=True)
    clean = compare_fingerprints(current, current)
    if clean:
        failures.append(f"clean self-compare reported breaches: {clean}")

    planted = json.loads(json.dumps(current))
    planted["metrics"]["reads.completed"] += 1
    planted["metrics"]["irlp_average"] *= 1.01
    breaches = compare_fingerprints(planted, current)
    if not any(b.startswith("reads.completed:") for b in breaches):
        failures.append("planted counter regression was not detected")
    if not any(b.startswith("irlp_average:") for b in breaches):
        failures.append("planted float regression was not detected")

    missing = json.loads(json.dumps(current))
    del missing["metrics"]["rollbacks"]
    if not compare_fingerprints(missing, current):
        failures.append("missing-metric drift was not detected")
    return failures
