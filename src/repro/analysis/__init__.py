"""Result analysis and report formatting for the benchmark harness."""

from repro.analysis.htmlreport import (
    render_report,
    report_params,
    write_report,
)
from repro.analysis.timeline import (
    BarSeries,
    LineSeries,
    occupancy_from_trace,
    occupancy_summary,
    render_occupancy,
    render_trace_occupancy,
    svg_grouped_bars,
    svg_line_chart,
)
from repro.analysis.report import (
    FigureSeries,
    figure_report,
    format_table,
    percent,
    ratio,
    summarize_result,
)

__all__ = [
    "render_report",
    "report_params",
    "write_report",
    "BarSeries",
    "LineSeries",
    "svg_grouped_bars",
    "svg_line_chart",
    "occupancy_from_trace",
    "occupancy_summary",
    "render_occupancy",
    "render_trace_occupancy",
    "FigureSeries",
    "figure_report",
    "format_table",
    "percent",
    "ratio",
    "summarize_result",
]
