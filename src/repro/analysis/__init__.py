"""Result analysis and report formatting for the benchmark harness."""

from repro.analysis.timeline import (
    occupancy_from_trace,
    occupancy_summary,
    render_occupancy,
    render_trace_occupancy,
)
from repro.analysis.report import (
    FigureSeries,
    figure_report,
    format_table,
    percent,
    ratio,
    summarize_result,
)

__all__ = [
    "occupancy_from_trace",
    "occupancy_summary",
    "render_occupancy",
    "render_trace_occupancy",
    "FigureSeries",
    "figure_report",
    "format_table",
    "percent",
    "ratio",
    "summarize_result",
]
