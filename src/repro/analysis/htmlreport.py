"""Self-contained HTML run reports (``repro report``).

One HTML file, zero external dependencies — styles inline, charts inline
SVG (:mod:`repro.analysis.timeline` primitives), data tables embedded
next to every chart.  The report covers a set of systems run on one
workload with observability enabled (``collect_metrics=True`` plus a
sampling cadence): per-system p50/p95/p99 read latency, time-series
panels (outstanding reads, queue depths, write-engine occupancy, recent
IRLP), fault/mis-verify counters and a side-by-side summary table.

Color discipline (validated palette, see docs/TELEMETRY.md): systems keep
a fixed categorical slot regardless of which subset is plotted, latency
percentiles use an ordinal single-hue ramp, and every chart carries a
legend plus an embedded table view.  Light and dark render from the same
hues re-stepped per surface, switched by ``prefers-color-scheme``.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.timeline import (
    BarSeries,
    LineSeries,
    svg_grouped_bars,
    svg_line_chart,
)
from repro.core.systems import COMPARATOR_SYSTEM_NAMES, SYSTEM_NAMES
from repro.sim.engine import TICKS_PER_NS
from repro.sim.metrics import SimulationResult
from repro.sim.results_io import atomic_write_text, run_manifest
from repro.telemetry.timeseries import DEFAULT_CADENCE_TICKS

#: Validated categorical palette (light / dark are the same hues stepped
#: per surface; slot order is the CVD-safety mechanism — never re-sort).
LIGHT_SERIES = (
    "#2a78d6", "#eb6834", "#1baf7a", "#eda100",
    "#e87ba4", "#008300", "#4a3aa7", "#e34948",
)
DARK_SERIES = (
    "#3987e5", "#d95926", "#199e70", "#c98500",
    "#d55181", "#008300", "#9085e9", "#e66767",
)
#: Ordinal single-hue (blue) ramp for p50 < p95 < p99 — magnitude of one
#: measure, not three identities.
LIGHT_ORDINAL = ("#86b6ef", "#2a78d6", "#104281")
DARK_ORDINAL = ("#6da7ec", "#2a78d6", "#184f95")

#: Fixed color-slot order: color follows the system, not its position in
#: whatever subset a report happens to plot.
_SLOT_ORDER: List[str] = SYSTEM_NAMES + COMPARATOR_SYSTEM_NAMES

#: Counters surfaced in the fault/verification section (when present).
_FAULT_COUNTERS = (
    "rollbacks",
    "rollbacks.corrupted",
    "verifications",
    "faults.injected.total",
    "faults.outcome.corrected",
    "faults.outcome.silent",
)


def system_slot(name: str) -> int:
    """Stable categorical slot for a system name."""
    if name in _SLOT_ORDER:
        return _SLOT_ORDER.index(name)
    # Unknown (ad-hoc) systems take slots after the known ones, by name.
    return len(_SLOT_ORDER)


def _esc(text: object) -> str:
    return html.escape(str(text), quote=True)


def _series_var(slot: int) -> str:
    return f"var(--series-{slot % len(LIGHT_SERIES) + 1})"


def _ticks_to_us(tick: float) -> float:
    return tick / (TICKS_PER_NS * 1000.0)


def _percentiles(result: SimulationResult) -> Dict[str, float]:
    metrics = result.metrics or {}
    latency = metrics.get("read.latency_ns")
    if latency is None:
        raise ValueError(
            f"result {result.system_name!r} carries no read.latency_ns "
            f"histogram — run with collect_metrics=True"
        )
    return {q: latency[q] for q in ("p50", "p95", "p99")}


def _column(result: SimulationResult, name: str) -> List[float]:
    assert result.timeseries is not None
    return result.timeseries["columns"].get(name, [])


def _summed_columns(result: SimulationResult, prefix: str, suffix: str) -> List[float]:
    assert result.timeseries is not None
    columns = [
        values for name, values in result.timeseries["columns"].items()
        if name.startswith(prefix) and name.endswith(suffix)
    ]
    if not columns:
        return []
    return [sum(sample) for sample in zip(*columns)]


def _legend(entries: Sequence[tuple]) -> str:
    items = "".join(
        f'<span class="key"><span class="swatch" '
        f'style="background:{color}"></span>{_esc(label)}</span>'
        for label, color in entries
    )
    return f'<div class="legend">{items}</div>'


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(
            f"<td>{_esc(cell)}</td>" for cell in row
        ) + "</tr>"
        for row in rows
    )
    return (
        f"<table><thead><tr>{head}</tr></thead>"
        f"<tbody>{body}</tbody></table>"
    )


def _details_table(
    summary: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    return (
        f"<details><summary>{_esc(summary)}</summary>"
        f"{_table(headers, rows)}</details>"
    )


def _fmt(value: float, digits: int = 2) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.{digits}f}"
    return f"{int(value):,}"


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------
def _latency_section(results: Sequence[SimulationResult]) -> str:
    systems = [r.system_name for r in results]
    pct = [_percentiles(r) for r in results]
    series = [
        BarSeries(
            label=q,
            color=f"var(--ordinal-{i + 1})",
            values=[p[q] for p in pct],
        )
        for i, q in enumerate(("p50", "p95", "p99"))
    ]
    chart = svg_grouped_bars(
        systems, series, y_label="read latency (ns)", label_series="p99",
    )
    legend = _legend([
        (q, f"var(--ordinal-{i + 1})")
        for i, q in enumerate(("p50", "p95", "p99"))
    ])
    rows = [
        [s, _fmt(p["p50"]), _fmt(p["p95"]), _fmt(p["p99"]),
         _fmt(r.memory.read_latency_max / TICKS_PER_NS)]
        for s, p, r in zip(systems, pct, results)
    ]
    table = _details_table(
        "Data table — read latency percentiles (ns)",
        ["system", "p50", "p95", "p99", "max"],
        rows,
    )
    return (
        "<section><h2>Read latency percentiles</h2>"
        "<p>Distributional view of effective read latency per system "
        "(bucketed histogram; p-values clamp to the exact observed "
        "min/max).</p>"
        f"{legend}{chart}{table}</section>"
    )


def _timeseries_panel(
    title: str,
    description: str,
    results: Sequence[SimulationResult],
    extract,
    y_label: str,
) -> str:
    series: List[LineSeries] = []
    table_rows: List[List[object]] = []
    for result in results:
        values = extract(result)
        if not values:
            continue
        ticks = result.timeseries["ticks"]
        points = [
            (_ticks_to_us(t), v) for t, v in zip(ticks, values)
        ]
        series.append(LineSeries(
            label=result.system_name,
            color=_series_var(system_slot(result.system_name)),
            points=points,
        ))
        table_rows.append([
            result.system_name,
            len(values),
            _fmt(max(values)),
            _fmt(sum(values) / len(values)),
        ])
    chart = svg_line_chart(series, y_label=y_label, x_label="simulated time (µs)")
    table = _details_table(
        f"Data table — {title.lower()} (per-system summary)",
        ["system", "samples", "max", "mean"],
        table_rows,
    )
    return (
        f"<div class='panel'><h3>{_esc(title)}</h3>"
        f"<p>{_esc(description)}</p>{chart}{table}</div>"
    )


def _timeseries_section(results: Sequence[SimulationResult]) -> str:
    sampled = [r for r in results if r.timeseries is not None]
    if not sampled:
        return (
            "<section><h2>Time series</h2><p>(no sampled runs — enable "
            "a sampling cadence to populate this section)</p></section>"
        )
    legend = _legend([
        (r.system_name, _series_var(system_slot(r.system_name)))
        for r in sampled
    ])
    panels = [
        _timeseries_panel(
            "Outstanding reads",
            "Reads enqueued but not yet completed, sampled on the cadence.",
            sampled,
            lambda r: _column(r, "reads.outstanding"),
            "outstanding reads",
        ),
        _timeseries_panel(
            "Write queue depth",
            "Queued write-backs summed across all four channels; drain "
            "episodes show as sawtooth ramps.",
            sampled,
            lambda r: _summed_columns(r, "ch", ".queue.write.depth"),
            "queued writes",
        ),
        _timeseries_panel(
            "Write-engine occupancy",
            "In-flight fine-grained writes across channels (coarse "
            "systems report 0).",
            sampled,
            lambda r: _column(r, "write_engine.inflight"),
            "in-flight writes",
        ),
        _timeseries_panel(
            "Recent IRLP",
            "Mean intra-rank-level parallelism over each channel's most "
            "recent write windows.",
            sampled,
            lambda r: _column(r, "irlp.recent"),
            "IRLP",
        ),
    ]
    return (
        "<section><h2>Time series</h2>"
        f"{legend}{''.join(panels)}</section>"
    )


def _counters_section(results: Sequence[SimulationResult]) -> str:
    systems = [r.system_name for r in results]
    rows = []
    for name in _FAULT_COUNTERS:
        values = [
            (r.metrics or {}).get(name, {}).get("value", 0) for r in results
        ]
        if any(values):
            rows.append([name] + [_fmt(v) for v in values])
    if not rows:
        rows = [["(no fault/verification activity recorded)"] + [""] * len(systems)]
    return (
        "<section><h2>Fault &amp; verification counters</h2>"
        "<p>RoW mis-verify rollbacks and injected-fault outcomes, "
        "end-of-run totals.</p>"
        + _table(["counter"] + systems, rows)
        + "</section>"
    )


def _summary_section(results: Sequence[SimulationResult]) -> str:
    rows = []
    for r in results:
        pct = _percentiles(r)
        rows.append([
            r.system_name,
            f"{r.ipc:.3f}",
            f"{r.mean_read_latency_ns:.1f}",
            _fmt(pct["p95"]),
            f"{r.memory.delayed_read_fraction * 100:.1f}%",
            _fmt(r.memory.reads_completed),
            _fmt(r.memory.writes_completed),
            f"{r.irlp_average:.2f}",
            _fmt(r.memory.rollbacks),
        ])
    return (
        "<section><h2>Run summary</h2>"
        + _table(
            ["system", "IPC", "mean read ns", "p95 read ns",
             "delayed reads", "reads", "writes", "IRLP avg", "rollbacks"],
            rows,
        )
        + "</section>"
    )


# ----------------------------------------------------------------------
# Document assembly
# ----------------------------------------------------------------------
def _css() -> str:
    light_series = "".join(
        f"--series-{i + 1}:{hex_};" for i, hex_ in enumerate(LIGHT_SERIES)
    )
    dark_series = "".join(
        f"--series-{i + 1}:{hex_};" for i, hex_ in enumerate(DARK_SERIES)
    )
    light_ordinal = "".join(
        f"--ordinal-{i + 1}:{hex_};" for i, hex_ in enumerate(LIGHT_ORDINAL)
    )
    dark_ordinal = "".join(
        f"--ordinal-{i + 1}:{hex_};" for i, hex_ in enumerate(DARK_ORDINAL)
    )
    return f"""
:root {{
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e;
  --muted: #898781; --grid: #e1e0d9; --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  {light_series}{light_ordinal}
}}
@media (prefers-color-scheme: dark) {{
  :root {{
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --muted: #898781; --grid: #2c2c2a; --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    {dark_series}{dark_ordinal}
  }}
}}
body {{
  margin: 0 auto; max-width: 880px; padding: 24px 16px 64px;
  background: var(--page); color: var(--text-primary);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}}
h1 {{ font-size: 22px; margin: 0 0 4px; }}
h2 {{ font-size: 17px; margin: 32px 0 4px; }}
h3 {{ font-size: 14px; margin: 20px 0 2px; }}
p {{ color: var(--text-secondary); margin: 2px 0 10px; }}
section, .panel {{ margin-bottom: 8px; }}
.manifest {{ color: var(--muted); font-size: 12px; }}
svg.chart {{
  width: 100%; height: auto; display: block;
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 6px;
}}
svg.chart .grid {{ stroke: var(--grid); stroke-width: 1; }}
svg.chart .axis {{ stroke: var(--baseline); stroke-width: 1; }}
svg.chart text {{
  font: 11px system-ui, -apple-system, "Segoe UI", sans-serif;
  font-variant-numeric: tabular-nums;
}}
svg.chart .tick {{ fill: var(--muted); }}
svg.chart .direct {{ fill: var(--text-secondary); }}
.legend {{ margin: 6px 0; }}
.legend .key {{
  display: inline-flex; align-items: center; gap: 6px;
  margin-right: 14px; color: var(--text-secondary); font-size: 12px;
}}
.legend .swatch {{
  width: 10px; height: 10px; border-radius: 2px; display: inline-block;
}}
table {{
  border-collapse: collapse; margin: 8px 0; font-size: 12px;
  font-variant-numeric: tabular-nums;
}}
th, td {{
  border-bottom: 1px solid var(--grid); padding: 3px 10px 3px 0;
  text-align: right;
}}
th:first-child, td:first-child {{ text-align: left; }}
th {{ color: var(--muted); font-weight: 600; }}
details summary {{
  cursor: pointer; color: var(--muted); font-size: 12px; margin-top: 4px;
}}
"""


def render_report(
    results: Sequence[SimulationResult],
    title: str = "PCMap run report",
) -> str:
    """Render one self-contained HTML document for ``results``.

    Results must carry embedded metrics (``collect_metrics=True``); the
    time-series section additionally needs a sampling cadence.
    """
    if not results:
        raise ValueError("render_report needs at least one result")
    for result in results:
        if result.metrics is None:
            raise ValueError(
                f"result {result.system_name!r} has no embedded metrics; "
                f"run with collect_metrics=True"
            )
    manifest = run_manifest(results[0].seed)
    workloads = sorted({r.workload_name for r in results})
    cadence = next(
        (r.timeseries["cadence_ticks"] for r in results
         if r.timeseries is not None),
        None,
    )
    manifest_line = (
        f"workload {', '.join(workloads)} · seed {results[0].seed} · "
        f"code {manifest['code_version']} · "
        f"python {manifest['python']} · {manifest['platform']}"
    )
    if cadence is not None:
        manifest_line += f" · sampling every {cadence} ticks"
    body = "".join([
        f"<h1>{_esc(title)}</h1>",
        f'<p class="manifest">{_esc(manifest_line)}</p>',
        _summary_section(results),
        _latency_section(results),
        _timeseries_section(results),
        _counters_section(results),
    ])
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{_esc(title)}</title>\n"
        '<meta name="viewport" content="width=device-width, initial-scale=1">\n'
        f"<style>{_css()}</style></head>\n"
        f"<body>{body}</body></html>\n"
    )


def write_report(
    path: Union[str, Path],
    results: Sequence[SimulationResult],
    title: str = "PCMap run report",
) -> Path:
    """Render and atomically write the report; returns the path."""
    path = Path(path)
    atomic_write_text(path, render_report(results, title=title))
    return path


def report_params(
    target_requests: int = 3000,
    n_cores: int = 8,
    seed: int = 7,
    sample_every_ticks: Optional[int] = DEFAULT_CADENCE_TICKS,
):
    """Observability-enabled :class:`SimulationParams` for report runs."""
    from repro.sim.simulator import SimulationParams

    return SimulationParams(
        n_cores=n_cores,
        target_requests=target_requests,
        seed=seed,
        sample_every_ticks=sample_every_ticks,
        collect_metrics=True,
    )
