"""Command-line interface: run simulations without writing a script.

Commands::

    python -m repro list-workloads
    python -m repro list-systems
    python -m repro run --workload canneal --system rwow-rde [--requests N] \\
        [--front-end dram] [--replacement lru|clock|mac]
    python -m repro compare --workload canneal [--systems a,b,c]
    python -m repro sweep --workloads canneal,MP1 [--systems ...] \\
        [--jobs N] [--no-cache] [--cache-dir DIR] [--front-end dram] \\
        [--timeout S] [--retries N] [--digest] [--resume CAMPAIGN --store DB]
    python -m repro submit --workloads canneal,MP1 [--systems ...] \\
        [--campaign NAME] [--store DB] [--requests N]
    python -m repro worker --store DB --cache-dir DIR [--campaign NAME] \\
        [--once] [--lease S] [--timeout S]
    python -m repro serve --store DB --cache-dir DIR [--workers N] \\
        [--port P] [--until-done CAMPAIGN]
    python -m repro status --store DB [--campaign NAME] [--json] [--digest]
    python -m repro gen-trace --workload MP1 --count 1000 --out mp1.trace
    python -m repro trace --workload canneal --system rwow-rde \\
        --out run.trace.json [--jsonl run.jsonl] [--buffer N]
    python -m repro stats --workload canneal --system rwow-rde \\
        [--format table|json|openmetrics]
    python -m repro metrics --workload canneal --system rwow-rde \\
        [--out FILE] [--timeseries FILE.jsonl] [--cadence TICKS]
    python -m repro report --out report.html [--workload W] [--systems ...] \\
        [--requests N] [--jobs N]
    python -m repro regress [--smoke] [--update] [--selftest] \\
        [--baseline FILE]
    python -m repro perf [--seed N] [--smoke] [--json] [--out FILE] [--check]
    python -m repro faults [--workload W] [--system S] [--seed N] \\
        [--smoke] [--json] [--out report.json] [--selftest] [--convergence]

``perf`` runs the tracked hot-path microbenchmark suite (codec, storage,
engine dispatch, one end-to-end run, sampling overhead) and emits the
seed- and git-stamped ``BENCH_perf.json`` payload; ``--check`` exits
non-zero on gross (machine-independent) regressions and
``REPRO_PERF_SMOKE=1`` (or ``--smoke``) shrinks the budgets for CI.  See
docs/PERFORMANCE.md.

``submit``/``worker``/``serve``/``status`` drive the durable campaign
service (SQLite job queue, leased workers with crash recovery, HTTP
status endpoint); ``sweep --resume`` finishes a partially-run campaign,
computing only what's missing.  See docs/CAMPAIGNS.md.

``trace`` records the structured telemetry events of one run and exports
them as a Chrome trace (open in ``chrome://tracing`` or Perfetto; chips
appear as per-rank threads), optionally alongside the raw JSONL event
stream.  ``stats`` runs one simulation with the always-on metrics
registry and dumps every counter/gauge/histogram — a table for humans,
``--format json|openmetrics`` for tools.  ``metrics`` runs with the
time-series sampler on and emits lint-clean OpenMetrics text (plus an
optional JSONL time-series).  ``report`` renders the self-contained HTML
run report, ``regress`` diffs a fresh reference run against the metrics
fingerprint pinned in ``BENCH_perf.json`` and exits non-zero on breach.
See docs/TELEMETRY.md.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.analysis import format_table, percent
from repro.cache.replacement import REPLACEMENT_POLICY_NAMES
from repro.core.systems import (
    COMPARATOR_SYSTEM_NAMES,
    FRONT_END_NAMES,
    SYSTEM_NAMES,
    make_front_end,
    make_system,
)
from repro.sim.experiment import compare_systems, run_workload, sweep_workloads
from repro.sim.runner import ResultCache, SweepProgress
from repro.sim.simulator import SimulationParams
from repro.telemetry import (
    DEFAULT_CADENCE_TICKS,
    JsonlSink,
    RingBufferSink,
    Telemetry,
    write_chrome_trace,
)
from repro.trace.synthetic import SyntheticTraceGenerator
from repro.trace.trace_io import save_trace
from repro.trace.workloads import ALL_WORKLOADS, get_workload


def _front_end(args: argparse.Namespace):
    """Front-end config from the common CLI flags (default: direct path)."""
    return make_front_end(
        kind=getattr(args, "front_end", "none"),
        replacement=getattr(args, "replacement", "lru"),
        capacity_mb=getattr(args, "frontend_mb", None),
    )


def _params(args: argparse.Namespace) -> SimulationParams:
    return SimulationParams(
        target_requests=args.requests,
        seed=args.seed,
        n_cores=args.cores,
        front_end=_front_end(args),
    )


def _result_row(result) -> List[object]:
    return [
        result.system_name,
        f"{result.ipc:.3f}",
        f"{result.irlp_average:.2f}",
        f"{result.mean_read_latency_ns:.0f}",
        f"{result.write_throughput:.1f}",
        result.memory.row_reads,
        result.memory.wow_member_writes,
        result.memory.rollbacks,
    ]


_RESULT_HEADERS = [
    "system", "IPC", "IRLP", "read lat (ns)", "writes/us",
    "RoW reads", "WoW writes", "rollbacks",
]


def cmd_list_workloads(_args: argparse.Namespace) -> int:
    rows = [
        [w.name, w.kind.value, f"{w.rpki:.2f}", f"{w.wpki:.2f}",
         f"{w.mean_dirty_words:.2f}", w.description]
        for w in ALL_WORKLOADS
    ]
    print(format_table(
        ["workload", "suite", "RPKI", "WPKI", "mean dirty", "description"],
        rows,
    ))
    return 0


def cmd_list_systems(_args: argparse.Namespace) -> int:
    rows = []
    for name in SYSTEM_NAMES + COMPARATOR_SYSTEM_NAMES:
        config = make_system(name)
        rows.append([name, config.describe().split(": ", 1)[1]])
    print(format_table(["system", "features"], rows))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    result = run_workload(args.workload, args.system, _params(args))
    print(format_table(_RESULT_HEADERS, [_result_row(result)],
                       title=f"workload {args.workload}"))
    if result.frontend is not None:
        f = result.frontend
        print(f"\nfront end: {f['kind']}/{f['replacement']} "
              f"hit rate {f['hit_rate']:.3f} "
              f"({f['read_hits']}+{f['write_hits']} hits, "
              f"{f['fills']} fills, {f['coalesced']} coalesced, "
              f"{f['write_backs']} write-backs)")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    systems = args.systems.split(",") if args.systems else None
    comparison = compare_systems(args.workload, systems, _params(args))
    rows = [_result_row(r) for r in comparison.results.values()]
    print(format_table(_RESULT_HEADERS, rows, title=f"workload {args.workload}"))
    if "baseline" in comparison.results:
        gains = {
            name: percent(comparison.ipc_improvement(name))
            for name in comparison.results
            if name != "baseline"
        }
        print("\nIPC improvement over baseline: "
              + ", ".join(f"{k}={v}" for k, v in gains.items()))
    return 0


#: Default on-disk sweep cache, shared with the benchmark harness.
DEFAULT_CACHE_DIR = os.path.join("benchmarks", "results", "cache")


def _progress_printer(quiet: bool):
    if quiet:
        return None

    def emit(progress: SweepProgress) -> None:
        print(progress.describe(), file=sys.stderr)

    return emit


#: Default campaign store, next to the default sweep cache.
DEFAULT_STORE_PATH = os.path.join("benchmarks", "results", "campaign.sqlite")


def _sweep_cache_dir(args: argparse.Namespace) -> str:
    return getattr(args, "cache_dir", None) or os.environ.get(
        "REPRO_SWEEP_CACHE_DIR", DEFAULT_CACHE_DIR
    )


def _lease_policy(args: argparse.Namespace):
    """LeasePolicy from the campaign CLI knobs (defaults where absent)."""
    from repro.sim.campaign import LeasePolicy

    kwargs = {}
    if getattr(args, "lease", None) is not None:
        kwargs["lease_seconds"] = args.lease
    if getattr(args, "max_attempts", None) is not None:
        kwargs["max_attempts"] = args.max_attempts
    if getattr(args, "timeout", None) is not None:
        kwargs["job_timeout"] = args.timeout
    return LeasePolicy(**kwargs)


def cmd_sweep(args: argparse.Namespace) -> int:
    """Workloads x systems grid through the parallel runner + cache."""
    if args.resume:
        return _sweep_resume(args)
    if not args.workloads:
        print("repro sweep: --workloads is required (unless --resume)",
              file=sys.stderr)
        return 2
    systems = args.systems.split(",") if args.systems else None
    workloads = args.workloads.split(",")
    cache = None if args.no_cache else ResultCache(_sweep_cache_dir(args))
    comparisons = sweep_workloads(
        workloads,
        systems,
        _params(args),
        jobs=args.jobs,
        cache=cache,
        progress=_progress_printer(args.quiet),
        timeout=args.timeout,
        retries=args.retries,
    )
    for comparison in comparisons:
        rows = [_result_row(r) for r in comparison.results.values()]
        print(format_table(
            _RESULT_HEADERS, rows, title=f"workload {comparison.workload_name}"
        ))
        print()
    if args.digest:
        from repro.sim.results_io import results_digest

        flat = [
            result
            for comparison in comparisons
            for result in comparison.results.values()
        ]
        print(f"results digest: {results_digest(flat)}")
    if cache is not None:
        print(f"{cache.stats.summary()} ({cache.directory})")
    return 0


def _sweep_resume(args: argparse.Namespace) -> int:
    """Finish a partially-run campaign; compute only what's missing."""
    from repro.sim.campaign import CampaignStore, resume_campaign
    from repro.sim.results_io import results_digest

    store = CampaignStore(args.store, policy=_lease_policy(args))
    if args.resume not in store.campaigns():
        print(f"repro sweep: unknown campaign {args.resume!r} in "
              f"{store.path} (known: {', '.join(store.campaigns()) or 'none'})",
              file=sys.stderr)
        return 2
    cache = ResultCache(_sweep_cache_dir(args))
    try:
        results = resume_campaign(
            store, cache, args.resume,
            reset_dead_letters=args.reset_dead_letters,
        )
    except RuntimeError as exc:
        print(f"repro sweep: {exc}", file=sys.stderr)
        return 1
    rows = [[r.workload_name] + _result_row(r) for r in results]
    print(format_table(
        ["workload"] + _RESULT_HEADERS, rows,
        title=f"campaign {args.resume} ({len(results)} jobs)",
    ))
    if args.digest:
        print(f"results digest: {results_digest(results)}")
    print(f"{cache.stats.summary()} ({cache.directory})")
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    """Enqueue a workloads x systems grid as a durable campaign."""
    from repro.sim.campaign import CampaignStore, submit_pairs
    from repro.trace.workloads import get_workload as _resolve

    systems = args.systems.split(",") if args.systems else list(SYSTEM_NAMES)
    workloads = [_resolve(name).name for name in args.workloads.split(",")]
    pairs = [(w, s) for w in workloads for s in systems]
    store = CampaignStore(args.store, policy=_lease_policy(args))
    try:
        name = submit_pairs(store, pairs, _params(args), args.campaign)
    except ValueError as exc:
        print(f"repro submit: {exc}", file=sys.stderr)
        return 2
    counts = store.counts(name)
    print(f"campaign {name}: {counts['total']} jobs "
          f"({counts['queued']} queued, {counts['done']} done) in {store.path}")
    print(f"resume with: repro sweep --resume {name} --store {store.path}")
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    """Long-lived lease-pulling worker attached to a campaign store."""
    from repro.sim.campaign import run_worker

    completed = run_worker(
        args.store,
        _sweep_cache_dir(args),
        campaign=args.campaign,
        worker_id=args.worker_id,
        once=args.once,
        policy=_lease_policy(args),
        poll_seconds=args.poll,
    )
    print(f"worker done: {completed} job(s) completed", file=sys.stderr)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Campaign service: worker fleet + lease sweeper + HTTP status."""
    from repro.sim.campaign import CampaignService, CampaignStore

    store = CampaignStore(args.store, policy=_lease_policy(args))
    cache = ResultCache(_sweep_cache_dir(args))
    service = CampaignService(
        store, cache, workers=args.workers, host=args.host, port=args.port
    ).start()
    print(f"campaign service on http://{service.server.host}:"
          f"{service.server.port} ({args.workers} worker(s), "
          f"store {store.path})", file=sys.stderr)
    try:
        if args.until_done:
            ok = service.wait_until_done(args.until_done)
            counts = store.counts(args.until_done)
            print(f"campaign {args.until_done}: {counts['done']}/"
                  f"{counts['total']} done, {counts['failed']} dead-lettered",
                  file=sys.stderr)
            return 0 if ok else 1
        while True:  # pragma: no cover - interactive serve loop
            import time as _time

            _time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        return 0
    finally:
        service.stop()


def cmd_status(args: argparse.Namespace) -> int:
    """Campaign progress, from the HTTP endpoint or the store directly."""
    if args.url:
        import urllib.request

        path = (f"/v1/campaigns/{args.campaign}" if args.campaign
                else "/v1/status")
        with urllib.request.urlopen(args.url.rstrip("/") + path) as response:
            print(response.read().decode("utf-8"))
        return 0

    from repro.sim.campaign import (
        CampaignStore,
        campaign_progress,
        collect_results,
    )
    from repro.sim.results_io import results_digest

    store = CampaignStore(args.store)
    names = [args.campaign] if args.campaign else store.campaigns()
    if args.campaign and args.campaign not in store.campaigns():
        print(f"repro status: unknown campaign {args.campaign!r}",
              file=sys.stderr)
        return 2
    documents = [campaign_progress(store, name) for name in names]
    if args.digest:
        cache = ResultCache(_sweep_cache_dir(args))
        for document in documents:
            slots, _ = collect_results(store, cache, str(document["campaign"]))
            present = [r for r in slots if r is not None]
            document["results_cached"] = len(present)
            if len(present) == document["total"]:
                document["results_digest"] = results_digest(present)
    if args.json:
        print(json.dumps(documents, indent=1, sort_keys=True))
        return 0
    rows = []
    for document in documents:
        counts = document["counts"]
        rows.append([
            document["campaign"],
            counts["queued"], counts["leased"], counts["done"],
            counts["failed"],
            f"{100.0 * float(document['progress']):.1f}%",
        ])
    print(format_table(
        ["campaign", "queued", "leased", "done", "failed", "progress"],
        rows, title=f"campaign store {store.path}",
    ))
    for document in documents:
        for letter in document["dead_letters"]:
            error = str(letter["error"] or "").strip().splitlines()
            print(f"\ndead letter {document['campaign']}"
                  f"[{letter['job_index']}] {letter['workload']} x "
                  f"{letter['system']} after {letter['attempts']} attempts: "
                  f"{error[-1] if error else '?'}")
        if "results_digest" in document:
            print(f"\n{document['campaign']} results digest: "
                  f"{document['results_digest']}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run once with tracing on; export a Chrome trace (and maybe JSONL)."""
    ring = RingBufferSink(capacity=args.buffer)
    sinks: List[object] = [ring]
    jsonl: Optional[JsonlSink] = None
    if args.jsonl:
        jsonl = JsonlSink(args.jsonl)
        sinks.append(jsonl)
    telemetry = Telemetry.recording(sinks)
    result = run_workload(args.workload, args.system, _params(args), telemetry)
    if jsonl is not None:
        jsonl.close()

    system = make_system(args.system)
    written = write_chrome_trace(
        args.out,
        ring.events,
        chips_per_rank=system.geometry.chips_per_rank,
        label=f"{args.workload} on {args.system} (seed {args.seed})",
    )
    print(format_table(_RESULT_HEADERS, [_result_row(result)],
                       title=f"workload {args.workload}"))
    recorded = ring.total_seen
    print(f"\nrecorded {recorded} events"
          + (f" (kept last {len(ring.events)}, "
             f"{ring.evicted} evicted)" if ring.evicted else ""))
    print(f"wrote {written} Chrome trace events to {args.out} "
          "(open in chrome://tracing or https://ui.perfetto.dev)")
    if args.jsonl:
        print(f"wrote {jsonl.written} JSONL events to {args.jsonl}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Run once and dump the full metrics registry."""
    from repro.telemetry import to_openmetrics

    telemetry = Telemetry.disabled()
    result = run_workload(args.workload, args.system, _params(args), telemetry)
    dump = telemetry.metrics.as_dict()
    fmt = "json" if args.json else args.format
    if fmt == "json":
        print(json.dumps(dump, indent=1))
        return 0
    if fmt == "openmetrics":
        sys.stdout.write(to_openmetrics(dump))
        return 0
    rows = []
    for name, data in dump.items():
        if data["type"] == "histogram":
            value = (f"count={data['count']} mean={data['mean']:.1f} "
                     f"p50={data['p50']} p95={data['p95']} "
                     f"p99={data['p99']} max={data['max']}")
        elif data["type"] == "gauge":
            value = f"{data['value']} (max {data['max']})"
        else:
            value = str(data["value"])
        rows.append([name, data["type"], value])
    print(format_table(_RESULT_HEADERS, [_result_row(result)],
                       title=f"workload {args.workload}"))
    print()
    print(format_table(["metric", "type", "value"], rows,
                       title="metrics registry"))
    if result.profile is not None:
        print(f"\n{result.profile.summary()}")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Run once with sampling on; emit lint-clean OpenMetrics text."""
    from repro.sim.results_io import atomic_write_text
    from repro.telemetry import (
        lint_openmetrics,
        timeseries_to_jsonl,
        to_openmetrics,
    )

    params = SimulationParams(
        target_requests=args.requests,
        seed=args.seed,
        n_cores=args.cores,
        sample_every_ticks=args.cadence,
        collect_metrics=True,
        front_end=_front_end(args),
    )
    result = run_workload(args.workload, args.system, params)
    text = to_openmetrics(result.metrics)
    problems = lint_openmetrics(text)
    if problems:
        for problem in problems:
            print(f"OPENMETRICS LINT FAILED: {problem}", file=sys.stderr)
        return 1
    if args.out:
        atomic_write_text(args.out, text)
        families = sum(1 for line in text.splitlines()
                       if line.startswith("# TYPE"))
        print(f"wrote {families} metric families to {args.out} "
              f"({args.workload} on {args.system}, seed {args.seed})")
    else:
        sys.stdout.write(text)
    if args.timeseries:
        jsonl = timeseries_to_jsonl(result.timeseries)
        atomic_write_text(args.timeseries, jsonl)
        print(f"wrote {len(jsonl.splitlines())} time-series samples to "
              f"{args.timeseries}",
              file=sys.stdout if args.out else sys.stderr)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Simulate the requested systems and render the HTML run report."""
    from repro.analysis import report_params, write_report
    from repro.sim.runner import run_pairs

    systems = args.systems.split(",") if args.systems else list(SYSTEM_NAMES)
    params = report_params(
        target_requests=args.requests, n_cores=args.cores, seed=args.seed
    )
    results = run_pairs(
        [(args.workload, system) for system in systems],
        params,
        jobs=args.jobs,
    )
    title = args.title or f"PCMap run report — {args.workload}"
    path = write_report(args.out, results, title=title)
    print(f"wrote {path} ({len(results)} systems on {args.workload}, "
          f"{args.requests} requests, seed {args.seed})")
    return 0


def cmd_regress(args: argparse.Namespace) -> int:
    """Diff a fresh reference run against the pinned metrics fingerprint."""
    from repro.analysis.regress import (
        FINGERPRINT_SEED,
        collect_fingerprint,
        collect_frontend_fingerprint,
        compare_fingerprints,
        format_comparison,
        load_baseline,
        selftest,
        update_baseline,
    )
    from repro.perf.suites import default_output_path

    path = args.baseline or default_output_path()
    if args.selftest:
        failures = selftest()
        if failures:
            for failure in failures:
                print(f"REGRESS SELFTEST FAILED: {failure}", file=sys.stderr)
            return 1
        print("regress selftest passed (planted regressions were detected)")
        return 0
    if args.update:
        pinned = update_baseline(path)
        print(f"pinned metrics fingerprint "
              f"({', '.join(sorted(pinned))} budgets) in {path}")
        return 0
    try:
        baseline = load_baseline(
            path, smoke=args.smoke, frontend=args.frontend
        )
    except (OSError, ValueError) as exc:
        print(f"REGRESS: {exc}", file=sys.stderr)
        return 1
    seed = baseline.get("config", {}).get("seed", FINGERPRINT_SEED)
    collect = (
        collect_frontend_fingerprint if args.frontend else collect_fingerprint
    )
    current = collect(smoke=args.smoke, seed=seed)
    breaches = compare_fingerprints(baseline, current)
    print(format_comparison(baseline, current, breaches))
    if breaches:
        for breach in breaches:
            print(f"REGRESS BREACH: {breach}", file=sys.stderr)
        return 1
    print("regression sentinel: no breaches")
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    """Run the hot-path microbenchmark suite; optionally gate regressions."""
    from repro.perf import check_payload, format_payload, run_suite
    from repro.sim.results_io import atomic_write_text

    smoke = args.smoke or bool(os.environ.get("REPRO_PERF_SMOKE"))
    payload = run_suite(seed=args.seed, smoke=smoke)
    if args.json:
        print(json.dumps(payload, indent=1))
    else:
        print(format_payload(payload))
    if args.out:
        atomic_write_text(args.out, json.dumps(payload, indent=1) + "\n")
        if not args.json:
            print(f"\nwrote {args.out}")
    if args.check:
        failures = check_payload(payload)
        if failures:
            for failure in failures:
                print(f"PERF CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        if not args.json:
            print("perf check passed")
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """Seeded fault campaign / convergence check / oracle self-test."""
    from repro.faults import (
        DEFAULT_FAULTS,
        FaultCampaignSpec,
        FaultConfig,
        cross_system_convergence,
        oracle_selftest,
        report_json,
        run_campaign,
    )
    from repro.sim.results_io import atomic_write_text

    if args.selftest:
        report = oracle_selftest(seed=args.seed)
        passed = report["passed"]
    elif args.convergence:
        report = cross_system_convergence(
            workload=args.workload,
            seed=args.seed,
            target_requests=args.requests,
        )
        passed = report["converged"]
    else:
        fault = FaultConfig(
            read_disturb_rate=(
                DEFAULT_FAULTS.read_disturb_rate
                if args.read_disturb is None else args.read_disturb
            ),
            write_fail_rate=(
                DEFAULT_FAULTS.write_fail_rate
                if args.write_fail is None else args.write_fail
            ),
            stuck_at_threshold=(
                DEFAULT_FAULTS.stuck_at_threshold
                if args.stuck_threshold is None else args.stuck_threshold
            ),
            stuck_cells_per_line=(
                DEFAULT_FAULTS.stuck_cells_per_line
                if args.stuck_cells is None else args.stuck_cells
            ),
        )
        spec = FaultCampaignSpec(
            workload=args.workload,
            system=args.system,
            seed=args.seed,
            target_requests=2_000 if args.smoke else args.requests,
            n_cores=args.cores,
            fault=fault,
        )
        report = run_campaign(spec)
        passed = report["ok"] and report["row"]["within_paper_band"]
        if not args.json:
            row = report["row"]
            injected = report["injected"]
            print(format_table(
                ["metric", "value"],
                [
                    ["system / workload",
                     f"{spec.system} / {spec.workload} (seed {spec.seed})"],
                    ["faults injected",
                     str(injected["read_disturb_injected"]
                         + injected["write_fail_injected"]
                         + injected["stuck_cells_activated"])],
                    ["SECDED corrected", str(injected["corrected"])],
                    ["detected uncorrectable",
                     str(injected["detected_uncorrectable"])],
                    ["silent", str(injected["silent"])],
                    ["RoW reconstructed reads", str(row["row_reads"])],
                    ["mis-verify rollbacks", str(row["rollbacks_corrupted"])],
                    ["mis-verify rate",
                     f"{row['misverify_rate']:.4f} "
                     f"(paper ceiling {row['paper_ceiling']})"],
                    ["oracle", "clean" if report["ok"] else
                     f"{report['oracle']['violations']} VIOLATIONS"],
                ],
                title="fault campaign",
            ))
    if args.json:
        print(report_json(report))
    if args.out:
        atomic_write_text(args.out, report_json(report) + "\n")
        if not args.json:
            print(f"wrote {args.out}")
    if not args.json and (args.selftest or args.convergence):
        print(report_json(report))
    return 0 if passed else 1


def cmd_gen_trace(args: argparse.Namespace) -> int:
    generator = SyntheticTraceGenerator(
        get_workload(args.workload), seed=args.seed
    )
    count = save_trace(args.out, generator.take(args.count))
    print(f"wrote {count} records to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PCMap (ISCA 2016) reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-workloads").set_defaults(func=cmd_list_workloads)
    sub.add_parser("list-systems").set_defaults(func=cmd_list_systems)

    def add_common(p):
        p.add_argument("--requests", type=int, default=4_000,
                       help="total main-memory requests to simulate")
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--cores", type=int, default=8)
        p.add_argument("--front-end", dest="front_end",
                       choices=FRONT_END_NAMES, default="none",
                       help="simulated cache tier in front of PCM "
                            "(default: none — the direct post-LLC path)")
        p.add_argument("--replacement",
                       choices=REPLACEMENT_POLICY_NAMES, default="lru",
                       help="front-end replacement policy "
                            "(only meaningful with --front-end dram)")
        p.add_argument("--frontend-mb", dest="frontend_mb",
                       type=float, default=None, metavar="MB",
                       help="front-end tier capacity in MiB (e.g. 256 "
                            "for the paper-scale Table I tier; default: "
                            "the tier's built-in 256 MB). Sets/ways are "
                            "derived and validated from the size. Only "
                            "meaningful with --front-end dram; distinct "
                            "sizes hash to distinct sweep-cache keys.")

    run_p = sub.add_parser("run", help="one workload on one system")
    run_p.add_argument("--workload", required=True)
    run_p.add_argument("--system", default="rwow-rde")
    add_common(run_p)
    run_p.set_defaults(func=cmd_run)

    cmp_p = sub.add_parser("compare", help="one workload across systems")
    cmp_p.add_argument("--workload", required=True)
    cmp_p.add_argument(
        "--systems",
        help="comma-separated (default: all six; comparators "
             f"{','.join(COMPARATOR_SYSTEM_NAMES)} also accepted)",
    )
    add_common(cmp_p)
    cmp_p.set_defaults(func=cmd_compare)

    def add_cache_dir(p):
        p.add_argument("--cache-dir",
                       help="result cache directory (default: "
                            f"$REPRO_SWEEP_CACHE_DIR or {DEFAULT_CACHE_DIR})")

    def add_store(p, required=False):
        p.add_argument("--store", required=required,
                       default=None if required else DEFAULT_STORE_PATH,
                       help="campaign store (SQLite file; default: "
                            f"{DEFAULT_STORE_PATH})")

    def add_lease_knobs(p):
        p.add_argument("--lease", type=float, default=None, metavar="S",
                       help="lease seconds before a silent worker's job "
                            "is reclaimed (default: 30)")
        p.add_argument("--max-attempts", type=int, default=None,
                       help="lease acquisitions before a job dead-letters "
                            "(default: 4)")
        p.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-job wall-clock cap; an overdue job is "
                            "killed and retried (default: none)")

    sweep_p = sub.add_parser(
        "sweep",
        help="several workloads across systems (parallel, cached)",
    )
    sweep_p.add_argument("--workloads",
                         help="comma-separated workload names "
                              "(required unless --resume)")
    sweep_p.add_argument("--systems", help="comma-separated system names")
    sweep_p.add_argument("--jobs", type=int, default=os.cpu_count() or 1,
                         help="worker processes (default: all cores)")
    sweep_p.add_argument("--no-cache", action="store_true",
                         help="always re-simulate; do not read or write "
                              "the on-disk result cache")
    add_cache_dir(sweep_p)
    sweep_p.add_argument("--quiet", action="store_true",
                         help="suppress per-job progress lines on stderr")
    sweep_p.add_argument("--timeout", type=float, default=None, metavar="S",
                         help="per-job wall-clock cap; an overdue job is "
                              "killed and retried instead of wedging the "
                              "sweep (default: none)")
    sweep_p.add_argument("--retries", type=int, default=0,
                         help="extra attempts per failed/hung job "
                              "(default: 0)")
    sweep_p.add_argument("--digest", action="store_true",
                         help="print the SHA-256 results digest (the "
                              "campaign byte-identity oracle)")
    sweep_p.add_argument("--resume", metavar="CAMPAIGN",
                         help="finish a partially-run campaign from "
                              "--store instead of sweeping --workloads")
    sweep_p.add_argument("--reset-dead-letters", action="store_true",
                         help="with --resume: give dead-lettered jobs a "
                              "fresh attempt budget")
    add_store(sweep_p)
    sweep_p.add_argument("--lease", type=float, default=None,
                         help=argparse.SUPPRESS)
    sweep_p.add_argument("--max-attempts", type=int, default=None,
                         help=argparse.SUPPRESS)
    add_common(sweep_p)
    sweep_p.set_defaults(func=cmd_sweep)

    submit_p = sub.add_parser(
        "submit",
        help="enqueue a workloads x systems grid as a durable campaign",
    )
    submit_p.add_argument("--workloads", required=True,
                          help="comma-separated workload names")
    submit_p.add_argument("--systems", help="comma-separated system names "
                                            "(default: all six)")
    submit_p.add_argument("--campaign",
                          help="campaign name (default: derived from the "
                               "job-list content hash)")
    add_store(submit_p)
    add_lease_knobs(submit_p)
    add_common(submit_p)
    submit_p.set_defaults(func=cmd_submit)

    worker_p = sub.add_parser(
        "worker",
        help="pull and run campaign jobs under lease (attachable "
             "from any host sharing the store)",
    )
    add_store(worker_p, required=True)
    add_cache_dir(worker_p)
    worker_p.add_argument("--campaign",
                          help="only pull jobs of this campaign "
                               "(default: any)")
    worker_p.add_argument("--once", action="store_true",
                          help="exit when nothing is leasable instead of "
                               "polling forever")
    worker_p.add_argument("--worker-id",
                          help="lease-owner label (default: host:pid)")
    worker_p.add_argument("--poll", type=float, default=0.25,
                          help="idle poll interval in seconds")
    add_lease_knobs(worker_p)
    worker_p.set_defaults(func=cmd_worker)

    serve_p = sub.add_parser(
        "serve",
        help="campaign service: worker fleet + HTTP status endpoint",
    )
    add_store(serve_p)
    add_cache_dir(serve_p)
    serve_p.add_argument("--workers", type=int, default=os.cpu_count() or 1,
                         help="worker subprocesses (default: all cores)")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=0,
                         help="status port (default: ephemeral, printed "
                              "on stderr)")
    serve_p.add_argument("--until-done", metavar="CAMPAIGN",
                         help="exit once this campaign has no queued or "
                              "leased jobs (0 iff none dead-lettered)")
    add_lease_knobs(serve_p)
    serve_p.set_defaults(func=cmd_serve)

    status_p = sub.add_parser(
        "status",
        help="campaign progress from the store or a running service",
    )
    add_store(status_p)
    add_cache_dir(status_p)
    status_p.add_argument("--campaign", help="one campaign (default: all)")
    status_p.add_argument("--url",
                          help="query a running `repro serve` endpoint "
                               "instead of reading the store")
    status_p.add_argument("--json", action="store_true",
                          help="emit the status documents as JSON")
    status_p.add_argument("--digest", action="store_true",
                          help="include the results digest for complete "
                               "campaigns (reads the result cache)")
    status_p.set_defaults(func=cmd_status)

    trace_p = sub.add_parser(
        "trace", help="record one run's telemetry as a Chrome trace"
    )
    trace_p.add_argument("--workload", required=True)
    trace_p.add_argument("--system", default="rwow-rde")
    trace_p.add_argument("--out", required=True,
                         help="Chrome trace JSON output path")
    trace_p.add_argument("--jsonl",
                         help="also stream raw events to this JSONL file")
    trace_p.add_argument("--buffer", type=int, default=1_000_000,
                         help="ring-buffer capacity (most recent events kept)")
    add_common(trace_p)
    trace_p.set_defaults(func=cmd_trace)

    stats_p = sub.add_parser(
        "stats", help="run once and dump the metrics registry"
    )
    stats_p.add_argument("--workload", required=True)
    stats_p.add_argument("--system", default="rwow-rde")
    stats_p.add_argument("--json", action="store_true",
                         help="emit the registry as JSON "
                              "(alias for --format json)")
    stats_p.add_argument("--format", choices=["table", "json", "openmetrics"],
                         default="table",
                         help="output format (default: table)")
    add_common(stats_p)
    stats_p.set_defaults(func=cmd_stats)

    metrics_p = sub.add_parser(
        "metrics",
        help="run once with sampling on; emit OpenMetrics text",
    )
    metrics_p.add_argument("--workload", default="canneal")
    metrics_p.add_argument("--system", default="rwow-rde")
    metrics_p.add_argument("--cadence", type=int,
                           default=DEFAULT_CADENCE_TICKS,
                           help="time-series sample cadence in simulated "
                                f"ticks (default: {DEFAULT_CADENCE_TICKS})")
    metrics_p.add_argument("--out",
                           help="write the OpenMetrics text here instead "
                                "of stdout")
    metrics_p.add_argument("--timeseries",
                           help="also write the sampled time-series as "
                                "JSONL to this file")
    add_common(metrics_p)
    metrics_p.set_defaults(func=cmd_metrics)

    report_p = sub.add_parser(
        "report",
        help="render the self-contained HTML run report",
    )
    report_p.add_argument("--out", required=True,
                          help="HTML output path")
    report_p.add_argument("--workload", default="canneal")
    report_p.add_argument(
        "--systems",
        help="comma-separated system names (default: all six paper systems)",
    )
    report_p.add_argument("--requests", type=int, default=3_000,
                          help="main-memory requests per system")
    report_p.add_argument("--seed", type=int, default=7)
    report_p.add_argument("--cores", type=int, default=8)
    report_p.add_argument("--jobs", type=int, default=os.cpu_count() or 1,
                          help="worker processes (default: all cores)")
    report_p.add_argument("--title", help="report title")
    report_p.set_defaults(func=cmd_report)

    regress_p = sub.add_parser(
        "regress",
        help="diff a reference run against the pinned metrics fingerprint",
    )
    regress_p.add_argument("--baseline",
                           help="BENCH_perf.json holding the pinned "
                                "fingerprint (default: the committed one)")
    regress_p.add_argument("--smoke", action="store_true",
                           help="use the smoke-budget fingerprint (CI)")
    regress_p.add_argument("--frontend", action="store_true",
                           help="diff the front-end (dram tier) leg "
                                "instead of the direct-path leg")
    regress_p.add_argument("--update", action="store_true",
                           help="re-pin every budget/leg fingerprint "
                                "and exit")
    regress_p.add_argument("--selftest", action="store_true",
                           help="plant a regression; the sentinel must "
                                "detect it")
    regress_p.add_argument("--check", action="store_true",
                           help="alias for the default compare mode "
                                "(symmetry with `repro perf --check`)")
    regress_p.set_defaults(func=cmd_regress)

    perf_p = sub.add_parser(
        "perf", help="run the tracked hot-path microbenchmark suite"
    )
    perf_p.add_argument("--seed", type=int, default=7)
    perf_p.add_argument("--smoke", action="store_true",
                        help="small budgets for CI (also: REPRO_PERF_SMOKE=1)")
    perf_p.add_argument("--json", action="store_true",
                        help="emit the BENCH_perf.json payload to stdout")
    perf_p.add_argument("--out",
                        help="also write the payload to this file")
    perf_p.add_argument("--check", action="store_true",
                        help="exit non-zero on gross hot-path regressions")
    perf_p.set_defaults(func=cmd_perf)

    faults_p = sub.add_parser(
        "faults",
        help="seeded fault-injection campaign with differential oracle",
    )
    faults_p.add_argument("--workload", default="canneal")
    faults_p.add_argument("--system", default="rwow-rde")
    faults_p.add_argument("--read-disturb", type=float, default=None,
                          help="per-read transient bit-flip probability")
    faults_p.add_argument("--write-fail", type=float, default=None,
                          help="per-committed-word bit-failure probability")
    faults_p.add_argument("--stuck-threshold", type=int, default=None,
                          help="writes per line before stuck-at cells appear")
    faults_p.add_argument("--stuck-cells", type=int, default=None,
                          help="stuck cells per worn-out line")
    faults_p.add_argument("--smoke", action="store_true",
                          help="small CI budget (2000 requests)")
    faults_p.add_argument("--json", action="store_true",
                          help="emit the full campaign report as JSON")
    faults_p.add_argument("--out", help="also write the JSON report here")
    faults_p.add_argument("--selftest", action="store_true",
                          help="plant an untracked corruption; the oracle "
                               "must detect it")
    faults_p.add_argument("--convergence", action="store_true",
                          help="all six systems must reach identical "
                               "end-state (faults off)")
    add_common(faults_p)
    faults_p.set_defaults(func=cmd_faults)

    gen_p = sub.add_parser("gen-trace", help="export a synthetic trace file")
    gen_p.add_argument("--workload", required=True)
    gen_p.add_argument("--count", type=int, default=10_000)
    gen_p.add_argument("--out", required=True)
    gen_p.add_argument("--seed", type=int, default=1)
    gen_p.set_defaults(func=cmd_gen_trace)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
