"""Hamming(72,64) SECDED code.

An ECC DIMM protects every 64-bit data word with 8 check bits stored on a
ninth chip (paper §II-A).  The code used here is the classic extended
Hamming construction: a Hamming(71,64) single-error-correcting code plus an
overall parity bit, yielding Single-Error-Correct / Double-Error-Detect
behaviour over the 72-bit codeword.

Codeword layout (bit positions within the 72-bit word):

* position 0                      — overall parity over positions 1..71
* positions 1, 2, 4, 8, 16, 32, 64 — Hamming check bits
* the remaining 64 positions      — data bits, in ascending order

The module works on plain Python integers (a 64-bit data word and an 8-bit
check byte), which keeps it dependency-free and easy to property-test.

Every check bit — including the overall parity — is a parity over a fixed
subset of the data bits, so the whole 8-bit check byte is a GF(2)-linear
function of the data word.  ``encode`` therefore reduces to eight table
lookups XORed together: one precomputed 256-entry contribution table per
data byte (``encode(x) == XOR over byte slices of encode(slice)`` because
``encode(0) == 0``).  The straightforward bit-loop construction is kept as
``_encode_reference``/``_decode_reference`` — both to build the tables
from first principles and to property-test the fast path against it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

_CODEWORD_BITS = 72
_PARITY_POSITIONS = (1, 2, 4, 8, 16, 32, 64)
_OVERALL_POSITION = 0

#: Codeword positions (ascending) that carry data bits.
_DATA_POSITIONS: Tuple[int, ...] = tuple(
    pos
    for pos in range(1, _CODEWORD_BITS)
    if pos not in _PARITY_POSITIONS
)
assert len(_DATA_POSITIONS) == 64

#: For each Hamming check bit (indexed by its position-exponent), the mask
#: of *data-bit indices* it covers.
_COVER_MASKS: List[int] = []
for _p in _PARITY_POSITIONS:
    _mask = 0
    for _i, _pos in enumerate(_DATA_POSITIONS):
        if _pos & _p:
            _mask |= 1 << _i
    _COVER_MASKS.append(_mask)

#: Mask of all 64 data bits.
_DATA_MASK = (1 << 64) - 1


def _parity(value: int) -> int:
    """Parity (0/1) of the set bits of ``value``."""
    return value.bit_count() & 1


class DecodeStatus(enum.Enum):
    """Outcome of a SECDED decode."""

    CLEAN = "clean"                  #: no error detected
    CORRECTED_DATA = "corrected"     #: single-bit error in a data bit, fixed
    CORRECTED_CHECK = "check_fixed"  #: single-bit error in a check bit
    DOUBLE_ERROR = "double"          #: uncorrectable double-bit error


@dataclass(frozen=True)
class DecodeResult:
    """Result of decoding a (data, check) pair."""

    data: int                 #: corrected 64-bit data word
    status: DecodeStatus      #: what the decoder concluded
    flipped_position: int     #: codeword position corrected (-1 if none)

    @property
    def ok(self) -> bool:
        """True when the data word is trustworthy after decode."""
        return self.status is not DecodeStatus.DOUBLE_ERROR


# ----------------------------------------------------------------------
# Reference implementation (bit loops over the cover masks).  The tables
# below are generated from it, and the property tests hold the fast path
# bit-identical to it.
# ----------------------------------------------------------------------
def _encode_reference(data: int) -> int:
    """Bit-loop SECDED encode; the specification the tables are built from."""
    if not 0 <= data <= _DATA_MASK:
        raise ValueError(f"data word out of 64-bit range: {data:#x}")
    check = 0
    for i, mask in enumerate(_COVER_MASKS):
        check |= _parity(data & mask) << i
    # Overall parity covers data bits and the seven Hamming bits.
    overall = _parity(data) ^ _parity(check)
    check |= overall << 7
    return check


def _decode_reference(data: int, check: int) -> DecodeResult:
    """Loop-based SECDED decode mirroring the original implementation."""
    if not 0 <= data <= _DATA_MASK:
        raise ValueError(f"data word out of 64-bit range: {data:#x}")
    if not 0 <= check <= 0xFF:
        raise ValueError(f"check byte out of range: {check:#x}")

    expected = _encode_reference(data)
    syndrome = 0
    for i in range(7):
        if ((expected ^ check) >> i) & 1:
            syndrome |= _PARITY_POSITIONS[i]
    # Overall parity over the *received* codeword.
    codeword = _assemble_codeword(data, check)
    parity_mismatch = _parity(codeword)

    if syndrome == 0 and not parity_mismatch:
        return DecodeResult(data, DecodeStatus.CLEAN, -1)
    if syndrome == 0 and parity_mismatch:
        # The overall parity bit itself flipped; data is intact.
        return DecodeResult(data, DecodeStatus.CORRECTED_CHECK, _OVERALL_POSITION)
    if parity_mismatch:
        # Single-bit error at codeword position `syndrome`.
        if syndrome >= _CODEWORD_BITS:
            # Syndrome points outside the codeword: treat as detected
            # uncorrectable corruption.
            return DecodeResult(data, DecodeStatus.DOUBLE_ERROR, -1)
        if syndrome in _PARITY_POSITIONS:
            return DecodeResult(data, DecodeStatus.CORRECTED_CHECK, syndrome)
        bit_index = _DATA_POSITIONS.index(syndrome)
        return DecodeResult(
            data ^ (1 << bit_index), DecodeStatus.CORRECTED_DATA, syndrome
        )
    return DecodeResult(data, DecodeStatus.DOUBLE_ERROR, -1)


# ----------------------------------------------------------------------
# Byte-sliced contribution tables (8 x 256).  ``_ENC_TABLE[b][v]`` is the
# full check byte of the word with byte value ``v`` in byte position
# ``b``; linearity makes encode an XOR of eight lookups.
# ----------------------------------------------------------------------
_ENC_TABLE: Tuple[Tuple[int, ...], ...] = tuple(
    tuple(_encode_reference(value << (8 * byte)) for value in range(256))
    for byte in range(8)
)

#: Syndrome (a codeword position in 1..71) -> data-bit index, or -1 when
#: the position carries a check bit.  Index 0 is unused (syndrome 0 is
#: handled before the lookup).
_SYNDROME_TO_DATA_BIT: Tuple[int, ...] = tuple(
    _DATA_POSITIONS.index(pos) if pos in _DATA_POSITIONS else -1
    for pos in range(_CODEWORD_BITS)
)


def encode(data: int) -> int:
    """Compute the 8 SECDED check bits for a 64-bit data word.

    Returns a byte whose bits 0..6 are the Hamming check bits for
    positions 1, 2, 4, 8, 16, 32, 64 and whose bit 7 is the overall
    parity of the full codeword.
    """
    if not 0 <= data <= _DATA_MASK:
        raise ValueError(f"data word out of 64-bit range: {data:#x}")
    t = _ENC_TABLE
    return (
        t[0][data & 0xFF]
        ^ t[1][(data >> 8) & 0xFF]
        ^ t[2][(data >> 16) & 0xFF]
        ^ t[3][(data >> 24) & 0xFF]
        ^ t[4][(data >> 32) & 0xFF]
        ^ t[5][(data >> 40) & 0xFF]
        ^ t[6][(data >> 48) & 0xFF]
        ^ t[7][(data >> 56) & 0xFF]
    )


def _assemble_codeword(data: int, check: int) -> int:
    """Interleave data and check bits into a 72-bit codeword integer."""
    word = 0
    for i, pos in enumerate(_DATA_POSITIONS):
        word |= ((data >> i) & 1) << pos
    for i, pos in enumerate(_PARITY_POSITIONS):
        word |= ((check >> i) & 1) << pos
    word |= ((check >> 7) & 1) << _OVERALL_POSITION
    return word


def _extract_data(codeword: int) -> int:
    """Pull the 64 data bits back out of a 72-bit codeword integer."""
    data = 0
    for i, pos in enumerate(_DATA_POSITIONS):
        data |= ((codeword >> pos) & 1) << i
    return data


def decode(data: int, check: int) -> DecodeResult:
    """Check (and if possible correct) a 64-bit data word.

    ``check`` is the stored 8-bit SECDED byte.  Implements the standard
    extended-Hamming decision table:

    * syndrome 0, parity OK        -> clean
    * syndrome 0, parity mismatch  -> overall-parity bit was flipped
    * syndrome S, parity mismatch  -> single-bit error at position S, fixed
    * syndrome S, parity OK        -> double error, uncorrectable

    Bits 0..6 of ``expected ^ check`` already *are* the syndrome: check
    bit ``i`` sits at codeword position ``2**i``, so ORing the positions
    of mismatched check bits equals the 7-bit XOR difference itself.  The
    received codeword's overall parity is the parity of data plus check
    bits (assembly only permutes them), so no codeword is materialised.
    """
    if not 0 <= data <= _DATA_MASK:
        raise ValueError(f"data word out of 64-bit range: {data:#x}")
    if not 0 <= check <= 0xFF:
        raise ValueError(f"check byte out of range: {check:#x}")

    syndrome = (encode(data) ^ check) & 0x7F
    parity_mismatch = (data.bit_count() + check.bit_count()) & 1

    if not parity_mismatch:
        if syndrome == 0:
            return DecodeResult(data, DecodeStatus.CLEAN, -1)
        return DecodeResult(data, DecodeStatus.DOUBLE_ERROR, -1)
    if syndrome == 0:
        # The overall parity bit itself flipped; data is intact.
        return DecodeResult(data, DecodeStatus.CORRECTED_CHECK, _OVERALL_POSITION)
    # Single-bit error at codeword position `syndrome`.  A 7-bit syndrome
    # can reach 72..127, which points outside the codeword: treat as
    # detected uncorrectable corruption.
    if syndrome >= _CODEWORD_BITS:
        return DecodeResult(data, DecodeStatus.DOUBLE_ERROR, -1)
    bit_index = _SYNDROME_TO_DATA_BIT[syndrome]
    if bit_index < 0:
        return DecodeResult(data, DecodeStatus.CORRECTED_CHECK, syndrome)
    return DecodeResult(
        data ^ (1 << bit_index), DecodeStatus.CORRECTED_DATA, syndrome
    )


def inject_error(data: int, check: int, positions: Tuple[int, ...]) -> Tuple[int, int]:
    """Flip codeword bits at the given positions; returns (data', check').

    Positions follow the codeword layout documented in the module header.
    Used by fault-injection tests.
    """
    codeword = _assemble_codeword(data, check)
    for pos in positions:
        if not 0 <= pos < _CODEWORD_BITS:
            raise ValueError(f"position out of range: {pos}")
        codeword ^= 1 << pos
    new_data = _extract_data(codeword)
    new_check = 0
    for i, pos in enumerate(_PARITY_POSITIONS):
        new_check |= ((codeword >> pos) & 1) << i
    new_check |= ((codeword >> _OVERALL_POSITION) & 1) << 7
    return new_data, new_check


def encode_line(words: Tuple[int, ...]) -> Tuple[int, ...]:
    """Encode each 64-bit word of a cache line; returns the check bytes.

    A 64-byte line is eight words, so the eight returned check bytes fill
    exactly the 8-byte ECC word stored on the ECC chip (paper §II-A).
    """
    return tuple(map(encode, words))


def decode_line(
    words: Tuple[int, ...], checks: Tuple[int, ...]
) -> Tuple[Tuple[int, ...], Tuple[DecodeResult, ...]]:
    """Decode every word of a line; returns (corrected words, results)."""
    if len(words) != len(checks):
        raise ValueError("words and checks length mismatch")
    results = tuple(decode(w, c) for w, c in zip(words, checks))
    return tuple(r.data for r in results), results
