"""Error detection and correction substrates: SECDED Hamming and PCC parity."""

from repro.ecc import hamming, parity
from repro.ecc.hamming import DecodeResult, DecodeStatus, decode, encode
from repro.ecc.parity import compute_parity, reconstruct_word, update_parity

__all__ = [
    "hamming",
    "parity",
    "DecodeResult",
    "DecodeStatus",
    "decode",
    "encode",
    "compute_parity",
    "reconstruct_word",
    "update_parity",
]
