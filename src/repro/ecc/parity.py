"""PCC (Parity Correction Code) — the tenth chip of a PCMap rank.

RoW (paper §IV-B) treats the chip busy with an ongoing write as if it were
a failed chip and reconstructs the word it would have returned from the
other seven data words plus a striped XOR parity word, exactly like the
rotating parity of RAID-5.  The PCC word of a line is simply the XOR of
its eight data words; reconstruction of any single missing word is the XOR
of the remaining seven with the parity.

These helpers operate on tuples of 64-bit integers (one per 8-byte word of
the 64-byte line).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

WORDS_PER_LINE = 8
_WORD_MASK = (1 << 64) - 1


def _check_words(words: Sequence[int], expected: int = WORDS_PER_LINE) -> None:
    if len(words) != expected:
        raise ValueError(f"expected {expected} words, got {len(words)}")
    for word in words:
        if not 0 <= word <= _WORD_MASK:
            raise ValueError(f"word out of 64-bit range: {word:#x}")


def compute_parity(words: Sequence[int]) -> int:
    """XOR parity word over the eight data words of a line."""
    _check_words(words)
    parity = 0
    for word in words:
        parity ^= word
    return parity


def update_parity(old_parity: int, old_word: int, new_word: int) -> int:
    """Incremental parity update when one data word changes.

    This is what the PCMap controller does in the second step of a RoW
    write: the PCC chip is updated with ``parity ^ old ^ new`` rather than
    re-reading the whole line.
    """
    for value in (old_parity, old_word, new_word):
        if not 0 <= value <= _WORD_MASK:
            raise ValueError(f"value out of 64-bit range: {value:#x}")
    return old_parity ^ old_word ^ new_word


def reconstruct_word(
    partial_words: Sequence[Optional[int]], parity: int
) -> Tuple[int, ...]:
    """Rebuild a line with exactly one missing word from the PCC parity.

    ``partial_words`` is the eight-entry word list with ``None`` in the
    position served by the busy (write-involved) chip.  Returns the full
    reconstructed line.  Raises ``ValueError`` unless exactly one word is
    missing — the PCC scheme can only tolerate a single busy chip, which
    is why RoW is restricted to writes with one essential word (§IV-B).
    """
    if len(partial_words) != WORDS_PER_LINE:
        raise ValueError(
            f"expected {WORDS_PER_LINE} entries, got {len(partial_words)}"
        )
    missing = [i for i, word in enumerate(partial_words) if word is None]
    if len(missing) != 1:
        raise ValueError(
            f"PCC reconstruction needs exactly 1 missing word, got {len(missing)}"
        )
    if not 0 <= parity <= _WORD_MASK:
        raise ValueError(f"parity out of 64-bit range: {parity:#x}")
    acc = parity
    for word in partial_words:
        if word is None:
            continue
        if not 0 <= word <= _WORD_MASK:
            raise ValueError(f"word out of 64-bit range: {word:#x}")
        acc ^= word
    rebuilt = list(partial_words)
    rebuilt[missing[0]] = acc
    return tuple(rebuilt)  # type: ignore[arg-type]


def can_reconstruct(busy_word_indices: Sequence[int]) -> bool:
    """True when the set of busy chips is recoverable by a single parity.

    The controller uses this predicate when deciding whether a read can be
    served over an ongoing write (RoW eligibility).
    """
    return len(set(busy_word_indices)) <= 1
