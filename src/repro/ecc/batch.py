"""Vectorized batch SECDED/PCC codec (the ``repro[fast]`` path).

:mod:`repro.ecc.hamming` encodes and decodes one 64-bit word per Python
call — fine for spot checks, but the simulator's functional layer touches
words by the million (cold-line materialisation, differential writes,
fault-campaign verification).  This module lifts the same byte-sliced
table construction onto numpy arrays so a whole batch of words — or whole
cache lines of eight words plus their check bytes and PCC parity — is
encoded or decoded in a handful of array operations:

* **encode** — the 8×256 contribution tables of the scalar fast path are
  stacked into one ``(8, 256)`` ``uint8`` array; encoding N words is
  eight ``np.take`` gathers XORed together, exactly mirroring
  ``hamming.encode``'s eight table lookups.
* **decode** — the syndrome is ``encode(words) ^ checks`` (bits 0..6),
  the overall parity is a popcount parity, and the correct/detect
  decision table is evaluated branch-free: a 128-entry syndrome →
  data-bit-index table (``np.take``) yields the flip mask, and boolean
  masks select between CLEAN / CORRECTED_DATA / CORRECTED_CHECK /
  DOUBLE_ERROR, matching :func:`repro.ecc.hamming.decode` bit for bit.
* **lines** — 64-byte lines are ``(N, 8)`` ``uint64`` arrays; check
  bytes come from the word encoder and the PCC word is an XOR reduction
  along the word axis (:mod:`repro.ecc.parity` semantics).
* **cold lines** — the splitmix64-style cold pattern of
  :mod:`repro.memory.storage` is a pure function of the line address, so
  it vectorises exactly (``uint64`` arithmetic wraps mod 2**64 just like
  the masked Python-int arithmetic).

numpy is an *optional* dependency (``pip install repro[fast]``).  When it
is missing — or when ``REPRO_NO_NUMPY`` is set in the environment, which
CI's fallback leg uses to exercise this path deliberately — the module
still imports, ``HAS_NUMPY`` is ``False``, and every caller falls back to
the scalar implementations.  The scalar and vector paths are held
bit-identical by the parity fuzz suite (``tests/ecc/test_batch.py``),
which is what lets the storage layer switch between them freely without
moving the golden traces.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

from repro.ecc import hamming
from repro.ecc.hamming import DecodeResult, DecodeStatus

__all__ = [
    "HAS_NUMPY",
    "numpy_disabled_reason",
    "encode_words",
    "decode_words",
    "encode_lines",
    "cold_line_words",
    "decode_words_py",
    "STATUS_CLEAN",
    "STATUS_CORRECTED_DATA",
    "STATUS_CORRECTED_CHECK",
    "STATUS_DOUBLE_ERROR",
    "STATUS_TO_ENUM",
]

#: Integer status codes used by :func:`decode_words` (arrays cannot hold
#: enum members without object dtype).  ``STATUS_TO_ENUM`` maps them back.
STATUS_CLEAN = 0
STATUS_CORRECTED_DATA = 1
STATUS_CORRECTED_CHECK = 2
STATUS_DOUBLE_ERROR = 3

STATUS_TO_ENUM: Tuple[DecodeStatus, ...] = (
    DecodeStatus.CLEAN,
    DecodeStatus.CORRECTED_DATA,
    DecodeStatus.CORRECTED_CHECK,
    DecodeStatus.DOUBLE_ERROR,
)

_WORD_MASK = (1 << 64) - 1

np = None
_disabled_reason: Optional[str] = None
if os.environ.get("REPRO_NO_NUMPY"):
    _disabled_reason = "REPRO_NO_NUMPY is set in the environment"
else:
    try:
        import numpy as np  # type: ignore[no-redef]
    except ImportError:
        _disabled_reason = "numpy is not installed (pip install repro[fast])"

HAS_NUMPY = np is not None


def numpy_disabled_reason() -> Optional[str]:
    """Why the vector path is unavailable, or ``None`` when it is live."""
    return _disabled_reason


if HAS_NUMPY:
    #: (8, 256) stacked byte-contribution tables — row ``b`` is the check
    #: byte of the word whose byte ``b`` is the column value (all other
    #: bytes zero); GF(2)-linearity makes encode the XOR of eight rows.
    _ENC_TABLE = np.array(hamming._ENC_TABLE, dtype=np.uint8)

    #: Syndrome (7 bits, 0..127) -> data-bit index, or -1 for check-bit
    #: positions *and* for syndromes outside the 72-bit codeword; the
    #: out-of-codeword distinction is re-applied via a >= 72 compare.
    _SYNDROME_TO_BIT = np.full(128, -1, dtype=np.int8)
    for _pos, _bit in enumerate(hamming._SYNDROME_TO_DATA_BIT):
        _SYNDROME_TO_BIT[_pos] = _bit

    _U64 = np.uint64
    _SHIFTS = tuple(_U64(8 * b) for b in range(8))
    _BYTE = _U64(0xFF)

    if hasattr(np, "bitwise_count"):
        def _popcount(values: "np.ndarray") -> "np.ndarray":
            return np.bitwise_count(values)
    else:  # pragma: no cover - numpy < 2.0 fallback
        _POP8 = np.array(
            [bin(v).count("1") for v in range(256)], dtype=np.uint8
        )

        def _popcount(values: "np.ndarray") -> "np.ndarray":
            as_bytes = values.reshape(-1).view(np.uint8)
            counts = _POP8[as_bytes].reshape(values.shape + (-1,))
            return counts.sum(axis=-1, dtype=np.uint8)


def _require_numpy() -> None:
    if not HAS_NUMPY:
        raise RuntimeError(
            f"repro.ecc.batch vector path unavailable: {_disabled_reason}"
        )


# ----------------------------------------------------------------------
# Word-level batch codec
# ----------------------------------------------------------------------
def encode_words(words: "np.ndarray") -> "np.ndarray":
    """SECDED check bytes of a ``uint64`` array of data words.

    Accepts any shape; returns ``uint8`` of the same shape.  Mirrors
    :func:`repro.ecc.hamming.encode` (eight table lookups XORed).
    """
    _require_numpy()
    w = np.ascontiguousarray(words, dtype=_U64)
    flat = w.reshape(-1)
    out = np.take(_ENC_TABLE[0], (flat & _BYTE).astype(np.intp))
    for b in range(1, 8):
        out ^= np.take(
            _ENC_TABLE[b], ((flat >> _SHIFTS[b]) & _BYTE).astype(np.intp)
        )
    return out.reshape(w.shape)


def decode_words(
    words: "np.ndarray", checks: "np.ndarray"
) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
    """Batch SECDED decode; returns ``(data, status, flipped_position)``.

    ``data`` is the corrected ``uint64`` word array, ``status`` holds the
    ``STATUS_*`` codes and ``flipped_position`` the corrected codeword
    position (``-1`` when none), all shaped like the input — the exact
    decision table of :func:`repro.ecc.hamming.decode`, evaluated
    branch-free over the whole batch.
    """
    _require_numpy()
    w = np.ascontiguousarray(words, dtype=_U64)
    c = np.ascontiguousarray(checks, dtype=np.uint8)
    if w.shape != c.shape:
        raise ValueError(f"shape mismatch: words {w.shape}, checks {c.shape}")

    syndrome = ((encode_words(w) ^ c) & np.uint8(0x7F)).astype(np.intp)
    parity_mismatch = ((_popcount(w) + _popcount(c)) & np.uint8(1)).astype(bool)

    bit_index = np.take(_SYNDROME_TO_BIT, syndrome)
    correctable_data = parity_mismatch & (syndrome < 72) & (bit_index >= 0)

    # Corrected data: flip the syndrome-addressed bit; others unchanged.
    flip = np.zeros(w.shape, dtype=_U64)
    flip[correctable_data] = _U64(1) << bit_index[correctable_data].astype(
        _U64
    )
    data = w ^ flip

    status = np.full(w.shape, STATUS_DOUBLE_ERROR, dtype=np.int8)
    status[~parity_mismatch & (syndrome == 0)] = STATUS_CLEAN
    status[correctable_data] = STATUS_CORRECTED_DATA
    # Parity mismatch with a check-bit syndrome (including syndrome 0,
    # the overall-parity bit itself) — data is intact.
    status[parity_mismatch & (syndrome < 72) & (bit_index < 0)] = (
        STATUS_CORRECTED_CHECK
    )

    flipped = np.where(
        (status == STATUS_CORRECTED_DATA) | (status == STATUS_CORRECTED_CHECK),
        syndrome,
        -1,
    ).astype(np.int64)
    return data, status, flipped


# ----------------------------------------------------------------------
# Line-level batch codec
# ----------------------------------------------------------------------
def encode_lines(lines: "np.ndarray") -> Tuple["np.ndarray", "np.ndarray"]:
    """Check bytes and PCC parity of an ``(..., 8)`` array of lines.

    Returns ``(checks, pcc)`` where ``checks`` matches the input shape
    and ``pcc`` drops the word axis — the XOR of the eight data words,
    i.e. :func:`repro.ecc.parity.compute_parity` over every line at once.
    """
    _require_numpy()
    arr = np.ascontiguousarray(lines, dtype=_U64)
    if arr.shape[-1] != 8:
        raise ValueError(f"last axis must hold 8 words, got {arr.shape}")
    checks = encode_words(arr)
    pcc = np.bitwise_xor.reduce(arr, axis=-1)
    return checks, pcc


# ----------------------------------------------------------------------
# Cold-line pattern (mirrors repro.memory.storage._cold_pattern)
# ----------------------------------------------------------------------
_COLD_GAMMA = 0x9E3779B97F4A7C15
_COLD_MIX1 = 0xBF58476D1CE4E5B9
_COLD_MIX2 = 0x94D049BB133111EB


def cold_line_words(line_addresses: "np.ndarray") -> "np.ndarray":
    """Deterministic cold contents of many lines as an ``(N, 8)`` array.

    Bit-identical to :func:`repro.memory.storage._cold_pattern`: uint64
    arithmetic wraps modulo 2**64 exactly like the masked Python-int
    splitmix64 mix.
    """
    _require_numpy()
    addresses = np.ascontiguousarray(line_addresses, dtype=_U64)
    z = (
        addresses[..., None] * _U64(8)
        + np.arange(8, dtype=_U64)
        + _U64(_COLD_GAMMA)
    )
    z = (z ^ (z >> _U64(30))) * _U64(_COLD_MIX1)
    z = (z ^ (z >> _U64(27))) * _U64(_COLD_MIX2)
    return z ^ (z >> _U64(31))


# ----------------------------------------------------------------------
# Python-facing conveniences (tests, fallback comparisons)
# ----------------------------------------------------------------------
def decode_words_py(
    words: Sequence[int], checks: Sequence[int]
) -> List[DecodeResult]:
    """Batch decode returning scalar-API :class:`DecodeResult` objects.

    Uses the vector path when available, the scalar decoder otherwise —
    callers get identical results either way (that equivalence is the
    contract the fuzz suite enforces).
    """
    if len(words) != len(checks):
        raise ValueError("words and checks length mismatch")
    if not HAS_NUMPY:
        return [hamming.decode(w, c) for w, c in zip(words, checks)]
    data, status, flipped = decode_words(
        np.array(words, dtype=_U64), np.array(checks, dtype=np.uint8)
    )
    return [
        DecodeResult(int(d), STATUS_TO_ENUM[int(s)], int(f))
        for d, s, f in zip(data, status, flipped)
    ]
