"""Concrete write payloads for functional fault campaigns.

The synthetic trace generators emit *shape* — addresses, dirty masks,
gaps — but no data values (``new_words is None``), and the functional
storage then treats a write as "no change".  Fault campaigns need real
payloads so commits actually move memory state and the golden model has
something to mirror.  :class:`WritePayloadAdapter` wraps a core's
record stream and fills in ``new_words`` for every dirty write-back.

Two modes:

* ``"static"`` — the payload is :func:`static_word`, a pure function of
  ``(line, word)``.  Writing the same line twice writes the same words,
  so the *final* memory state is independent of write ordering.  The
  cross-system convergence check depends on this: PCMap's schedulers
  legitimately reorder same-line writes relative to the baseline, and
  order-dependent payloads would diverge for reasons that are not bugs.
* ``"random"`` — fresh ``getrandbits(64)`` values from a per-adapter
  seeded stream for every dirty word.  Exercises the PCC drift and ECC
  re-encode paths much harder (every overwrite changes the word) and is
  what the fault campaigns use.

Records that are not dirty write-backs — reads, and the silent
(``dirty_mask == 0``) write-backs the paper's §IV essential-word
detector study relies on — pass through *unchanged*: giving a silent
write-back fresh payload words would make the detector see every word
as modified and expand the mask, changing the experiment.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Iterator

from repro.memory.request import WORDS_PER_LINE
from repro.trace.record import AccessKind, TraceRecord

_WORD_MASK = (1 << 64) - 1

# Distinct mixing constants from the cold pattern's, so "the payload
# happens to equal the cold word" never aliases a missed commit.
_PAY_1 = 0xD6E8FEB86659FD93
_PAY_2 = 0xA3B195354A39B70D


def static_word(line_address: int, word: int) -> int:
    """Pure ``(line, word) -> payload`` — order-independent final state."""
    z = (line_address * (WORDS_PER_LINE + 1) + word + 0x2545F4914F6CDD1D) & _WORD_MASK
    z = ((z ^ (z >> 29)) * _PAY_1) & _WORD_MASK
    z = ((z ^ (z >> 32)) * _PAY_2) & _WORD_MASK
    return z ^ (z >> 29)


class WritePayloadAdapter:
    """Iterator wrapper filling in ``new_words`` on dirty write-backs."""

    def __init__(
        self,
        records: Iterator[TraceRecord],
        mode: str = "random",
        seed: int = 1,
        core_id: int = 0,
    ):
        if mode not in ("static", "random"):
            raise ValueError(f"unknown payload mode: {mode!r}")
        self._records = iter(records)
        self.mode = mode
        self.rng = random.Random((seed * 0x100000001B3) ^ (core_id * 0x01000193))
        self.filled = 0

    def __iter__(self) -> "WritePayloadAdapter":
        return self

    def __next__(self) -> TraceRecord:
        record = next(self._records)
        if (
            record.kind is not AccessKind.WRITE_BACK
            or record.dirty_mask == 0
            or record.new_words is not None
        ):
            return record
        line = record.address // 64
        if self.mode == "static":
            words = tuple(
                static_word(line, w) if record.dirty_mask & (1 << w) else 0
                for w in range(WORDS_PER_LINE)
            )
        else:
            words = tuple(
                self.rng.getrandbits(64) if record.dirty_mask & (1 << w) else 0
                for w in range(WORDS_PER_LINE)
            )
        self.filled += 1
        return dataclasses.replace(record, new_words=words)
