"""Seeded end-to-end fault campaigns and the differential checks.

A *campaign* is one full-system simulation (cores, schedulers, RoW/WoW
machinery) run against a :class:`~repro.faults.storage.FaultInjectingStorage`
with the differential oracle wired into every controller's read
completion path.  Everything — fault sites, payloads, scheduling — is a
function of the spec, so the same spec produces a byte-identical JSON
report (:func:`report_json`); the CI smoke job and the reproducibility
test both rely on this.

Three entry points sit behind the ``repro faults`` CLI command:

* :func:`run_campaign` — one seeded fault campaign with a full report
  (injections, SECDED outcomes, RoW mis-verify/rollback rate, oracle
  verdict);
* :func:`cross_system_convergence` — all six paper systems replay the
  same request stream with faults *off* and order-independent payloads;
  their golden end-states must be fingerprint-identical and every
  simulated array must match its golden model exactly;
* :func:`oracle_selftest` — deliberately plants an *untracked* silent
  corruption (``MemoryStorage.corrupt_bit``, which bypasses the fault
  ledger) and fails unless the oracle catches it.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.systems import SYSTEM_NAMES, make_system
from repro.faults.models import FaultConfig
from repro.faults.oracle import DifferentialOracle
from repro.faults.payload import WritePayloadAdapter
from repro.faults.storage import FaultInjectingStorage
from repro.sim.simulator import SimulationParams, SystemSimulator
from repro.telemetry import Telemetry

#: Table IV's mis-verify ceiling: canneal's 5.8 % of RoW reads.
PAPER_MISVERIFY_CEILING = 0.058

#: Default campaign fault rates: high enough that a few-thousand-request
#: run exercises every outcome class (correctable disturb, uncorrectable
#: doubles, stuck-at endurance faults, PCC poisoning → mis-verify
#: rollbacks), low enough that the RoW mis-verify rate stays inside the
#: paper's ≤5.8 % band.
DEFAULT_FAULTS = FaultConfig(
    read_disturb_rate=0.04,
    write_fail_rate=0.003,
    stuck_at_threshold=6,
    stuck_cells_per_line=2,
)


@dataclass(frozen=True)
class FaultCampaignSpec:
    """Everything a campaign depends on — the report is a function of this."""

    workload: str = "canneal"
    system: str = "rwow-rde"
    seed: int = 1
    target_requests: int = 2_000
    n_cores: int = 8
    fault: FaultConfig = field(default_factory=lambda: DEFAULT_FAULTS)
    #: ``"random"`` (default) stresses PCC drift/re-encode hardest;
    #: ``"static"`` keeps final state order-independent.
    payload_mode: str = "random"
    #: Working-set override (lines per core).  Fault observation needs
    #: line *reuse* — a disturb only matters if the line is read again —
    #: so campaigns default to a hot, cache-resident footprint instead
    #: of the workload's full multi-GB one.  ``None`` keeps the profile.
    footprint_lines: Optional[int] = 1_536

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "system": self.system,
            "seed": self.seed,
            "target_requests": self.target_requests,
            "n_cores": self.n_cores,
            "fault": self.fault.as_dict(),
            "payload_mode": self.payload_mode,
            "footprint_lines": self.footprint_lines,
        }


def build_campaign(
    spec: FaultCampaignSpec,
) -> Tuple[SystemSimulator, FaultInjectingStorage, DifferentialOracle, Telemetry]:
    """Wire one campaign: system, fault storage, oracle, payload adapters.

    ``row_rollback_rate=1e-12`` pins the statistical consumed-early
    model effectively off (0.0 would make the simulator auto-wire the
    workload's Table IV rate), so every observed rollback is a genuine
    corruption caught by the deferred verify.
    """
    system = make_system(spec.system, functional=True, row_rollback_rate=1e-12)
    telemetry = Telemetry.disabled()
    oracle = DifferentialOracle()
    storage = FaultInjectingStorage(
        keep_pcc=system.geometry.has_pcc_chip,
        fault=spec.fault,
        seed=spec.seed,
        telemetry=telemetry,
        oracle=oracle,
    )
    oracle.attach(storage)
    params = SimulationParams(
        n_cores=spec.n_cores,
        target_requests=spec.target_requests,
        seed=spec.seed,
    )
    from repro.trace.workloads import get_workload

    workload = get_workload(spec.workload)
    if spec.footprint_lines is not None:
        workload = dataclasses.replace(
            workload, footprint_lines=spec.footprint_lines
        )
    sim = SystemSimulator(system, workload, params, telemetry, storage=storage)
    for core in sim.multicore.cores:
        core.records = WritePayloadAdapter(
            core.records,
            mode=spec.payload_mode,
            seed=spec.seed,
            core_id=core.core_id,
        )
    for controller in sim.memory.controllers:
        controller.read_completion_hook = oracle.on_read_complete
    return sim, storage, oracle, telemetry


def _drain(sim: SystemSimulator) -> None:
    """Run the engine dry: cores are done but tail write-backs and
    deferred verifies may still be in flight."""
    while sim.engine.step():
        pass


def run_campaign(spec: FaultCampaignSpec) -> dict:
    """Run one seeded campaign and return its (deterministic) report."""
    sim, storage, oracle, telemetry = build_campaign(spec)
    result = sim.run()
    _drain(sim)
    oracle.check_all(storage)

    metrics = telemetry.metrics
    row_reads = metrics.value("row.reads")
    verifications = metrics.value("verifications")
    rollbacks = metrics.value("rollbacks")
    rollbacks_corrupted = metrics.value("rollbacks.corrupted")
    misverify_rate = rollbacks_corrupted / row_reads if row_reads else 0.0

    return {
        "schema": "repro.faults.campaign/1",
        "spec": spec.as_dict(),
        "injected": storage.counters.as_dict(),
        "row": {
            "row_reads": row_reads,
            "verifications": verifications,
            "rollbacks": rollbacks,
            "rollbacks_corrupted": rollbacks_corrupted,
            "misverify_rate": round(misverify_rate, 6),
            "paper_ceiling": PAPER_MISVERIFY_CEILING,
            "within_paper_band": misverify_rate <= PAPER_MISVERIFY_CEILING,
        },
        "rollback_penalty_cycles": sum(
            core.rollback_model.penalty_cycles_total
            for core in sim.multicore.cores
        ),
        "oracle": oracle.as_dict(),
        "storage": {
            "lines_materialised": len(storage),
            "total_writes": storage.wear.total_writes,
            "max_line_writes": storage.wear.max_line_writes(),
            "stuck_lines": len(storage._stuck),
        },
        "result": {
            "system": result.system_name,
            "workload": result.workload_name,
            "instructions": result.instructions,
            "sim_ticks": result.sim_ticks,
            "ipc": round(result.ipc, 6),
        },
        "ok": oracle.ok,
    }


def report_json(report: dict) -> str:
    """Canonical JSON encoding — byte-stable for identical reports."""
    return json.dumps(report, indent=1, sort_keys=True)


def cross_system_convergence(
    workload: str = "canneal",
    seed: int = 1,
    target_requests: int = 1_500,
    systems: Optional[List[str]] = None,
) -> dict:
    """Replay one request stream through every system, faults off.

    With order-independent ("static") payloads, identical per-core
    record streams and no faults, all six systems must drive memory to
    the same final contents — scheduling may reorder commits but cannot
    change them.  Each run is also held to its own differential oracle.
    """
    names = systems if systems is not None else list(SYSTEM_NAMES)
    fingerprints: Dict[str, str] = {}
    oracle_ok: Dict[str, bool] = {}
    for name in names:
        spec = FaultCampaignSpec(
            workload=workload,
            system=name,
            seed=seed,
            target_requests=target_requests,
            fault=FaultConfig.disabled(),
            payload_mode="static",
        )
        sim, storage, oracle, _telemetry = build_campaign(spec)
        sim.run()
        _drain(sim)
        oracle.check_all(storage)
        fingerprints[name] = oracle.golden.fingerprint()
        oracle_ok[name] = oracle.ok
    converged = len(set(fingerprints.values())) == 1 and all(oracle_ok.values())
    return {
        "schema": "repro.faults.convergence/1",
        "workload": workload,
        "seed": seed,
        "target_requests": target_requests,
        "systems": names,
        "fingerprints": fingerprints,
        "oracle_ok": oracle_ok,
        "converged": converged,
    }


def oracle_selftest(seed: int = 1) -> dict:
    """Plant an untracked silent corruption; the oracle must catch it.

    ``MemoryStorage.corrupt_bit`` flips a data bit *without* a ledger
    entry — exactly the signature of a simulator bug that corrupts
    memory state behind the ECC machinery's back.  A harness that lets
    this survive its end-of-run sweep is not protecting anything.
    """
    spec = FaultCampaignSpec(
        workload="ferret",
        system="rwow-rd",
        seed=seed,
        target_requests=600,
        fault=FaultConfig.disabled(),
        payload_mode="static",
    )
    sim, storage, oracle, _telemetry = build_campaign(spec)
    sim.run()
    _drain(sim)
    clean_before = oracle.check_all(storage)
    planted_line = min(storage.lines())
    storage.corrupt_bit(planted_line, word=3, bit=17)
    detected = not oracle.check_line(storage, planted_line, when="final")
    return {
        "schema": "repro.faults.selftest/1",
        "seed": seed,
        "clean_before_plant": clean_before,
        "planted_line": planted_line,
        "detected": detected,
        "passed": clean_before and detected,
        "violations": [str(v) for v in oracle.violations[:3]],
    }
