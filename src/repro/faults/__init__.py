"""Fault injection and differential validation (PCM reliability).

The subsystem has four layers:

* :mod:`repro.faults.models` — deterministic, seedable fault models
  (transient read disturb, wear-correlated stuck-at cells, write
  failures) and their outcome taxonomy;
* :mod:`repro.faults.storage` — :class:`FaultInjectingStorage`, a
  drop-in :class:`~repro.memory.storage.MemoryStorage` that injects the
  models at the array boundary and runs the controller-side SECDED
  correct/detect/scrub pass on every line read;
* :mod:`repro.faults.oracle` — the shadow golden-memory model and the
  differential checks (per-read, end-of-run) that pin the simulated
  array to it;
* :mod:`repro.faults.campaign` — seeded end-to-end fault campaigns, the
  cross-system convergence check and the oracle self-test behind the
  ``repro faults`` CLI command and ``benchmarks/bench_misverify.py``.

See docs/FAULTS.md for the model semantics and seed discipline.
"""

from repro.faults.campaign import (
    DEFAULT_FAULTS,
    FaultCampaignSpec,
    cross_system_convergence,
    oracle_selftest,
    report_json,
    run_campaign,
)
from repro.faults.models import FaultConfig, FaultCounters, StuckCell, derive_stuck_cells
from repro.faults.oracle import DifferentialOracle, GoldenMemory
from repro.faults.payload import WritePayloadAdapter, static_word
from repro.faults.storage import FaultInjectingStorage

__all__ = [
    "DEFAULT_FAULTS",
    "DifferentialOracle",
    "FaultCampaignSpec",
    "FaultConfig",
    "FaultCounters",
    "FaultInjectingStorage",
    "GoldenMemory",
    "StuckCell",
    "WritePayloadAdapter",
    "cross_system_convergence",
    "derive_stuck_cells",
    "oracle_selftest",
    "report_json",
    "run_campaign",
    "static_word",
]
