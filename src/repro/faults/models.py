"""Deterministic, seedable PCM fault models.

Three array-level error mechanisms from the PCM reliability literature
(resistance drift / read disturb, endurance-driven stuck-at cells, and
incomplete SET/RESET programming) are reduced to rate parameters that the
:class:`~repro.faults.storage.FaultInjectingStorage` applies at the
storage boundary:

* **transient read disturb** — every ``read_line`` access flips one
  random bit of one random slot (data word, SECDED byte, or PCC word)
  with probability ``read_disturb_rate``.  The flip lands in the array
  *after* the access that caused it, so it is observed — and normally
  corrected — by the next read of the line.
* **wear-correlated stuck-at cells** — once a line has absorbed
  ``stuck_at_threshold`` committed writes (tracked with
  :class:`repro.memory.wear.WearStats`), ``stuck_cells_per_line`` cells
  become permanently stuck at a fixed value.  Which cells, and at which
  value, is a pure function of ``(seed, line)`` — see
  :func:`derive_stuck_cells` — so campaigns are bit-reproducible.
* **write failure** — each committed word (and the PCC update) fails to
  latch one random bit with probability ``write_fail_rate`` per word.

Every fault is recorded in a ledger (the XOR distance of each slot from
its *pristine* value — the value its SECDED byte was computed from), so
read-time decodes can be classified exactly:

* ``corrected`` — the SECDED decode returned the pristine word (the
  array is scrubbed back to it);
* ``detected_uncorrectable`` — a double error, flagged but not fixed;
* ``silent`` — the decode reported clean or "corrected" to a value that
  is *not* the pristine word (aliased multi-bit corruption).

All randomness flows through one ``random.Random(seed)`` stream consumed
in (deterministic) engine event order, plus the pure per-line stuck-cell
derivation, so a campaign's full fault set is a function of its seed.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Tuple

from repro.memory.request import WORDS_PER_LINE

#: Logical slot indices a fault can target: data words 0..7, then the
#: SECDED byte lane (the ECC chip's word), then the PCC parity word.
CHECK_SLOT = WORDS_PER_LINE       #: slot 8 — the SECDED check bytes
PCC_SLOT = WORDS_PER_LINE + 1     #: slot 9 — the XOR parity word

_MIX_1 = 0xBF58476D1CE4E5B9
_MIX_2 = 0x94D049BB133111EB
_GOLDEN = 0x9E3779B97F4A7C15
_WORD_MASK = (1 << 64) - 1


@dataclass(frozen=True)
class FaultConfig:
    """Rate parameters of the three fault models (all off by default)."""

    #: Probability per ``read_line`` access of one transient bit flip.
    read_disturb_rate: float = 0.0
    #: Probability per committed word (and per PCC update) of one
    #: incompletely programmed bit.
    write_fail_rate: float = 0.0
    #: Committed writes to a line after which its stuck cells appear
    #: (0 disables the stuck-at model).
    stuck_at_threshold: int = 0
    #: Cells that become stuck once the threshold is crossed.
    stuck_cells_per_line: int = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_disturb_rate <= 1.0:
            raise ValueError(
                f"read disturb rate out of range: {self.read_disturb_rate}"
            )
        if not 0.0 <= self.write_fail_rate <= 1.0:
            raise ValueError(
                f"write fail rate out of range: {self.write_fail_rate}"
            )
        if self.stuck_at_threshold < 0:
            raise ValueError("stuck-at threshold must be non-negative")
        if self.stuck_cells_per_line < 1:
            raise ValueError("stuck cells per line must be positive")

    @property
    def enabled(self) -> bool:
        """True when any model can actually inject a fault."""
        return (
            self.read_disturb_rate > 0.0
            or self.write_fail_rate > 0.0
            or self.stuck_at_threshold > 0
        )

    @classmethod
    def disabled(cls) -> "FaultConfig":
        """All models off — injection hooks become pass-throughs."""
        return cls()

    def as_dict(self) -> dict:
        """JSON-safe echo of the configuration (campaign reports)."""
        return asdict(self)


@dataclass
class FaultCounters:
    """Injection and per-outcome accounting for one storage instance."""

    read_disturb_injected: int = 0
    write_fail_injected: int = 0
    stuck_lines_activated: int = 0
    stuck_cells_activated: int = 0
    #: SECDED decode outcomes over fault-tracked words (one count per
    #: observation: a persistent stuck cell is re-corrected — and
    #: re-counted — on every read of its word).
    corrected: int = 0
    detected_uncorrectable: int = 0
    silent: int = 0

    def as_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class StuckCell:
    """One permanently stuck bit of a line."""

    slot: int    #: data word 0..7, CHECK_SLOT, or PCC_SLOT
    bit: int     #: bit index within the slot's word
    value: int   #: 0 (stuck-at-reset) or 1 (stuck-at-set)

    def force(self, word: int) -> int:
        """``word`` with this cell's bit forced to its stuck value."""
        if self.value:
            return word | (1 << self.bit)
        return word & ~(1 << self.bit)


def _mix64(value: int) -> int:
    """splitmix64 finaliser — the same mixing the cold pattern uses."""
    z = (value + _GOLDEN) & _WORD_MASK
    z = ((z ^ (z >> 30)) * _MIX_1) & _WORD_MASK
    z = ((z ^ (z >> 27)) * _MIX_2) & _WORD_MASK
    return z ^ (z >> 31)


def derive_stuck_cells(
    seed: int,
    line_address: int,
    count: int,
    include_pcc: bool,
) -> Tuple[StuckCell, ...]:
    """The stuck cells of ``line_address`` — a pure function of the seed.

    Wear decides *when* cells get stuck (the write-count threshold);
    this decides *which* cells, without any mutable state, so the same
    seed always condemns the same cells regardless of access order.
    Distinct derived cells are guaranteed (duplicates are re-mixed).
    """
    n_slots = (PCC_SLOT + 1) if include_pcc else CHECK_SLOT + 1
    cells = []
    taken = set()
    stream = (seed & _WORD_MASK) ^ _mix64(line_address)
    draw = 0
    while len(cells) < count:
        raw = _mix64(stream ^ (draw * 0x632BE59BD9B4E019))
        draw += 1
        slot = raw % n_slots
        # Every slot is one chip's 64-bit word for the line; for the
        # CHECK_SLOT lane, bit ``b`` lands in word ``b // 8``'s check
        # byte at bit ``b % 8``.
        bit = (raw >> 8) % 64
        if (slot, bit) in taken:
            continue
        taken.add((slot, bit))
        cells.append(StuckCell(slot=slot, bit=bit, value=(raw >> 32) & 1))
    return tuple(cells)
