"""Fault-injecting functional storage.

:class:`FaultInjectingStorage` subclasses the plain
:class:`~repro.memory.storage.MemoryStorage` so it drops into the
existing ``storage`` slot of :class:`~repro.memory.memsys.MainMemory`
(and every controller) without touching their hot paths — a simulation
built without it pays nothing, which is what keeps the golden traces and
``BENCH_perf.json`` fingerprints byte-identical when faults are off.

With faults on, every ``read_line`` models what the memory controller's
SECDED stage actually does on a 72-bit codeword read:

1. decode each fault-tracked word against its stored check byte,
2. classify the outcome against the ledger's pristine value
   (``corrected`` / ``detected_uncorrectable`` / ``silent``),
3. *scrub* correctable words back into the array (stuck cells reassert
   themselves immediately, so endurance faults stay persistent), and
4. inject this access's read disturb *after* the decode — the
   disturbance is caused by the read and observed by the next one.

The PCC parity word has no check byte of its own, so PCC corruption is
never scrubbed; it survives until a RoW reconstruction consumes it and
the deferred verify in :mod:`repro.core.row` catches the mismatch —
exactly the paper's mis-verify → CPU rollback path.  Overwriting a
corrupted data word also migrates its error into the PCC (the
incremental ``pcc ^= old ^ new`` update xors the *raw* old word), which
the ledger tracks precisely.

Every mutation goes through ledger-aware XOR helpers, so the invariant

    ``raw slot value  ==  pristine value  XOR  ledger flip mask``

holds at all times; the differential oracle checks exactly this
against its golden model.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.ecc import hamming
from repro.faults.models import (
    CHECK_SLOT,
    PCC_SLOT,
    FaultConfig,
    FaultCounters,
    StuckCell,
    derive_stuck_cells,
)
from repro.memory.request import WORDS_PER_LINE
from repro.memory.storage import MemoryStorage, StoredLine
from repro.memory.wear import WearStats
from repro.telemetry import Telemetry

_FULL_MASK = (1 << WORDS_PER_LINE) - 1


class FaultInjectingStorage(MemoryStorage):
    """Functional backing store with deterministic fault injection."""

    def __init__(
        self,
        keep_pcc: bool = True,
        fault: Optional[FaultConfig] = None,
        seed: int = 1,
        telemetry: Optional[Telemetry] = None,
        oracle: Optional[object] = None,
    ):
        super().__init__(keep_pcc)
        self.fault = fault if fault is not None else FaultConfig.disabled()
        self.seed = seed
        self.oracle = oracle
        self.counters = FaultCounters()
        self.wear = WearStats()
        self.rng = random.Random((seed * 0x9E3779B1) ^ 0x5BD1E995)
        self._inject = self.fault.enabled

        #: Ledger: XOR distance of each raw slot from its pristine value.
        self._data_flips: Dict[Tuple[int, int], int] = {}
        self._check_flips: Dict[Tuple[int, int], int] = {}
        self._pcc_flips: Dict[int, int] = {}
        #: Lines with any live ledger entry (scrub fast-path filter).
        self._faulty_lines: Set[int] = set()
        #: Activated stuck cells per line.
        self._stuck: Dict[int, Tuple[StuckCell, ...]] = {}

        # Per-outcome telemetry: mirrored into the shared registry so
        # campaign reports and ``repro stats`` see the same numbers.
        metrics = (telemetry or Telemetry.disabled()).metrics
        self._m_corrected = metrics.counter("faults.outcome.corrected")
        self._m_uncorrectable = metrics.counter(
            "faults.outcome.detected_uncorrectable"
        )
        self._m_silent = metrics.counter("faults.outcome.silent")
        self._m_injected = metrics.counter("faults.injected.total")

    # ==================================================================
    # Ledger accessors (oracle + tests)
    # ==================================================================
    def raw_line(self, line_address: int) -> StoredLine:
        """The array contents without decode/scrub/injection side effects."""
        return self._materialise(line_address)

    def data_flip(self, line_address: int, word: int) -> int:
        return self._data_flips.get((line_address, word), 0)

    def check_flip(self, line_address: int, word: int) -> int:
        return self._check_flips.get((line_address, word), 0)

    def pcc_flip(self, line_address: int) -> int:
        return self._pcc_flips.get(line_address, 0)

    def stuck_cells(self, line_address: int) -> Tuple[StuckCell, ...]:
        return self._stuck.get(line_address, ())

    def lines(self) -> Iterable[int]:
        """Addresses of every materialised line."""
        return self._lines.keys()

    # ==================================================================
    # Ledger-aware mutation helpers
    # ==================================================================
    def _xor_data(self, line_address: int, word: int, mask: int) -> None:
        if not mask:
            return
        line = self._materialise(line_address)
        words = list(line.words)
        words[word] ^= mask
        self._lines[line_address] = StoredLine(tuple(words), line.checks, line.pcc)
        key = (line_address, word)
        flip = self._data_flips.get(key, 0) ^ mask
        if flip:
            self._data_flips[key] = flip
            self._faulty_lines.add(line_address)
        else:
            self._data_flips.pop(key, None)
            self._maybe_clear(line_address)

    def _xor_check(self, line_address: int, word: int, mask: int) -> None:
        if not mask:
            return
        line = self._materialise(line_address)
        checks = list(line.checks)
        checks[word] ^= mask
        self._lines[line_address] = StoredLine(line.words, tuple(checks), line.pcc)
        key = (line_address, word)
        flip = self._check_flips.get(key, 0) ^ mask
        if flip:
            self._check_flips[key] = flip
            self._faulty_lines.add(line_address)
        else:
            self._check_flips.pop(key, None)
            self._maybe_clear(line_address)

    def _xor_pcc(self, line_address: int, mask: int) -> None:
        if not mask or not self.keep_pcc:
            return
        line = self._materialise(line_address)
        self._lines[line_address] = StoredLine(
            line.words, line.checks, line.pcc ^ mask
        )
        flip = self._pcc_flips.get(line_address, 0) ^ mask
        if flip:
            self._pcc_flips[line_address] = flip
            self._faulty_lines.add(line_address)
        else:
            self._pcc_flips.pop(line_address, None)
            self._maybe_clear(line_address)

    def _maybe_clear(self, line_address: int) -> None:
        """Drop the line from the scrub set once its ledger is empty."""
        if line_address not in self._faulty_lines:
            return
        if self._pcc_flips.get(line_address, 0):
            return
        for (line, _word), _mask in self._data_flips.items():
            if line == line_address:
                return
        for (line, _word), _mask in self._check_flips.items():
            if line == line_address:
                return
        self._faulty_lines.discard(line_address)

    # ==================================================================
    # Read path: SECDED classify + scrub, then this access's disturb
    # ==================================================================
    def read_line(self, line_address: int) -> StoredLine:
        line = self._materialise(line_address)
        if self._faulty_lines and line_address in self._faulty_lines:
            self._scrub_line(line_address)
            line = self._lines[line_address]
        if self._inject:
            self._maybe_read_disturb(line_address)
            # The disturb replaced the StoredLine record; the view
            # returned to the caller is the pre-disturb (decoded) one.
        return line

    def _scrub_line(self, line_address: int) -> None:
        """Run the controller's SECDED stage over the tracked words."""
        tracked = set()
        for (line, word) in self._data_flips:
            if line == line_address:
                tracked.add(word)
        for (line, word) in self._check_flips:
            if line == line_address:
                tracked.add(word)
        for word in sorted(tracked):
            self._scrub_word(line_address, word)

    def _scrub_word(self, line_address: int, word: int) -> None:
        line = self._materialise(line_address)
        raw = line.words[word]
        raw_check = line.checks[word]
        flip = self._data_flips.get((line_address, word), 0)
        check_flip = self._check_flips.get((line_address, word), 0)
        pristine = raw ^ flip
        pristine_check = raw_check ^ check_flip

        result = hamming.decode(raw, raw_check)
        if not result.ok:
            # Double error: detected, flagged, left in place — a real
            # controller would raise a machine check here.
            self.counters.detected_uncorrectable += 1
            self._m_uncorrectable.inc()
            return
        if result.data == pristine:
            if result.status is hamming.DecodeStatus.CLEAN and (
                flip or check_flip
            ):
                # Aliased corruption that decodes clean: silent.
                self.counters.silent += 1
                self._m_silent.inc()
                return
            # Corrected (data or check bit): scrub the codeword back.
            self._xor_data(line_address, word, raw ^ pristine)
            self._xor_check(line_address, word, raw_check ^ pristine_check)
            self.counters.corrected += 1
            self._m_corrected.inc()
        else:
            # Miscorrection: the decoder "fixed" the word to a wrong
            # value; scrubbing writes that wrong-but-consistent codeword
            # back, which is exactly a silent corruption.
            self._xor_data(line_address, word, raw ^ result.data)
            self._xor_check(
                line_address, word, raw_check ^ hamming.encode(result.data)
            )
            self.counters.silent += 1
            self._m_silent.inc()
        self._reassert_stuck(line_address, word_filter=(word,))

    def _maybe_read_disturb(self, line_address: int) -> None:
        if self.rng.random() >= self.fault.read_disturb_rate:
            return
        n_slots = (PCC_SLOT + 1) if self.keep_pcc else CHECK_SLOT + 1
        slot = self.rng.randrange(n_slots)
        if slot == PCC_SLOT:
            self._xor_pcc(line_address, 1 << self.rng.randrange(64))
        elif slot == CHECK_SLOT:
            word = self.rng.randrange(WORDS_PER_LINE)
            self._xor_check(line_address, word, 1 << self.rng.randrange(8))
        else:
            self._xor_data(line_address, slot, 1 << self.rng.randrange(64))
        self.counters.read_disturb_injected += 1
        self._m_injected.inc()

    # ==================================================================
    # Write path: commit, ledger maintenance, wear, write faults
    # ==================================================================
    def write_line(
        self,
        line_address: int,
        new_words: Tuple[int, ...],
        dirty_mask: Optional[int] = None,
    ) -> int:
        if dirty_mask is None:
            dirty_mask = self.diff_mask(line_address, new_words)
        mask = dirty_mask & _FULL_MASK
        # The incremental PCC update xors the *raw* old words, so any
        # live corruption on an overwritten word migrates into the PCC.
        drift = 0
        if mask and self.keep_pcc:
            remaining = mask
            while remaining:
                i = (remaining & -remaining).bit_length() - 1
                remaining &= remaining - 1
                drift ^= self._data_flips.get((line_address, i), 0)
        super().write_line(line_address, new_words, dirty_mask)
        if mask:
            # Committed words now hold exactly their intended values and
            # freshly encoded checks: their ledger entries are cleared,
            # and the displaced corruption lands in the PCC ledger.
            remaining = mask
            while remaining:
                i = (remaining & -remaining).bit_length() - 1
                remaining &= remaining - 1
                self._data_flips.pop((line_address, i), None)
                self._check_flips.pop((line_address, i), None)
            if drift:
                flip = self._pcc_flips.get(line_address, 0) ^ drift
                if flip:
                    self._pcc_flips[line_address] = flip
                    self._faulty_lines.add(line_address)
                else:
                    self._pcc_flips.pop(line_address, None)
            self._maybe_clear(line_address)
            if self._inject:
                self._account_wear(line_address)
                self._apply_write_faults(line_address, mask)
        if self.oracle is not None:
            self.oracle.on_commit(line_address, new_words, mask)
        return dirty_mask

    def _account_wear(self, line_address: int) -> None:
        self.wear.record(line_address)
        threshold = self.fault.stuck_at_threshold
        if threshold <= 0 or line_address in self._stuck:
            return
        if self.wear.writes_per_line[line_address] < threshold:
            return
        cells = derive_stuck_cells(
            self.seed,
            line_address,
            self.fault.stuck_cells_per_line,
            include_pcc=self.keep_pcc,
        )
        self._stuck[line_address] = cells
        self.counters.stuck_lines_activated += 1
        self.counters.stuck_cells_activated += len(cells)
        self._m_injected.inc(len(cells))
        self._reassert_stuck(line_address)

    def _apply_write_faults(self, line_address: int, mask: int) -> None:
        rate = self.fault.write_fail_rate
        if rate > 0.0:
            remaining = mask
            while remaining:
                i = (remaining & -remaining).bit_length() - 1
                remaining &= remaining - 1
                if self.rng.random() < rate:
                    self._xor_data(
                        line_address, i, 1 << self.rng.randrange(64)
                    )
                    self.counters.write_fail_injected += 1
                    self._m_injected.inc()
            if self.keep_pcc and self.rng.random() < rate:
                # The PCC chip's read-modify-write failed a bit too.
                self._xor_pcc(line_address, 1 << self.rng.randrange(64))
                self.counters.write_fail_injected += 1
                self._m_injected.inc()
        self._reassert_stuck(line_address)

    def _reassert_stuck(
        self, line_address: int, word_filter: Optional[Tuple[int, ...]] = None
    ) -> None:
        """Force every activated stuck cell back to its stuck value."""
        cells = self._stuck.get(line_address)
        if not cells:
            return
        line = self._materialise(line_address)
        for cell in cells:
            if cell.slot == PCC_SLOT:
                if word_filter is None and self.keep_pcc:
                    forced = cell.force(line.pcc)
                    self._xor_pcc(line_address, line.pcc ^ forced)
            elif cell.slot == CHECK_SLOT:
                word = cell.bit // 8
                if word_filter is not None and word not in word_filter:
                    continue
                lane_bit = cell.bit % 8
                if cell.value:
                    forced = line.checks[word] | (1 << lane_bit)
                else:
                    forced = line.checks[word] & ~(1 << lane_bit)
                self._xor_check(
                    line_address, word, line.checks[word] ^ forced
                )
            else:
                if word_filter is not None and cell.slot not in word_filter:
                    continue
                forced = cell.force(line.words[cell.slot])
                self._xor_data(
                    line_address, cell.slot, line.words[cell.slot] ^ forced
                )
            line = self._materialise(line_address)

    # ==================================================================
    # Manual fault planting (tests)
    # ==================================================================
    def corrupt_codeword(
        self, line_address: int, word: int, positions: Tuple[int, ...]
    ) -> None:
        """Flip codeword bits of one word, ledger-tracked.

        Positions follow :mod:`repro.ecc.hamming`'s 72-bit codeword
        layout; unlike :meth:`MemoryStorage.corrupt_bit` (which models
        an *untracked* corruption the oracle must catch), this records
        the flips so the next read classifies them.
        """
        line = self._materialise(line_address)
        data, check = hamming.inject_error(
            line.words[word], line.checks[word], positions
        )
        self._xor_data(line_address, word, line.words[word] ^ data)
        self._xor_check(line_address, word, line.checks[word] ^ check)
