"""Differential validation: a shadow golden memory + the checks.

The simulated array can legitimately diverge from the intended memory
contents — that is what fault injection *does* — but every divergence
must be accounted for in the storage's fault ledger.  The oracle pins
the relation down exactly:

    raw word        == golden word  XOR  ledger data flip
    raw check byte  == encode(golden word)  XOR  ledger check flip
    raw PCC         == XOR of golden words  XOR  ledger PCC flip

:class:`GoldenMemory` is the shadow model: a trivial word-addressed map
that mirrors every *commit* (the intended values of a write-back) and
derives untouched lines from the same cold pattern as the simulated
storage.  It knows nothing about timing, scheduling, ECC, PCC
reconstruction, scrubbing, or faults — which is the point: any bug in
those layers that corrupts state without a ledger entry breaks the
relation above and is caught either at the next read completion or by
the end-of-run sweep.

The oracle deliberately checks *storage line state*, not the data words
a request carries: controllers forward pending writes into reads, so a
request's payload can legitimately be newer than the array.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.ecc import batch, hamming
from repro.memory.request import WORDS_PER_LINE
from repro.memory.storage import _cold_pattern


class GoldenMemory:
    """The intended memory contents: commits applied, nothing else."""

    def __init__(self) -> None:
        self._lines: Dict[int, Tuple[int, ...]] = {}
        self.commits = 0

    def commit(self, line_address: int, new_words: Tuple[int, ...], mask: int) -> None:
        """Apply the committed words of one write-back."""
        if not mask:
            return
        words = list(self._lines.get(line_address) or _cold_pattern(line_address))
        for i in range(WORDS_PER_LINE):
            if mask & (1 << i):
                words[i] = new_words[i]
        self._lines[line_address] = tuple(words)
        self.commits += 1

    def read(self, line_address: int) -> Tuple[int, ...]:
        """The intended words of a line (cold pattern if never written)."""
        return self._lines.get(line_address) or _cold_pattern(line_address)

    def __len__(self) -> int:
        return len(self._lines)

    def fingerprint(self) -> str:
        """Order-independent digest of every written line's final state.

        Two runs that committed the same values to the same lines — in
        any order — produce the same fingerprint; this is what the
        cross-system convergence check compares.
        """
        digest = hashlib.sha256()
        for line_address in sorted(self._lines):
            digest.update(line_address.to_bytes(8, "little"))
            for word in self._lines[line_address]:
                digest.update(word.to_bytes(8, "little"))
        return digest.hexdigest()


@dataclass
class OracleViolation:
    """One detected divergence between golden model and simulated array."""

    line_address: int
    slot: str        #: "word[i]", "check[i]", or "pcc"
    expected: int
    actual: int
    when: str        #: "read" or "final"

    def __str__(self) -> str:
        return (
            f"line 0x{self.line_address:x} {self.slot} ({self.when}): "
            f"expected 0x{self.expected:016x}, got 0x{self.actual:016x}"
        )


@dataclass
class DifferentialOracle:
    """Checks simulated storage against :class:`GoldenMemory`.

    Wire :meth:`on_commit` as the storage's ``oracle`` (the
    fault-injecting storage calls it inside ``write_line``, so golden
    and array commit atomically), and :meth:`on_read_complete` as each
    controller's ``read_completion_hook``.
    """

    golden: GoldenMemory = field(default_factory=GoldenMemory)
    violations: List[OracleViolation] = field(default_factory=list)
    reads_checked: int = 0
    lines_checked: int = 0

    # -- wiring ---------------------------------------------------------
    def on_commit(self, line_address: int, new_words: Tuple[int, ...], mask: int) -> None:
        self.golden.commit(line_address, new_words, mask)

    def on_read_complete(self, request) -> None:
        """Per-read check: the accessed line must satisfy the ledger relation."""
        storage = self._storage
        if storage is None:
            return
        self.reads_checked += 1
        self.check_line(storage, request.line_address, when="read")

    def attach(self, storage) -> "DifferentialOracle":
        """Remember the storage to check reads against (fluent)."""
        self._storage = storage
        return self

    _storage: object = None

    # -- checks ---------------------------------------------------------
    def check_line(self, storage, line_address: int, when: str = "final") -> bool:
        """Assert the ledger relation for one line; record violations."""
        raw = storage.raw_line(line_address)
        golden = self.golden.read(line_address)
        before = len(self.violations)
        for i in range(WORDS_PER_LINE):
            expected = golden[i] ^ storage.data_flip(line_address, i)
            if raw.words[i] != expected:
                self.violations.append(
                    OracleViolation(line_address, f"word[{i}]", expected, raw.words[i], when)
                )
            expected_check = hamming.encode(golden[i]) ^ storage.check_flip(line_address, i)
            if raw.checks[i] != expected_check:
                self.violations.append(
                    OracleViolation(line_address, f"check[{i}]", expected_check, raw.checks[i], when)
                )
        if storage.keep_pcc:
            pcc = 0
            for word in golden:
                pcc ^= word
            expected_pcc = pcc ^ storage.pcc_flip(line_address)
            if raw.pcc != expected_pcc:
                self.violations.append(
                    OracleViolation(line_address, "pcc", expected_pcc, raw.pcc, when)
                )
        self.lines_checked += 1
        return len(self.violations) == before

    def check_all(self, storage) -> bool:
        """End-of-run sweep over every materialised line.

        With numpy available the whole relation — golden words XOR data
        flips, batch-encoded check bytes XOR check flips, PCC XOR parity
        flips — is evaluated as a handful of ``(N, 8)`` array compares;
        the ledger XOR stays exact because ``uint64`` wraps mod 2**64
        like the masked Python-int arithmetic.  Any line the vector pass
        flags is re-checked by the scalar :meth:`check_line`, so the
        recorded :class:`OracleViolation` list is identical (same order,
        same slots) to the all-scalar sweep.
        """
        addresses = sorted(storage.lines())
        if not (batch.HAS_NUMPY and len(addresses) >= 8):
            clean = True
            for line_address in addresses:
                clean = self.check_line(storage, line_address, when="final") and clean
            return clean
        return self._check_all_vector(storage, addresses)

    def _check_all_vector(self, storage, addresses) -> bool:
        np = batch.np
        index = {address: i for i, address in enumerate(addresses)}
        n = len(addresses)

        raw = [storage.raw_line(a) for a in addresses]
        raw_words = np.array([line.words for line in raw], dtype=np.uint64)
        raw_checks = np.array([line.checks for line in raw], dtype=np.uint8)
        golden = np.array(
            [self.golden.read(a) for a in addresses], dtype=np.uint64
        )

        # The ledgers are sparse: scatter them instead of 8N dict gets.
        # (Private maps of FaultInjectingStorage — the oracle is its
        # verification twin and already shares the cold pattern.)
        data_flips = np.zeros((n, WORDS_PER_LINE), dtype=np.uint64)
        for (line_address, word), mask in storage._data_flips.items():
            row = index.get(line_address)
            if row is not None:
                data_flips[row, word] = mask
        check_flips = np.zeros((n, WORDS_PER_LINE), dtype=np.uint8)
        for (line_address, word), mask in storage._check_flips.items():
            row = index.get(line_address)
            if row is not None:
                check_flips[row, word] = mask

        bad = np.any(raw_words != (golden ^ data_flips), axis=-1)
        expected_checks = batch.encode_words(golden) ^ check_flips
        bad |= np.any(raw_checks != expected_checks, axis=-1)
        if storage.keep_pcc:
            raw_pcc = np.array([line.pcc for line in raw], dtype=np.uint64)
            pcc_flips = np.zeros(n, dtype=np.uint64)
            for line_address, mask in storage._pcc_flips.items():
                row = index.get(line_address)
                if row is not None:
                    pcc_flips[row] = mask
            expected_pcc = (
                np.bitwise_xor.reduce(golden, axis=-1) ^ pcc_flips
            )
            bad |= raw_pcc != expected_pcc

        suspects = np.nonzero(bad)[0]
        # Scalar re-check of flagged lines reproduces the exact
        # violation records; clean lines are only counted.
        self.lines_checked += n - len(suspects)
        clean = True
        for row in suspects:
            clean = (
                self.check_line(storage, addresses[int(row)], when="final")
                and clean
            )
        return clean

    # -- reporting ------------------------------------------------------
    @property
    def ok(self) -> bool:
        return not self.violations

    def assert_clean(self) -> None:
        if self.violations:
            head = "; ".join(str(v) for v in self.violations[:5])
            raise AssertionError(
                f"differential oracle: {len(self.violations)} violation(s): {head}"
            )

    def as_dict(self) -> dict:
        return {
            "reads_checked": self.reads_checked,
            "lines_checked": self.lines_checked,
            "golden_commits": self.golden.commits,
            "golden_lines": len(self.golden),
            "violations": len(self.violations),
            "first_violations": [str(v) for v in self.violations[:5]],
        }
