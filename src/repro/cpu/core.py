"""Trace-driven core model.

An interval-style stand-in for the paper's out-of-order cores: the core
executes instructions at a base CPI and interacts with main memory through

* **reads** — non-blocking up to ``max_outstanding_reads`` in flight (the
  MLP the OoO window extracts); beyond that the core stalls until a read
  returns.  A full read queue also stalls it (back-pressure).
* **write-backs** — fire-and-forget, but a full write queue stalls the
  core (the LLC cannot evict), which is how slow PCM write drains reach
  IPC.
* **rollbacks** — a failed RoW verification charges the flush+refetch
  penalty from :class:`repro.cpu.rollback.RollbackModel`.

This captures exactly the couplings PCMap changes; everything else about
the core (its base CPI) is held constant across systems, so IPC *ratios*
— what the paper reports — are meaningful.

The level below is any :class:`~repro.memory.port.MemoryPort` — the PCM
:class:`~repro.memory.memsys.MainMemory` directly (the default), or the
timed DRAM-cache front end when ``SimulationParams.front_end`` enables
it; the core is identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.cpu.rollback import RollbackModel
from repro.memory.port import MemoryPort
from repro.memory.request import MemoryRequest, RequestKind
from repro.sim.engine import Engine, ns_to_ticks
from repro.trace.record import AccessKind, TraceRecord


@dataclass(frozen=True)
class CoreParams:
    """Per-core microarchitectural parameters."""

    cpu_ghz: float = 2.5            #: Table I clock
    #: CPI with an ideal main memory.  Traces are post-LLC, so this folds
    #: in the L1/L2/DRAM-cache hit latencies the paper's full-hierarchy
    #: cores pay; 2.0 puts per-core demand in the regime of gem5 OoO
    #: cores running memory-intense SPEC/PARSEC (IPC 0.3-0.7 per core).
    base_cpi: float = 2.0
    max_outstanding_reads: int = 4  #: memory-level parallelism window
    rollback_flush_cycles: int = 40
    rollback_refetch_cycles: int = 60

    @property
    def cycle_ticks(self) -> int:
        """Engine ticks per CPU cycle."""
        return ns_to_ticks(1.0 / self.cpu_ghz)


class TraceCore:
    """One core replaying a (possibly endless) trace of memory events."""

    def __init__(
        self,
        engine: Engine,
        core_id: int,
        records: Iterator[TraceRecord],
        memory: MemoryPort,
        params: CoreParams,
        instruction_limit: int,
    ):
        self.engine = engine
        self.core_id = core_id
        self.records = records
        self.memory = memory
        self.params = params
        self.instruction_limit = instruction_limit
        self.rollback_model = RollbackModel(
            params.rollback_flush_cycles, params.rollback_refetch_cycles
        )

        self.instructions_retired = 0
        self.reads_issued = 0
        self.writes_issued = 0
        self.start_tick: Optional[int] = None
        self.finish_tick: Optional[int] = None
        self.stall_ticks_mlp = 0     #: time blocked on the MLP limit
        self.stall_ticks_queue = 0   #: time blocked on full memory queues

        self._outstanding_reads = 0
        self._pending: Optional[TraceRecord] = None
        self._pending_wanted_at = -1  #: first tick the pending op was tried
        self._waiting_for_read = False
        self._wait_started = 0
        self._next_req_id = core_id << 32
        self._penalty_ticks_owed = 0
        #: Fired once when the core finishes (Multicore's done counter).
        self.on_finish: Optional[Callable[[], None]] = None
        # Hoisted timing constants: ``cycle_ticks`` is a computed
        # property and sits in a per-record multiply.  The product is
        # NOT pre-folded — ``gap * cpi * ticks`` must keep its original
        # left-to-right float evaluation so delays stay bit-identical.
        self._base_cpi = params.base_cpi
        self._cycle_ticks = params.cycle_ticks

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.finish_tick is not None

    @property
    def cpu_cycles(self) -> int:
        """Cycles between start and finish (valid when done)."""
        if self.start_tick is None or self.finish_tick is None:
            raise ValueError("core has not finished")
        elapsed = self.finish_tick - self.start_tick
        return max(1, elapsed // self.params.cycle_ticks)

    @property
    def ipc(self) -> float:
        return self.instructions_retired / self.cpu_cycles

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin execution at the current engine time."""
        self.start_tick = self.engine.now
        self.engine.call_after(0, self._advance)

    def _finish(self) -> None:
        if self.finish_tick is None:
            self.finish_tick = self.engine.now
            if self.on_finish is not None:
                self.on_finish()

    # ------------------------------------------------------------------
    def _advance(self) -> None:
        """Consume the next trace record after its instruction gap."""
        if self.done:
            return
        if self.instructions_retired >= self.instruction_limit:
            self._finish()
            return
        record = self._pending
        self._pending = None
        if record is None:
            record = next(self.records, None)
            if record is None:
                # Finite trace exhausted: retire the remaining budget at
                # base CPI and stop.
                remaining = self.instruction_limit - self.instructions_retired
                self.instructions_retired = self.instruction_limit
                delay = int(
                    remaining * self._base_cpi * self._cycle_ticks
                )
                self.engine.call_after(delay, self._finish)
                return
            gap = min(
                record.gap_instructions,
                self.instruction_limit - self.instructions_retired,
            )
            self.instructions_retired += gap
            delay = int(gap * self._base_cpi * self._cycle_ticks)
            delay += self._penalty_ticks_owed
            self._penalty_ticks_owed = 0
            self._pending = record
            self.engine.call_after(delay, self._issue)
            return
        self._pending = record
        self._issue()

    def _issue(self) -> None:
        """Try to hand the pending record to the memory system."""
        if self.done:
            return
        record = self._pending
        assert record is not None
        if self._pending_wanted_at < 0:
            self._pending_wanted_at = self.engine.now
        if record.kind is AccessKind.READ:
            self._issue_read(record)
        elif record.kind is AccessKind.WRITE_BACK:
            self._issue_write(record)
        else:
            raise ValueError(
                f"TraceCore handles memory-level records only, got {record.kind}"
            )

    # ------------------------------------------------------------------
    def _issue_read(self, record: TraceRecord) -> None:
        if self._outstanding_reads >= self.params.max_outstanding_reads:
            # OoO window saturated: stall until some read returns.
            self._waiting_for_read = True
            self._wait_started = self.engine.now
            return
        if not self.memory.can_accept(RequestKind.READ, record.address):
            self._wait_started = self.engine.now
            self.memory.wait_for_space(
                RequestKind.READ, record.address, self._queue_space_available
            )
            return
        request = MemoryRequest(
            req_id=self._bump_req_id(),
            kind=RequestKind.READ,
            address=record.address,
            core_id=self.core_id,
            requested_at=self._pending_wanted_at,
        )
        request.on_complete = self._on_read_complete
        request.on_verify = self._on_verify
        self._outstanding_reads += 1
        self.reads_issued += 1
        self._pending = None
        self._pending_wanted_at = -1
        self.memory.submit(request)
        self._advance()

    def _issue_write(self, record: TraceRecord) -> None:
        if not self.memory.can_accept(RequestKind.WRITE, record.address):
            self._wait_started = self.engine.now
            self.memory.wait_for_space(
                RequestKind.WRITE, record.address, self._queue_space_available
            )
            return
        request = MemoryRequest(
            req_id=self._bump_req_id(),
            kind=RequestKind.WRITE,
            address=record.address,
            core_id=self.core_id,
            dirty_mask=record.dirty_mask,
            new_words=record.new_words,
        )
        self.writes_issued += 1
        self._pending = None
        self._pending_wanted_at = -1
        self.memory.submit(request)
        self._advance()

    def _bump_req_id(self) -> int:
        self._next_req_id += 1
        return self._next_req_id

    # ------------------------------------------------------------------
    # Unblocking callbacks
    # ------------------------------------------------------------------
    def _queue_space_available(self) -> None:
        if self.done or self._pending is None:
            return
        self.stall_ticks_queue += self.engine.now - self._wait_started
        self._issue()

    def _on_read_complete(self, request: MemoryRequest) -> None:
        self._outstanding_reads -= 1
        if self._waiting_for_read:
            self._waiting_for_read = False
            self.stall_ticks_mlp += self.engine.now - self._wait_started
            self._issue()

    def _on_verify(self, request: MemoryRequest, rollback: bool) -> None:
        if rollback:
            penalty_cycles = self.rollback_model.on_rollback()
            self._penalty_ticks_owed += (
                penalty_cycles * self.params.cycle_ticks
            )
