"""Rollback cost model for RoW's deferred verification (paper §IV-B3).

When a RoW read's deferred SECDED check fails after the CPU has already
consumed the speculatively-returned data, the core must roll back to the
consuming instruction and re-execute.  The paper measures this cost as the
IPC difference between an "always faulty" system (every early-consumed RoW
read rolls back) and a "never faulty" one (Table IV, up to 4.6 %).

The model charges a fixed penalty per rollback: a pipeline flush plus the
re-fetch of the corrected line from the controller's buffer.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class RollbackModel:
    """Penalty accounting for one core."""

    #: CPU cycles to flush the pipeline and restart at the faulted load.
    flush_cycles: int = 40
    #: CPU cycles to re-obtain the corrected data (it is already present
    #: in the controller after verification, so no array access is paid).
    refetch_cycles: int = 60

    rollbacks: int = 0
    penalty_cycles_total: int = 0

    @property
    def penalty_cycles(self) -> int:
        """Penalty charged per rollback."""
        return self.flush_cycles + self.refetch_cycles

    def on_rollback(self) -> int:
        """Record one rollback; returns the CPU-cycle penalty to apply."""
        self.rollbacks += 1
        self.penalty_cycles_total += self.penalty_cycles
        return self.penalty_cycles
