"""Trace-driven CPU model: cores, multicore wrapper, rollback accounting."""

from repro.cpu.core import CoreParams, TraceCore
from repro.cpu.multicore import Multicore
from repro.cpu.rollback import RollbackModel

__all__ = ["CoreParams", "TraceCore", "Multicore", "RollbackModel"]
