"""Multicore wrapper: eight trace cores sharing one PCM main memory."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.cpu.core import CoreParams, TraceCore
from repro.memory.memsys import MainMemory
from repro.memory.port import MemoryPort
from repro.memory.storage import MemoryStorage
from repro.sim.engine import Engine
from repro.trace.record import AccessKind, TraceRecord
from repro.trace.synthetic import SyntheticTraceGenerator
from repro.trace.workloads import WorkloadProfile

#: Record-batch size handed to ``on_epoch`` hooks.  Epoch size never
#: changes the generated stream (generation is buffering only) and the
#: hooks are advisory — prefetching reads early is semantically
#: invisible and tier classification only steers that prefetch — so the
#: window is free to be sized for the vectorized batch paths, which
#: amortise their fixed per-call cost over ~8x more records than the
#: generator's default 256-record refill.
ON_EPOCH_BATCH = 2048


def _epoch_prefetcher(
    storage: MemoryStorage,
) -> Optional[Callable[[List[TraceRecord]], None]]:
    """Per-epoch cold-line prefetch hook for functional runs.

    Only the epoch's *read* addresses are prefetched: reads always
    materialise their line, so batch-materialising them ahead is
    invisible (identical records, no counters touched) — whereas
    payload-less write-backs never touch storage, and prefetching them
    would materialise lines the run otherwise leaves cold.  Restricted
    to plain :class:`MemoryStorage`: the fault-injecting subclass sweeps
    every materialised line through its oracle, so changing *which*
    lines exist would change campaign accounting.
    """
    if type(storage) is not MemoryStorage:
        return None

    def prefetch(records: List[TraceRecord]) -> None:
        storage.prefetch(
            {
                record.address // 64
                for record in records
                if record.kind is AccessKind.READ
            }
        )

    return prefetch


class Multicore:
    """The paper's 8-core CMP, each core replaying its workload stream."""

    def __init__(
        self,
        engine: Engine,
        memory: MainMemory,
        profile: WorkloadProfile,
        n_cores: int = 8,
        params: Optional[CoreParams] = None,
        instructions_per_core: int = 100_000,
        seed: int = 1,
        port: Optional[MemoryPort] = None,
    ):
        self.engine = engine
        self.memory = memory
        #: What the cores actually submit to: ``memory`` itself, or the
        #: timed DRAM-cache front end interposed by the simulator.
        self.port: MemoryPort = port if port is not None else memory
        self.profile = profile
        self.params = params or CoreParams()
        self.cores: List[TraceCore] = []
        #: Cores that called back via on_finish; the simulator polls
        #: ``all_done`` once per dispatched event, so it must be an
        #: integer compare rather than an 8-property sweep.
        self._finished = 0
        capacity_lines = (
            memory.config.geometry.capacity_bytes // 64
        )
        if self.port is not memory and hasattr(self.port, "make_epoch_hook"):
            # A timed tier interposes: let it classify each epoch in one
            # batched pass and steer the prefetch to predicted misses.
            on_epoch = (
                self.port.make_epoch_hook(memory.storage)
                if memory.storage is not None
                else None
            )
        else:
            on_epoch = (
                _epoch_prefetcher(memory.storage)
                if memory.storage is not None
                else None
            )
        for core_id in range(n_cores):
            generator = SyntheticTraceGenerator(
                profile,
                seed=seed,
                core_id=core_id,
                n_cores=n_cores,
                capacity_lines=capacity_lines,
            )
            core = TraceCore(
                engine,
                core_id,
                generator.records(
                    epoch=ON_EPOCH_BATCH if on_epoch is not None else None,
                    on_epoch=on_epoch,
                ),
                self.port,
                self.params,
                instructions_per_core,
            )
            core.on_finish = self._note_finish
            self.cores.append(core)

    # ------------------------------------------------------------------
    def start(self) -> None:
        for core in self.cores:
            core.start()

    def _note_finish(self) -> None:
        self._finished += 1
        if self._finished >= len(self.cores):
            # Stop the engine's batched drain right after this callback —
            # exactly where a per-event ``all_done`` poll would have
            # stopped, so events_dispatched is unchanged.  The sampled
            # loop still polls ``all_done`` itself; the latch is simply
            # never consumed there.
            self.engine.request_stop()

    @property
    def all_done(self) -> bool:
        return self._finished >= len(self.cores)

    @property
    def instructions_retired(self) -> int:
        return sum(core.instructions_retired for core in self.cores)

    def total_cpu_cycles(self) -> int:
        """Wall-clock CPU cycles from first start to last finish.

        The aggregate IPC the paper reports is total instructions over
        the makespan, which penalises a system that lets one laggard core
        starve — exactly what long write drains do.
        """
        start = min(core.start_tick for core in self.cores)
        finish = max(core.finish_tick for core in self.cores)
        cycle_ticks = self.params.cycle_ticks
        return max(1, (finish - start) // cycle_ticks)

    def aggregate_ipc(self) -> float:
        return self.instructions_retired / self.total_cpu_cycles()

    def total_rollbacks(self) -> int:
        return sum(core.rollback_model.rollbacks for core in self.cores)
