"""Multicore wrapper: eight trace cores sharing one PCM main memory."""

from __future__ import annotations

from typing import List, Optional

from repro.cpu.core import CoreParams, TraceCore
from repro.memory.memsys import MainMemory
from repro.sim.engine import Engine
from repro.trace.synthetic import SyntheticTraceGenerator
from repro.trace.workloads import WorkloadProfile


class Multicore:
    """The paper's 8-core CMP, each core replaying its workload stream."""

    def __init__(
        self,
        engine: Engine,
        memory: MainMemory,
        profile: WorkloadProfile,
        n_cores: int = 8,
        params: Optional[CoreParams] = None,
        instructions_per_core: int = 100_000,
        seed: int = 1,
    ):
        self.engine = engine
        self.memory = memory
        self.profile = profile
        self.params = params or CoreParams()
        self.cores: List[TraceCore] = []
        capacity_lines = (
            memory.config.geometry.capacity_bytes // 64
        )
        for core_id in range(n_cores):
            generator = SyntheticTraceGenerator(
                profile,
                seed=seed,
                core_id=core_id,
                n_cores=n_cores,
                capacity_lines=capacity_lines,
            )
            self.cores.append(
                TraceCore(
                    engine,
                    core_id,
                    generator.records(),
                    memory,
                    self.params,
                    instructions_per_core,
                )
            )

    # ------------------------------------------------------------------
    def start(self) -> None:
        for core in self.cores:
            core.start()

    @property
    def all_done(self) -> bool:
        return all(core.done for core in self.cores)

    @property
    def instructions_retired(self) -> int:
        return sum(core.instructions_retired for core in self.cores)

    def total_cpu_cycles(self) -> int:
        """Wall-clock CPU cycles from first start to last finish.

        The aggregate IPC the paper reports is total instructions over
        the makespan, which penalises a system that lets one laggard core
        starve — exactly what long write drains do.
        """
        start = min(core.start_tick for core in self.cores)
        finish = max(core.finish_tick for core in self.cores)
        cycle_ticks = self.params.cycle_ticks
        return max(1, (finish - start) // cycle_ticks)

    def aggregate_ipc(self) -> float:
        return self.instructions_retired / self.total_cpu_cycles()

    def total_rollbacks(self) -> int:
        return sum(core.rollback_model.rollbacks for core in self.cores)
