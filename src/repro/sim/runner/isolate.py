"""Run one sweep job in a killable child process, with a wall-clock cap.

The plain executor trusts ``simulate`` to return; a hung or crashing job
would wedge ``repro sweep`` (serial path) or poison a pool worker.  This
module gives both the one-shot runner and the campaign worker the same
escape hatch: the job runs in its own ``multiprocessing.Process``, the
parent polls a pipe with a timeout, and an overdue or dead child is
killed and reported as a typed error the caller can retry, back off on,
or dead-letter.

The child sends ``("ok", result)`` or ``("err", traceback_text)`` over a
one-way pipe *before* the parent joins it, so a large pickled result can
never deadlock against a parent that is already waiting in ``join``.
"""

from __future__ import annotations

import multiprocessing
import traceback
from typing import Callable, Optional

from repro.sim.metrics import SimulationResult
from repro.sim.runner.jobs import SweepJob
from repro.sim.simulator import simulate


class JobExecutionError(RuntimeError):
    """Base class for isolated-job failures (timeout, crash, exception)."""


class JobTimeoutError(JobExecutionError):
    """The job exceeded its wall-clock budget and was killed."""


class JobCrashedError(JobExecutionError):
    """The child process died without reporting a result (signal, OOM)."""


def default_execute(job: SweepJob) -> SimulationResult:
    """The real thing: one deterministic simulation run."""
    return simulate(job.system, job.workload, job.params)


def _child_main(conn, job: SweepJob, execute: Callable) -> None:
    """Child entry point: run the job, ship the outcome, exit."""
    try:
        result = execute(job)
    except BaseException:
        payload = ("err", traceback.format_exc())
    else:
        payload = ("ok", result)
    try:
        conn.send(payload)
    finally:
        conn.close()


def run_job_isolated(
    job: SweepJob,
    timeout: Optional[float] = None,
    execute: Optional[Callable[[SweepJob], SimulationResult]] = None,
) -> SimulationResult:
    """Run ``job`` in a child process; kill it if ``timeout`` expires.

    Raises :class:`JobTimeoutError` when the child is still alive after
    ``timeout`` seconds, :class:`JobCrashedError` when it died without an
    answer (e.g. SIGKILL), and :class:`JobExecutionError` carrying the
    child's traceback when ``execute`` raised.  Determinism is untouched:
    the child runs exactly :func:`default_execute` on the job's own
    derived seed, so an isolated result is bit-identical to an inline one.
    """
    execute = execute if execute is not None else default_execute
    recv, send = multiprocessing.Pipe(duplex=False)
    proc = multiprocessing.Process(
        target=_child_main, args=(send, job, execute), daemon=False
    )
    proc.start()
    send.close()  # parent keeps only the read end
    try:
        if not recv.poll(timeout):
            _reap(proc)
            raise JobTimeoutError(
                f"job {job.describe()} exceeded {timeout:.1f}s and was killed"
            )
        try:
            status, value = recv.recv()
        except (EOFError, OSError):
            _reap(proc)
            raise JobCrashedError(
                f"job {job.describe()} worker died without a result"
            ) from None
    finally:
        recv.close()
    proc.join()
    if status == "ok":
        return value
    raise JobExecutionError(
        f"job {job.describe()} raised in its worker:\n{value}"
    )


def _reap(proc: multiprocessing.Process) -> None:
    """Terminate (then kill) a child and wait for it."""
    proc.terminate()
    proc.join(1.0)
    if proc.is_alive():  # pragma: no cover - terminate() normally suffices
        proc.kill()
        proc.join()
