"""Multiprocessing sweep executor.

Fans independent :class:`~repro.sim.runner.jobs.SweepJob`\\ s out over a
``ProcessPoolExecutor`` — every (workload, system) run is embarrassingly
parallel because the engine is deterministic per seed and shares no
state across runs.  Guarantees:

* **Bit-identical to serial.**  Job seeds are derived, not drawn, so the
  ``results_io`` payload of every result is byte-for-byte the same for
  ``jobs=1`` and ``jobs=N`` (only wall-clock profile fields differ).
* **Cache before compute.**  With a :class:`ResultCache` attached, each
  job is looked up first; only misses reach the pool, and every fresh
  result is written back (atomically) by the parent process.
* **Telemetry survives the pool.**  Worker processes return their
  :class:`~repro.telemetry.RunProfile` on the pickled result, and the
  runner merges them into :attr:`SweepRunner.profile`, so
  ``telemetry_summary`` still reports the sweep's total engine cost.
"""

from __future__ import annotations

import time
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.core.config import SystemConfig
from repro.sim.metrics import SimulationResult
from repro.sim.runner.cache import ResultCache
from repro.sim.runner.isolate import JobExecutionError, run_job_isolated
from repro.sim.runner.jobs import SweepJob
from repro.sim.simulator import SimulationParams, simulate
from repro.telemetry import RunProfile, WallClock, merge_dumps
from repro.trace.workloads import WorkloadProfile


@dataclass(frozen=True)
class SweepProgress:
    """One completed job, as reported to the progress callback."""

    completed: int       #: jobs finished so far (cached + executed)
    total: int
    workload: str
    system: str
    source: str          #: ``"cache"`` or ``"run"``
    seconds: float       #: wall time of this job as seen by the parent

    def describe(self) -> str:
        line = (
            f"[{self.completed:>{len(str(self.total))}}/{self.total}] "
            f"{self.workload} x {self.system}: {self.source}"
        )
        if self.source == "run":
            line += f" ({self.seconds:.1f} s)"
        return line


ProgressCallback = Callable[[SweepProgress], None]

#: (workload, system) with optional per-pair overrides when system is a name.
WorkloadLike = Union[str, WorkloadProfile]
SystemLike = Union[str, SystemConfig]


def _execute_job(job: SweepJob) -> SimulationResult:
    """Worker entry point (module-level so it pickles)."""
    return simulate(job.system, job.workload, job.params)


class SweepRunner:
    """Executes sweep jobs serially or across a process pool."""

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressCallback] = None,
        timeout: Optional[float] = None,
        retries: int = 0,
        retry_backoff: float = 0.5,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.jobs = jobs
        self.cache = cache
        self.progress = progress
        #: Per-job wall-clock cap; a job still running after this many
        #: seconds is killed (it runs in its own process) and retried or
        #: raised — a hung job can no longer wedge the whole sweep.
        self.timeout = timeout
        #: Extra attempts per job after the first, with capped
        #: exponential backoff (``retry_backoff * 2**n``, ceiling 30 s) —
        #: the campaign worker's knobs threaded back into one-shot runs.
        self.retries = retries
        self.retry_backoff = retry_backoff
        #: Merged engine profiles of every job this runner completed
        #: (cache hits contribute the recorded cost of the original run).
        self.profile = RunProfile()
        self.cached_jobs = 0
        self.executed_jobs = 0
        self.retried_jobs = 0

    # ------------------------------------------------------------------
    def run(self, sweep_jobs: Sequence[SweepJob]) -> List[SimulationResult]:
        """Run every job; results are returned in job order."""
        total = len(sweep_jobs)
        results: List[Optional[SimulationResult]] = [None] * total
        completed = 0

        pending: List[int] = []
        for index, job in enumerate(sweep_jobs):
            cached = (
                self.cache.get(job.cache_key())
                if self.cache is not None
                else None
            )
            if cached is not None:
                completed += 1
                results[index] = self._account(
                    cached, job, "cache", 0.0, completed, total
                )
            else:
                pending.append(index)

        if not pending:
            return [r for r in results if r is not None]

        if self.timeout is not None or self.retries:
            # Guarded path: each job in its own killable process, with
            # bounded retries.  Threads (not a process pool) host the
            # guards so an overdue child can actually be killed.
            if self.jobs == 1 or len(pending) == 1:
                for index in pending:
                    job = sweep_jobs[index]
                    with WallClock() as clock:
                        result = self._run_guarded(job)
                    completed += 1
                    results[index] = self._finish(
                        result, job, clock.elapsed, completed, total
                    )
            else:
                workers = min(self.jobs, len(pending))
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    futures = {
                        pool.submit(self._run_guarded, sweep_jobs[index]): index
                        for index in pending
                    }
                    for future in as_completed(futures):
                        index = futures[future]
                        job = sweep_jobs[index]
                        result = future.result()
                        wall = (
                            result.profile.wall_seconds
                            if result.profile is not None
                            else 0.0
                        )
                        completed += 1
                        results[index] = self._finish(
                            result, job, wall, completed, total
                        )
            return [r for r in results if r is not None]

        if self.jobs == 1 or len(pending) == 1:
            for index in pending:
                job = sweep_jobs[index]
                with WallClock() as clock:
                    result = _execute_job(job)
                completed += 1
                results[index] = self._finish(
                    result, job, clock.elapsed, completed, total
                )
        else:
            workers = min(self.jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_execute_job, sweep_jobs[index]): index
                    for index in pending
                }
                for future in as_completed(futures):
                    index = futures[future]
                    job = sweep_jobs[index]
                    result = future.result()
                    wall = (
                        result.profile.wall_seconds
                        if result.profile is not None
                        else 0.0
                    )
                    completed += 1
                    results[index] = self._finish(
                        result, job, wall, completed, total
                    )
        return [r for r in results if r is not None]

    # ------------------------------------------------------------------
    def _run_guarded(self, job: SweepJob) -> SimulationResult:
        """One job under the timeout/retry guard (isolated child process).

        Determinism is unaffected: the child runs the same job on the
        same derived seed, so retried results are bit-identical to
        first-try ones.
        """
        attempts = self.retries + 1
        for attempt in range(attempts):
            try:
                return run_job_isolated(job, self.timeout)
            except JobExecutionError:
                if attempt + 1 >= attempts:
                    raise
                self.retried_jobs += 1
                time.sleep(
                    min(30.0, self.retry_backoff * (2.0 ** attempt))
                )
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    def _finish(
        self,
        result: SimulationResult,
        job: SweepJob,
        seconds: float,
        completed: int,
        total: int,
    ) -> SimulationResult:
        if self.cache is not None:
            self.cache.put(job.cache_key(), result)
        return self._account(result, job, "run", seconds, completed, total)

    def _account(
        self,
        result: SimulationResult,
        job: SweepJob,
        source: str,
        seconds: float,
        completed: int,
        total: int,
    ) -> SimulationResult:
        if source == "cache":
            self.cached_jobs += 1
        else:
            self.executed_jobs += 1
        if result.profile is not None:
            self.profile.merge(result.profile)
        if self.progress is not None:
            self.progress(
                SweepProgress(
                    completed=completed,
                    total=total,
                    workload=job.workload.name,
                    system=job.system.name,
                    source=source,
                    seconds=seconds,
                )
            )
        return result


# ----------------------------------------------------------------------
# Cross-worker aggregation
# ----------------------------------------------------------------------
def merged_metrics(results: Sequence[SimulationResult]) -> Optional[dict]:
    """Sweep-wide metrics dump merged across every collected result.

    Results arrive from :meth:`SweepRunner.run` in job order and
    :func:`~repro.telemetry.registry.merge_dumps` is order-insensitive in
    its serialised form, so serial and parallel sweeps of the same jobs
    merge to byte-identical JSON.  ``None`` when no result embedded
    metrics (``collect_metrics`` off).
    """
    dumps = [r.metrics for r in results if r.metrics is not None]
    if not dumps:
        return None
    return merge_dumps(dumps)


def merged_timeseries(results: Sequence[SimulationResult]) -> dict:
    """Per-run time series keyed ``"<workload>/<system>"``, sorted.

    Series from distinct runs share no time axis, so the merge is a
    keyed collection rather than a sum; repeated (workload, system)
    pairs — e.g. parameter ablations — get a ``#<n>`` suffix in job
    order, keeping labels unique and deterministic.
    """
    labelled: dict = {}
    for result in results:
        if result.timeseries is None:
            continue
        label = f"{result.workload_name}/{result.system_name}"
        if label in labelled:
            n = 2
            while f"{label}#{n}" in labelled:
                n += 1
            label = f"{label}#{n}"
        labelled[label] = result.timeseries
    return {label: labelled[label] for label in sorted(labelled)}


# ----------------------------------------------------------------------
# Convenience entry points
# ----------------------------------------------------------------------
def run_jobs(
    sweep_jobs: Sequence[SweepJob],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressCallback] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
) -> List[SimulationResult]:
    """Run pre-built jobs; results in job order."""
    return SweepRunner(
        jobs=jobs,
        cache=cache,
        progress=progress,
        timeout=timeout,
        retries=retries,
    ).run(sweep_jobs)


def run_pairs(
    pairs: Sequence[Tuple[WorkloadLike, SystemLike]],
    params: Optional[SimulationParams] = None,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressCallback] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
) -> List[SimulationResult]:
    """Run arbitrary (workload, system) pairs; results in pair order.

    The generic entry point for benchmarks whose sweeps are not plain
    workload x system grids (timing sweeps, rollback-rate ablations):
    callers build each pair's :class:`SystemConfig` themselves and index
    the flat result list positionally.
    """
    sweep_jobs = [
        SweepJob.build(workload, system, params) for workload, system in pairs
    ]
    return run_jobs(
        sweep_jobs,
        jobs=jobs,
        cache=cache,
        progress=progress,
        timeout=timeout,
        retries=retries,
    )
