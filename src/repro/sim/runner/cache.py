"""On-disk result cache for the sweep runner.

One JSON file per (workload, system, params, code version) cell, named by
the job's content hash and written atomically, so a warm sweep rerun is
pure I/O.  Every entry embeds its own key and a SHA-256 digest of the
result payload; an entry that fails to parse, names a different key or
fails the digest check is treated as a miss, deleted and recomputed —
corruption can cost time, never correctness.

The payload itself goes through the existing
:mod:`repro.sim.results_io` round-trip (``result_to_dict`` /
``result_from_dict``), so cached results carry the same schema,
attribution seed and code-version stamp as any saved results file.
"""

from __future__ import annotations

import hashlib
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.sim.metrics import SimulationResult
from repro.sim.results_io import (
    atomic_write_text,
    result_from_dict,
    result_to_dict,
)
from repro.telemetry import RunProfile

#: Version of the cache *envelope* (the result payload inside carries its
#: own ``results_io.SCHEMA_VERSION``).
CACHE_SCHEMA = 1


def payload_digest(payload: dict) -> str:
    """SHA-256 of a result payload's canonical JSON text."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance (one process)."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0     #: entries discarded for parse/key/digest failures
    writes: int = 0
    errors: int = 0      #: filesystem errors (unreadable/undeletable entries)

    def summary(self) -> str:
        return (
            f"cache: {self.hits} hits, {self.misses} misses "
            f"({self.corrupt} corrupt, {self.errors} errors), "
            f"{self.writes} writes"
        )


class ResultCache:
    """Content-addressed simulation-result store under one directory."""

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.stats = CacheStats()
        self._warned_errors = False

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    # ------------------------------------------------------------------
    def _note_error(self, action: str, path: Path, exc: OSError) -> None:
        """Count a filesystem error and warn the first time it happens.

        A permission-denied or I/O-failing entry degrades to a miss (the
        sweep recomputes, correctness is unharmed) — but a cache that
        silently never hits costs every warm rerun its speedup, so the
        first failure is surfaced on stderr and every one is counted in
        ``stats.errors``.
        """
        self.stats.errors += 1
        if not self._warned_errors:
            self._warned_errors = True
            print(
                f"repro sweep cache: cannot {action} {path} "
                f"({exc.__class__.__name__}: {exc}); treating as a miss — "
                "further cache I/O errors are counted but not repeated",
                file=sys.stderr,
            )

    def _discard(self, path: Path) -> None:
        """Best-effort removal of a bad entry, with accounting."""
        try:
            path.unlink()
        except FileNotFoundError:
            pass  # already gone: nothing was swallowed
        except OSError as exc:
            self._note_error("remove", path, exc)

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[SimulationResult]:
        """Cached result for ``key``, or ``None``.

        Any defect in the entry — unreadable file, JSON error, key or
        digest mismatch, bad schema — degrades to a miss: the entry is
        removed (best effort) and the caller recomputes.  Filesystem
        errors (permission denied, I/O failure) are additionally counted
        in ``stats.errors`` and warned about once per cache instance.
        """
        path = self.path_for(key)
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError as exc:
            # Unreadable entry (permissions, I/O): recompute and count.
            self.stats.misses += 1
            self._note_error("read", path, exc)
            self._discard(path)
            return None
        except ValueError:
            # json.JSONDecodeError is a ValueError: a truncated or
            # garbled entry is corruption, not an I/O error.
            self.stats.misses += 1
            self.stats.corrupt += 1
            self._discard(path)
            return None
        try:
            if entry.get("schema") != CACHE_SCHEMA:
                raise ValueError(f"unsupported cache schema {entry.get('schema')!r}")
            if entry.get("key") != key:
                raise ValueError("cache entry does not match its key")
            payload = entry["result"]
            if payload_digest(payload) != entry.get("payload_sha256"):
                raise ValueError("cache entry failed its digest check")
            result = result_from_dict(payload)
        except (ValueError, KeyError, TypeError, AttributeError):
            # result_from_dict raises ValueError/KeyError/TypeError on
            # malformed payloads; AttributeError covers non-dict JSON.
            self.stats.misses += 1
            self.stats.corrupt += 1
            self._discard(path)
            return None
        profile = entry.get("profile")
        if isinstance(profile, dict):
            # Rehydrate the engine cost of the original run so warm-cache
            # telemetry summaries still report what the sweep really cost.
            result.profile = RunProfile(
                events_dispatched=int(profile.get("events_dispatched", 0)),
                wall_seconds=float(profile.get("wall_seconds", 0.0)),
            )
        self.stats.hits += 1
        return result

    def put(self, key: str, result: SimulationResult) -> Path:
        """Persist ``result`` under ``key`` (atomic write); returns the path."""
        payload = result_to_dict(result)
        entry = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "payload_sha256": payload_digest(payload),
            "result": payload,
        }
        if result.profile is not None:
            entry["profile"] = {
                "events_dispatched": result.profile.events_dispatched,
                "wall_seconds": result.profile.wall_seconds,
            }
        path = self.path_for(key)
        atomic_write_text(path, json.dumps(entry, indent=1))
        self.stats.writes += 1
        return path

    # ------------------------------------------------------------------
    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except FileNotFoundError:
                    pass  # raced with another process: it is gone either way
                except OSError as exc:
                    self._note_error("remove", path, exc)
        return removed

    def entry_count(self) -> int:
        """Number of entries on disk (not a ``__len__``: an empty cache
        must never read as falsy where ``cache is not None`` is meant)."""
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))
