"""Job model and content hashing for the parallel sweep runner.

A sweep is a list of :class:`SweepJob`\\ s — one fully resolved
(workload, system, params) triple per simulation run.  Everything about
a job is plain deterministic data: the workload profile, the frozen
system config and the run-scale params with a seed derived from them.
That buys the runner its two core guarantees cheaply:

* **Order independence** — a job's seed is a pure function of the base
  seed and the (workload, system) names, never of submission order or
  worker assignment, so ``jobs=1`` and ``jobs=N`` sweeps produce
  bit-identical results.
* **Content-addressed caching** — :meth:`SweepJob.cache_key` hashes the
  canonical JSON form of the whole job plus
  :func:`repro.sim.results_io.code_version`, so changing the workload
  statistics, the system config, the run scale or the code itself
  invalidates exactly the affected cache entries.
"""

from __future__ import annotations

import enum
import hashlib
import json
import zlib
from dataclasses import dataclass, fields, is_dataclass, replace
from typing import Optional, Union

from repro.core.config import SystemConfig
from repro.core.systems import make_system
from repro.sim.results_io import SCHEMA_VERSION, code_version
from repro.sim.simulator import SimulationParams
from repro.trace.workloads import WorkloadProfile, get_workload


def canonical(obj: object) -> object:
    """Reduce ``obj`` to JSON-serialisable data with a stable shape.

    Dataclasses become field dicts, enums their values, tuples lists.
    Raises ``TypeError`` for anything that cannot be represented — a
    cache key must never silently ignore part of its input.
    """
    if is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: canonical(getattr(obj, f.name)) for f in fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return canonical(obj.value)
    if isinstance(obj, dict):
        return {str(key): canonical(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonical(value) for value in obj]
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    raise TypeError(f"cannot canonicalise {type(obj).__name__!r} for hashing")


def content_hash(obj: object) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``obj``."""
    text = json.dumps(canonical(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def derive_seed(base_seed: int, workload_name: str, system_name: str) -> int:
    """Per-job RNG seed: stable, order-independent, stream-decorrelated.

    ``crc32`` rather than ``hash()`` because the latter is salted per
    process (PYTHONHASHSEED) and would break parallel/serial identity.
    """
    tag = f"{base_seed}:{workload_name}:{system_name}"
    return (zlib.crc32(tag.encode("utf-8")) & 0x7FFFFFFF) or 1


@dataclass(frozen=True)
class SweepJob:
    """One fully resolved simulation run: workload x system x params."""

    workload: WorkloadProfile
    system: SystemConfig
    params: SimulationParams

    @classmethod
    def build(
        cls,
        workload: Union[str, WorkloadProfile],
        system: Union[str, SystemConfig],
        params: Optional[SimulationParams] = None,
        **system_overrides,
    ) -> "SweepJob":
        """Resolve names to profiles/configs and derive the job seed.

        ``params.seed`` is treated as the sweep's *base* seed; the job
        runs with :func:`derive_seed` of it so every (workload, system)
        cell gets its own decorrelated — but reproducible — RNG stream.
        """
        if isinstance(workload, str):
            workload = get_workload(workload)
        if isinstance(system, str):
            system = make_system(system, **system_overrides)
        elif system_overrides:
            raise ValueError("overrides only apply when `system` is a name")
        params = params if params is not None else SimulationParams()
        params = replace(
            params, seed=derive_seed(params.seed, workload.name, system.name)
        )
        return cls(workload=workload, system=system, params=params)

    def cache_key(self) -> str:
        """Content hash identifying this job's result on disk.

        Includes :func:`code_version` so results recorded by a different
        code state are never served, and the result schema version so a
        schema bump orphans (rather than corrupts) old entries.
        """
        return content_hash(
            {
                "schema": SCHEMA_VERSION,
                "code": code_version(),
                "workload": self.workload,
                "system": self.system,
                "params": self.params,
            }
        )

    def describe(self) -> str:
        """Short ``workload x system`` label for progress lines."""
        return f"{self.workload.name} x {self.system.name}"
