"""Parallel sweep runner: job model, on-disk result cache, executor.

Public surface::

    from repro.sim.runner import (
        SweepJob, SweepRunner, ResultCache, run_jobs, run_pairs,
        derive_seed, content_hash,
    )

See DESIGN.md ("Sweep runner") for the job model and cache-key scheme.
"""

from repro.sim.runner.cache import CACHE_SCHEMA, CacheStats, ResultCache
from repro.sim.runner.isolate import (
    JobCrashedError,
    JobExecutionError,
    JobTimeoutError,
    run_job_isolated,
)
from repro.sim.runner.executor import (
    ProgressCallback,
    SweepProgress,
    SweepRunner,
    merged_metrics,
    merged_timeseries,
    run_jobs,
    run_pairs,
)
from repro.sim.runner.jobs import (
    SweepJob,
    canonical,
    content_hash,
    derive_seed,
)

__all__ = [
    "CACHE_SCHEMA",
    "CacheStats",
    "ResultCache",
    "JobCrashedError",
    "JobExecutionError",
    "JobTimeoutError",
    "run_job_isolated",
    "ProgressCallback",
    "SweepProgress",
    "SweepRunner",
    "merged_metrics",
    "merged_timeseries",
    "run_jobs",
    "run_pairs",
    "SweepJob",
    "canonical",
    "content_hash",
    "derive_seed",
]
