"""Lease policy: how long a worker owns a job, and how failures back off.

A lease is a time-boxed claim on one queued job.  The owning worker must
heartbeat before ``lease_seconds`` elapse or the store hands the job to
someone else — that is the whole crash-recovery story: a SIGKILLed
worker simply stops heartbeating, and nothing else has to notice.

Attempts count *lease acquisitions*, so a job that keeps crashing its
worker (or keeps timing out) burns through the same bounded budget as
one that raises cleanly; after ``max_attempts`` it dead-letters instead
of looping forever.  Between retries the job is gated behind a capped
exponential backoff so a poison job cannot monopolise the queue.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LeasePolicy:
    """Knobs shared by the store, the workers and the service."""

    #: Seconds a lease stays valid without a heartbeat.
    lease_seconds: float = 30.0
    #: How often a running worker renews its lease (must be well under
    #: ``lease_seconds``; the worker clamps it there anyway).
    heartbeat_seconds: float = 10.0
    #: Lease acquisitions before a job dead-letters (first run included).
    max_attempts: int = 4
    #: First retry delay; doubles per attempt.
    backoff_base: float = 0.5
    #: Ceiling on any single retry delay.
    backoff_cap: float = 30.0
    #: Optional wall-clock cap per job execution (enforced by the worker
    #: via :func:`repro.sim.runner.isolate.run_job_isolated`).
    job_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff delays cannot be negative")

    def backoff(self, attempts: int) -> float:
        """Retry delay after the ``attempts``-th lease ended badly."""
        if attempts <= 0:
            return 0.0
        return min(self.backoff_cap, self.backoff_base * (2.0 ** (attempts - 1)))

    def effective_heartbeat(self) -> float:
        """Heartbeat cadence that can never outlive the lease."""
        return max(0.05, min(self.heartbeat_seconds, self.lease_seconds / 3.0))
