"""SQLite-backed durable job queue for sweep campaigns.

One row per submitted :class:`~repro.sim.runner.jobs.SweepJob`, keyed by
``(campaign, job_index)`` and carrying the job's content hash (== its
:class:`ResultCache` key) plus a pickled copy of the job itself, so any
process that can see the store file can reconstruct and run the work.

State machine (the only transitions the store will perform)::

    queued --lease--> leased --complete--> done
      ^                 |
      |                 +--fail/expire (attempts < max)--> queued (backoff)
      |                 +--fail/expire (attempts >= max)-> failed (dead letter)
      +--requeue (result lost from cache)-- done

Every transition is a single ``BEGIN IMMEDIATE`` transaction, so two
workers on two connections (threads, processes or hosts sharing the
directory) can never lease the same row, complete the same row twice, or
lose a row: ``queued + leased + done + failed == submitted`` always.

The journal is WAL so readers (the status endpoint, ``repro status``)
never block the workers.  A corrupted store file surfaces as
:class:`StoreCorruptError` — loudly, because silently recreating the
schema over a damaged campaign would fake an empty-but-healthy queue.
A zero-byte file, by contrast, *is* a fresh store (SQLite's own
convention) and initialises cleanly.
"""

from __future__ import annotations

import contextlib
import pickle
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.sim.campaign.lease import LeasePolicy
from repro.sim.runner.jobs import SweepJob

#: Every state a job row can be in (a partition: exactly one per row).
JOB_STATES = ("queued", "leased", "done", "failed")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    name     TEXT PRIMARY KEY,
    created  REAL NOT NULL,
    total    INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    campaign      TEXT NOT NULL,
    job_index     INTEGER NOT NULL,
    key           TEXT NOT NULL,
    workload      TEXT NOT NULL,
    system        TEXT NOT NULL,
    payload       BLOB NOT NULL,
    state         TEXT NOT NULL DEFAULT 'queued',
    attempts      INTEGER NOT NULL DEFAULT 0,
    max_attempts  INTEGER NOT NULL,
    not_before    REAL NOT NULL DEFAULT 0,
    lease_owner   TEXT,
    lease_expires REAL,
    error         TEXT,
    PRIMARY KEY (campaign, job_index)
);
CREATE INDEX IF NOT EXISTS idx_jobs_ready
    ON jobs (state, not_before, campaign, job_index);
CREATE INDEX IF NOT EXISTS idx_jobs_key ON jobs (key);
"""


class StoreCorruptError(RuntimeError):
    """The store file is damaged (truncated mid-page, overwritten, ...)."""


@dataclass(frozen=True)
class LeasedJob:
    """One job handed to a worker, with everything needed to run it."""

    campaign: str
    job_index: int
    key: str
    workload: str
    system: str
    payload: bytes
    attempts: int
    lease_expires: float

    def load(self) -> SweepJob:
        """Unpickle the job; raises on a garbled payload (poison job)."""
        job = pickle.loads(self.payload)
        if not isinstance(job, SweepJob):
            raise TypeError(
                f"payload of {self.campaign}[{self.job_index}] is not a "
                f"SweepJob (got {type(job).__name__})"
            )
        return job


class CampaignStore:
    """Durable queue of sweep jobs under one SQLite file."""

    def __init__(
        self,
        path: Union[str, Path],
        policy: Optional[LeasePolicy] = None,
    ):
        self.path = Path(path)
        self.policy = policy if policy is not None else LeasePolicy()
        self._local = threading.local()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._guard():
            con = self._connect()
            con.executescript(_SCHEMA)

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        """Thread-local connection (SQLite connections are not shareable)."""
        con = getattr(self._local, "con", None)
        if con is None:
            con = sqlite3.connect(
                str(self.path), timeout=30.0, isolation_level=None
            )
            con.row_factory = sqlite3.Row
            con.execute("PRAGMA journal_mode=WAL")
            con.execute("PRAGMA synchronous=NORMAL")
            self._local.con = con
        return con

    @contextlib.contextmanager
    def _guard(self) -> Iterator[None]:
        """Translate corruption into :class:`StoreCorruptError`.

        ``OperationalError`` (locked, busy, disk full) passes through —
        those are transient conditions, not damage — except for the
        not-a-database signature a clobbered header produces.
        """
        try:
            yield
        except sqlite3.OperationalError as exc:
            if "not a database" in str(exc):
                raise StoreCorruptError(
                    f"campaign store {self.path} is corrupt: {exc}"
                ) from exc
            raise
        except sqlite3.DatabaseError as exc:
            raise StoreCorruptError(
                f"campaign store {self.path} is corrupt: {exc}"
            ) from exc

    @contextlib.contextmanager
    def _txn(self) -> Iterator[sqlite3.Connection]:
        """One ``BEGIN IMMEDIATE`` write transaction (the lease lock)."""
        with self._guard():
            con = self._connect()
            con.execute("BEGIN IMMEDIATE")
            try:
                yield con
            except BaseException:
                con.execute("ROLLBACK")
                raise
            con.execute("COMMIT")

    def close(self) -> None:
        con = getattr(self._local, "con", None)
        if con is not None:
            con.close()
            self._local.con = None

    def integrity_check(self) -> None:
        """Raise :class:`StoreCorruptError` unless SQLite says ``ok``."""
        with self._guard():
            row = self._connect().execute("PRAGMA integrity_check").fetchone()
        if row is None or row[0] != "ok":
            raise StoreCorruptError(
                f"campaign store {self.path} failed integrity_check: "
                f"{row[0] if row else 'no result'}"
            )

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, campaign: str, jobs: List[SweepJob]) -> Dict[str, int]:
        """Enqueue ``jobs`` (in order) under ``campaign``.

        Idempotent: resubmitting the identical job list is a no-op that
        returns the live counts, so a crashed submitter can simply rerun.
        A *different* job list under the same name is refused — silently
        swapping a campaign's contents would corrupt its resume story.
        """
        if not campaign:
            raise ValueError("campaign name must be non-empty")
        if not jobs:
            raise ValueError("cannot submit an empty campaign")
        keys = [job.cache_key() for job in jobs]
        with self._txn() as con:
            row = con.execute(
                "SELECT total FROM campaigns WHERE name = ?", (campaign,)
            ).fetchone()
            if row is not None:
                existing = [
                    r["key"]
                    for r in con.execute(
                        "SELECT key FROM jobs WHERE campaign = ? "
                        "ORDER BY job_index",
                        (campaign,),
                    )
                ]
                if existing != keys:
                    raise ValueError(
                        f"campaign {campaign!r} already exists with "
                        f"different jobs ({len(existing)} vs {len(keys)})"
                    )
            else:
                con.execute(
                    "INSERT INTO campaigns (name, created, total) "
                    "VALUES (?, ?, ?)",
                    (campaign, time.time(), len(jobs)),
                )
                con.executemany(
                    "INSERT INTO jobs (campaign, job_index, key, workload, "
                    "system, payload, max_attempts) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?)",
                    [
                        (
                            campaign,
                            index,
                            key,
                            job.workload.name,
                            job.system.name,
                            pickle.dumps(job, protocol=4),
                            self.policy.max_attempts,
                        )
                        for index, (key, job) in enumerate(zip(keys, jobs))
                    ],
                )
        return self.counts(campaign)

    # ------------------------------------------------------------------
    # The lease protocol
    # ------------------------------------------------------------------
    def lease(
        self,
        worker: str,
        campaign: Optional[str] = None,
        now: Optional[float] = None,
    ) -> Optional[LeasedJob]:
        """Claim the next eligible queued job for ``worker``.

        ``BEGIN IMMEDIATE`` makes select-then-update atomic across
        connections, so no two workers can claim the same row.  Attempts
        count lease acquisitions — a worker that dies mid-job has still
        spent one of the job's ``max_attempts``.
        """
        now = time.time() if now is None else now
        where = "state = 'queued' AND not_before <= ?"
        args: List[object] = [now]
        if campaign is not None:
            where += " AND campaign = ?"
            args.append(campaign)
        with self._txn() as con:
            row = con.execute(
                f"SELECT campaign, job_index, key, workload, system, payload, "
                f"attempts FROM jobs WHERE {where} "
                "ORDER BY campaign, job_index LIMIT 1",
                args,
            ).fetchone()
            if row is None:
                return None
            expires = now + self.policy.lease_seconds
            con.execute(
                "UPDATE jobs SET state = 'leased', lease_owner = ?, "
                "lease_expires = ?, attempts = attempts + 1 "
                "WHERE campaign = ? AND job_index = ?",
                (worker, expires, row["campaign"], row["job_index"]),
            )
        return LeasedJob(
            campaign=row["campaign"],
            job_index=row["job_index"],
            key=row["key"],
            workload=row["workload"],
            system=row["system"],
            payload=row["payload"],
            attempts=row["attempts"] + 1,
            lease_expires=expires,
        )

    def heartbeat(
        self,
        campaign: str,
        job_index: int,
        worker: str,
        now: Optional[float] = None,
    ) -> bool:
        """Renew ``worker``'s lease; ``False`` means the lease was lost."""
        now = time.time() if now is None else now
        with self._txn() as con:
            cursor = con.execute(
                "UPDATE jobs SET lease_expires = ? "
                "WHERE campaign = ? AND job_index = ? "
                "AND state = 'leased' AND lease_owner = ?",
                (now + self.policy.lease_seconds, campaign, job_index, worker),
            )
            return cursor.rowcount == 1

    def complete(
        self, campaign: str, job_index: int, worker: str
    ) -> bool:
        """Mark a leased job done; only its current lease owner may.

        ``False`` when the lease was lost (expired and re-leased) or the
        job already completed — a job can never be double-completed.
        """
        with self._txn() as con:
            cursor = con.execute(
                "UPDATE jobs SET state = 'done', lease_owner = NULL, "
                "lease_expires = NULL, error = NULL "
                "WHERE campaign = ? AND job_index = ? "
                "AND state = 'leased' AND lease_owner = ?",
                (campaign, job_index, worker),
            )
            return cursor.rowcount == 1

    def fail(
        self,
        campaign: str,
        job_index: int,
        worker: str,
        error: str,
        now: Optional[float] = None,
    ) -> Optional[str]:
        """Record a failed execution; requeue with backoff or dead-letter.

        Returns the resulting state (``"queued"`` or ``"failed"``), or
        ``None`` when ``worker`` no longer owned the lease.  The captured
        traceback is kept either way: on a requeue it documents the most
        recent attempt, on a dead-letter it is the post-mortem.
        """
        now = time.time() if now is None else now
        with self._txn() as con:
            row = con.execute(
                "SELECT attempts, max_attempts FROM jobs "
                "WHERE campaign = ? AND job_index = ? "
                "AND state = 'leased' AND lease_owner = ?",
                (campaign, job_index, worker),
            ).fetchone()
            if row is None:
                return None
            state = (
                "failed" if row["attempts"] >= row["max_attempts"] else "queued"
            )
            con.execute(
                "UPDATE jobs SET state = ?, lease_owner = NULL, "
                "lease_expires = NULL, error = ?, not_before = ? "
                "WHERE campaign = ? AND job_index = ?",
                (
                    state,
                    error,
                    now + self.policy.backoff(row["attempts"]),
                    campaign,
                    job_index,
                ),
            )
        return state

    def expire_leases(self, now: Optional[float] = None) -> int:
        """Reclaim every lease whose deadline passed (crashed workers).

        Jobs with attempts left return to ``queued`` behind their backoff
        gate; exhausted ones dead-letter with a synthetic error, since the
        dead worker left no traceback of its own.
        """
        now = time.time() if now is None else now
        reclaimed = 0
        with self._txn() as con:
            rows = con.execute(
                "SELECT campaign, job_index, attempts, max_attempts, "
                "lease_owner FROM jobs "
                "WHERE state = 'leased' AND lease_expires < ?",
                (now,),
            ).fetchall()
            for row in rows:
                exhausted = row["attempts"] >= row["max_attempts"]
                con.execute(
                    "UPDATE jobs SET state = ?, lease_owner = NULL, "
                    "lease_expires = NULL, error = ?, not_before = ? "
                    "WHERE campaign = ? AND job_index = ?",
                    (
                        "failed" if exhausted else "queued",
                        (
                            f"lease of {row['lease_owner']!r} expired after "
                            f"attempt {row['attempts']}/{row['max_attempts']}"
                        ),
                        now + self.policy.backoff(row["attempts"]),
                        row["campaign"],
                        row["job_index"],
                    ),
                )
                reclaimed += 1
        return reclaimed

    def requeue(self, campaign: str, job_index: int) -> bool:
        """Force a ``done``/``failed`` job back to ``queued``.

        Used when a completed job's cached result went missing or corrupt
        (the store said done, the cache disagreed — the cache wins, the
        job recomputes) and by explicit dead-letter retries.  Attempts
        reset: this is a fresh submission of the same content.
        """
        with self._txn() as con:
            cursor = con.execute(
                "UPDATE jobs SET state = 'queued', attempts = 0, "
                "not_before = 0, lease_owner = NULL, lease_expires = NULL, "
                "error = NULL "
                "WHERE campaign = ? AND job_index = ? "
                "AND state IN ('done', 'failed')",
                (campaign, job_index),
            )
            return cursor.rowcount == 1

    # ------------------------------------------------------------------
    # Introspection (plain reads: WAL keeps them non-blocking)
    # ------------------------------------------------------------------
    def campaigns(self) -> List[str]:
        with self._guard():
            rows = self._connect().execute(
                "SELECT name FROM campaigns ORDER BY name"
            ).fetchall()
        return [row["name"] for row in rows]

    def counts(self, campaign: str) -> Dict[str, int]:
        """Per-state row counts (every state present, zeros included)."""
        with self._guard():
            rows = self._connect().execute(
                "SELECT state, COUNT(*) AS n FROM jobs "
                "WHERE campaign = ? GROUP BY state",
                (campaign,),
            ).fetchall()
        counts = {state: 0 for state in JOB_STATES}
        for row in rows:
            counts[row["state"]] = row["n"]
        counts["total"] = sum(counts[state] for state in JOB_STATES)
        return counts

    def pending(self, campaign: Optional[str] = None) -> int:
        """Jobs that are not yet settled (``queued`` or ``leased``).

        A queued job behind its backoff gate still counts: it will become
        leasable once the gate passes, so a draining worker must wait for
        it rather than declare the campaign finished.
        """
        where = "state IN ('queued', 'leased')"
        args: List[object] = []
        if campaign is not None:
            where += " AND campaign = ?"
            args.append(campaign)
        with self._guard():
            row = self._connect().execute(
                f"SELECT COUNT(*) FROM jobs WHERE {where}", args
            ).fetchone()
        return int(row[0])

    def total(self, campaign: str) -> int:
        with self._guard():
            row = self._connect().execute(
                "SELECT total FROM campaigns WHERE name = ?", (campaign,)
            ).fetchone()
        if row is None:
            raise KeyError(f"unknown campaign {campaign!r}")
        return row["total"]

    def all_done(self, campaign: str) -> bool:
        counts = self.counts(campaign)
        return counts["total"] > 0 and counts["done"] == counts["total"]

    def jobs_in_order(self, campaign: str) -> List[Dict[str, object]]:
        """Submission-order job rows (without the pickled payload)."""
        with self._guard():
            rows = self._connect().execute(
                "SELECT job_index, key, workload, system, state, attempts, "
                "max_attempts, lease_owner, lease_expires, error "
                "FROM jobs WHERE campaign = ? ORDER BY job_index",
                (campaign,),
            ).fetchall()
        return [dict(row) for row in rows]

    def job(self, campaign: str, job_index: int) -> Dict[str, object]:
        with self._guard():
            row = self._connect().execute(
                "SELECT * FROM jobs WHERE campaign = ? AND job_index = ?",
                (campaign, job_index),
            ).fetchone()
        if row is None:
            raise KeyError(f"no job {job_index} in campaign {campaign!r}")
        return dict(row)

    def dead_letters(self, campaign: str) -> List[Dict[str, object]]:
        """Failed jobs with their captured tracebacks, in job order."""
        return [
            row
            for row in self.jobs_in_order(campaign)
            if row["state"] == "failed"
        ]
