"""Durable sweep campaigns: SQLite job queue, leased workers, HTTP status.

The one-shot :mod:`repro.sim.runner` loses all progress on a crash; a
*campaign* persists the same :class:`~repro.sim.runner.jobs.SweepJob`\\ s
in a SQLite store (WAL mode, one row per job) and lets any number of
workers — in-process loops, ``repro worker`` subprocesses, even other
hosts sharing the store directory — pull jobs under lease, heartbeat
while running, and retry or dead-letter failures.  Completed payloads
land in the existing content-addressed :class:`ResultCache`, so a
resumed or multi-worker campaign merges to byte-identical results
against a serial ``run_pairs`` of the same pairs.

Public surface::

    from repro.sim.campaign import (
        CampaignStore, LeasePolicy, LeasedJob, StoreCorruptError,
        Worker, run_worker, parse_inject,
        StatusServer, CampaignService, STATUS_SCHEMA,
        collect_results, merged_partial, campaign_progress,
        submit_pairs, run_pairs_durable, resume_campaign,
    )

See docs/CAMPAIGNS.md for the queue states, lease protocol and resume
semantics.
"""

from repro.sim.campaign.aggregate import (
    campaign_progress,
    collect_results,
    merged_partial,
    resume_campaign,
    run_pairs_durable,
    submit_pairs,
    verify_campaign_results,
)
from repro.sim.campaign.lease import LeasePolicy
from repro.sim.campaign.service import (
    STATUS_SCHEMA,
    CampaignService,
    StatusServer,
)
from repro.sim.campaign.store import (
    JOB_STATES,
    CampaignStore,
    LeasedJob,
    StoreCorruptError,
)
from repro.sim.campaign.worker import Worker, parse_inject, run_worker

__all__ = [
    "JOB_STATES",
    "CampaignStore",
    "LeasedJob",
    "StoreCorruptError",
    "LeasePolicy",
    "Worker",
    "run_worker",
    "parse_inject",
    "STATUS_SCHEMA",
    "StatusServer",
    "CampaignService",
    "collect_results",
    "merged_partial",
    "campaign_progress",
    "submit_pairs",
    "run_pairs_durable",
    "resume_campaign",
    "verify_campaign_results",
]
