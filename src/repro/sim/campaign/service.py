"""HTTP status endpoint and the long-running campaign service.

Pure stdlib (``http.server``): a threading server whose handlers only
*read* the store (WAL keeps readers non-blocking) and the result cache.
The JSON schema below is the contract — tests lint it against the
handler output and against docs/CAMPAIGNS.md so the three can't drift.

Routes::

    GET /healthz                       -> {"ok": true}
    GET /v1/status                     -> service + per-campaign summaries
    GET /v1/campaigns                  -> {"campaigns": [name, ...]}
    GET /v1/campaigns/<name>           -> campaign_progress() document
    GET /v1/campaigns/<name>/merged    -> merged_partial() document

Unknown paths and unknown campaigns answer 404 with a JSON error body;
non-GET methods answer 405.  :class:`CampaignService` wraps the server
with a worker-subprocess fleet and a lease-expiry sweeper — the
``repro serve`` process.
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional

from repro.sim.campaign.aggregate import campaign_progress, merged_partial
from repro.sim.campaign.store import CampaignStore
from repro.sim.runner.cache import ResultCache

#: The status JSON contract, keyed by route.  Tests assert the handler
#: emits exactly these keys and that docs/CAMPAIGNS.md documents each.
STATUS_SCHEMA: Dict[str, List[str]] = {
    "/healthz": ["ok"],
    "/v1/status": ["service", "campaigns"],
    "/v1/status#service": ["store", "cache", "uptime_seconds", "time"],
    "/v1/campaigns": ["campaigns"],
    "/v1/campaigns/<name>": [
        "campaign", "counts", "total", "progress", "dead_letters",
    ],
    "/v1/campaigns/<name>/merged": [
        "campaign", "total", "merged_over", "merged_metrics",
        "merged_timeseries",
    ],
    "error": ["error"],
}


class _StatusHandler(BaseHTTPRequestHandler):
    """Read-only JSON views over one store + cache (set on the server)."""

    server_version = "repro-campaign/1"

    # Handlers run on ThreadingHTTPServer worker threads; the store opens
    # a thread-local SQLite connection per handler thread automatically.
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        try:
            status, document = self._route(self.path)
        except Exception as exc:  # defensive: a handler bug must not hang
            status, document = 500, {"error": f"{type(exc).__name__}: {exc}"}
        body = json.dumps(document, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_POST(self) -> None:  # noqa: N802
        body = json.dumps({"error": "read-only endpoint; use GET"}).encode()
        self.send_response(405)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *_args) -> None:
        """Silence per-request stderr lines (the service logs itself)."""

    # ------------------------------------------------------------------
    def _route(self, path: str):
        store: CampaignStore = self.server.store      # type: ignore[attr-defined]
        cache: ResultCache = self.server.cache        # type: ignore[attr-defined]
        started: float = self.server.started          # type: ignore[attr-defined]
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            return 200, {"ok": True}
        if path == "/v1/status":
            return 200, {
                "service": {
                    "store": str(store.path),
                    "cache": str(cache.directory),
                    "uptime_seconds": time.time() - started,
                    "time": time.time(),
                },
                "campaigns": [
                    campaign_progress(store, name)
                    for name in store.campaigns()
                ],
            }
        if path == "/v1/campaigns":
            return 200, {"campaigns": store.campaigns()}
        parts = path.split("/")
        # /v1/campaigns/<name>[/merged]
        if len(parts) in (4, 5) and parts[1] == "v1" and parts[2] == "campaigns":
            name = parts[3]
            if name not in store.campaigns():
                return 404, {"error": f"unknown campaign {name!r}"}
            if len(parts) == 4:
                return 200, campaign_progress(store, name)
            if parts[4] == "merged":
                return 200, merged_partial(store, cache, name)
            return 404, {"error": f"unknown campaign view {parts[4]!r}"}
        return 404, {"error": f"unknown path {path!r}"}


class StatusServer:
    """Threaded HTTP server bound to an (ephemeral by default) port."""

    def __init__(
        self,
        store: CampaignStore,
        cache: ResultCache,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self._httpd = ThreadingHTTPServer((host, port), _StatusHandler)
        self._httpd.store = store          # type: ignore[attr-defined]
        self._httpd.cache = cache          # type: ignore[attr-defined]
        self._httpd.started = time.time()  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    def start(self) -> "StatusServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join()
        self._httpd.server_close()


def spawn_worker_process(
    store_path: str,
    cache_dir: str,
    campaign: Optional[str] = None,
    once: bool = False,
    lease_seconds: Optional[float] = None,
    job_timeout: Optional[float] = None,
) -> subprocess.Popen:
    """Start one ``repro worker`` subprocess against a (shared) store.

    The subprocess inherits the environment, so ``PYTHONPATH`` and the
    ``REPRO_CAMPAIGN_INJECT`` fault hook propagate — exactly what the
    fault harness needs to SIGKILL a worker mid-job.
    """
    argv = [
        sys.executable, "-m", "repro", "worker",
        "--store", store_path, "--cache-dir", cache_dir,
    ]
    if campaign:
        argv += ["--campaign", campaign]
    if once:
        argv += ["--once"]
    if lease_seconds is not None:
        argv += ["--lease", str(lease_seconds)]
    if job_timeout is not None:
        argv += ["--timeout", str(job_timeout)]
    return subprocess.Popen(argv)


class CampaignService:
    """``repro serve``: worker fleet + lease sweeper + status endpoint."""

    def __init__(
        self,
        store: CampaignStore,
        cache: ResultCache,
        workers: int = 1,
        host: str = "127.0.0.1",
        port: int = 0,
        sweep_seconds: float = 2.0,
    ):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.store = store
        self.cache = cache
        self.workers = workers
        self.sweep_seconds = sweep_seconds
        self.server = StatusServer(store, cache, host=host, port=port)
        self._procs: List[subprocess.Popen] = []
        self._stop = threading.Event()
        self._sweeper: Optional[threading.Thread] = None

    def start(self) -> "CampaignService":
        self.server.start()
        for _ in range(self.workers):
            self._procs.append(
                spawn_worker_process(
                    str(self.store.path),
                    str(self.cache.directory),
                    lease_seconds=self.store.policy.lease_seconds,
                    job_timeout=self.store.policy.job_timeout,
                )
            )
        self._sweeper = threading.Thread(target=self._sweep_loop, daemon=True)
        self._sweeper.start()
        return self

    def _sweep_loop(self) -> None:
        """Reclaim dead workers' leases and respawn crashed workers."""
        while not self._stop.wait(self.sweep_seconds):
            try:
                self.store.expire_leases()
            except Exception:  # pragma: no cover - sweep must never die
                continue
            for index, proc in enumerate(self._procs):
                if proc.poll() is not None and not self._stop.is_set():
                    self._procs[index] = spawn_worker_process(
                        str(self.store.path),
                        str(self.cache.directory),
                        lease_seconds=self.store.policy.lease_seconds,
                        job_timeout=self.store.policy.job_timeout,
                    )

    def wait_until_done(
        self, campaign: str, poll_seconds: float = 0.5,
        timeout: Optional[float] = None,
    ) -> bool:
        """Block until every job of ``campaign`` is done or dead-lettered."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            counts = self.store.counts(campaign)
            if counts["total"] and counts["queued"] + counts["leased"] == 0:
                return counts["failed"] == 0
            if deadline is not None and time.monotonic() > deadline:
                return False
            time.sleep(poll_seconds)

    def stop(self) -> None:
        self._stop.set()
        if self._sweeper is not None:
            self._sweeper.join()
        for proc in self._procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self._procs:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
                proc.wait()
        self.server.stop()
