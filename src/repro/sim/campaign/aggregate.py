"""Streaming campaign aggregation over the content-addressed cache.

The store records *which* jobs are done; the :class:`ResultCache` holds
*what* they produced, keyed by the same content hash.  Aggregation is
therefore a pure read: collect whatever results exist (in submission
order), merge their metrics/time-series with the runner's own order-
insensitive mergers, and report progress — over a finished campaign the
merge is byte-identical to a serial ``run_pairs`` of the same pairs,
because each job's payload is a pure function of its content-derived
seed no matter which worker, host or attempt computed it.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.campaign.lease import LeasePolicy
from repro.sim.campaign.store import CampaignStore
from repro.sim.campaign.worker import Worker
from repro.sim.metrics import SimulationResult
from repro.sim.runner.cache import ResultCache
from repro.sim.runner.executor import (
    SystemLike,
    WorkloadLike,
    merged_metrics,
    merged_timeseries,
)
from repro.sim.runner.jobs import SweepJob, content_hash
from repro.sim.simulator import SimulationParams


def default_campaign_name(jobs: Sequence[SweepJob]) -> str:
    """Deterministic name for an unnamed submission: the job-list hash."""
    return "c-" + content_hash([job.cache_key() for job in jobs])[:12]


def submit_pairs(
    store: CampaignStore,
    pairs: Sequence[Tuple[WorkloadLike, SystemLike]],
    params: Optional[SimulationParams] = None,
    campaign: Optional[str] = None,
) -> str:
    """Build jobs exactly like ``run_pairs`` would and enqueue them.

    Returns the campaign name.  Using the same ``SweepJob.build`` calls
    as the one-shot path is what makes the determinism contract testable:
    the durable campaign and the serial sweep run literally the same jobs.
    """
    jobs = [
        SweepJob.build(workload, system, params) for workload, system in pairs
    ]
    name = campaign or default_campaign_name(jobs)
    store.submit(name, jobs)
    return name


def collect_results(
    store: CampaignStore, cache: ResultCache, campaign: str
) -> Tuple[List[Optional[SimulationResult]], List[int]]:
    """Results in submission order; ``None`` holes where nothing exists.

    Second element lists the indices of ``done`` jobs whose cached result
    is missing or failed the cache's self-verification — the store and
    the cache disagree, and callers (resume, verify) requeue those.
    """
    slots: List[Optional[SimulationResult]] = []
    stale_done: List[int] = []
    for row in store.jobs_in_order(campaign):
        result = cache.get(str(row["key"]))
        slots.append(result)
        if result is None and row["state"] == "done":
            stale_done.append(int(row["job_index"]))
    return slots, stale_done


def verify_campaign_results(
    store: CampaignStore, cache: ResultCache, campaign: str
) -> int:
    """Requeue every ``done`` job whose cached payload is gone or corrupt.

    The cache already self-verifies (key + SHA-256 digest), so a corrupt
    entry reads as missing; the store's "done" claim is then a lie and the
    job recomputes.  Returns how many jobs were requeued.
    """
    _, stale_done = collect_results(store, cache, campaign)
    requeued = 0
    for job_index in stale_done:
        if store.requeue(campaign, job_index):
            requeued += 1
    return requeued


def merged_partial(
    store: CampaignStore, cache: ResultCache, campaign: str
) -> Dict[str, object]:
    """Merged metrics/time-series over whatever is done *so far*.

    The streaming view behind the status endpoint: as workers complete
    jobs the merge grows monotonically toward the full-campaign merge,
    and on a finished campaign it equals the serial one byte for byte.
    """
    slots, _ = collect_results(store, cache, campaign)
    present = [result for result in slots if result is not None]
    counts = store.counts(campaign)
    return {
        "campaign": campaign,
        "total": counts["total"],
        "merged_over": len(present),
        "merged_metrics": merged_metrics(present),
        "merged_timeseries": merged_timeseries(present),
    }


def campaign_progress(
    store: CampaignStore, campaign: str
) -> Dict[str, object]:
    """Status-endpoint summary: counts, progress fraction, dead letters."""
    counts = store.counts(campaign)
    total = counts["total"]
    return {
        "campaign": campaign,
        "counts": {k: counts[k] for k in ("queued", "leased", "done", "failed")},
        "total": total,
        "progress": (counts["done"] / total) if total else 0.0,
        "dead_letters": [
            {
                "job_index": row["job_index"],
                "workload": row["workload"],
                "system": row["system"],
                "attempts": row["attempts"],
                "error": row["error"],
            }
            for row in store.dead_letters(campaign)
        ],
    }


def drain(
    store: CampaignStore,
    cache: ResultCache,
    campaign: str,
    worker_id: str = "inline",
) -> List[SimulationResult]:
    """Run an inline worker until ``campaign`` has nothing leasable,
    then collect; raises if jobs dead-lettered or remain leased elsewhere.
    """
    Worker(store, cache, worker_id=worker_id).run(campaign=campaign, once=True)
    counts = store.counts(campaign)
    if counts["failed"]:
        letters = store.dead_letters(campaign)
        raise RuntimeError(
            f"campaign {campaign!r} has {counts['failed']} dead-lettered "
            f"job(s); first error:\n{letters[0]['error']}"
        )
    if not store.all_done(campaign):
        raise RuntimeError(
            f"campaign {campaign!r} not drained: {counts} "
            "(jobs still leased by another live worker?)"
        )
    slots, stale = collect_results(store, cache, campaign)
    if stale or any(result is None for result in slots):
        raise RuntimeError(
            f"campaign {campaign!r} is done but {len(stale)} cached "
            "result(s) are missing; run verify_campaign_results and resume"
        )
    return [result for result in slots if result is not None]


def resume_campaign(
    store: CampaignStore,
    cache: ResultCache,
    campaign: str,
    worker_id: str = "resume",
    reset_dead_letters: bool = False,
) -> List[SimulationResult]:
    """Finish a partially-run campaign in-process and return its results.

    Reclaims expired leases, requeues done-but-resultless jobs (store/
    cache disagreement after corruption) and optionally gives dead
    letters a fresh attempt budget, then drains inline.  Completed jobs
    are pure cache reads — resuming only computes what's missing.
    """
    store.expire_leases()
    verify_campaign_results(store, cache, campaign)
    if reset_dead_letters:
        for row in store.dead_letters(campaign):
            store.requeue(campaign, int(row["job_index"]))
    return drain(store, cache, campaign, worker_id=worker_id)


def run_pairs_durable(
    pairs: Sequence[Tuple[WorkloadLike, SystemLike]],
    params: Optional[SimulationParams] = None,
    *,
    store: CampaignStore,
    cache: ResultCache,
    campaign: Optional[str] = None,
) -> List[SimulationResult]:
    """Durable drop-in for ``run_pairs``: submit (idempotent), drain, collect.

    A crash at any point loses nothing: rerunning resubmits the identical
    campaign (a no-op), reclaims stale leases and computes only the holes.
    """
    name = submit_pairs(store, pairs, params, campaign)
    deadline = None
    if store.policy.job_timeout is not None:
        deadline = time.monotonic() + store.policy.job_timeout * len(pairs)
    while True:
        try:
            return resume_campaign(store, cache, name, worker_id="durable")
        except RuntimeError:
            # Another worker holds live leases; wait for them (bounded
            # when a job timeout bounds each lease's useful lifetime).
            if deadline is not None and time.monotonic() > deadline:
                raise
            if store.counts(name)["leased"] == 0:
                raise
            time.sleep(0.2)


__all__ = [
    "LeasePolicy",
    "default_campaign_name",
    "submit_pairs",
    "collect_results",
    "verify_campaign_results",
    "merged_partial",
    "campaign_progress",
    "drain",
    "resume_campaign",
    "run_pairs_durable",
]
