"""Campaign worker: lease, heartbeat, execute, complete — or fail loudly.

A worker is a plain loop over the store's lease protocol.  Several can
run at once — threads in one process, ``repro worker`` subprocesses, or
other hosts that mount the same store directory — because every claim
goes through the store's ``BEGIN IMMEDIATE`` lease and every result
lands in the content-addressed :class:`ResultCache` under the job's own
hash, where recomputing an already-cached key is a harmless no-op.

While a job runs, a daemon thread heartbeats the lease; a worker that is
SIGKILLed simply stops heartbeating and the store re-leases its job once
the deadline passes.  Failures are captured as tracebacks and routed
through :meth:`CampaignStore.fail` (bounded retry, then dead-letter).

``REPRO_CAMPAIGN_INJECT`` is the fault-injection hook the test harness
and the CI kill-and-resume leg use: ``sleep:<seconds>`` stalls each job
long enough to kill the worker mid-flight, ``fail:<n>`` raises on the
first *n* executions.  It is read once at worker start and does nothing
when unset.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import traceback
from typing import Callable, Optional

from repro.sim.campaign.store import CampaignStore, LeasedJob
from repro.sim.metrics import SimulationResult
from repro.sim.runner.cache import ResultCache
from repro.sim.runner.isolate import default_execute, run_job_isolated
from repro.sim.runner.jobs import SweepJob

#: Environment hook injecting faults into every execution (tests/CI only).
INJECT_ENV = "REPRO_CAMPAIGN_INJECT"


def parse_inject(spec: Optional[str]) -> Optional[Callable[[int], None]]:
    """Build the fault hook from an ``INJECT_ENV`` spec (or ``None``).

    ``sleep:2.5`` sleeps before each execution; ``fail:3`` raises on the
    first three executions (then behaves).  Malformed specs raise at
    worker start, not silently mid-campaign.
    """
    if not spec:
        return None
    kind, _, value = spec.partition(":")
    if kind == "sleep":
        seconds = float(value)

        def hook(_n: int) -> None:
            time.sleep(seconds)

        return hook
    if kind == "fail":
        limit = int(value)

        def hook(n: int) -> None:
            if n < limit:
                raise RuntimeError(
                    f"injected failure {n + 1}/{limit} ({INJECT_ENV})"
                )

        return hook
    raise ValueError(f"unknown {INJECT_ENV} spec {spec!r}")


def default_worker_id() -> str:
    return f"{socket.gethostname()}:{os.getpid()}"


class Worker:
    """One lease-pulling execution loop over a campaign store."""

    def __init__(
        self,
        store: CampaignStore,
        cache: ResultCache,
        worker_id: Optional[str] = None,
        execute: Optional[Callable[[SweepJob], SimulationResult]] = None,
        inject: Optional[Callable[[int], None]] = None,
        isolate: bool = True,
    ):
        self.store = store
        self.cache = cache
        self.worker_id = worker_id or default_worker_id()
        self._execute = execute if execute is not None else default_execute
        self._inject = inject
        #: Run jobs in a killable child process (enforces the policy's
        #: ``job_timeout``); tests flip this off to execute inline.
        self.isolate = isolate
        self.executed = 0
        self.completed = 0
        self.failed = 0
        self.cached = 0

    # ------------------------------------------------------------------
    def run(
        self,
        campaign: Optional[str] = None,
        once: bool = False,
        poll_seconds: float = 0.25,
        stop: Optional[threading.Event] = None,
    ) -> int:
        """Pull and run jobs until drained (``once``) or stopped.

        Returns the number of jobs this worker completed.  ``once=True``
        drains: the worker exits when no job is queued or leased any more
        (jobs gated behind a retry backoff, or leased by another worker
        whose lease may yet expire, are waited out) — the loop behind
        ``repro sweep --resume`` and the tests.  Without it the worker
        keeps polling for new work like a long-lived fleet member.
        """
        while stop is None or not stop.is_set():
            self.store.expire_leases()
            leased = self.store.lease(self.worker_id, campaign)
            if leased is None:
                if once and self.store.pending(campaign) == 0:
                    break
                time.sleep(poll_seconds)
                continue
            self.run_one(leased)
        return self.completed

    def run_one(self, leased: LeasedJob) -> bool:
        """Execute one leased job end to end; ``True`` when completed."""
        heartbeat_stop = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(leased, heartbeat_stop),
            daemon=True,
        )
        heartbeat.start()
        try:
            result = self._produce(leased)
        except BaseException:
            heartbeat_stop.set()
            heartbeat.join()
            self.failed += 1
            self.store.fail(
                leased.campaign,
                leased.job_index,
                self.worker_id,
                traceback.format_exc(),
            )
            return False
        heartbeat_stop.set()
        heartbeat.join()
        # Cache first, then complete: a crash between the two leaves a
        # re-leasable job whose recompute is a cache hit — never a "done"
        # job with no result behind it.
        self.cache.put(leased.key, result)
        if self.store.complete(
            leased.campaign, leased.job_index, self.worker_id
        ):
            self.completed += 1
            return True
        # Lease lost mid-run (expired and re-leased): the cached result
        # is still valid — content-addressed, deterministic — so the
        # duplicate execution cost is the only waste.
        return False

    # ------------------------------------------------------------------
    def _produce(self, leased: LeasedJob) -> SimulationResult:
        """Cached result, or a fresh (possibly isolated) execution."""
        cached = self.cache.get(leased.key)
        if cached is not None:
            self.cached += 1
            return cached
        job = leased.load()
        # Count the execution *before* the fault hook fires, so a
        # ``fail:n`` spec fails exactly n executions and then behaves
        # (instead of failing the same zeroth execution forever).
        attempt = self.executed
        self.executed += 1
        if self._inject is not None:
            self._inject(attempt)
        timeout = self.store.policy.job_timeout
        if self.isolate and timeout is not None:
            return run_job_isolated(job, timeout, self._execute)
        return self._execute(job)

    def _heartbeat_loop(
        self, leased: LeasedJob, stop: threading.Event
    ) -> None:
        cadence = self.store.policy.effective_heartbeat()
        while not stop.wait(cadence):
            try:
                if not self.store.heartbeat(
                    leased.campaign, leased.job_index, self.worker_id
                ):
                    return  # lease lost; completion will be refused anyway
            except Exception:  # pragma: no cover - best-effort renewal
                return


def run_worker(
    store_path: str,
    cache_dir: str,
    campaign: Optional[str] = None,
    worker_id: Optional[str] = None,
    once: bool = False,
    policy=None,
    poll_seconds: float = 0.25,
) -> int:
    """CLI entry: build a worker from paths and run it (returns completions).

    Faults are injected from ``REPRO_CAMPAIGN_INJECT`` here — the env
    hook only binds on this subprocess path, never on library use.
    """
    store = CampaignStore(store_path, policy=policy)
    worker = Worker(
        store,
        ResultCache(cache_dir),
        worker_id=worker_id,
        inject=parse_inject(os.environ.get(INJECT_ENV)),
    )
    return worker.run(campaign=campaign, once=once, poll_seconds=poll_seconds)
