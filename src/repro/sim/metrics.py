"""Measurement machinery: IRLP windows, latency and throughput statistics.

IRLP ("intra-rank-level parallelism during a write", paper footnote 2) is
the time-averaged number of chips doing *data-word* array work while a
write service window is open.  The controller opens a
:class:`WriteWindow` for every write (or WoW group) it issues and
attributes chip activity intervals — the dirty-word writes themselves plus
any reads overlapped by RoW — to the window.  ECC/PCC update activity is
deliberately excluded so the metric tops out at 8.0, matching the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.sim.engine import ticks_to_ns

if TYPE_CHECKING:
    from repro.telemetry.profiler import RunProfile


def merge_intervals(intervals: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Merge possibly-overlapping [start, end) intervals."""
    if not intervals:
        return []
    ordered = sorted(intervals)
    merged = [ordered[0]]
    for start, end in ordered[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


#: IRLP never exceeds the number of data words per line (paper footnote 2
#: reports it "out of a maximum of 8.0").
MAX_IRLP = 8


@dataclass
class WriteWindow:
    """One write service window and the chip activity inside it."""

    start: int
    end: int
    #: Tick the slowest trailing ECC/PCC update of the window finished;
    #: write-throughput busy time runs to here, IRLP only to ``end``.
    service_end: int = -1
    #: (chip, start, end) data-word activity intervals.
    activities: List[Tuple[int, int, int]] = field(default_factory=list)
    #: Memoised ``irlp()`` result: ((start, end, len(activities)), value).
    #: Activities only ever append and the span only moves via the
    #: mutators below, so that triple is a complete mutation stamp; the
    #: time-series sampler re-reads recent windows every cadence tick and
    #: would otherwise re-run the interval sweep on unchanged windows.
    _irlp_cache: Optional[Tuple[Tuple[int, int, int], float]] = field(
        default=None, repr=False, compare=False
    )

    def add_activity(self, chip: int, start: int, end: int) -> None:
        """Record data-word array work on ``chip`` over [start, end)."""
        if end > start:
            self.activities.append((chip, start, end))

    def extend(self, end: int) -> None:
        """Grow the window (WoW groups end with their slowest member)."""
        self.end = max(self.end, end)

    def absorb(self, start: int, end: int) -> None:
        """Expand the window to cover [start, end) (WoW member spans).

        A window created with ``start < 0`` is a placeholder; the first
        absorb defines its span.
        """
        if self.start < 0:
            self.start, self.end = start, end
        else:
            self.start = min(self.start, start)
            self.end = max(self.end, end)

    def note_service_end(self, end: int) -> None:
        """Record when the window's full service (ECC/PCC tail) finished."""
        self.service_end = max(self.service_end, end)

    @property
    def duration(self) -> int:
        return self.end - self.start

    @property
    def busy_end(self) -> int:
        """End of the window's full service (at least the IRLP span end)."""
        return max(self.end, self.service_end)

    def irlp(self) -> float:
        """Time-averaged busy data-chip count, capped at :data:`MAX_IRLP`.

        The cap matches the paper's definition: at most the eight data
        words of any line are in flight, even though a reconstruction read
        plus a trailing write can momentarily touch nine physical chips.
        """
        if self.duration <= 0:
            return 0.0
        stamp = (self.start, self.end, len(self.activities))
        if self._irlp_cache is not None and self._irlp_cache[0] == stamp:
            return self._irlp_cache[1]
        per_chip: Dict[int, List[Tuple[int, int]]] = {}
        for chip, start, end in self.activities:
            clipped = (max(start, self.start), min(end, self.end))
            if clipped[1] > clipped[0]:
                per_chip.setdefault(chip, []).append(clipped)
        # Sweep chip-count changes so the instantaneous count can be capped.
        events: List[Tuple[int, int]] = []
        for intervals in per_chip.values():
            for start, end in merge_intervals(intervals):
                events.append((start, +1))
                events.append((end, -1))
        events.sort()
        busy = 0
        count = 0
        previous = self.start
        for time, delta in events:
            busy += min(count, MAX_IRLP) * (time - previous)
            count += delta
            previous = time
        busy += min(count, MAX_IRLP) * (self.end - previous)
        value = busy / self.duration
        self._irlp_cache = (stamp, value)
        return value


class IrlpRecorder:
    """Collects write windows and summarises IRLP."""

    def __init__(self) -> None:
        self.windows: List[WriteWindow] = []

    def open_window(self, start: int, end: int) -> WriteWindow:
        window = WriteWindow(start, end)
        self.windows.append(window)
        return window

    def average(self) -> float:
        """Mean IRLP across windows (0 when no writes were serviced)."""
        values = [w.irlp() for w in self.windows if w.duration > 0]
        return sum(values) / len(values) if values else 0.0

    def maximum(self) -> float:
        values = [w.irlp() for w in self.windows if w.duration > 0]
        return max(values) if values else 0.0

    def drain_busy_ticks(self) -> int:
        """Union duration of all write service spans (incl. ECC/PCC tails)."""
        spans = [
            (w.start, w.busy_end) for w in self.windows if w.busy_end > w.start
        ]
        return sum(end - start for start, end in merge_intervals(spans))


@dataclass
class MemoryStats:
    """Aggregate counters for one controller (or merged across channels)."""

    reads_completed: int = 0
    writes_completed: int = 0
    read_latency_ticks: int = 0          #: sum of arrival->completion
    read_latency_max: int = 0
    reads_delayed_by_write: int = 0
    forwarded_reads: int = 0             #: reads served from the write queue
    row_buffer_hits: int = 0             #: reads served from an open row
    row_buffer_misses: int = 0           #: reads that had to activate
    row_reads: int = 0                   #: reads served via RoW reconstruction
    row_normal_overlap_reads: int = 0    #: reads overlapped without reconstruction
    wow_member_writes: int = 0           #: writes consolidated into groups
    wow_groups: int = 0                  #: groups with >= 2 members
    silent_writes: int = 0               #: zero-dirty-word write-backs
    rollbacks: int = 0                   #: RoW verifications that failed
    verify_count: int = 0                #: deferred verifications performed
    dirty_word_histogram: List[int] = field(default_factory=lambda: [0] * 9)
    drain_entries: int = 0               #: number of drain episodes
    #: PCM word writes per physical chip (data words and ECC/PCC updates)
    #: — wear balance; rotation spreads these (paper §IV-C2).
    chip_word_writes: Dict[int, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def record_read(self, latency_ticks: int, delayed: bool) -> None:
        self.reads_completed += 1
        self.read_latency_ticks += latency_ticks
        self.read_latency_max = max(self.read_latency_max, latency_ticks)
        if delayed:
            self.reads_delayed_by_write += 1

    def record_write(self, dirty_count: int) -> None:
        self.writes_completed += 1
        self.dirty_word_histogram[dirty_count] += 1
        if dirty_count == 0:
            self.silent_writes += 1

    def record_chip_write(self, chip: int) -> None:
        """Count one PCM word write on a physical chip (wear tracking)."""
        self.chip_word_writes[chip] = self.chip_word_writes.get(chip, 0) + 1

    def chip_write_imbalance(self) -> float:
        """Coefficient of variation of per-chip word writes (0 = even)."""
        counts = list(self.chip_word_writes.values())
        if len(counts) < 2:
            return 0.0
        mean = sum(counts) / len(counts)
        if mean == 0:
            return 0.0
        variance = sum((c - mean) ** 2 for c in counts) / len(counts)
        return variance ** 0.5 / mean

    # ------------------------------------------------------------------
    @property
    def row_buffer_hit_rate(self) -> float:
        total = self.row_buffer_hits + self.row_buffer_misses
        if not total:
            return 0.0
        return self.row_buffer_hits / total

    @property
    def mean_read_latency_ticks(self) -> float:
        if not self.reads_completed:
            return 0.0
        return self.read_latency_ticks / self.reads_completed

    @property
    def mean_read_latency_ns(self) -> float:
        return ticks_to_ns(int(self.mean_read_latency_ticks))

    @property
    def delayed_read_fraction(self) -> float:
        if not self.reads_completed:
            return 0.0
        return self.reads_delayed_by_write / self.reads_completed

    @property
    def mean_dirty_words(self) -> float:
        total = sum(self.dirty_word_histogram)
        if not total:
            return 0.0
        return (
            sum(i * n for i, n in enumerate(self.dirty_word_histogram)) / total
        )

    # ------------------------------------------------------------------
    def merge(self, other: "MemoryStats") -> None:
        """Accumulate another controller's counters into this one."""
        self.reads_completed += other.reads_completed
        self.writes_completed += other.writes_completed
        self.read_latency_ticks += other.read_latency_ticks
        self.read_latency_max = max(self.read_latency_max, other.read_latency_max)
        self.reads_delayed_by_write += other.reads_delayed_by_write
        self.forwarded_reads += other.forwarded_reads
        self.row_buffer_hits += other.row_buffer_hits
        self.row_buffer_misses += other.row_buffer_misses
        self.row_reads += other.row_reads
        self.row_normal_overlap_reads += other.row_normal_overlap_reads
        self.wow_member_writes += other.wow_member_writes
        self.wow_groups += other.wow_groups
        self.silent_writes += other.silent_writes
        self.rollbacks += other.rollbacks
        self.verify_count += other.verify_count
        self.drain_entries += other.drain_entries
        for i, count in enumerate(other.dirty_word_histogram):
            self.dirty_word_histogram[i] += count
        for chip, count in other.chip_word_writes.items():
            self.chip_word_writes[chip] = (
                self.chip_word_writes.get(chip, 0) + count
            )


@dataclass
class SimulationResult:
    """Everything a benchmark needs from one simulation run."""

    system_name: str
    workload_name: str
    sim_ticks: int
    instructions: int
    cpu_cycles: int
    memory: MemoryStats
    irlp_average: float
    irlp_max: float
    write_service_busy_ticks: int
    #: RNG seed the run used (-1 when unknown, e.g. hand-built results);
    #: echoed into persisted result files for attributability.
    seed: int = -1
    #: Engine profile (events dispatched, wall seconds); populated by
    #: :class:`repro.sim.simulator.SystemSimulator`, never persisted.
    profile: Optional["RunProfile"] = None
    #: JSON-safe :meth:`MetricsRegistry.as_dict` dump, embedded when the
    #: run was launched with ``collect_metrics=True``; ``None`` otherwise.
    metrics: Optional[dict] = None
    #: JSON-safe :meth:`TimeSeries.as_dict` dump, embedded when the run
    #: sampled (``sample_every_ticks`` set); ``None`` otherwise.
    timeseries: Optional[dict] = None
    #: JSON-safe :meth:`DramCacheFrontEnd.summary` dump (hit/miss/fill/
    #: write-back counters and tier config), embedded when the run was
    #: launched with a simulated front end; ``None`` on the direct path.
    frontend: Optional[dict] = None

    @property
    def ipc(self) -> float:
        """Aggregate instructions per CPU cycle across all cores."""
        if not self.cpu_cycles:
            return 0.0
        return self.instructions / self.cpu_cycles

    @property
    def write_throughput(self) -> float:
        """Writes completed per microsecond of write-service busy time."""
        busy_ns = ticks_to_ns(self.write_service_busy_ticks)
        if busy_ns <= 0:
            return 0.0
        return self.memory.writes_completed / (busy_ns / 1000.0)

    @property
    def mean_read_latency_ns(self) -> float:
        return self.memory.mean_read_latency_ns
