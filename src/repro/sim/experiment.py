"""Experiment helpers: run workloads, compare systems, compute deltas.

The benchmark modules under ``benchmarks/`` use these to regenerate every
figure and table; examples and tests use them for smaller runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.core.config import SystemConfig
from repro.core.systems import SYSTEM_NAMES, make_system
from repro.sim.metrics import SimulationResult
from repro.sim.runner.cache import ResultCache
from repro.sim.runner.executor import ProgressCallback, run_jobs
from repro.sim.runner.jobs import SweepJob
from repro.sim.simulator import SimulationParams, simulate
from repro.telemetry import Telemetry
from repro.trace.workloads import WorkloadProfile, get_workload


def run_workload(
    workload: Union[str, WorkloadProfile],
    system: Union[str, SystemConfig],
    params: Optional[SimulationParams] = None,
    telemetry: Optional["Telemetry"] = None,
    **system_overrides,
) -> SimulationResult:
    """Run one workload on one system (by name or config)."""
    if isinstance(system, str):
        system = make_system(system, **system_overrides)
    elif system_overrides:
        raise ValueError("overrides only apply when `system` is a name")
    return simulate(system, workload, params, telemetry)


@dataclass
class SystemComparison:
    """Results of one workload across several systems."""

    workload_name: str
    results: Dict[str, SimulationResult] = field(default_factory=dict)

    @property
    def baseline(self) -> SimulationResult:
        try:
            return self.results["baseline"]
        except KeyError:
            raise ValueError("comparison has no baseline run") from None

    def ipc_improvement(self, system_name: str) -> float:
        """Fractional IPC gain over the baseline (0.15 == +15 %)."""
        base = self.baseline.ipc
        if base == 0:
            return 0.0
        return self.results[system_name].ipc / base - 1.0

    def read_latency_ratio(self, system_name: str) -> float:
        """Effective read latency normalised to the baseline (<1 is better)."""
        base = self.baseline.mean_read_latency_ns
        if base == 0:
            return 1.0
        return self.results[system_name].mean_read_latency_ns / base

    def write_throughput_ratio(self, system_name: str) -> float:
        """Write throughput normalised to the baseline (>1 is better)."""
        base = self.baseline.write_throughput
        if base == 0:
            return 1.0
        return self.results[system_name].write_throughput / base

    def irlp(self, system_name: str) -> float:
        return self.results[system_name].irlp_average


def compare_systems(
    workload: Union[str, WorkloadProfile],
    systems: Optional[Sequence[Union[str, SystemConfig]]] = None,
    params: Optional[SimulationParams] = None,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressCallback] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    **system_overrides,
) -> SystemComparison:
    """Run one workload across systems (default: all six of §V)."""
    return sweep_workloads(
        [workload],
        systems,
        params,
        jobs=jobs,
        cache=cache,
        progress=progress,
        timeout=timeout,
        retries=retries,
        **system_overrides,
    )[0]


def sweep_workloads(
    workloads: Iterable[Union[str, WorkloadProfile]],
    systems: Optional[Sequence[Union[str, SystemConfig]]] = None,
    params: Optional[SimulationParams] = None,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressCallback] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    **system_overrides,
) -> List[SystemComparison]:
    """Cartesian sweep used by the figure benchmarks.

    Runs through :mod:`repro.sim.runner`: ``jobs`` fans the grid out over
    a process pool (results stay bit-identical to ``jobs=1`` because
    every cell's seed is derived from ``params.seed`` and the cell's
    names, not from execution order), and ``cache`` serves repeat cells
    from the on-disk result cache instead of re-simulating.  ``timeout``
    and ``retries`` route through the runner's guarded path (each job in
    a killable process) so a hung cell cannot wedge the sweep.
    """
    if systems is None:
        systems = SYSTEM_NAMES
    resolved = [
        get_workload(w) if isinstance(w, str) else w for w in workloads
    ]
    if system_overrides and not all(isinstance(s, str) for s in systems):
        raise ValueError("overrides only apply when systems are names")
    sweep_jobs = [
        SweepJob.build(workload, system, params, **system_overrides)
        if isinstance(system, str)
        else SweepJob.build(workload, system, params)
        for workload in resolved
        for system in systems
    ]
    results = run_jobs(
        sweep_jobs,
        jobs=jobs,
        cache=cache,
        progress=progress,
        timeout=timeout,
        retries=retries,
    )
    comparisons: List[SystemComparison] = []
    flat = iter(results)
    for workload in resolved:
        comparison = SystemComparison(workload_name=workload.name)
        for _ in systems:
            result = next(flat)
            comparison.results[result.system_name] = result
        comparisons.append(comparison)
    return comparisons


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the conventional average for normalised ratios)."""
    filtered = [v for v in values if v > 0]
    if not filtered:
        return 0.0
    product = 1.0
    for value in filtered:
        product *= value
    return product ** (1.0 / len(filtered))
