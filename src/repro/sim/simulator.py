"""Full-system driver: cores, controllers and the PCM memory together.

One :class:`SystemSimulator` runs one (system config, workload) pair to a
fixed per-core instruction budget and returns a
:class:`~repro.sim.metrics.SimulationResult` with everything the paper's
figures report (IPC, IRLP, effective read latency, write throughput,
delayed-read fraction, rollbacks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.config import SystemConfig
from repro.cpu.core import CoreParams
from repro.cpu.multicore import Multicore
from repro.memory.memsys import MainMemory
from repro.memory.storage import MemoryStorage
from repro.sim.engine import Engine
from repro.sim.metrics import SimulationResult
from repro.telemetry import RunProfile, Telemetry, WallClock
from repro.trace.workloads import WorkloadProfile, get_workload


@dataclass(frozen=True)
class SimulationParams:
    """Run-scale knobs (the paper runs 1 B instructions after warm-up; we
    default to a budget that keeps a 6-system x 12-workload sweep fast)."""

    n_cores: int = 8
    instructions_per_core: int = 60_000
    #: When set, instructions_per_core is derived per workload so that
    #: roughly this many main-memory requests are simulated in total —
    #: low-MPKI workloads then get enough requests to reach steady state.
    target_requests: Optional[int] = None
    seed: int = 1
    core_params: CoreParams = CoreParams()
    #: Safety valve for the event loop (ticks); never binds in practice.
    max_ticks: int = 40_000_000_000

    def resolve_instructions(self, workload: WorkloadProfile) -> int:
        """Per-core instruction budget for ``workload``."""
        if self.target_requests is None:
            return self.instructions_per_core
        per_core = self.target_requests * 1000.0 / (
            max(workload.mpki, 1e-6) * self.n_cores
        )
        return max(5_000, int(per_core))


class SystemSimulator:
    """Build-and-run wrapper for one configuration/workload pair."""

    def __init__(
        self,
        system: SystemConfig,
        workload: Union[str, WorkloadProfile],
        params: Optional[SimulationParams] = None,
        telemetry: Optional[Telemetry] = None,
        storage: Optional["MemoryStorage"] = None,
    ):
        if isinstance(workload, str):
            workload = get_workload(workload)
        self.workload = workload
        self.params = params or SimulationParams()
        # Wire the workload's Table IV rollback rate into the controller's
        # verification model unless the config pinned one explicitly.
        if system.enable_row and system.row_rollback_rate == 0.0:
            system = system.with_rollback_rate(workload.rollback_rate)
        self.system = system

        #: Tracer + metrics bundle threaded through the controller stack;
        #: defaults to metrics-only (tracing off, one attribute check per
        #: emit site).
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        self.engine = Engine()
        self.memory = MainMemory(
            self.engine, system, seed=self.params.seed,
            storage=storage, telemetry=self.telemetry,
        )
        self.multicore = Multicore(
            self.engine,
            self.memory,
            workload,
            n_cores=self.params.n_cores,
            params=self.params.core_params,
            instructions_per_core=self.params.resolve_instructions(workload),
            seed=self.params.seed,
        )

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute until every core retires its budget; collect metrics."""
        with WallClock() as clock:
            self.multicore.start()
            while not self.multicore.all_done:
                if not self.engine.step():
                    raise RuntimeError(
                        "simulation deadlocked: no pending events but cores "
                        "have not finished"
                    )
                if self.engine.now > self.params.max_ticks:
                    raise RuntimeError(
                        f"simulation exceeded {self.params.max_ticks} ticks"
                    )
        return self._collect(clock.elapsed)

    def _profile(self, wall_seconds: float) -> RunProfile:
        """Engine profile of the finished run (also fed to the registry)."""
        profiler = self.engine.profiler
        profile = RunProfile(
            events_dispatched=self.engine.events_dispatched,
            wall_seconds=wall_seconds,
            slowest_callbacks=profiler.top() if profiler is not None else [],
        )
        metrics = self.telemetry.metrics
        metrics.gauge("engine.events_dispatched").set(profile.events_dispatched)
        metrics.gauge("engine.sim_ticks").set(self.engine.now)
        return profile

    def _collect(self, wall_seconds: float = 0.0) -> SimulationResult:
        stats = self.memory.aggregate_stats()
        return SimulationResult(
            system_name=self.system.name,
            workload_name=self.workload.name,
            sim_ticks=self.engine.now,
            instructions=self.multicore.instructions_retired,
            cpu_cycles=self.multicore.total_cpu_cycles(),
            memory=stats,
            irlp_average=self.memory.irlp_average(),
            irlp_max=self.memory.irlp_max(),
            write_service_busy_ticks=self.memory.write_service_busy_ticks(),
            seed=self.params.seed,
            profile=self._profile(wall_seconds),
        )


def simulate(
    system: SystemConfig,
    workload: Union[str, WorkloadProfile],
    params: Optional[SimulationParams] = None,
    telemetry: Optional[Telemetry] = None,
    storage: Optional[MemoryStorage] = None,
) -> SimulationResult:
    """One-shot convenience: build, run, return the result."""
    return SystemSimulator(system, workload, params, telemetry, storage).run()
