"""Full-system driver: cores, controllers and the PCM memory together.

One :class:`SystemSimulator` runs one (system config, workload) pair to a
fixed per-core instruction budget and returns a
:class:`~repro.sim.metrics.SimulationResult` with everything the paper's
figures report (IPC, IRLP, effective read latency, write throughput,
delayed-read fraction, rollbacks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.cache.frontend import DramCacheFrontEnd, FrontEndConfig
from repro.core.config import SystemConfig
from repro.cpu.core import CoreParams
from repro.cpu.multicore import Multicore
from repro.memory.memsys import MainMemory
from repro.memory.storage import MemoryStorage
from repro.sim.engine import Engine
from repro.sim.metrics import SimulationResult
from repro.telemetry import RunProfile, Telemetry, WallClock
from repro.telemetry.timeseries import DEFAULT_CAPACITY, TimeseriesSampler
from repro.trace.workloads import WorkloadProfile, get_workload


@dataclass(frozen=True)
class SimulationParams:
    """Run-scale knobs (the paper runs 1 B instructions after warm-up; we
    default to a budget that keeps a 6-system x 12-workload sweep fast)."""

    n_cores: int = 8
    instructions_per_core: int = 60_000
    #: When set, instructions_per_core is derived per workload so that
    #: roughly this many main-memory requests are simulated in total —
    #: low-MPKI workloads then get enough requests to reach steady state.
    target_requests: Optional[int] = None
    seed: int = 1
    core_params: CoreParams = CoreParams()
    #: Safety valve for the event loop (ticks); never binds in practice.
    max_ticks: int = 40_000_000_000
    #: Simulated-tick cadence for the time-series sampler; ``None`` (the
    #: default) disables sampling entirely — the run loop is then
    #: byte-identical to the unsampled one, so golden traces and perf
    #: fingerprints are unaffected.
    sample_every_ticks: Optional[int] = None
    #: Ring capacity of the time-series buffer (oldest samples drop
    #: first once exceeded).
    timeseries_capacity: int = DEFAULT_CAPACITY
    #: Embed the final metrics-registry dump in the result (JSON-safe,
    #: survives pickling across sweep worker processes).
    collect_metrics: bool = False
    #: Simulated cache front end between the cores and main memory.  The
    #: default (``kind="none"``) builds nothing and keeps the run loop
    #: byte-identical to the historical direct-to-PCM path — golden
    #: traces and perf fingerprints are pinned against it.  With
    #: ``kind="dram"`` the DRAM cache becomes a timed tier: hits complete
    #: after ``access_cycles``, misses coalesce in MSHRs and fetch from
    #: PCM, dirty evictions issue write-backs into the controller queues.
    front_end: FrontEndConfig = FrontEndConfig()

    def resolve_instructions(self, workload: WorkloadProfile) -> int:
        """Per-core instruction budget for ``workload``."""
        if self.target_requests is None:
            return self.instructions_per_core
        per_core = self.target_requests * 1000.0 / (
            max(workload.mpki, 1e-6) * self.n_cores
        )
        return max(5_000, int(per_core))


class SystemSimulator:
    """Build-and-run wrapper for one configuration/workload pair."""

    def __init__(
        self,
        system: SystemConfig,
        workload: Union[str, WorkloadProfile],
        params: Optional[SimulationParams] = None,
        telemetry: Optional[Telemetry] = None,
        storage: Optional["MemoryStorage"] = None,
    ):
        if isinstance(workload, str):
            workload = get_workload(workload)
        self.workload = workload
        self.params = params or SimulationParams()
        # Wire the workload's Table IV rollback rate into the controller's
        # verification model unless the config pinned one explicitly.
        if system.enable_row and system.row_rollback_rate == 0.0:
            system = system.with_rollback_rate(workload.rollback_rate)
        self.system = system

        #: Tracer + metrics bundle threaded through the controller stack;
        #: defaults to metrics-only (tracing off, one attribute check per
        #: emit site).
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        #: Populated by :meth:`run` when ``params.sample_every_ticks`` is set.
        self.sampler: Optional[TimeseriesSampler] = None
        self.engine = Engine()
        self.memory = MainMemory(
            self.engine, system, seed=self.params.seed,
            storage=storage, telemetry=self.telemetry,
        )
        #: Timed DRAM-cache tier between the cores and PCM; ``None`` on
        #: the default direct path (``front_end.kind == "none"``), where
        #: nothing is constructed and the event stream stays bit-identical.
        self.frontend: Optional[DramCacheFrontEnd] = None
        if self.params.front_end.enabled:
            self.frontend = DramCacheFrontEnd(
                self.engine,
                self.memory,
                self.params.front_end,
                cycle_ticks=self.params.core_params.cycle_ticks,
                telemetry=self.telemetry,
            )
        self.multicore = Multicore(
            self.engine,
            self.memory,
            workload,
            n_cores=self.params.n_cores,
            params=self.params.core_params,
            instructions_per_core=self.params.resolve_instructions(workload),
            seed=self.params.seed,
            port=self.frontend,
        )

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute until every core retires its budget; collect metrics."""
        self.sampler = self._build_sampler()
        with WallClock() as clock:
            self.multicore.start()
            if self.sampler is None:
                # Unsampled loop: the engine drains in-place with all
                # loop state in locals and same-tick entries batched
                # (Engine.run_until_stop); the multicore's last finish
                # hook latches the stop, so no per-event done-poll runs.
                # Event order and count are bit-identical to stepping.
                self.engine.run_until_stop(max_ticks=self.params.max_ticks)
                if not self.multicore.all_done:
                    raise RuntimeError(
                        "simulation deadlocked: no pending events but cores "
                        "have not finished"
                    )
            else:
                # Sampled loop: the boundary compare is hoisted inline
                # against a local, so the common (non-boundary) step pays
                # one integer compare — not a method call, which costs
                # ~15% wall at this loop's iteration count.  Sampling
                # schedules no events and mutates no model state, so
                # events_dispatched/sim_ticks match the unsampled run.
                engine = self.engine
                sampler = self.sampler
                max_ticks = self.params.max_ticks
                boundary = sampler.next_boundary
                while not self.multicore.all_done:
                    if not engine.step():
                        raise RuntimeError(
                            "simulation deadlocked: no pending events but cores "
                            "have not finished"
                        )
                    now = engine.now
                    if now >= boundary:
                        sampler.maybe_sample(now)
                        boundary = sampler.next_boundary
                    if now > max_ticks:
                        raise RuntimeError(
                            f"simulation exceeded {max_ticks} ticks"
                        )
        return self._collect(clock.elapsed)

    def _build_sampler(self) -> Optional[TimeseriesSampler]:
        """Wire the standard probe set when sampling is enabled.

        Probe registration order is fixed (outstanding reads, per-channel
        queue depths, write-engine occupancy, open windows, rollbacks,
        recent IRLP) so identically-configured runs produce identical
        column layouts — the cross-worker merge depends on that.
        """
        cadence = self.params.sample_every_ticks
        if cadence is None:
            return None
        sampler = TimeseriesSampler(
            cadence_ticks=cadence, capacity=self.params.timeseries_capacity
        )
        metrics = self.telemetry.metrics
        reads_in = metrics.counter("requests.read.enqueued")
        reads_done = metrics.counter("reads.completed")
        sampler.add_probe(
            "reads.outstanding", lambda: reads_in.value - reads_done.value
        )
        controllers = self.memory.controllers
        for controller in controllers:
            channel = controller.channel_id
            sampler.add_probe(
                f"ch{channel}.queue.read.depth",
                lambda c=controller: len(c.read_q),
            )
            sampler.add_probe(
                f"ch{channel}.queue.write.depth",
                lambda c=controller: len(c.write_q),
            )
        # Fine-grained write engines exist only on PCMap-style controllers;
        # coarse systems report a constant 0 occupancy.
        engines = [c.fine for c in controllers if hasattr(c, "fine")]
        sampler.add_probe(
            "write_engine.inflight",
            lambda: sum(engine.inflight for engine in engines),
        )
        sampler.add_probe(
            "write.windows_open",
            lambda: sum(c.open_window_count for c in controllers),
        )
        cores = self.multicore.cores
        sampler.add_probe(
            "rollbacks.cumulative",
            lambda: sum(core.rollback_model.rollbacks for core in cores),
        )
        sampler.add_probe("irlp.recent", self._recent_irlp)
        # DRAM-tier probes trail the fixed set and appear only when the
        # front end is built, so direct-path column layouts are unchanged.
        frontend = self.frontend
        if frontend is not None:
            sampler.add_probe(
                "frontend.mshr.depth", lambda: frontend.mshr_depth
            )
            sampler.add_probe(
                "frontend.writeback.depth", lambda: frontend.writeback_depth
            )
            sampler.add_probe(
                "frontend.hit_rate", lambda: frontend.stats.hit_rate
            )
        return sampler

    def _recent_irlp(self) -> float:
        """Mean IRLP over each channel's most recent write windows.

        Bounded to a handful of windows per channel so the probe stays
        O(1)-ish per sample even on write-heavy runs.
        """
        values = []
        for controller in self.memory.controllers:
            for window in controller.irlp.windows[-4:]:
                if window.duration > 0:
                    values.append(window.irlp())
        return sum(values) / len(values) if values else 0.0

    def _profile(self, wall_seconds: float) -> RunProfile:
        """Engine profile of the finished run (also fed to the registry)."""
        profiler = self.engine.profiler
        profile = RunProfile(
            events_dispatched=self.engine.events_dispatched,
            wall_seconds=wall_seconds,
            slowest_callbacks=profiler.top() if profiler is not None else [],
        )
        metrics = self.telemetry.metrics
        metrics.gauge("engine.events_dispatched").set(profile.events_dispatched)
        metrics.gauge("engine.sim_ticks").set(self.engine.now)
        return profile

    def _collect(self, wall_seconds: float = 0.0) -> SimulationResult:
        stats = self.memory.aggregate_stats()
        result = SimulationResult(
            system_name=self.system.name,
            workload_name=self.workload.name,
            sim_ticks=self.engine.now,
            instructions=self.multicore.instructions_retired,
            cpu_cycles=self.multicore.total_cpu_cycles(),
            memory=stats,
            irlp_average=self.memory.irlp_average(),
            irlp_max=self.memory.irlp_max(),
            write_service_busy_ticks=self.memory.write_service_busy_ticks(),
            seed=self.params.seed,
            profile=self._profile(wall_seconds),
        )
        # _profile() above records the engine gauges, so a collected dump
        # includes events_dispatched/sim_ticks — the regression sentinel's
        # behavioural fingerprint.
        if self.params.collect_metrics:
            result.metrics = self.telemetry.metrics.as_dict()
        if self.sampler is not None:
            result.timeseries = self.sampler.series.as_dict()
        if self.frontend is not None:
            result.frontend = self.frontend.summary()
        return result


def simulate(
    system: SystemConfig,
    workload: Union[str, WorkloadProfile],
    params: Optional[SimulationParams] = None,
    telemetry: Optional[Telemetry] = None,
    storage: Optional[MemoryStorage] = None,
) -> SimulationResult:
    """One-shot convenience: build, run, return the result."""
    return SystemSimulator(system, workload, params, telemetry, storage).run()
