"""Persistence for simulation results (JSON round-trip).

Sweeps take minutes; persisting their results lets the analysis layer and
notebooks compare systems, seeds and code revisions without re-running.
The format is a flat JSON document per result (schema version tagged), and
a results file holds a list of them.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform as platform_module
import subprocess
import tempfile
from dataclasses import asdict
from pathlib import Path
from typing import List, Union

from repro.sim.metrics import MemoryStats, SimulationResult

#: Schema 2 added the run manifest and the optional embedded
#: ``metrics``/``timeseries`` sections; schema-1 files still load.  The
#: optional ``frontend`` section (DRAM-tier summary) rides on schema 2:
#: like metrics/timeseries it is additive and absent on direct-path runs.
SCHEMA_VERSION = 2

#: Older schemas :func:`result_from_dict` still accepts.
READABLE_SCHEMAS = (1, 2)

_CODE_VERSION: Union[str, None] = None


def code_version() -> str:
    """Identifier of the code state that produced a result.

    ``git describe`` when the repository is available (memoised — one
    subprocess per process), else the installed package version.  Stamped
    into every persisted result so saved numbers stay attributable.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        try:
            _CODE_VERSION = subprocess.run(
                ["git", "describe", "--always", "--dirty", "--tags"],
                capture_output=True,
                text=True,
                timeout=5,
                cwd=Path(__file__).resolve().parent,
                check=True,
            ).stdout.strip()
        except (OSError, subprocess.SubprocessError):
            _CODE_VERSION = ""
        if not _CODE_VERSION:
            from repro import __version__

            _CODE_VERSION = f"repro-{__version__}"
    return _CODE_VERSION


def run_manifest(seed: int = -1) -> dict:
    """Attribution header for a persisted run: where did this number
    come from?  Seed, code state, interpreter and host platform."""
    return {
        "seed": seed,
        "code_version": code_version(),
        "python": platform_module.python_version(),
        "platform": platform_module.platform(),
    }


def result_to_dict(result: SimulationResult) -> dict:
    """Flatten one result (including its memory stats) to JSON-safe data."""
    memory = asdict(result.memory)
    # JSON objects key by string; normalise the per-chip map.
    memory["chip_word_writes"] = {
        str(chip): count
        for chip, count in result.memory.chip_word_writes.items()
    }
    payload = {
        "schema": SCHEMA_VERSION,
        "system": result.system_name,
        "workload": result.workload_name,
        # Attribution header: which RNG seed and code state produced this.
        "seed": result.seed,
        "code_version": code_version(),
        "manifest": run_manifest(result.seed),
        "sim_ticks": result.sim_ticks,
        "instructions": result.instructions,
        "cpu_cycles": result.cpu_cycles,
        "irlp_average": result.irlp_average,
        "irlp_max": result.irlp_max,
        "write_service_busy_ticks": result.write_service_busy_ticks,
        "memory": memory,
        # Redundant conveniences for downstream tools:
        "ipc": result.ipc,
        "write_throughput": result.write_throughput,
        "mean_read_latency_ns": result.mean_read_latency_ns,
    }
    # Observability sections ride along only when the run collected them,
    # so metric-less results serialise exactly as compactly as before.
    if result.metrics is not None:
        payload["metrics"] = result.metrics
    if result.timeseries is not None:
        payload["timeseries"] = result.timeseries
    if result.frontend is not None:
        payload["frontend"] = result.frontend
    return payload


def result_from_dict(data: dict) -> SimulationResult:
    """Inverse of :func:`result_to_dict` (reads any readable schema)."""
    if data.get("schema") not in READABLE_SCHEMAS:
        raise ValueError(
            f"unsupported result schema {data.get('schema')!r}; "
            f"expected one of {READABLE_SCHEMAS}"
        )
    memory_data = dict(data["memory"])
    memory_data["chip_word_writes"] = {
        int(chip): count
        for chip, count in memory_data.get("chip_word_writes", {}).items()
    }
    memory = MemoryStats(**memory_data)
    return SimulationResult(
        system_name=data["system"],
        workload_name=data["workload"],
        sim_ticks=data["sim_ticks"],
        instructions=data["instructions"],
        cpu_cycles=data["cpu_cycles"],
        memory=memory,
        irlp_average=data["irlp_average"],
        irlp_max=data["irlp_max"],
        write_service_busy_ticks=data["write_service_busy_ticks"],
        seed=data.get("seed", -1),
        metrics=data.get("metrics"),
        timeseries=data.get("timeseries"),
        frontend=data.get("frontend"),
    )


def results_digest(results: List[SimulationResult]) -> str:
    """SHA-256 over the canonical JSON of ``results`` (order-sensitive).

    The byte-identity oracle for the campaign service: a resumed,
    multi-worker or kill-and-recovered campaign must digest identically
    to a serial ``run_pairs`` of the same pairs.  Every field of
    :func:`result_to_dict` participates — metrics, time-series, the
    attribution manifest — so the digest is machine-local (the manifest
    embeds platform and code version) but exact across processes,
    workers and resumes on one checkout.
    """
    payload = [result_to_dict(result) for result in results]
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    Readers either see the previous complete file or the new complete
    file, never a truncated one — a crash mid-dump must not leave a
    results file (or sweep-cache entry) that ``json.load`` chokes on.
    """
    path = Path(path)
    directory = path.parent if str(path.parent) else Path(".")
    directory.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(directory), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def save_results(
    path: Union[str, Path], results: List[SimulationResult]
) -> int:
    """Write results to a JSON file (atomically); returns the count."""
    payload = [result_to_dict(result) for result in results]
    atomic_write_text(path, json.dumps(payload, indent=1))
    return len(payload)


def load_results(path: Union[str, Path]) -> List[SimulationResult]:
    """Read results back from a JSON file."""
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, list):
        raise ValueError("results file must hold a JSON list")
    return [result_from_dict(entry) for entry in payload]
