"""Discrete-event simulation engine.

The whole simulator runs on a single binary-heap event queue.  Time is kept
in integer *ticks* so that event ordering is exact and runs are perfectly
reproducible; one tick is 0.1 ns, which divides both the CPU clock period
(0.4 ns at 2.5 GHz) and the memory clock period (2.5 ns at 400 MHz) used by
the paper's configuration (Table I).

Events scheduled for the same tick fire in the order they were scheduled
(a monotonically increasing sequence number breaks ties), which keeps the
controller logic deterministic without fragile floating-point comparisons.

Two scheduling flavours share one queue (and one sequence counter, so
relative ordering is identical whichever is used):

* :meth:`Engine.schedule_at` returns an :class:`EventHandle` that can be
  cancelled before it fires — for events a controller may retract (armed
  wake-ups).
* :meth:`Engine.call_at` is the fast path for events that are never
  cancelled (request completions, verify steps): no handle object is
  allocated, and the callback's arguments ride in the heap entry so call
  sites need no per-event closure.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Callable, List, Optional, Tuple

#: Number of ticks per nanosecond.  One tick = 0.1 ns.
TICKS_PER_NS = 10


def ns_to_ticks(nanoseconds: float) -> int:
    """Convert a duration in nanoseconds to integer ticks (rounded)."""
    return int(round(nanoseconds * TICKS_PER_NS))


def ticks_to_ns(ticks: int) -> float:
    """Convert integer ticks back to nanoseconds."""
    return ticks / TICKS_PER_NS


class CancelledEvent(Exception):
    """Raised when interacting with an event handle that was cancelled."""


class EventHandle:
    """Handle to a scheduled event, usable to cancel it before it fires."""

    __slots__ = ("time", "seq", "callback", "cancelled", "_engine")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[[], None],
        engine: Optional["Engine"] = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        if not self.cancelled:
            self.cancelled = True
            if self._engine is not None:
                self._engine._note_cancel()


#: Heap entry: (time, seq, callback, args, handle-or-None).  ``seq`` is
#: unique, so comparison never reaches the non-orderable tail fields.
_Entry = Tuple[int, int, Callable[..., None], Tuple[Any, ...], Optional[EventHandle]]


class Engine:
    """Binary-heap discrete-event engine with deterministic ordering.

    Usage::

        engine = Engine()
        engine.schedule_at(100, lambda: print("fires at tick 100"))
        engine.run()
    """

    #: Compaction floor: heaps smaller than this are never compacted —
    #: the rebuild costs more than the cancelled entries' pop-skip cost.
    COMPACT_MIN_QUEUE = 64

    def __init__(self) -> None:
        self._queue: List[_Entry] = []
        self._seq = 0
        #: Non-cancelled events still queued (kept exact so ``pending()``
        #: is O(1) instead of a queue scan).
        self._live = 0
        #: Cancelled entries still physically in the heap.  When they
        #: outnumber the live population the heap is compacted in place
        #: (see :meth:`_compact`).
        self._cancelled = 0
        #: One-shot stop latch consumed by :meth:`run_until_stop`.
        self._stop = False
        self.now: int = 0
        self._running = False
        #: Total events fired over the engine's lifetime (always counted —
        #: one integer increment; the telemetry profile reports it).
        self.events_dispatched = 0
        #: Optional callback-latency profiler (see ``enable_profiling``).
        self.profiler = None

    def enable_profiling(self, top_n: int = 10):
        """Attach an :class:`~repro.telemetry.profiler.EngineProfiler`.

        Timestamps every callback, keeping the ``top_n`` slowest.  This
        roughly doubles per-event dispatch cost, so it is opt-in.
        Returns the profiler for inspection.
        """
        from repro.telemetry.profiler import EngineProfiler

        self.profiler = EngineProfiler(top_n)
        return self.profiler

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, time: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to fire at absolute tick ``time``.

        ``time`` must not be in the past.  Returns a handle that can be
        used to cancel the event.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule event at tick {time}, now is {self.now}"
            )
        self._seq += 1
        handle = EventHandle(time, self._seq, callback, self)
        heapq.heappush(self._queue, (time, self._seq, callback, (), handle))
        self._live += 1
        return handle

    def schedule_after(self, delay: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` ticks from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, callback)

    def call_at(self, time: int, callback: Callable[..., None], *args: Any) -> None:
        """Schedule a never-cancelled ``callback(*args)`` at tick ``time``.

        The fast path for completion-style events: no :class:`EventHandle`
        is allocated and the arguments travel in the heap entry, so hot
        call sites avoid both the handle and a per-event closure.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule event at tick {time}, now is {self.now}"
            )
        self._seq += 1
        heapq.heappush(self._queue, (time, self._seq, callback, args, None))
        self._live += 1

    def call_after(self, delay: int, callback: Callable[..., None], *args: Any) -> None:
        """Schedule a never-cancelled ``callback(*args)`` after ``delay``."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self.call_at(self.now + delay, callback, *args)

    # ------------------------------------------------------------------
    # Heap hygiene
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        """Bookkeeping for one cancellation; compacts a mostly-dead heap.

        Cancelled entries normally linger until popped, which is fine
        when they are a minority — skipping them is one tuple compare.
        Pausing-heavy runs, however, can cancel far more wake-ups than
        they fire, so once cancelled entries exceed half the heap (and
        the heap is big enough to matter) the queue is rebuilt without
        them.  The rebuild is *in place* (slice assignment + heapify) so
        the local aliases held by a running drain loop stay valid.
        """
        self._live -= 1
        self._cancelled += 1
        queue = self._queue
        if (
            len(queue) >= self.COMPACT_MIN_QUEUE
            and self._cancelled * 2 > len(queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries from the heap, preserving heap order.

        Entries compare by their ``(time, seq)`` prefix alone (``seq`` is
        unique), so filtering + :func:`heapq.heapify` reproduces exactly
        the pop order the bloated heap would have yielded.
        """
        queue = self._queue
        queue[:] = [
            entry for entry in queue
            if entry[4] is None or not entry[4].cancelled
        ]
        heapq.heapify(queue)
        self._cancelled = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def peek_time(self) -> Optional[int]:
        """Return the tick of the next pending event, or ``None`` if empty."""
        queue = self._queue
        while queue:
            entry = queue[0]
            handle = entry[4]
            if handle is not None and handle.cancelled:
                heapq.heappop(queue)
                self._cancelled -= 1
                continue
            return entry[0]
        return None

    def step(self) -> bool:
        """Fire the next pending event.  Returns ``False`` when idle."""
        queue = self._queue
        while queue:
            time, _seq, callback, args, handle = heapq.heappop(queue)
            if handle is not None and handle.cancelled:
                self._cancelled -= 1
                continue
            self.now = time
            self.events_dispatched += 1
            self._live -= 1
            if self.profiler is not None:
                start = perf_counter()
                callback(*args)
                self.profiler.record(perf_counter() - start, time, callback)
            else:
                callback(*args)
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` ticks pass, or a budget hits.

        Returns the number of events fired.  When ``until`` is given, the
        clock is advanced to ``until`` even if the queue drains earlier so
        callers can measure elapsed time consistently.
        """
        fired = 0
        self._running = True
        queue = self._queue
        pop = heapq.heappop
        try:
            while queue:
                entry = queue[0]
                handle = entry[4]
                if handle is not None and handle.cancelled:
                    pop(queue)
                    self._cancelled -= 1
                    continue
                time = entry[0]
                if until is not None and time > until:
                    break
                if max_events is not None and fired >= max_events:
                    break
                pop(queue)
                callback, args = entry[2], entry[3]
                self.now = time
                self.events_dispatched += 1
                self._live -= 1
                if self.profiler is not None:
                    start = perf_counter()
                    callback(*args)
                    self.profiler.record(perf_counter() - start, time, callback)
                else:
                    callback(*args)
                fired += 1
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until
        return fired

    def request_stop(self) -> None:
        """Ask :meth:`run_until_stop` to stop after the current callback.

        Called from inside a dispatched callback (the last core's finish
        hook); the drain loop honours it before popping the next event,
        so the event count is exactly what a caller polling a done-flag
        between single steps would have dispatched.
        """
        self._stop = True

    def run_until_stop(self, max_ticks: Optional[int] = None) -> int:
        """Drain events until :meth:`request_stop` or the queue empties.

        The simulator's hot loop: where :meth:`run` re-checks ``until``/
        ``max_events`` budgets per event and callers poll a done-flag
        around :meth:`step`, this drains with all loop state in locals
        and batches entries sharing the current tick through an inner
        loop (one heap pop + one compare each, no ``self.now`` rewrite).
        Ordering is untouched — entries still pop in exact ``(time,
        seq)`` order — so event streams are bit-identical to the stepped
        loop.  Returns the number of events fired.  ``max_ticks`` mirrors
        the simulator's safety valve: the event that first advances the
        clock past it still fires, then the drain raises.

        The stop latch is consumed on exit: a stop requested before the
        call returns immediately (the poll-first-then-step equivalence
        above), and the next call starts unlatched.
        """
        fired = 0
        queue = self._queue
        pop = heapq.heappop
        profiler = self.profiler
        limit = float("inf") if max_ticks is None else max_ticks
        self._running = True
        try:
            while queue and not self._stop:
                time, _seq, callback, args, handle = pop(queue)
                if handle is not None and handle.cancelled:
                    self._cancelled -= 1
                    continue
                self.now = time
                self.events_dispatched += 1
                self._live -= 1
                if profiler is not None:
                    start = perf_counter()
                    callback(*args)
                    profiler.record(perf_counter() - start, time, callback)
                else:
                    callback(*args)
                fired += 1
                if time > limit:
                    raise RuntimeError(
                        f"simulation exceeded {max_ticks} ticks"
                    )
                # Same-tick batch: everything scheduled for this tick
                # (including zero-delay events a callback just pushed)
                # drains here without touching the clock again.
                while queue and queue[0][0] == time and not self._stop:
                    _t, _seq, callback, args, handle = pop(queue)
                    if handle is not None and handle.cancelled:
                        self._cancelled -= 1
                        continue
                    self.events_dispatched += 1
                    self._live -= 1
                    if profiler is not None:
                        start = perf_counter()
                        callback(*args)
                        profiler.record(
                            perf_counter() - start, time, callback
                        )
                    else:
                        callback(*args)
                    fired += 1
        finally:
            self._stop = False
            self._running = False
        return fired

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return self._live
