"""Discrete-event simulation engine.

The whole simulator runs on a single binary-heap event queue.  Time is kept
in integer *ticks* so that event ordering is exact and runs are perfectly
reproducible; one tick is 0.1 ns, which divides both the CPU clock period
(0.4 ns at 2.5 GHz) and the memory clock period (2.5 ns at 400 MHz) used by
the paper's configuration (Table I).

Events scheduled for the same tick fire in the order they were scheduled
(a monotonically increasing sequence number breaks ties), which keeps the
controller logic deterministic without fragile floating-point comparisons.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Callable, List, Optional, Tuple

#: Number of ticks per nanosecond.  One tick = 0.1 ns.
TICKS_PER_NS = 10


def ns_to_ticks(nanoseconds: float) -> int:
    """Convert a duration in nanoseconds to integer ticks (rounded)."""
    return int(round(nanoseconds * TICKS_PER_NS))


def ticks_to_ns(ticks: int) -> float:
    """Convert integer ticks back to nanoseconds."""
    return ticks / TICKS_PER_NS


class CancelledEvent(Exception):
    """Raised when interacting with an event handle that was cancelled."""


class EventHandle:
    """Handle to a scheduled event, usable to cancel it before it fires."""

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: int, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True


class Engine:
    """Binary-heap discrete-event engine with deterministic ordering.

    Usage::

        engine = Engine()
        engine.schedule_at(100, lambda: print("fires at tick 100"))
        engine.run()
    """

    def __init__(self) -> None:
        self._queue: List[Tuple[int, int, EventHandle]] = []
        self._seq = 0
        self.now: int = 0
        self._running = False
        #: Total events fired over the engine's lifetime (always counted —
        #: one integer increment; the telemetry profile reports it).
        self.events_dispatched = 0
        #: Optional callback-latency profiler (see ``enable_profiling``).
        self.profiler = None

    def enable_profiling(self, top_n: int = 10):
        """Attach an :class:`~repro.telemetry.profiler.EngineProfiler`.

        Timestamps every callback, keeping the ``top_n`` slowest.  This
        roughly doubles per-event dispatch cost, so it is opt-in.
        Returns the profiler for inspection.
        """
        from repro.telemetry.profiler import EngineProfiler

        self.profiler = EngineProfiler(top_n)
        return self.profiler

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, time: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to fire at absolute tick ``time``.

        ``time`` must not be in the past.  Returns a handle that can be
        used to cancel the event.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule event at tick {time}, now is {self.now}"
            )
        self._seq += 1
        handle = EventHandle(time, self._seq, callback)
        heapq.heappush(self._queue, (time, self._seq, handle))
        return handle

    def schedule_after(self, delay: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` ticks from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, callback)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def peek_time(self) -> Optional[int]:
        """Return the tick of the next pending event, or ``None`` if empty."""
        while self._queue:
            time, _seq, handle = self._queue[0]
            if handle.cancelled:
                heapq.heappop(self._queue)
                continue
            return time
        return None

    def step(self) -> bool:
        """Fire the next pending event.  Returns ``False`` when idle."""
        while self._queue:
            time, _seq, handle = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self.now = time
            self.events_dispatched += 1
            if self.profiler is not None:
                start = perf_counter()
                handle.callback()
                self.profiler.record(
                    perf_counter() - start, time, handle.callback
                )
            else:
                handle.callback()
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` ticks pass, or a budget hits.

        Returns the number of events fired.  When ``until`` is given, the
        clock is advanced to ``until`` even if the queue drains earlier so
        callers can measure elapsed time consistently.
        """
        fired = 0
        self._running = True
        try:
            while True:
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                if max_events is not None and fired >= max_events:
                    break
                self.step()
                fired += 1
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until
        return fired

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for _t, _s, h in self._queue if not h.cancelled)
