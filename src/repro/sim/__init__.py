"""Simulation harness: event engine, metrics, system driver, experiments."""

from repro.sim.engine import Engine, ns_to_ticks, ticks_to_ns
from repro.sim.metrics import IrlpRecorder, MemoryStats, SimulationResult, WriteWindow
from repro.sim.results_io import load_results, save_results

__all__ = [
    "Engine",
    "ns_to_ticks",
    "ticks_to_ns",
    "IrlpRecorder",
    "MemoryStats",
    "SimulationResult",
    "WriteWindow",
    "load_results",
    "save_results",
]
