"""Simulation harness: event engine, metrics, system driver, experiments,
and the parallel sweep runner with its on-disk result cache."""

from repro.sim.engine import Engine, ns_to_ticks, ticks_to_ns
from repro.sim.metrics import IrlpRecorder, MemoryStats, SimulationResult, WriteWindow
from repro.sim.results_io import load_results, save_results

_RUNNER_EXPORTS = ("ResultCache", "SweepJob", "SweepRunner", "run_jobs", "run_pairs")


def __getattr__(name):
    # The runner imports repro.core (system configs), which imports the
    # memory model, which imports repro.sim.engine — importing the runner
    # eagerly here would close that loop.  Resolve it on first use instead.
    if name in _RUNNER_EXPORTS:
        from repro.sim import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Engine",
    "ns_to_ticks",
    "ticks_to_ns",
    "IrlpRecorder",
    "MemoryStats",
    "SimulationResult",
    "WriteWindow",
    "load_results",
    "save_results",
    "ResultCache",
    "SweepJob",
    "SweepRunner",
    "run_jobs",
    "run_pairs",
]
