"""Engine profiling: events dispatched, wall-clock, callback-latency top-N.

Two costs, two mechanisms:

* The engine always counts dispatched events (one integer increment per
  event — free).  :class:`RunProfile` pairs that with the wall-clock time
  the driver measured around the run and derives events/second, the
  number benchmarks print so hot-path regressions are visible in the
  ``BENCH_*`` trajectories.
* :class:`EngineProfiler` is opt-in (``Engine.enable_profiling``): it
  timestamps every callback with ``perf_counter`` and keeps the top-N
  slowest, attributing each to the callback's qualified name.  That
  roughly doubles dispatch overhead, so it is never on by default.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple


@dataclass(frozen=True)
class CallbackSample:
    """One measured callback dispatch."""

    seconds: float   #: wall-clock duration of the callback
    tick: int        #: engine time the callback fired at
    name: str        #: callback's __qualname__ (or repr fallback)


class EngineProfiler:
    """Keeps the top-N slowest callbacks seen by the engine."""

    def __init__(self, top_n: int = 10):
        if top_n < 1:
            raise ValueError(f"top_n must be >= 1, got {top_n}")
        self.top_n = top_n
        #: Min-heap of (seconds, seq, sample); seq breaks duration ties.
        self._heap: List[Tuple[float, int, CallbackSample]] = []
        self._seq = 0
        self.samples_recorded = 0
        self.total_callback_seconds = 0.0

    def record(self, seconds: float, tick: int, callback: Callable) -> None:
        self.samples_recorded += 1
        self.total_callback_seconds += seconds
        self._seq += 1
        if len(self._heap) < self.top_n:
            name = getattr(callback, "__qualname__", None) or repr(callback)
            heapq.heappush(
                self._heap,
                (seconds, self._seq, CallbackSample(seconds, tick, name)),
            )
        elif seconds > self._heap[0][0]:
            name = getattr(callback, "__qualname__", None) or repr(callback)
            heapq.heapreplace(
                self._heap,
                (seconds, self._seq, CallbackSample(seconds, tick, name)),
            )

    def top(self) -> List[CallbackSample]:
        """Slowest callbacks, slowest first."""
        return [
            sample for _sec, _seq, sample
            in sorted(self._heap, key=lambda item: -item[0])
        ]


@dataclass
class RunProfile:
    """Per-run engine profile attached to a simulation result."""

    events_dispatched: int = 0
    wall_seconds: float = 0.0
    slowest_callbacks: List[CallbackSample] = field(default_factory=list)

    @property
    def events_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_dispatched / self.wall_seconds

    def summary(self) -> str:
        """One-line human summary for benchmark output."""
        line = (
            f"engine: {self.events_dispatched} events in "
            f"{self.wall_seconds:.3f} s ({self.events_per_second:,.0f} events/s)"
        )
        if self.slowest_callbacks:
            worst = self.slowest_callbacks[0]
            line += (
                f"; slowest callback {worst.name} "
                f"{worst.seconds * 1e6:.1f} us @ tick {worst.tick}"
            )
        return line

    def merge(self, other: "RunProfile") -> None:
        """Accumulate another run's profile (benchmark aggregation)."""
        self.events_dispatched += other.events_dispatched
        self.wall_seconds += other.wall_seconds
        combined = self.slowest_callbacks + other.slowest_callbacks
        combined.sort(key=lambda sample: -sample.seconds)
        self.slowest_callbacks = combined[:10]


class WallClock:
    """Tiny perf_counter stopwatch (kept here so callers avoid `time`)."""

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed = 0.0

    def __enter__(self) -> "WallClock":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *_exc) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start
