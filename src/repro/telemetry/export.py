"""Standard-format exports for the metrics registry and time series.

* :func:`to_openmetrics` renders a :meth:`MetricsRegistry.as_dict` dump
  (or a :func:`~repro.telemetry.registry.merge_dumps` result) as
  OpenMetrics/Prometheus text: counters as ``<name>_total``, gauges as a
  value family plus a ``<name>_max`` companion family, histograms as
  cumulative ``_bucket{le=...}`` samples with ``_sum``/``_count``.
* :func:`lint_openmetrics` structurally validates such text — CI runs it
  over the ``repro metrics`` output so a malformed exposition fails the
  build rather than a scrape.
* :func:`timeseries_to_jsonl` renders a
  :class:`~repro.telemetry.timeseries.TimeSeries` (or its ``as_dict``
  form) as one JSON object per sample, the sink shape log pipelines
  ingest directly.

All output is deterministic: dumps are rendered in sorted-name order and
numbers format identically across runs, so exports of merged parallel
sweeps are byte-comparable.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Mapping, Union

from repro.telemetry.registry import Histogram
from repro.telemetry.timeseries import TimeSeries

#: Metric-family prefix for every exported sample (our namespace).
DEFAULT_PREFIX = "repro_"

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
#: ``name{labels} value`` — labels optional; value validated separately.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
_TYPE_RE = re.compile(
    r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) (?P<kind>counter|gauge|histogram)$"
)


def sanitize_name(name: str) -> str:
    """Map a dotted registry name to a legal metric name.

    Dots and dashes (e.g. ``row.declined.no-overlappable-read``) become
    underscores; any other illegal character does too.
    """
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not _NAME_RE.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _fmt(value: Union[int, float]) -> str:
    """Deterministic number rendering: integral values drop the ``.0``."""
    if isinstance(value, bool):  # guard: bool is an int subclass
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def to_openmetrics(dump: Mapping[str, dict], prefix: str = DEFAULT_PREFIX) -> str:
    """Render a registry dump as OpenMetrics text (ends with ``# EOF``)."""
    lines: List[str] = []
    for raw_name in sorted(dump):
        data = dump[raw_name]
        name = prefix + sanitize_name(raw_name)
        kind = data["type"]
        if kind == "counter":
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name}_total {_fmt(data['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_fmt(data['value'])}")
            lines.append(f"# TYPE {name}_max gauge")
            lines.append(f"{name}_max {_fmt(data['max'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for bound, count in zip(data["buckets"], data["counts"]):
                cumulative += count
                le = (
                    Histogram.OVERFLOW_BOUND
                    if bound == Histogram.OVERFLOW_BOUND
                    else _fmt(bound)
                )
                lines.append(f'{name}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f"{name}_sum {_fmt(data['sum'])}")
            lines.append(f"{name}_count {_fmt(data['count'])}")
        else:
            raise TypeError(f"metric {raw_name!r} has unknown kind {kind!r}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def lint_openmetrics(text: str) -> List[str]:
    """Structural validation of OpenMetrics text; returns failure strings.

    Checks the invariants scrapers rely on: a single terminal ``# EOF``,
    well-formed sample lines, every sample preceded by a ``# TYPE`` for
    its family, counter samples suffixed ``_total``, histogram buckets
    cumulative with a final ``le="+Inf"`` matching ``_count``, and
    parseable numeric values.  An empty list means the text passed.
    """
    failures: List[str] = []
    if not text.endswith("# EOF\n"):
        failures.append("exposition must end with '# EOF\\n'")
    lines = text.splitlines()
    families: Dict[str, str] = {}
    # Histogram bookkeeping: family -> (last cumulative, saw +Inf, inf count)
    hist_state: Dict[str, dict] = {}
    seen_eof = False

    def family_of(sample_name: str) -> "str | None":
        """Longest declared family this sample belongs to."""
        candidates = [sample_name]
        for suffix in ("_total", "_sum", "_count", "_bucket"):
            if sample_name.endswith(suffix):
                candidates.append(sample_name[: -len(suffix)])
        for candidate in candidates:
            if candidate in families:
                return candidate
        return None

    for lineno, line in enumerate(lines, start=1):
        if seen_eof:
            failures.append(f"line {lineno}: content after # EOF")
            break
        if line == "# EOF":
            seen_eof = True
            continue
        if line.startswith("#"):
            match = _TYPE_RE.match(line)
            if match is None:
                if line.startswith("# TYPE"):
                    failures.append(f"line {lineno}: malformed TYPE: {line!r}")
                continue  # other comments (HELP/UNIT) tolerated
            name = match.group("name")
            if name in families:
                failures.append(f"line {lineno}: duplicate TYPE for {name!r}")
            families[name] = match.group("kind")
            if match.group("kind") == "histogram":
                hist_state[name] = {"last": None, "inf": None, "count": None}
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            failures.append(f"line {lineno}: malformed sample: {line!r}")
            continue
        sample_name = match.group("name")
        try:
            value = float(match.group("value"))
        except ValueError:
            failures.append(
                f"line {lineno}: non-numeric value {match.group('value')!r}"
            )
            continue
        family = family_of(sample_name)
        if family is None:
            failures.append(
                f"line {lineno}: sample {sample_name!r} has no # TYPE"
            )
            continue
        kind = families[family]
        if kind == "counter":
            if not sample_name.endswith("_total"):
                failures.append(
                    f"line {lineno}: counter sample {sample_name!r} "
                    f"must end with _total"
                )
            if value < 0:
                failures.append(f"line {lineno}: negative counter value")
        elif kind == "histogram":
            state = hist_state[family]
            if sample_name == f"{family}_bucket":
                labels = match.group("labels") or ""
                le_match = re.match(r'^le="([^"]*)"$', labels)
                if le_match is None:
                    failures.append(
                        f"line {lineno}: histogram bucket needs an le label"
                    )
                    continue
                if state["last"] is not None and value < state["last"]:
                    failures.append(
                        f"line {lineno}: bucket counts must be cumulative"
                    )
                state["last"] = value
                if le_match.group(1) == "+Inf":
                    state["inf"] = value
            elif sample_name == f"{family}_count":
                state["count"] = value
    for family, state in hist_state.items():
        if state["inf"] is None:
            failures.append(f"histogram {family!r} is missing an le=\"+Inf\" bucket")
        if state["count"] is None:
            failures.append(f"histogram {family!r} is missing a _count sample")
        elif state["inf"] is not None and state["count"] != state["inf"]:
            failures.append(
                f"histogram {family!r}: _count {state['count']} != "
                f"+Inf bucket {state['inf']}"
            )
    if not seen_eof:
        failures.append("missing # EOF terminator")
    return failures


def timeseries_to_jsonl(series: Union[TimeSeries, dict]) -> str:
    """Render a time series as JSONL — one object per sample.

    Accepts a live :class:`TimeSeries` or its ``as_dict`` form; rows come
    out oldest-first with the tick leading every record.
    """
    if isinstance(series, dict):
        series = TimeSeries.from_dict(series)
    return "".join(
        json.dumps(row, sort_keys=False, separators=(",", ":")) + "\n"
        for row in series.rows()
    )
