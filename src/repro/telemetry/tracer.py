"""Structured event tracing: typed events, sinks, and the null tracer.

Every interesting moment in the simulator — request lifecycle steps,
RoW/WoW scheduling decisions, rollbacks, write pauses, chip reservations —
is an :class:`TraceEvent` with a type from :class:`EventType` plus a small
set of integer coordinates (channel/rank/chip/bank/request) and an
optional free-form ``extra`` mapping.

Emit-site contract: hot paths guard every emission with::

    if self.tracer.enabled:
        self.tracer.emit(TraceEvent(...))

so a disabled run (:data:`NULL_TRACER`) pays exactly one attribute check
per site — no event object is built, no string is formatted.
"""

from __future__ import annotations

import enum
import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Iterable, List, Optional, Union

from repro.telemetry.registry import MetricsRegistry


class EventType(str, enum.Enum):
    """Taxonomy of traced moments (see docs/TELEMETRY.md)."""

    # Request lifecycle
    REQUEST_ENQUEUE = "request.enqueue"
    REQUEST_ISSUE = "request.issue"
    REQUEST_COMPLETE = "request.complete"
    # RoW (read-over-write) decisions
    ROW_ATTEMPT = "row.attempt"
    ROW_SERVE = "row.serve"
    ROW_DECLINE = "row.decline"
    # WoW (write-over-write) grouping
    WOW_OPEN = "wow.open"
    WOW_JOIN = "wow.join"
    WOW_CLOSE = "wow.close"
    # Verification outcome
    ROLLBACK = "rollback"
    # Write pausing (prior-art comparator controller)
    WRITE_PAUSE = "write.pause"
    WRITE_RESUME = "write.resume"
    # Resource occupancy
    CHIP_RESERVE = "chip.reserve"
    CHIP_RELEASE = "chip.release"
    # Drain-mode transitions
    DRAIN_ENTER = "drain.enter"
    DRAIN_EXIT = "drain.exit"


@dataclass
class TraceEvent:
    """One structured trace record.

    ``tick`` is the engine time the event was emitted; occupancy events
    additionally carry the reserved ``[start, end)`` span.  Unset integer
    coordinates stay at -1 so records serialise compactly and uniformly.
    (Events are only constructed when tracing is on, so the dataclass
    stays a plain one — no ``slots`` micro-tuning needed.)
    """

    type: EventType
    tick: int
    channel: int = -1
    rank: int = -1
    chip: int = -1
    bank: int = -1
    req_id: int = -1
    start: int = -1
    end: int = -1
    kind: str = ""      #: "read"/"write" for occupancy and request events
    reason: str = ""    #: decline reason, pause cause, completion class...
    extra: Optional[dict] = None

    def to_dict(self) -> dict:
        """Compact JSON-safe form: only non-default fields are kept."""
        record = {"type": self.type.value, "tick": self.tick}
        for key in ("channel", "rank", "chip", "bank", "req_id", "start", "end"):
            value = getattr(self, key)
            if value != -1:
                record[key] = value
        if self.kind:
            record["kind"] = self.kind
        if self.reason:
            record["reason"] = self.reason
        if self.extra:
            record["extra"] = self.extra
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "TraceEvent":
        return cls(
            type=EventType(record["type"]),
            tick=record["tick"],
            channel=record.get("channel", -1),
            rank=record.get("rank", -1),
            chip=record.get("chip", -1),
            bank=record.get("bank", -1),
            req_id=record.get("req_id", -1),
            start=record.get("start", -1),
            end=record.get("end", -1),
            kind=record.get("kind", ""),
            reason=record.get("reason", ""),
            extra=record.get("extra"),
        )


# ======================================================================
# Sinks
# ======================================================================
class ListSink:
    """Unbounded in-memory sink (tests, short traced runs)."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass


class RingBufferSink:
    """Keeps only the most recent ``capacity`` events (flight recorder)."""

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._buffer: Deque[TraceEvent] = deque(maxlen=capacity)
        #: Total events ever offered, including the evicted ones.
        self.total_seen = 0

    def append(self, event: TraceEvent) -> None:
        self._buffer.append(event)
        self.total_seen += 1

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._buffer)

    @property
    def evicted(self) -> int:
        return self.total_seen - len(self._buffer)

    def close(self) -> None:
        pass


class JsonlSink:
    """Streams events to a file, one JSON object per line."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._handle = open(self.path, "w")
        self.written = 0

    def append(self, event: TraceEvent) -> None:
        json.dump(event.to_dict(), self._handle, separators=(",", ":"))
        self._handle.write("\n")
        self.written += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def read_jsonl(path: Union[str, Path]) -> List[TraceEvent]:
    """Load a JSONL trace written by :class:`JsonlSink`."""
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(TraceEvent.from_dict(json.loads(line)))
    return events


# ======================================================================
# Tracers
# ======================================================================
class NullTracer:
    """Disabled tracer: emit sites see ``enabled == False`` and skip.

    ``emit`` still exists (and discards) so non-hot-path callers may emit
    unconditionally, but instrumented hot paths must check ``enabled``
    first — tests/telemetry/test_overhead.py enforces that discipline.
    """

    enabled = False

    def emit(self, event: TraceEvent) -> None:
        pass

    def close(self) -> None:
        pass


#: Shared default instance; stateless, safe to reuse everywhere.
NULL_TRACER = NullTracer()


class Tracer:
    """Fans emitted events out to one or more sinks."""

    enabled = True

    def __init__(self, sinks: Optional[Iterable] = None):
        self.sinks = list(sinks) if sinks is not None else [ListSink()]
        self.emitted = 0

    def emit(self, event: TraceEvent) -> None:
        self.emitted += 1
        for sink in self.sinks:
            sink.append(event)

    def events(self) -> List[TraceEvent]:
        """Events from the first sink exposing an ``events`` collection."""
        for sink in self.sinks:
            events = getattr(sink, "events", None)
            if events is not None:
                return list(events)
        return []

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


# ======================================================================
# The bundle the simulator threads through the stack
# ======================================================================
@dataclass
class Telemetry:
    """Tracer + metrics registry handed to every instrumented component.

    The registry is always live (cheap); the tracer defaults to
    :data:`NULL_TRACER` so tracing is strictly opt-in.
    """

    tracer: Union[Tracer, NullTracer] = NULL_TRACER
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @classmethod
    def disabled(cls) -> "Telemetry":
        """Registry only — the default for ordinary runs."""
        return cls()

    @classmethod
    def recording(cls, sinks: Optional[Iterable] = None) -> "Telemetry":
        """Registry plus an enabled tracer (default: unbounded list sink)."""
        return cls(tracer=Tracer(sinks))
