"""Chrome-trace-format export (``chrome://tracing`` / Perfetto).

Maps the simulator's resource hierarchy onto the trace event format's
process/thread axes:

* **process** (``pid``) — one per memory channel (pid = channel id);
* **thread** (``tid``) — one lane per physical chip of each rank
  (``tid = rank * chips_per_rank + chip``), named ``rank R chip C`` (or
  ``... ECC``/``... PCC`` for the code chips of a 10-chip PCMap rank),
  plus one ``scheduler`` lane per channel for controller decisions.

Chip reservations become complete (``"ph": "X"``) duration events;
scheduler decisions (RoW/WoW/rollback/pause/drain) become instant
(``"ph": "i"``) events.  Timestamps are microseconds as the format
requires (1 engine tick = 0.1 ns = 1e-4 us).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.telemetry.tracer import EventType, TraceEvent

#: Engine ticks per Chrome-trace microsecond (tick = 0.1 ns).
TICKS_PER_US = 10_000

#: tid of the per-channel scheduler (decision) lane — far above any
#: plausible rank*chips+chip value.
SCHEDULER_TID = 10_000

#: Event types rendered as duration events on chip lanes.
_DURATION_TYPES = {EventType.CHIP_RESERVE}

#: Event types rendered as instants on the scheduler lane.
_INSTANT_TYPES = {
    EventType.ROW_ATTEMPT,
    EventType.ROW_SERVE,
    EventType.ROW_DECLINE,
    EventType.WOW_OPEN,
    EventType.WOW_JOIN,
    EventType.WOW_CLOSE,
    EventType.ROLLBACK,
    EventType.WRITE_PAUSE,
    EventType.WRITE_RESUME,
    EventType.DRAIN_ENTER,
    EventType.DRAIN_EXIT,
    EventType.REQUEST_ENQUEUE,
    EventType.REQUEST_ISSUE,
    EventType.REQUEST_COMPLETE,
}


def _ticks_to_us(ticks: int) -> float:
    return ticks / TICKS_PER_US


def _chip_name(chip: int, chips_per_rank: int) -> str:
    """Human chip label mirroring the timeline module's convention."""
    if chips_per_rank >= 10 and chip == chips_per_rank - 1:
        return "PCC"
    if chips_per_rank >= 9 and chip == chips_per_rank - (
        2 if chips_per_rank >= 10 else 1
    ):
        return "ECC"
    return f"chip {chip}"


def to_chrome_trace(
    events: Iterable[TraceEvent],
    chips_per_rank: Optional[int] = None,
    label: str = "",
) -> dict:
    """Convert trace events to a Chrome trace JSON document (a dict).

    ``chips_per_rank`` sizes the rank->tid mapping; when omitted it is
    inferred from the largest chip id seen.  Events are sorted so ``ts``
    is monotonic, which some viewers require.
    """
    materialised: List[TraceEvent] = list(events)
    if chips_per_rank is None:
        max_chip = max((e.chip for e in materialised if e.chip >= 0), default=0)
        chips_per_rank = max_chip + 1

    trace_events: List[dict] = []
    seen_threads = set()  # (pid, tid) pairs needing name metadata
    seen_processes = set()

    for event in sorted(materialised, key=lambda e: (e.tick, e.type.value)):
        pid = max(event.channel, 0)
        seen_processes.add(pid)
        if event.type in _DURATION_TYPES and event.start >= 0:
            rank = max(event.rank, 0)
            tid = rank * chips_per_rank + max(event.chip, 0)
            seen_threads.add((pid, tid, rank, event.chip))
            name = event.reason or event.kind or event.type.value
            trace_events.append({
                "name": name,
                "cat": event.kind or "occupancy",
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": _ticks_to_us(event.start),
                "dur": _ticks_to_us(max(event.end - event.start, 0)),
                "args": {"bank": event.bank, "req_id": event.req_id},
            })
        elif event.type in _INSTANT_TYPES:
            tid = SCHEDULER_TID
            seen_threads.add((pid, tid, -1, -1))
            args = {"req_id": event.req_id}
            if event.reason:
                args["reason"] = event.reason
            if event.extra:
                args.update(event.extra)
            trace_events.append({
                "name": event.type.value,
                "cat": "scheduler",
                "ph": "i",
                "s": "t",
                "pid": pid,
                "tid": tid,
                "ts": _ticks_to_us(event.tick),
                "args": args,
            })

    metadata: List[dict] = []
    for pid in sorted(seen_processes):
        metadata.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": f"channel {pid}"},
        })
    for pid, tid, rank, chip in sorted(seen_threads):
        if tid == SCHEDULER_TID:
            thread_name = "scheduler"
        else:
            thread_name = f"rank {rank} {_chip_name(chip, chips_per_rank)}"
        metadata.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": thread_name},
        })

    document = {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ns",
        "otherData": {"source": "repro PCMap simulator"},
    }
    if label:
        document["otherData"]["label"] = label
    return document


def write_chrome_trace(
    path: Union[str, Path],
    events: Iterable[TraceEvent],
    chips_per_rank: Optional[int] = None,
    label: str = "",
) -> int:
    """Write the Chrome trace JSON for ``events``; returns event count."""
    document = to_chrome_trace(events, chips_per_rank, label)
    with open(path, "w") as handle:
        json.dump(document, handle)
    return len(document["traceEvents"])
