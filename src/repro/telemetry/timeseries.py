"""Time-resolved sampling of simulator state on a simulated-tick cadence.

Two pieces:

* :class:`TimeSeries` — a columnar ring buffer of ``(tick, row)`` samples.
  Columns are fixed at construction; once ``capacity`` samples are held
  the oldest are overwritten (``total_samples``/``dropped`` record the
  loss, so consumers can tell a truncated series from a complete one).
  ``as_dict``/``from_dict`` round-trip the JSON-safe columnar form that
  result files and the cross-worker merge use.
* :class:`TimeseriesSampler` — a set of named probes (zero-argument
  callables) sampled together whenever simulated time crosses a cadence
  boundary.  The simulator run loop calls :meth:`maybe_sample` after each
  engine step; the disabled path never constructs a sampler at all, so
  golden traces and perf fingerprints are untouched by default.

Sampling happens *outside* the event engine — no events are scheduled, no
engine state is read beyond ``engine.now`` — so enabling it cannot change
``events_dispatched``/``sim_ticks`` fingerprints, only wall-clock time.
Event time can jump past several boundaries at once (the engine is
discrete-event, not cycle-stepped); the sampler then records one sample at
the current time rather than backfilling, keeping the cost bounded by the
number of engine steps.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

#: Default sampling cadence in engine ticks (100 ns at 10 ticks/ns) —
#: fine enough to resolve individual write-drain episodes, coarse enough
#: that the smoke benchmark takes a few thousand samples.
DEFAULT_CADENCE_TICKS = 1000

#: Default ring capacity: bounded memory (~32 KiB per numeric column at
#: float width) regardless of run length.
DEFAULT_CAPACITY = 4096

#: Signature of a sampler probe: no arguments, returns a number.
Probe = Callable[[], float]


class TimeSeries:
    """Columnar ring buffer of time-stamped samples."""

    __slots__ = (
        "names", "cadence_ticks", "capacity",
        "_ticks", "_columns", "_head", "total_samples",
    )

    def __init__(
        self,
        names: Sequence[str],
        cadence_ticks: int = DEFAULT_CADENCE_TICKS,
        capacity: int = DEFAULT_CAPACITY,
    ):
        if not names or len(set(names)) != len(names):
            raise ValueError("column names must be non-empty and unique")
        if cadence_ticks <= 0:
            raise ValueError(f"cadence_ticks must be positive, got {cadence_ticks}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.names: Tuple[str, ...] = tuple(names)
        self.cadence_ticks = cadence_ticks
        self.capacity = capacity
        self._ticks: List[int] = []
        self._columns: List[List[float]] = [[] for _ in self.names]
        #: Index of the oldest sample once the ring has wrapped.
        self._head = 0
        self.total_samples = 0

    def append(self, tick: int, row: Sequence[float]) -> None:
        """Record one sample; overwrites the oldest once full."""
        if len(row) != len(self.names):
            raise ValueError(
                f"row has {len(row)} values for {len(self.names)} columns"
            )
        if len(self._ticks) < self.capacity:
            self._ticks.append(tick)
            for column, value in zip(self._columns, row):
                column.append(value)
        else:
            slot = self._head
            self._ticks[slot] = tick
            for column, value in zip(self._columns, row):
                column[slot] = value
            self._head = (slot + 1) % self.capacity
        self.total_samples += 1

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ticks)

    @property
    def dropped(self) -> int:
        """Samples lost to ring overwrite (0 until the buffer wraps)."""
        return self.total_samples - len(self._ticks)

    def _order(self) -> List[int]:
        """Physical indices in chronological order."""
        n = len(self._ticks)
        if self.total_samples <= self.capacity:
            return list(range(n))
        return list(range(self._head, n)) + list(range(self._head))

    def ticks(self) -> List[int]:
        """Sample timestamps in chronological order."""
        return [self._ticks[i] for i in self._order()]

    def column(self, name: str) -> List[float]:
        """One column's values in chronological order."""
        values = self._columns[self.names.index(name)]
        return [values[i] for i in self._order()]

    def rows(self) -> List[Dict[str, float]]:
        """Samples as ``{"tick": t, <name>: value, ...}`` dicts, oldest
        first — the JSONL sink's record shape."""
        order = self._order()
        out: List[Dict[str, float]] = []
        for i in order:
            record: Dict[str, float] = {"tick": self._ticks[i]}
            for name, column in zip(self.names, self._columns):
                record[name] = column[i]
            out.append(record)
        return out

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-safe columnar dump (chronological, wrap resolved)."""
        order = self._order()
        return {
            "cadence_ticks": self.cadence_ticks,
            "capacity": self.capacity,
            "total_samples": self.total_samples,
            "dropped": self.dropped,
            "ticks": [self._ticks[i] for i in order],
            "columns": {
                name: [column[i] for i in order]
                for name, column in zip(self.names, self._columns)
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TimeSeries":
        """Rebuild a series from :meth:`as_dict` output."""
        names = list(data["columns"])
        series = cls(
            names,
            cadence_ticks=data["cadence_ticks"],
            capacity=data["capacity"],
        )
        ticks = data["ticks"]
        for name in names:
            if len(data["columns"][name]) != len(ticks):
                raise ValueError(f"column {name!r} length mismatch")
        for i, tick in enumerate(ticks):
            series.append(tick, [data["columns"][name][i] for name in names])
        # Restore the overwrite count from before serialisation.
        series.total_samples = data["total_samples"]
        return series


def merge_series_dicts(dumps: Sequence[dict]) -> dict:
    """Deterministically combine per-worker :meth:`TimeSeries.as_dict`
    dumps from *different runs* into one keyed bundle.

    Time series from distinct simulations share no time axis, so unlike
    :func:`repro.telemetry.registry.merge_dumps` there is nothing to sum —
    the merged form simply keys each run's series by its label, sorted,
    so serial and parallel sweeps serialise byte-identically.
    """
    merged: Dict[str, dict] = {}
    for dump in dumps:
        for label, series in dump.items():
            if label in merged:
                raise ValueError(f"duplicate time-series label {label!r}")
            merged[label] = series
    return {label: merged[label] for label in sorted(merged)}


class TimeseriesSampler:
    """Samples a fixed set of probes at a simulated-tick cadence.

    Probes are registered once during wiring (insertion order defines the
    column order, so identically-wired runs produce identical column
    layouts) and frozen at the first sample.  The run loop drives
    :meth:`maybe_sample` with the current engine time; the common case —
    no boundary crossed — is a single integer compare.
    """

    __slots__ = (
        "cadence_ticks", "capacity",
        "_probe_names", "_probe_fns", "_series", "next_boundary",
    )

    def __init__(
        self,
        cadence_ticks: int = DEFAULT_CADENCE_TICKS,
        capacity: int = DEFAULT_CAPACITY,
    ):
        if cadence_ticks <= 0:
            raise ValueError(f"cadence_ticks must be positive, got {cadence_ticks}")
        self.cadence_ticks = cadence_ticks
        self.capacity = capacity
        self._probe_names: List[str] = []
        self._probe_fns: List[Probe] = []
        self._series: "TimeSeries | None" = None
        # Next tick at (or past) which a sample is due.  Public so the
        # run loop can hoist the boundary compare inline — a method
        # call per engine step is measurable; an integer compare is
        # not.  Starts at 0 so the first check captures initial state.
        self.next_boundary = 0

    def add_probe(self, name: str, fn: Probe) -> None:
        """Register a named probe; rejects duplicates and late additions."""
        if self._series is not None:
            raise RuntimeError("probes are frozen after the first sample")
        if name in self._probe_names:
            raise ValueError(f"duplicate probe {name!r}")
        self._probe_names.append(name)
        self._probe_fns.append(fn)

    @property
    def series(self) -> TimeSeries:
        """The backing series (created lazily, freezing the probe set)."""
        if self._series is None:
            if not self._probe_names:
                raise RuntimeError("sampler has no probes")
            self._series = TimeSeries(
                self._probe_names, self.cadence_ticks, self.capacity
            )
        return self._series

    def maybe_sample(self, now: int) -> bool:
        """Sample if ``now`` reached the next cadence boundary.

        Records at most one sample per call no matter how many boundaries
        the event jump skipped; the next boundary is realigned to the
        cadence grid past ``now``.
        """
        if now < self.next_boundary:
            return False
        self.sample(now)
        self.next_boundary = (now // self.cadence_ticks + 1) * self.cadence_ticks
        return True

    def sample(self, now: int) -> None:
        """Unconditionally record one sample of every probe."""
        self.series.append(now, [float(fn()) for fn in self._probe_fns])
