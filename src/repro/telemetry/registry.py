"""Named metrics: counters, gauges and fixed-bucket histograms.

The registry is deliberately primitive — plain attribute/int operations on
``__slots__`` objects, no locks (the engine is single-threaded), no label
sets, no export protocol beyond :meth:`MetricsRegistry.as_dict`.  Hot-path
code fetches the instrument object once (e.g. in a controller's
``__init__``) and then pays one bound-method call per update, which keeps
the always-on cost in the noise next to the event-engine work.

Naming convention: dotted lowercase paths, most-general first, e.g.
``ch0.queue.read.depth`` or ``row.declined.no-overlappable-read``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


class Counter:
    """Monotonically increasing integer count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def as_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Point-in-time value; remembers the maximum it ever held."""

    __slots__ = ("value", "max_value")

    def __init__(self) -> None:
        self.value = 0
        self.max_value = 0

    def set(self, value) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def inc(self, amount: int = 1) -> None:
        self.set(self.value + amount)

    def dec(self, amount: int = 1) -> None:
        self.value -= amount

    def as_dict(self) -> dict:
        return {"type": "gauge", "value": self.value, "max": self.max_value}


#: Default histogram buckets (upper bounds): tuned for nanosecond-scale
#: latencies and small integer distributions alike.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192,
)


class Histogram:
    """Fixed-bucket histogram with sum/count for mean recovery.

    ``buckets`` are inclusive upper bounds; one overflow bucket catches
    everything beyond the last bound.  Bucket search is linear — bucket
    lists are short and observations are cheap integer compares.
    """

    __slots__ = ("buckets", "counts", "count", "total", "min_seen", "max_seen")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be non-empty and sorted")
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min_seen: Optional[float] = None
        self.max_seen: Optional[float] = None

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.count += 1
        self.total += value
        if self.min_seen is None or value < self.min_seen:
            self.min_seen = value
        if self.max_seen is None or value > self.max_seen:
            self.max_seen = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate ``q``-quantile (0..1) from bucket upper bounds.

        Returns the upper bound of the bucket holding the q-th
        observation (``max_seen`` for the overflow bucket).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for i, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= target:
                if i < len(self.buckets):
                    return float(self.buckets[i])
                break
        return float(self.max_seen if self.max_seen is not None else 0.0)

    def as_dict(self) -> dict:
        return {
            "type": "histogram",
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min_seen,
            "max": self.max_seen,
        }


class MetricsRegistry:
    """Process-wide (per simulation) namespace of named instruments.

    ``counter``/``gauge``/``histogram`` are get-or-create; asking for an
    existing name with a different instrument kind raises, which catches
    name collisions early.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get_or_create(self, name: str, cls, factory):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {cls.__name__}"
                )
            return existing
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, Gauge)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(name, Histogram, lambda: Histogram(buckets))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def get(self, name: str):
        """The instrument registered under ``name``, or ``None``."""
        return self._instruments.get(name)

    def value(self, name: str, default=0):
        """Convenience: the scalar value of a counter/gauge by name."""
        instrument = self._instruments.get(name)
        if instrument is None:
            return default
        return getattr(instrument, "value", default)

    def as_dict(self) -> dict:
        """JSON-safe dump of every instrument, sorted by name."""
        return {
            name: self._instruments[name].as_dict()
            for name in sorted(self._instruments)
        }
