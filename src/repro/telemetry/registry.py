"""Named metrics: counters, gauges and fixed-bucket histograms.

The registry is deliberately primitive — plain attribute/int operations on
``__slots__`` objects, no locks (the engine is single-threaded), no label
sets, no export protocol beyond :meth:`MetricsRegistry.as_dict`.  Hot-path
code fetches the instrument object once (e.g. in a controller's
``__init__``) and then pays one bound-method call per update, which keeps
the always-on cost in the noise next to the event-engine work.

Naming convention: dotted lowercase paths, most-general first, e.g.
``ch0.queue.read.depth`` or ``row.declined.no-overlappable-read``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class Counter:
    """Monotonically increasing integer count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def as_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Point-in-time value; remembers the maximum it ever held.

    Contract (locked by tests/telemetry/test_registry.py):

    * ``set`` assigns an absolute value; ``inc``/``dec`` move relative to
      the current value.  All three keep ``value`` and ``max_value``
      consistent — ``dec`` routes through ``set`` so every mutation path
      shares one definition of the maximum.
    * ``max_value`` is the largest value the gauge *ever held*, including
      its initial 0 — a gauge that only ever goes negative reports
      ``max_value == 0`` because it held 0 before the first update.
    * Values may be negative (e.g. a mis-accounted depth during
      debugging); export layers must round-trip them unchanged rather
      than clamping.
    """

    __slots__ = ("value", "max_value")

    def __init__(self) -> None:
        self.value = 0
        self.max_value = 0

    def set(self, value) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def inc(self, amount: int = 1) -> None:
        self.set(self.value + amount)

    def dec(self, amount: int = 1) -> None:
        self.set(self.value - amount)

    def as_dict(self) -> dict:
        return {"type": "gauge", "value": self.value, "max": self.max_value}


#: Default histogram buckets (upper bounds): tuned for nanosecond-scale
#: latencies and small integer distributions alike.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192,
)


class Histogram:
    """Fixed-bucket histogram with sum/count for mean recovery.

    ``buckets`` are inclusive upper bounds; one overflow bucket catches
    everything beyond the last bound.  Bucket search is linear — bucket
    lists are short and observations are cheap integer compares.
    """

    __slots__ = ("buckets", "counts", "count", "total", "min_seen", "max_seen")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be non-empty and sorted")
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min_seen: Optional[float] = None
        self.max_seen: Optional[float] = None

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.count += 1
        self.total += value
        if self.min_seen is None or value < self.min_seen:
            self.min_seen = value
        if self.max_seen is None or value > self.max_seen:
            self.max_seen = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate ``q``-quantile (0..1) from bucket upper bounds.

        Returns the upper bound of the bucket holding the q-th
        observation, clamped to the exactly-tracked observed range
        ``[min_seen, max_seen]`` — so ``percentile(1.0)`` is the true
        maximum rather than the top bucket bound, and quantiles that land
        in the overflow bucket never saturate at the last finite bound.

        Exact bucket edges resolve to the *lower* bucket: with an
        integral target rank ``q * count``, the q-th observation itself
        is the boundary one, so a float-rounding epsilon keeps it from
        spilling into the next bucket.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        assert self.min_seen is not None and self.max_seen is not None
        if q == 0.0:
            return float(self.min_seen)
        # 1-based rank of the q-th observation; the epsilon absorbs float
        # error when q * count lands exactly on a bucket edge.
        target = max(1, math.ceil(q * self.count - 1e-9))
        seen = 0
        for i, bucket_count in enumerate(self.counts[:-1]):
            seen += bucket_count
            if seen >= target:
                bound = float(self.buckets[i])
                return min(max(bound, float(self.min_seen)), float(self.max_seen))
        # Overflow bucket: every value beyond the last finite bound.
        return float(self.max_seen)

    #: JSON-safe marker for the overflow bucket bound in ``as_dict``.
    OVERFLOW_BOUND = "+Inf"

    def as_dict(self) -> dict:
        """JSON-safe dump; ``buckets`` carries an explicit overflow bound.

        ``buckets`` has exactly ``len(counts)`` entries — the finite
        upper bounds plus a trailing ``"+Inf"`` — so consumers can zip
        bounds with counts without special-casing the overflow bucket.
        """
        return {
            "type": "histogram",
            "buckets": list(self.buckets) + [self.OVERFLOW_BOUND],
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min_seen,
            "max": self.max_seen,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        """Rebuild a histogram from :meth:`as_dict` output.

        Derived fields (mean, percentiles) are recomputed, not trusted.
        """
        bounds = [b for b in data["buckets"] if b != cls.OVERFLOW_BOUND]
        histogram = cls(buckets=bounds)
        counts = list(data["counts"])
        if len(counts) != len(histogram.counts):
            raise ValueError(
                f"histogram dump has {len(counts)} counts for "
                f"{len(bounds)} finite buckets"
            )
        histogram.counts = counts
        histogram.count = data["count"]
        histogram.total = data["sum"]
        histogram.min_seen = data.get("min")
        histogram.max_seen = data.get("max")
        return histogram

    def merge(self, other: "Histogram") -> None:
        """Accumulate another histogram with identical buckets."""
        if other.buckets != self.buckets:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.buckets} vs {other.buckets}"
            )
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.count += other.count
        self.total += other.total
        if other.min_seen is not None and (
            self.min_seen is None or other.min_seen < self.min_seen
        ):
            self.min_seen = other.min_seen
        if other.max_seen is not None and (
            self.max_seen is None or other.max_seen > self.max_seen
        ):
            self.max_seen = other.max_seen


class MetricsRegistry:
    """Process-wide (per simulation) namespace of named instruments.

    ``counter``/``gauge``/``histogram`` are get-or-create; asking for an
    existing name with a different instrument kind raises, which catches
    name collisions early.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get_or_create(self, name: str, cls, factory):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {cls.__name__}"
                )
            return existing
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, Gauge)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(name, Histogram, lambda: Histogram(buckets))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def get(self, name: str):
        """The instrument registered under ``name``, or ``None``."""
        return self._instruments.get(name)

    def value(self, name: str, default=0):
        """Convenience: the scalar value of a counter/gauge by name."""
        instrument = self._instruments.get(name)
        if instrument is None:
            return default
        return getattr(instrument, "value", default)

    def as_dict(self) -> dict:
        """JSON-safe dump of every instrument, sorted by name."""
        return {
            name: self._instruments[name].as_dict()
            for name in sorted(self._instruments)
        }


def merge_dumps(dumps: Iterable[dict]) -> dict:
    """Merge per-run registry dumps (:meth:`MetricsRegistry.as_dict`).

    The cross-worker aggregation rule — deterministic, so a parallel
    sweep's merged metrics are byte-identical to the serial run's:

    * **counters** add;
    * **gauges** add their final values and take the max of maxima
      (a sweep-wide ``queue.depth`` is the sum of last-seen depths, its
      ``max`` the worst depth any run ever hit);
    * **histograms** merge bucket counts, sums and exact min/max
      (buckets must match), with means/percentiles recomputed.

    Mixing instrument kinds under one name raises ``TypeError``, exactly
    like the registry's own get-or-create collision check.
    """
    merged: Dict[str, object] = {}
    for dump in dumps:
        for name, data in dump.items():
            kind = data["type"]
            existing = merged.get(name)
            if existing is None:
                if kind == "histogram":
                    merged[name] = Histogram.from_dict(data)
                else:
                    merged[name] = dict(data)
                continue
            existing_kind = (
                "histogram" if isinstance(existing, Histogram)
                else existing["type"]  # type: ignore[index]
            )
            if existing_kind != kind:
                raise TypeError(
                    f"metric {name!r} merged as both "
                    f"{existing_kind} and {kind}"
                )
            if kind == "histogram":
                existing.merge(Histogram.from_dict(data))  # type: ignore[union-attr]
            elif kind == "counter":
                existing["value"] += data["value"]  # type: ignore[index]
            elif kind == "gauge":
                existing["value"] += data["value"]  # type: ignore[index]
                existing["max"] = max(existing["max"], data["max"])  # type: ignore[index]
            else:
                raise TypeError(f"metric {name!r} has unknown kind {kind!r}")
    return {
        name: (
            value.as_dict() if isinstance(value, Histogram) else value
        )
        for name, value in sorted(merged.items())
    }
