"""Simulator-wide telemetry: metrics registry, event tracing, profiling.

Three cooperating pieces (docs/TELEMETRY.md has the full guide):

* :class:`MetricsRegistry` — named counters, gauges and fixed-bucket
  histograms.  Plain dict/int operations, cheap enough to stay always-on
  in the single-threaded engine; controllers cache the instrument objects
  they touch on the hot path.
* :class:`Tracer` — structured, typed events (request lifecycle, RoW/WoW
  decisions, rollbacks, write pauses, chip reservations) fanned out to
  sinks: an in-memory ring buffer, a JSONL file, or both.  The default is
  :data:`NULL_TRACER`, whose ``enabled`` flag keeps the tracing-off cost
  of every emit site to a single attribute check.
* :class:`EngineProfiler` / :class:`RunProfile` — events dispatched,
  wall-clock seconds and (opt-in) callback-latency top-N for the event
  engine, so hot-path regressions show up in benchmark output.

:class:`Telemetry` bundles a tracer and a registry and is what the
simulator threads through the controller stack.
"""

from repro.telemetry.chrome import to_chrome_trace, write_chrome_trace
from repro.telemetry.profiler import EngineProfiler, RunProfile, WallClock
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.tracer import (
    EventType,
    JsonlSink,
    ListSink,
    NULL_TRACER,
    NullTracer,
    RingBufferSink,
    Telemetry,
    TraceEvent,
    Tracer,
    read_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "EventType",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Telemetry",
    "RingBufferSink",
    "ListSink",
    "JsonlSink",
    "read_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "EngineProfiler",
    "RunProfile",
    "WallClock",
]
