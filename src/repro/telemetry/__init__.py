"""Simulator-wide telemetry: metrics registry, event tracing, profiling.

Three cooperating pieces (docs/TELEMETRY.md has the full guide):

* :class:`MetricsRegistry` — named counters, gauges and fixed-bucket
  histograms.  Plain dict/int operations, cheap enough to stay always-on
  in the single-threaded engine; controllers cache the instrument objects
  they touch on the hot path.
* :class:`Tracer` — structured, typed events (request lifecycle, RoW/WoW
  decisions, rollbacks, write pauses, chip reservations) fanned out to
  sinks: an in-memory ring buffer, a JSONL file, or both.  The default is
  :data:`NULL_TRACER`, whose ``enabled`` flag keeps the tracing-off cost
  of every emit site to a single attribute check.
* :class:`EngineProfiler` / :class:`RunProfile` — events dispatched,
  wall-clock seconds and (opt-in) callback-latency top-N for the event
  engine, so hot-path regressions show up in benchmark output.
* :class:`TimeSeries` / :class:`TimeseriesSampler` — opt-in columnar
  sampling of probes (queue depths, write-engine occupancy, outstanding
  reads, rollbacks, recent IRLP) on a simulated-tick cadence.
* :func:`to_openmetrics` / :func:`lint_openmetrics` /
  :func:`timeseries_to_jsonl` — standard-format exports of registry
  dumps and time series (``repro metrics``, CI artifacts).

:class:`Telemetry` bundles a tracer and a registry and is what the
simulator threads through the controller stack.
"""

from repro.telemetry.chrome import to_chrome_trace, write_chrome_trace
from repro.telemetry.export import (
    lint_openmetrics,
    timeseries_to_jsonl,
    to_openmetrics,
)
from repro.telemetry.profiler import EngineProfiler, RunProfile, WallClock
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_dumps,
)
from repro.telemetry.timeseries import (
    DEFAULT_CADENCE_TICKS,
    TimeSeries,
    TimeseriesSampler,
    merge_series_dicts,
)
from repro.telemetry.tracer import (
    EventType,
    JsonlSink,
    ListSink,
    NULL_TRACER,
    NullTracer,
    RingBufferSink,
    Telemetry,
    TraceEvent,
    Tracer,
    read_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_dumps",
    "DEFAULT_CADENCE_TICKS",
    "TimeSeries",
    "TimeseriesSampler",
    "merge_series_dicts",
    "to_openmetrics",
    "lint_openmetrics",
    "timeseries_to_jsonl",
    "EventType",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Telemetry",
    "RingBufferSink",
    "ListSink",
    "JsonlSink",
    "read_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "EngineProfiler",
    "RunProfile",
    "WallClock",
]
