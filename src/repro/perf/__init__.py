"""Tracked microbenchmarks for the functional simulation hot paths.

The suite times the layers the hot-path optimisation work targets — the
SECDED codec (scalar and vectorized batch), the functional backing
store, the array-backed front-end tier (batched epochs vs the object
access loop), the event-engine dispatch loop, the synthetic trace
generator,
one end-to-end ``rwow-rde`` run, and the time-series sampler's
overhead on that run — and emits a seed- and git-stamped
``BENCH_perf.json`` (including the regression sentinel's pinned
``metrics_fingerprint`` section) so revisions stay comparable.

Entry points: the ``repro perf`` CLI command and the thin wrappers in
``benchmarks/perf/``.  See docs/PERFORMANCE.md for the workflow.
"""

from repro.perf.microbench import BenchReport, time_call
from repro.perf.suites import (
    PR6_BASELINE,
    PRE_PR_BASELINE,
    SCHEMA_VERSION,
    TIMESERIES_OVERHEAD_CEILING,
    bench_batch_codec,
    bench_codec,
    bench_end_to_end,
    bench_engine_dispatch,
    bench_frontend_access,
    bench_storage,
    bench_timeseries,
    bench_trace_gen,
    check_payload,
    format_payload,
    run_suite,
)

__all__ = [
    "BenchReport",
    "PR6_BASELINE",
    "PRE_PR_BASELINE",
    "SCHEMA_VERSION",
    "TIMESERIES_OVERHEAD_CEILING",
    "bench_batch_codec",
    "bench_codec",
    "bench_end_to_end",
    "bench_engine_dispatch",
    "bench_frontend_access",
    "bench_storage",
    "bench_timeseries",
    "bench_trace_gen",
    "check_payload",
    "format_payload",
    "run_suite",
    "time_call",
]
